// Reproduces Fig. 4 of the paper: the case-study model and the asset
// refinement of the Engineering Workstation into E-mail Client -> Browser ->
// Infected Computer, with mitigations (User Training, Endpoint Security)
// attached to the specific aspects of the refined model, and the attack
// chain traced through the refinement.
#include <cstdio>

#include "core/watertank.hpp"
#include "security/attack_graph.hpp"
#include "security/threat_actor.hpp"

namespace {

int check(bool condition, const char* what) {
    std::printf("  check: %-60s %s\n", what, condition ? "OK" : "FAIL");
    return condition ? 0 : 1;
}

cprisk::security::ThreatActor actor(const char* id) {
    for (const auto& a : cprisk::security::standard_threat_actors()) {
        if (a.id == id) return a;
    }
    return {};
}

}  // namespace

int main() {
    std::printf("== Fig. 4: case-study model and asset refinement ==\n\n");

    auto built = cprisk::core::WaterTankCaseStudy::build();
    if (!built.ok()) {
        std::printf("build failed: %s\n", built.error().c_str());
        return 1;
    }
    auto model = built.value().system;
    const auto& matrix = built.value().matrix;

    std::printf("high-level model (%zu components):\n", model.component_count());
    for (const auto& component : model.components()) {
        std::printf("  %-16s %-22s layer=%-11s exposure=%s\n", component.id.c_str(),
                    component.name.c_str(),
                    std::string(to_string(layer_of(component.type))).c_str(),
                    std::string(to_string(component.exposure)).c_str());
    }

    int failures = 0;

    // Apply the refinement.
    const auto spec = cprisk::core::WaterTankCaseStudy::workstation_refinement();
    auto applied = model.refine(spec);
    if (!applied.ok()) {
        std::printf("refinement failed: %s\n", applied.error().c_str());
        return 1;
    }
    std::printf("\nrefined 'workstation' into:");
    for (const auto& part : model.parts_of("workstation")) std::printf(" %s", part.c_str());
    std::printf("\n");

    // Internal information/attack flow of the refinement.
    auto paths = model.find_paths("email_client", "infected_computer");
    std::printf("\ninternal attack flow (E-mail Client -> Browser -> Infected Computer):\n");
    for (const auto& path : paths) {
        std::printf("  ");
        for (std::size_t i = 0; i < path.size(); ++i) {
            std::printf("%s%s", i > 0 ? " -> " : "", path[i].c_str());
        }
        std::printf("\n");
    }
    failures += check(!paths.empty() && paths[0].size() == 3,
                      "refinement exposes the 3-step infection chain");

    // The attack graph of a cybercriminal through the refined model.
    auto graph = cprisk::security::AttackGraph::build(model, matrix, actor("A-CRIME"));
    auto attack_paths = graph.paths_to("infected_computer", 8);
    std::printf("\nattack paths (actor A-CRIME) to the infected computer:\n");
    for (const auto& path : attack_paths) std::printf("  %s\n", path.to_string().c_str());
    failures += check(!attack_paths.empty(), "cybercriminal reaches the workstation interior");

    // Mitigations attach to the specific aspects: the techniques applicable
    // to the refined parts name M1/M2.
    std::printf("\nmitigations attached to the refined aspects:\n");
    bool train_attached = false;
    bool endpoint_attached = false;
    for (const auto& part_id : model.parts_of("workstation")) {
        const auto& part = model.component(part_id);
        for (const auto* technique : matrix.techniques_for(part)) {
            for (const auto* mitigation : matrix.mitigations_for(*technique)) {
                std::printf("  %-18s %-32s -> %s\n", part.id.c_str(),
                            technique->name.c_str(), mitigation->name.c_str());
                if (mitigation->id == "M-TRAIN") train_attached = true;
                if (mitigation->id == "M-ENDPOINT") endpoint_attached = true;
            }
        }
    }
    failures += check(train_attached, "User Training attaches to the refinement (M1)");
    failures += check(endpoint_attached, "Endpoint Security attaches to the refinement (M2)");

    // Propagation continues from the refined exit into the OT side.
    auto reachable = model.reachable_from("infected_computer");
    failures += check(reachable.count("tank") > 0,
                      "infection propagates from the refined exit to the tank");

    std::printf("\n%s\n", failures == 0 ? "all shape checks passed" : "SHAPE CHECKS FAILED");
    return failures == 0 ? 0 : 1;
}
