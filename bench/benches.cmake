# Bench binaries: one per paper table/figure (self-checking reproduction
# harnesses) plus google-benchmark performance/ablation suites. All binaries
# land in build/bench/.

function(cprisk_add_bench name)
  cmake_parse_arguments(ARG "" "" "LIBS" ${ARGN})
  add_executable(${name} ${ARG_UNPARSED_ARGUMENTS})
  target_link_libraries(${name} PRIVATE ${ARG_LIBS})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

cprisk_add_bench(bench_table1_risk_matrix bench/bench_table1_risk_matrix.cpp
  LIBS cprisk_risk)
cprisk_add_bench(bench_table2_case_study bench/bench_table2_case_study.cpp
  LIBS cprisk_core)
cprisk_add_bench(bench_fig1_pipeline bench/bench_fig1_pipeline.cpp
  LIBS cprisk_core)
cprisk_add_bench(bench_fig2_risk_attributes bench/bench_fig2_risk_attributes.cpp
  LIBS cprisk_risk cprisk_uncertainty)
cprisk_add_bench(bench_fig3_hierarchical bench/bench_fig3_hierarchical.cpp
  LIBS cprisk_core)
cprisk_add_bench(bench_fig4_refinement bench/bench_fig4_refinement.cpp
  LIBS cprisk_core)

cprisk_add_bench(bench_ablation_baselines bench/bench_ablation_baselines.cpp
  LIBS cprisk_core cprisk_fta cprisk_markov benchmark::benchmark)

cprisk_add_bench(bench_perf_solver bench/bench_perf_solver.cpp
  LIBS cprisk_asp benchmark::benchmark)
cprisk_add_bench(bench_perf_epa bench/bench_perf_epa.cpp
  LIBS cprisk_epa cprisk_serve benchmark::benchmark)
target_compile_definitions(bench_perf_epa PRIVATE
  CPRISK_SOURCE_DIR="${CMAKE_SOURCE_DIR}")
cprisk_add_bench(bench_perf_grounder bench/bench_perf_grounder.cpp
  LIBS cprisk_asp cprisk_core cprisk_epa benchmark::benchmark)
target_compile_definitions(bench_perf_grounder PRIVATE
  CPRISK_SOURCE_DIR="${CMAKE_SOURCE_DIR}")
cprisk_add_bench(bench_perf_optimizer bench/bench_perf_optimizer.cpp
  LIBS cprisk_mitigation benchmark::benchmark)
cprisk_add_bench(bench_perf_sim bench/bench_perf_sim.cpp
  LIBS cprisk_sim cprisk_core benchmark::benchmark)
