// Simulator throughput plus DESIGN.md ablation 3: agreement between the
// qualitative EPA verdicts and the concrete fault-injection campaign on the
// quantitative water-tank plant (the abstraction must never miss a hazard).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/watertank.hpp"
#include "sim/campaign.hpp"

namespace {

using namespace cprisk;

void BM_SimulatorRun(benchmark::State& state) {
    sim::WaterTankSimulator simulator;
    const double duration = static_cast<double>(state.range(0));
    for (auto _ : state) {
        auto result = simulator.run(duration, {});
        benchmark::DoNotOptimize(result);
    }
    state.counters["sim_seconds"] = duration;
}
BENCHMARK(BM_SimulatorRun)->Arg(60)->Arg(300)->Arg(1200);

void BM_SimulatorWithFaults(benchmark::State& state) {
    sim::WaterTankSimulator simulator;
    for (auto _ : state) {
        auto result = simulator.run(
            120.0, {{5.0, sim::PlantFault::OutputValveStuckClosed},
                    {5.0, sim::PlantFault::HmiNoSignal}});
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_SimulatorWithFaults);

void BM_FullCampaign(benchmark::State& state) {
    sim::WaterTankSimulator simulator;
    sim::CampaignOptions options;
    options.max_simultaneous_faults = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto records = sim::run_campaign(simulator, options);
        benchmark::DoNotOptimize(records);
    }
}
BENCHMARK(BM_FullCampaign)->Arg(1)->Arg(2)->Arg(3);

void BM_TraceAbstraction(benchmark::State& state) {
    sim::WaterTankSimulator simulator;
    auto result = simulator.run(600.0, {{5.0, sim::PlantFault::OutputValveStuckClosed}});
    auto abstractor = simulator.abstractor();
    for (auto _ : state) {
        auto trajectory = abstractor.abstract_trace(result.trace);
        benchmark::DoNotOptimize(trajectory);
    }
    state.counters["samples"] = static_cast<double>(result.trace.size());
}
BENCHMARK(BM_TraceAbstraction);

/// Maps simulator faults to case-study mutations for the agreement check.
security::Mutation to_mutation(sim::PlantFault fault) {
    using sim::PlantFault;
    switch (fault) {
        case PlantFault::InputValveStuckOpen: return {"input_valve", "stuck_at_open"};
        case PlantFault::OutputValveStuckClosed: return {"output_valve", "stuck_at_closed"};
        case PlantFault::HmiNoSignal: return {"hmi", "no_signal"};
        case PlantFault::WorkstationCompromise: return {"workstation", "infected"};
        case PlantFault::SensorFrozen: return {"level_sensor", "frozen_reading"};
    }
    return {"", ""};
}

/// Ablation 3: qualitative-vs-quantitative verdict agreement over the
/// campaign (excluding SensorFrozen, which the qualitative case-study model
/// intentionally abstracts away — reported separately).
void print_validation_summary() {
    auto built = core::WaterTankCaseStudy::build();
    if (!built.ok()) {
        std::printf("validation: case study failed: %s\n", built.error().c_str());
        return;
    }
    const auto& cs = built.value();
    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Behavioral;
    options.horizon = cs.horizon;
    auto analysis = epa::ErrorPropagationAnalysis::create(cs.system, cs.requirements,
                                                          cs.mitigations, options);
    if (!analysis.ok()) {
        std::printf("validation: EPA failed: %s\n", analysis.error().c_str());
        return;
    }

    sim::WaterTankSimulator simulator;
    sim::CampaignOptions campaign_options;
    campaign_options.max_simultaneous_faults = 3;
    const auto records = sim::run_campaign(simulator, campaign_options);

    int compared = 0;
    int agree = 0;
    int qualitative_missed = 0;  // concrete hazard the abstraction missed (must be 0)
    for (const auto& record : records) {
        bool modeled = true;
        security::AttackScenario scenario;
        scenario.id = "v";
        for (sim::PlantFault fault : record.faults) {
            if (fault == sim::PlantFault::SensorFrozen) modeled = false;
            scenario.mutations.push_back(to_mutation(fault));
        }
        if (!modeled) continue;
        auto verdict = analysis.value().evaluate(scenario, {});
        if (!verdict.ok()) continue;
        ++compared;
        const bool q_r1 = verdict.value().violates("r1");
        const bool q_r2 = verdict.value().violates("r2");
        if (q_r1 == record.violates_r1() && q_r2 == record.violates_r2()) ++agree;
        if ((record.violates_r1() && !q_r1) || (record.violates_r2() && !q_r2)) {
            ++qualitative_missed;
        }
    }
    std::printf(
        "validation (qualitative EPA vs concrete simulation): %d/%d combinations agree; "
        "hazards missed by the abstraction: %d (soundness requires 0)\n",
        agree, compared, qualitative_missed);
}

}  // namespace

int main(int argc, char** argv) {
    print_validation_summary();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
