// Ablation: qualitative EPA vs the classical baselines (§III-A). Measures
// the per-hazard analysis cost of (a) the EPA scenario evaluation, (b) FTA
// synthesis + minimal cut sets, and (c) DTMC bounded reachability — and
// checks that the three views agree on the dominant causes.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/watertank.hpp"
#include "fta/fault_tree.hpp"
#include "markov/chain.hpp"
#include "security/threat_actor.hpp"

namespace {

using namespace cprisk;

struct Shared {
    core::WaterTankCaseStudy cs;
    // The EPA borrows cs.system, so it is created only after `cs` has its
    // final address (two-phase init below).
    std::unique_ptr<epa::ErrorPropagationAnalysis> epa;
    security::ScenarioSpace space;
    std::vector<epa::ScenarioVerdict> verdicts;
};

const Shared& shared() {
    static const Shared* instance = [] {
        auto built = core::WaterTankCaseStudy::build();
        require(built.ok(), built.error());
        auto* s = new Shared{std::move(built).value(), nullptr, {}, {}};
        epa::EpaOptions options;
        options.focus = epa::AnalysisFocus::Behavioral;
        options.horizon = s->cs.horizon;
        auto epa = epa::ErrorPropagationAnalysis::create(s->cs.system, s->cs.requirements,
                                                         s->cs.mitigations, options);
        require(epa.ok(), epa.error());
        s->epa = std::make_unique<epa::ErrorPropagationAnalysis>(std::move(epa).value());
        security::ScenarioSpaceOptions space_options;
        space_options.max_simultaneous_faults = 2;
        space_options.include_attack_scenarios = false;
        s->space = security::ScenarioSpace::build(s->cs.system, s->cs.matrix,
                                                  security::standard_threat_actors(),
                                                  space_options);
        auto verdicts = s->epa->evaluate_all(s->space, {});
        require(verdicts.ok(), verdicts.error());
        s->verdicts = std::move(verdicts).value();
        return s;
    }();
    return *instance;
}

void BM_EpaSingleScenario(benchmark::State& state) {
    const auto& s = shared();
    const auto rows = s.cs.table2_rows();
    for (auto _ : state) {
        auto verdict = s.epa->evaluate(rows[3].scenario, rows[3].active_mitigations);  // S4
        benchmark::DoNotOptimize(verdict);
    }
}
BENCHMARK(BM_EpaSingleScenario);

void BM_EpaExhaustiveSpace(benchmark::State& state) {
    const auto& s = shared();
    for (auto _ : state) {
        auto verdicts = s.epa->evaluate_all(s.space, {});
        benchmark::DoNotOptimize(verdicts);
    }
    state.counters["scenarios"] = static_cast<double>(s.space.size());
}
BENCHMARK(BM_EpaExhaustiveSpace);

void BM_FtaSynthesisAndCutSets(benchmark::State& state) {
    const auto& s = shared();
    for (auto _ : state) {
        auto tree = fta::from_verdicts("r1", s.verdicts, s.cs.system);
        auto cut_sets = tree.value().minimal_cut_sets();
        benchmark::DoNotOptimize(cut_sets);
    }
}
BENCHMARK(BM_FtaSynthesisAndCutSets);

void BM_FtaTopLikelihood(benchmark::State& state) {
    const auto& s = shared();
    auto tree = fta::from_verdicts("r1", s.verdicts, s.cs.system);
    for (auto _ : state) {
        auto top = tree.value().top_likelihood();
        benchmark::DoNotOptimize(top);
    }
}
BENCHMARK(BM_FtaTopLikelihood);

void BM_MarkovBoundedReachability(benchmark::State& state) {
    auto chain = markov::single_fault_chain(qual::Level::Low);
    const std::size_t horizon = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto p = chain.reach_probability("ok", {"failed"}, horizon);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_MarkovBoundedReachability)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
    // Agreement summary: the FTA synthesized from the EPA names the same
    // first-order causes the EPA flags as single-fault hazards.
    {
        const auto& s = shared();
        auto tree = fta::from_verdicts("r1", s.verdicts, s.cs.system);
        auto cut_sets = tree.value().minimal_cut_sets();
        std::size_t singletons = 0;
        for (const auto& cut : cut_sets.value()) {
            if (cut.size() == 1) ++singletons;
        }
        std::size_t single_fault_hazards = 0;
        for (const auto& verdict : s.verdicts) {
            if (verdict.violates("r1") && verdict.injected.size() == 1) ++single_fault_hazards;
        }
        std::printf("baseline agreement: FTA first-order cut sets = %zu, EPA single-fault R1 "
                    "hazards = %zu -> %s\n",
                    singletons, single_fault_hazards,
                    singletons == single_fault_hazards ? "AGREE" : "DISAGREE");
    }
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
