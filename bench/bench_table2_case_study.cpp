// Reproduces Table II of the paper: exhaustive qualitative EPA of the
// water-tank case study over the S1-S7 fault-mode combinations, printing the
// same rows (active fault modes, mitigation status, R1/R2 violations).
// Self-checking against the verdicts printed in the paper.
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/watertank.hpp"

namespace {

using cprisk::core::Table2Row;
using cprisk::core::WaterTankCaseStudy;
using cprisk::security::Mutation;

struct Expected {
    const char* id;
    bool r1;
    bool r2;
};

// Table II as printed: S2 violates both; S4 violates R1 only; S5 and S7
// violate both; S1, S3, S6 violate nothing.
constexpr Expected kExpected[] = {
    {"s1", false, false}, {"s2", true, true},  {"s3", false, false}, {"s4", true, false},
    {"s5", true, true},   {"s6", false, false}, {"s7", true, true},
};

bool has_mutation(const std::vector<Mutation>& mutations, const char* component,
                  const char* fault) {
    for (const Mutation& m : mutations) {
        if (m.component == component && m.fault_id == fault) return true;
    }
    return false;
}

}  // namespace

int main() {
    auto built = WaterTankCaseStudy::build();
    if (!built.ok()) {
        std::printf("case study build failed: %s\n", built.error().c_str());
        return 1;
    }
    const WaterTankCaseStudy& cs = built.value();

    cprisk::epa::EpaOptions options;
    options.focus = cprisk::epa::AnalysisFocus::Behavioral;
    options.horizon = cs.horizon;
    auto epa = cprisk::epa::ErrorPropagationAnalysis::create(cs.system, cs.requirements,
                                                             cs.mitigations, options);
    if (!epa.ok()) {
        std::printf("EPA setup failed: %s\n", epa.error().c_str());
        return 1;
    }

    std::printf("== Table II: analysis results of the water-tank case study ==\n");
    std::printf("   F1: input valve stuck-at-open      F2: output valve stuck-at-closed\n");
    std::printf("   F3: HMI no-signal                  F4: infected engineering workstation\n");
    std::printf("   M1: user training                  M2: endpoint security\n\n");

    cprisk::TextTable table({"", "F1", "F2", "F3", "F4", "M1", "M2", "R1", "R2"});
    int mismatches = 0;
    const auto rows = cs.table2_rows();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Table2Row& row = rows[i];
        auto verdict = epa.value().evaluate(row.scenario, row.active_mitigations);
        if (!verdict.ok()) {
            std::printf("scenario %s failed: %s\n", row.scenario.id.c_str(),
                        verdict.error().c_str());
            return 1;
        }
        const auto& v = verdict.value();
        auto star = [&](const char* component, const char* fault) {
            return has_mutation(row.scenario.mutations, component, fault) ? "*" : "";
        };
        auto active = [&](const char* mitigation) {
            for (const auto& m : row.active_mitigations) {
                if (m == mitigation) return "Active";
            }
            return "";
        };
        const bool r1 = v.violates("r1");
        const bool r2 = v.violates("r2");
        table.add_row({"S" + std::to_string(i + 1),
                       star("input_valve", "stuck_at_open"),
                       star("output_valve", "stuck_at_closed"), star("hmi", "no_signal"),
                       star("workstation", "infected"), active("M-TRAIN"),
                       active("M-ENDPOINT"), r1 ? "Violated" : "-", r2 ? "Violated" : "-"});
        if (r1 != kExpected[i].r1 || r2 != kExpected[i].r2) {
            std::printf("MISMATCH %s: paper R1=%d R2=%d, ours R1=%d R2=%d\n", kExpected[i].id,
                        kExpected[i].r1, kExpected[i].r2, r1, r2);
            ++mismatches;
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("paper-vs-ours: %d/7 scenario rows match%s\n",
                7 - mismatches, mismatches == 0 ? " (exact reproduction)" : "");

    // The paper's closing observation: S5 is the most severe two-fault
    // combination; S7 yields the same violations at lower likelihood.
    auto s5 = epa.value().evaluate(rows[4].scenario, rows[4].active_mitigations);
    auto s7 = epa.value().evaluate(rows[6].scenario, rows[6].active_mitigations);
    if (s5.ok() && s7.ok()) {
        std::printf(
            "S5 vs S7: identical violations=%s; likelihood S7 (%s) <= S5 (%s) — \"the "
            "potential probability of the simultaneous occurrence of all faults is much "
            "lower\"\n",
            s5.value().violated_requirements == s7.value().violated_requirements ? "yes" : "NO",
            std::string(cprisk::qual::to_short_string(rows[6].scenario.likelihood)).c_str(),
            std::string(cprisk::qual::to_short_string(rows[4].scenario.likelihood)).c_str());
    }
    return mismatches == 0 ? 0 : 1;
}
