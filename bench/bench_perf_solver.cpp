// Performance of the embedded ASP engine (grounder + stable-model solver):
// grounding throughput, satisfiability search, full enumeration, and
// temporal unrolling — the scaling knobs behind the paper's exhaustive
// hazard identification. Also covers DESIGN.md ablation 2 by comparing a
// stratified (propagation-only) program against one requiring stable-model
// search.
#include <benchmark/benchmark.h>

#include <string>

#include "asp/asp.hpp"

namespace {

using namespace cprisk::asp;

std::string chain_program(int n) {
    std::string p = "edge(0,1).\n";
    for (int i = 1; i < n; ++i) {
        p += "edge(" + std::to_string(i) + "," + std::to_string(i + 1) + ").\n";
    }
    p += "reach(X,Y) :- edge(X,Y).\n";
    p += "reach(X,Z) :- reach(X,Y), edge(Y,Z).\n";
    return p;
}

void BM_GroundTransitiveClosure(benchmark::State& state) {
    const std::string text = chain_program(static_cast<int>(state.range(0)));
    auto program = parse_program(text).value();
    for (auto _ : state) {
        auto grounded = ground(program);
        benchmark::DoNotOptimize(grounded);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GroundTransitiveClosure)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_SolveStratified(benchmark::State& state) {
    // Deterministic (stratified) program: a single answer set found without
    // search — the common case for EPA scenario programs.
    const std::string text = chain_program(static_cast<int>(state.range(0)));
    auto program = parse_program(text).value();
    auto grounded = ground(program).value();
    for (auto _ : state) {
        auto result = solve(grounded);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_SolveStratified)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_SolveGraphColoringFirstModel(benchmark::State& state) {
    // Stable-model *search*: 3-coloring of a cycle, stop at the first model.
    const int n = static_cast<int>(state.range(0));
    std::string text = "node(1.." + std::to_string(n) + "). color(r). color(g). color(b).\n";
    for (int i = 1; i < n; ++i) {
        text += "edge(" + std::to_string(i) + "," + std::to_string(i + 1) + ").\n";
    }
    text += "edge(" + std::to_string(n) + ",1).\n";
    text += "1 { assign(N,C) : color(C) } 1 :- node(N).\n";
    text += ":- edge(X,Y), assign(X,C), assign(Y,C).\n";
    auto program = parse_program(text).value();
    auto grounded = ground(program).value();
    SolveOptions options;
    options.max_models = 1;
    for (auto _ : state) {
        auto result = solve(grounded, options);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_SolveGraphColoringFirstModel)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_EnumerateChoiceSpace(benchmark::State& state) {
    // Exhaustive enumeration of 2^k answer sets (the scenario-space shape).
    const int k = static_cast<int>(state.range(0));
    std::string text = "item(1.." + std::to_string(k) + "). { pick(X) : item(X) }.\n";
    auto grounded = ground(parse_program(text).value()).value();
    for (auto _ : state) {
        auto result = solve(grounded);
        benchmark::DoNotOptimize(result);
    }
    state.counters["models"] = static_cast<double>(1 << k);
}
BENCHMARK(BM_EnumerateChoiceSpace)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_TemporalUnroll(benchmark::State& state) {
    // Telingo-style unrolling + solving of a frame-axiom program over a
    // growing horizon (the EPA's temporal depth knob).
    const int horizon = static_cast<int>(state.range(0));
    const std::string text =
        "#const horizon = " + std::to_string(horizon) + ".\n" +
        "#program initial. level(normal).\n"
        "#program dynamic. level(X) :- prev_level(X).\n"
        "#program always. observed :- level(normal).\n";
    auto program = parse_program(text).value();
    PipelineOptions options;
    for (auto _ : state) {
        auto result = solve_program(program, options);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_TemporalUnroll)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_OptimizationBranchAndBound(benchmark::State& state) {
    // Weak-constraint optimization over k binary choices.
    const int k = static_cast<int>(state.range(0));
    std::string text = "item(1.." + std::to_string(k) + "). { pick(X) : item(X) }.\n";
    text += "covered :- pick(X), item(X).\n:- not covered.\n";
    text += ":~ pick(X), item(X). [X@1, X]\n";
    auto grounded = ground(parse_program(text).value()).value();
    for (auto _ : state) {
        auto result = solve(grounded);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_OptimizationBranchAndBound)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_BoundPropagationAblation(benchmark::State& state) {
    // Ablation: cardinality-bound propagation on vs leaf-only checking,
    // on a tightly-bounded coloring instance.
    const int n = 8;
    std::string text = "node(1.." + std::to_string(n) + "). color(r). color(g). color(b).\n";
    for (int i = 1; i < n; ++i) {
        text += "edge(" + std::to_string(i) + "," + std::to_string(i + 1) + ").\n";
    }
    text += "edge(" + std::to_string(n) + ",1).\n";
    text += "1 { assign(N,C) : color(C) } 1 :- node(N).\n";
    text += ":- edge(X,Y), assign(X,C), assign(Y,C).\n";
    auto grounded = ground(parse_program(text).value()).value();
    SolveOptions options;
    options.max_models = 1;
    options.propagate_bounds = state.range(0) != 0;
    for (auto _ : state) {
        auto result = solve(grounded, options);
        benchmark::DoNotOptimize(result);
    }
    state.SetLabel(options.propagate_bounds ? "propagation_on" : "leaf_only");
}
BENCHMARK(BM_BoundPropagationAblation)->Arg(1)->Arg(0);

void BM_CancellationCheckOverhead(benchmark::State& state) {
    // Cost of the cooperative budget checks on the hot search loop: the same
    // enumeration with no budget attached vs. a generous budget that never
    // trips (decision charges + strided clock sampling). The delta is the
    // governance overhead documented in EXPERIMENTS.md (<2% target).
    const int k = 10;
    std::string text = "item(1.." + std::to_string(k) + "). { pick(X) : item(X) }.\n";
    auto grounded = ground(parse_program(text).value()).value();
    const bool governed = state.range(0) != 0;
    for (auto _ : state) {
        cprisk::Budget budget;
        SolveOptions options;
        if (governed) {
            budget.set_deadline_after(std::chrono::hours(1));
            budget.set_max_decisions(1u << 30);
            options.budget = &budget;
        }
        auto result = solve(grounded, options);
        benchmark::DoNotOptimize(result);
    }
    state.SetLabel(governed ? "budget_attached" : "ungoverned");
}
BENCHMARK(BM_CancellationCheckOverhead)->Arg(0)->Arg(1);

void BM_ParseLargeProgram(benchmark::State& state) {
    const std::string text = chain_program(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto program = parse_program(text);
        benchmark::DoNotOptimize(program);
    }
}
BENCHMARK(BM_ParseLargeProgram)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
