// Performance of the embedded ASP engine (grounder + stable-model solver):
// grounding throughput, satisfiability search, full enumeration, and
// temporal unrolling — the scaling knobs behind the paper's exhaustive
// hazard identification. Also covers DESIGN.md ablation 2 by comparing a
// stratified (propagation-only) program against one requiring stable-model
// search.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "asp/asp.hpp"
#include "asp/incremental.hpp"

namespace {

using namespace cprisk::asp;

std::string chain_program(int n) {
    std::string p = "edge(0,1).\n";
    for (int i = 1; i < n; ++i) {
        p += "edge(" + std::to_string(i) + "," + std::to_string(i + 1) + ").\n";
    }
    p += "reach(X,Y) :- edge(X,Y).\n";
    p += "reach(X,Z) :- reach(X,Y), edge(Y,Z).\n";
    return p;
}

void BM_GroundTransitiveClosure(benchmark::State& state) {
    const std::string text = chain_program(static_cast<int>(state.range(0)));
    auto program = parse_program(text).value();
    for (auto _ : state) {
        auto grounded = ground(program);
        benchmark::DoNotOptimize(grounded);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GroundTransitiveClosure)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_SolveStratified(benchmark::State& state) {
    // Deterministic (stratified) program: a single answer set found without
    // search — the common case for EPA scenario programs.
    const std::string text = chain_program(static_cast<int>(state.range(0)));
    auto program = parse_program(text).value();
    auto grounded = ground(program).value();
    for (auto _ : state) {
        auto result = solve(grounded);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_SolveStratified)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_SolveGraphColoringFirstModel(benchmark::State& state) {
    // Stable-model *search*: 3-coloring of a cycle, stop at the first model.
    const int n = static_cast<int>(state.range(0));
    std::string text = "node(1.." + std::to_string(n) + "). color(r). color(g). color(b).\n";
    for (int i = 1; i < n; ++i) {
        text += "edge(" + std::to_string(i) + "," + std::to_string(i + 1) + ").\n";
    }
    text += "edge(" + std::to_string(n) + ",1).\n";
    text += "1 { assign(N,C) : color(C) } 1 :- node(N).\n";
    text += ":- edge(X,Y), assign(X,C), assign(Y,C).\n";
    auto program = parse_program(text).value();
    auto grounded = ground(program).value();
    SolveOptions options;
    options.max_models = 1;
    for (auto _ : state) {
        auto result = solve(grounded, options);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_SolveGraphColoringFirstModel)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_EnumerateChoiceSpace(benchmark::State& state) {
    // Exhaustive enumeration of 2^k answer sets (the scenario-space shape).
    const int k = static_cast<int>(state.range(0));
    std::string text = "item(1.." + std::to_string(k) + "). { pick(X) : item(X) }.\n";
    auto grounded = ground(parse_program(text).value()).value();
    for (auto _ : state) {
        auto result = solve(grounded);
        benchmark::DoNotOptimize(result);
    }
    state.counters["models"] = static_cast<double>(1 << k);
}
BENCHMARK(BM_EnumerateChoiceSpace)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_TemporalUnroll(benchmark::State& state) {
    // Telingo-style unrolling + solving of a frame-axiom program over a
    // growing horizon (the EPA's temporal depth knob).
    const int horizon = static_cast<int>(state.range(0));
    const std::string text =
        "#const horizon = " + std::to_string(horizon) + ".\n" +
        "#program initial. level(normal).\n"
        "#program dynamic. level(X) :- prev_level(X).\n"
        "#program always. observed :- level(normal).\n";
    auto program = parse_program(text).value();
    PipelineOptions options;
    for (auto _ : state) {
        auto result = solve_program(program, options);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_TemporalUnroll)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_OptimizationBranchAndBound(benchmark::State& state) {
    // Weak-constraint optimization over k binary choices.
    const int k = static_cast<int>(state.range(0));
    std::string text = "item(1.." + std::to_string(k) + "). { pick(X) : item(X) }.\n";
    text += "covered :- pick(X), item(X).\n:- not covered.\n";
    text += ":~ pick(X), item(X). [X@1, X]\n";
    auto grounded = ground(parse_program(text).value()).value();
    for (auto _ : state) {
        auto result = solve(grounded);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_OptimizationBranchAndBound)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_BoundPropagationAblation(benchmark::State& state) {
    // Ablation: cardinality-bound propagation on vs leaf-only checking,
    // on a tightly-bounded coloring instance.
    const int n = 8;
    std::string text = "node(1.." + std::to_string(n) + "). color(r). color(g). color(b).\n";
    for (int i = 1; i < n; ++i) {
        text += "edge(" + std::to_string(i) + "," + std::to_string(i + 1) + ").\n";
    }
    text += "edge(" + std::to_string(n) + ",1).\n";
    text += "1 { assign(N,C) : color(C) } 1 :- node(N).\n";
    text += ":- edge(X,Y), assign(X,C), assign(Y,C).\n";
    auto grounded = ground(parse_program(text).value()).value();
    SolveOptions options;
    options.max_models = 1;
    options.propagate_bounds = state.range(0) != 0;
    for (auto _ : state) {
        auto result = solve(grounded, options);
        benchmark::DoNotOptimize(result);
    }
    state.SetLabel(options.propagate_bounds ? "propagation_on" : "leaf_only");
}
BENCHMARK(BM_BoundPropagationAblation)->Arg(1)->Arg(0);

void BM_CancellationCheckOverhead(benchmark::State& state) {
    // Cost of the cooperative budget checks on the hot search loop: the same
    // enumeration with no budget attached vs. a generous budget that never
    // trips (decision charges + strided clock sampling). The delta is the
    // governance overhead documented in EXPERIMENTS.md (<2% target).
    const int k = 10;
    std::string text = "item(1.." + std::to_string(k) + "). { pick(X) : item(X) }.\n";
    auto grounded = ground(parse_program(text).value()).value();
    const bool governed = state.range(0) != 0;
    for (auto _ : state) {
        cprisk::Budget budget;
        SolveOptions options;
        if (governed) {
            budget.set_deadline_after(std::chrono::hours(1));
            budget.set_max_decisions(1u << 30);
            options.budget = &budget;
        }
        auto result = solve(grounded, options);
        benchmark::DoNotOptimize(result);
    }
    state.SetLabel(governed ? "budget_attached" : "ungoverned");
}
BENCHMARK(BM_CancellationCheckOverhead)->Arg(0)->Arg(1);

// --- CDCL engine: refutation throughput and cross-solve clause reuse -----

/// The ground-once/solve-many shape (docs/solver.md): 48 assumption slots
/// (one scenario each), a choice the solver must refute per solve (the
/// jam-gated pigeonhole contradiction), and positive loops whose cuts are
/// entailed by the base program — everything a persistent solver can keep.
constexpr const char* kAssumptionSweepProgram = R"(
slot(1..48).
{ pin(S) : slot(S) }.
sidx(1..12).
ping(N) :- pong(N), sidx(N).
pong(N) :- ping(N), sidx(N).
ping(N) :- jam, sidx(N).
{ jam }.
pigeon(1..7). hole(1..6).
{ place(P, H) } :- pigeon(P), hole(H).
:- place(P, H), not jam.
placed(P) :- place(P, H).
:- jam, pigeon(P), not placed(P).
:- place(P1, H), place(P2, H), P1 < P2.
boom(S) :- pin(S), not jam.
)";

void BM_CdclVsDpllRefutation(benchmark::State& state) {
    // One cold full enumeration per iteration, every slot pinned off:
    // exhausting the model space forces the jam-gated pigeonhole branch to
    // be refuted, so the run measures each engine's raw search throughput
    // on an identical refutation. Counters report propagations/sec and
    // conflicts/sec.
    auto grounded = ground(parse_program(kAssumptionSweepProgram).value()).value();
    std::vector<std::pair<int, bool>> off;
    for (int id = 0; id < static_cast<int>(grounded.atom_count()); ++id) {
        if (grounded.atom(id).predicate == "pin") off.emplace_back(id, false);
    }
    const SolverEngine engine = state.range(0) != 0 ? SolverEngine::Cdcl : SolverEngine::Dpll;
    std::size_t propagations = 0;
    std::size_t conflicts = 0;
    for (auto _ : state) {
        SolveOptions options;
        options.engine = engine;
        options.assumptions = off;
        auto result = solve(grounded, options);
        benchmark::DoNotOptimize(result);
        propagations += result.value().stats.propagations;
        conflicts += result.value().stats.conflicts;
    }
    state.counters["propagations_per_s"] =
        benchmark::Counter(static_cast<double>(propagations), benchmark::Counter::kIsRate);
    state.counters["conflicts_per_s"] =
        benchmark::Counter(static_cast<double>(conflicts), benchmark::Counter::kIsRate);
    state.SetLabel(engine == SolverEngine::Cdcl ? "cdcl" : "dpll");
}
BENCHMARK(BM_CdclVsDpllRefutation)->Arg(0)->Arg(1);

void BM_AssumptionSweep48(benchmark::State& state) {
    // The sweep idiom end to end: 48 assumption contexts (slot i pinned
    // true, the rest false) solved in sequence. Arg 0: DPLL, a fresh search
    // per context. Arg 1: cold CDCL, completion rebuilt and clauses
    // relearned per context. Arg 2: persistent CDCL (IncrementalSolver) —
    // the completion is built once and entailed clauses learned by earlier
    // contexts propagate for later ones; `reuse_rate` is the fraction of
    // propagations driven by a clause learned in an earlier solve.
    auto grounded = ground(parse_program(kAssumptionSweepProgram).value()).value();
    std::vector<int> pins;
    for (int id = 0; id < static_cast<int>(grounded.atom_count()); ++id) {
        if (grounded.atom(id).predicate == "pin") pins.push_back(id);
    }
    const int mode = static_cast<int>(state.range(0));
    IncrementalSolver warm(grounded);
    std::size_t propagations = 0;
    std::size_t conflicts = 0;
    std::size_t reused = 0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < pins.size(); ++i) {
            SolveOptions options;
            options.engine = mode == 0 ? SolverEngine::Dpll : SolverEngine::Cdcl;
            if (mode == 2) options.incremental = &warm;
            options.assumptions.reserve(pins.size());
            for (std::size_t j = 0; j < pins.size(); ++j) {
                options.assumptions.emplace_back(pins[j], i == j);
            }
            auto result = solve(grounded, options);
            benchmark::DoNotOptimize(result);
            const SolveStats& stats = result.value().stats;
            propagations += stats.propagations;
            conflicts += stats.conflicts;
            reused += stats.reused_clause_propagations;
        }
    }
    state.counters["propagations_per_s"] =
        benchmark::Counter(static_cast<double>(propagations), benchmark::Counter::kIsRate);
    state.counters["conflicts_per_s"] =
        benchmark::Counter(static_cast<double>(conflicts), benchmark::Counter::kIsRate);
    state.counters["reuse_rate"] =
        propagations > 0 ? static_cast<double>(reused) / static_cast<double>(propagations)
                         : 0.0;
    state.SetLabel(mode == 0 ? "dpll" : mode == 1 ? "cdcl_cold" : "cdcl_warm");
}
BENCHMARK(BM_AssumptionSweep48)->Arg(0)->Arg(1)->Arg(2);

void BM_ParseLargeProgram(benchmark::State& state) {
    const std::string text = chain_program(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto program = parse_program(text);
        benchmark::DoNotOptimize(program);
    }
}
BENCHMARK(BM_ParseLargeProgram)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
