// Reproduces Fig. 1 of the paper: the experimental framework, executed
// end-to-end on the case study — system model, candidate mutations,
// reasoning, hazard identification, CEGAR refinement, quantitative risk
// analysis, and mitigation strategy — with per-stage outputs and timings.
#include <chrono>
#include <cstdio>

#include "core/assessment.hpp"
#include "core/watertank.hpp"
#include "security/threat_actor.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

int main() {
    std::printf("== Fig. 1: experimental framework — end-to-end pipeline ==\n\n");

    // 1. System model.
    auto t0 = Clock::now();
    auto built = cprisk::core::WaterTankCaseStudy::build();
    if (!built.ok()) {
        std::printf("build failed: %s\n", built.error().c_str());
        return 1;
    }
    const auto& cs = built.value();
    std::printf("[1] system model            : %zu components, %zu relations  (%.2f ms)\n",
                cs.system.component_count(), cs.system.relation_count(), ms_since(t0));

    // 2. Candidate system mutations.
    t0 = Clock::now();
    cprisk::security::ScenarioSpaceOptions space_options;
    space_options.max_simultaneous_faults = 2;
    const auto space = cprisk::security::ScenarioSpace::build(
        cs.system, cs.matrix, cprisk::security::standard_threat_actors(), space_options);
    std::printf("[2] candidate mutations     : %zu scenarios (%zu distinct mutations)  (%.2f ms)\n",
                space.size(), space.mutation_universe().size(), ms_since(t0));

    // 3-7 via the assessment facade (reasoning, hazard id, refinement, risk,
    // mitigation).
    t0 = Clock::now();
    cprisk::core::RiskAssessment assessment(cs.system, cs.requirements,
                                            cs.topology_requirements, cs.matrix,
                                            cs.mitigations);
    cprisk::core::AssessmentConfig config;
    config.horizon = cs.horizon;
    config.max_simultaneous_faults = 2;
    config.phase_budget = 6;
    auto report = assessment.run(config);
    if (!report.ok()) {
        std::printf("assessment failed: %s\n", report.error().c_str());
        return 1;
    }
    const auto& r = report.value();
    const double total_ms = ms_since(t0);

    std::printf("[3] reasoning               : model + requirements compiled to ASP (temporal "
                "horizon %d)\n", cs.horizon);
    for (const auto& iteration : r.cegar_iterations) {
        std::printf("[4] hazard identification   : stage %-18s %zu candidates -> %zu hazards\n",
                    iteration.stage_name.c_str(), iteration.candidates_in,
                    iteration.hazards_out);
    }
    std::printf("[5] model refinement        : %zu spurious solutions eliminated (CEGAR)\n",
                r.spurious_eliminated);
    std::printf("[6] quantitative risk       : %zu hazards rated (O-RA + IEC 61508)\n",
                r.risks.size());
    std::printf("%s\n", r.risk_table().render().c_str());
    std::printf("[7] mitigation strategy     : cost %lld, residual loss %lld\n",
                static_cast<long long>(r.selection.mitigation_cost),
                static_cast<long long>(r.selection.residual_loss));
    std::printf("%s\n", r.mitigation_table().render().c_str());
    std::printf("pipeline stages 3-7 total   : %.2f ms\n", total_ms);

    // Shape checks: hazards exist, refinement pruned something, a plan came
    // out.
    const bool ok = !r.hazards.empty() && r.spurious_eliminated > 0 &&
                    (!r.selection.chosen.empty() || r.selection.residual_loss == 0);
    std::printf("\nshape check: hazards>0=%d spurious>0=%d plan-proposed=%d -> %s\n",
                !r.hazards.empty(), r.spurious_eliminated > 0, !r.selection.chosen.empty(),
                ok ? "OK" : "FAIL");
    return ok ? 0 : 1;
}
