// EPA scaling: scenario evaluation cost as a function of model size
// (propagation chain length), temporal horizon, and scenario-space size —
// plus the DESIGN.md ablation 4 (topology-only vs behavioural focus cost)
// and the ground-once/solve-many + --jobs sweep (docs/performance.md).
//
// Besides the google-benchmark suites, the binary times the full sweep
// configurations directly and writes the speedup table to BENCH_epa.json
// in the working directory (recorded in EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "asp/asp.hpp"
#include "core/assessment.hpp"
#include "core/loader.hpp"
#include "epa/epa.hpp"
#include "epa/frontier.hpp"
#include "obs/metrics.hpp"
#include "risk/prior.hpp"
#include "security/scenario.hpp"
#include "serve/model_cache.hpp"

namespace {

using namespace cprisk;

model::SystemModel chain_model(int n) {
    model::SystemModel m;
    for (int i = 0; i < n; ++i) {
        model::Component c;
        c.id = "c" + std::to_string(i);
        c.name = c.id;
        c.type = i + 1 == n ? model::ElementType::Equipment : model::ElementType::Controller;
        c.asset_value = i + 1 == n ? qual::Level::VeryHigh : qual::Level::Medium;
        c.fault_modes = {model::FaultMode{"fail", model::FaultEffect::Corruption, "",
                                          qual::Level::Medium, qual::Level::Low}};
        (void)m.add_component(std::move(c));
    }
    for (int i = 0; i + 1 < n; ++i) {
        (void)m.add_relation({"c" + std::to_string(i), "c" + std::to_string(i + 1),
                              model::RelationType::SignalFlow, ""});
    }
    return m;
}

security::AttackScenario head_fault() {
    security::AttackScenario s;
    s.id = "bench";
    s.mutations = {{"c0", "fail"}};
    s.likelihood = qual::Level::Low;
    return s;
}

void BM_EvaluateChain(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    auto m = chain_model(n);
    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Topology;
    options.horizon = n + 1;  // enough steps to traverse the chain
    auto analysis = epa::ErrorPropagationAnalysis::create(
        m, {epa::Requirement::no_error_reaches("c" + std::to_string(n - 1))}, {}, options);
    auto scenario = head_fault();
    for (auto _ : state) {
        auto verdict = analysis.value().evaluate(scenario, {});
        benchmark::DoNotOptimize(verdict);
    }
    state.SetComplexityN(n);
}
BENCHMARK(BM_EvaluateChain)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Complexity();

void BM_HorizonSweep(benchmark::State& state) {
    const int horizon = static_cast<int>(state.range(0));
    auto m = chain_model(6);
    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Topology;
    options.horizon = horizon;
    auto analysis = epa::ErrorPropagationAnalysis::create(
        m, {epa::Requirement::no_error_reaches("c5")}, {}, options);
    auto scenario = head_fault();
    for (auto _ : state) {
        auto verdict = analysis.value().evaluate(scenario, {});
        benchmark::DoNotOptimize(verdict);
    }
}
BENCHMARK(BM_HorizonSweep)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_ScenarioSpaceSweep(benchmark::State& state) {
    // Exhaustive evaluation cost over a growing scenario space
    // (k single-fault scenarios on a fixed chain).
    const int n = 6;
    auto m = chain_model(n);
    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Topology;
    options.horizon = n + 1;
    auto analysis = epa::ErrorPropagationAnalysis::create(
        m, {epa::Requirement::no_error_reaches("c5")}, {}, options);

    const int scenarios = static_cast<int>(state.range(0));
    std::vector<security::AttackScenario> space;
    for (int i = 0; i < scenarios; ++i) {
        security::AttackScenario s;
        s.id = "s" + std::to_string(i);
        s.mutations = {{"c" + std::to_string(i % n), "fail"}};
        space.push_back(std::move(s));
    }
    for (auto _ : state) {
        for (const auto& scenario : space) {
            auto verdict = analysis.value().evaluate(scenario, {});
            benchmark::DoNotOptimize(verdict);
        }
    }
    state.counters["scenarios"] = scenarios;
}
BENCHMARK(BM_ScenarioSpaceSweep)->Arg(4)->Arg(16)->Arg(64);

void BM_FocusAblation_Topology(benchmark::State& state) {
    // Ablation 4a: topology-only analysis of a behaviour-rich model.
    auto m = chain_model(6);
    (void)m.add_behavior("c0", "#program always. alarm :- error(c0).");
    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Topology;
    options.horizon = 7;
    auto analysis = epa::ErrorPropagationAnalysis::create(
        m, {epa::Requirement::no_error_reaches("c5")}, {}, options);
    auto scenario = head_fault();
    for (auto _ : state) {
        auto verdict = analysis.value().evaluate(scenario, {});
        benchmark::DoNotOptimize(verdict);
    }
}
BENCHMARK(BM_FocusAblation_Topology);

void BM_FocusAblation_Behavioral(benchmark::State& state) {
    // Ablation 4b: same model with the behaviour fragments compiled in.
    auto m = chain_model(6);
    (void)m.add_behavior("c0", "#program always. alarm :- error(c0).");
    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Behavioral;
    options.horizon = 7;
    auto analysis = epa::ErrorPropagationAnalysis::create(
        m, {epa::Requirement::no_error_reaches("c5")}, {}, options);
    auto scenario = head_fault();
    for (auto _ : state) {
        auto verdict = analysis.value().evaluate(scenario, {});
        benchmark::DoNotOptimize(verdict);
    }
}
BENCHMARK(BM_FocusAblation_Behavioral);

// --- Ground-once/solve-many + parallel sweep -----------------------------

security::ScenarioSpace sweep_space(int scenarios, int chain) {
    std::vector<security::AttackScenario> list;
    list.reserve(static_cast<std::size_t>(scenarios));
    for (int i = 0; i < scenarios; ++i) {
        security::AttackScenario s;
        s.id = "s" + std::to_string(i);
        s.mutations = {{"c" + std::to_string(i % chain), "fail"}};
        s.likelihood = qual::Level::Low;
        list.push_back(std::move(s));
    }
    return security::ScenarioSpace(std::move(list));
}

void BM_SweepConfig(benchmark::State& state) {
    // range(0): ground_once, range(1): jobs. The (0, 1) point is the
    // pre-cache sequential engine — the speedup baseline.
    const int n = 8;
    auto m = chain_model(n);
    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Topology;
    options.horizon = n + 1;
    options.ground_once = state.range(0) != 0;
    RunContext ctx;
    ctx.jobs = static_cast<std::size_t>(state.range(1));
    options.ctx = &ctx;
    auto analysis = epa::ErrorPropagationAnalysis::create(
        m, {epa::Requirement::no_error_reaches("c" + std::to_string(n - 1))}, {}, options);
    const auto space = sweep_space(48, n);
    for (auto _ : state) {
        auto verdicts = analysis.value().evaluate_all(space, {});
        benchmark::DoNotOptimize(verdicts);
    }
    state.counters["ground_once"] = static_cast<double>(state.range(0));
    state.counters["jobs"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_SweepConfig)
    ->Args({0, 1})  // seed: full per-scenario reground, sequential
    ->Args({1, 1})  // cache alone
    ->Args({1, 2})
    ->Args({1, 4})
    ->Args({1, 8});

/// Wall-clock of one exhaustive sweep under the given configuration. When
/// `ctx` is non-null the run goes through the caller's RunContext (null
/// trace and metrics sinks unless the caller attached some) — the
/// configuration the <2% null-observability overhead budget is measured
/// against. Without one, jobs > 1 builds a local context; jobs == 1 runs on
/// plain options (no context at all) — the uninstrumented baseline arm.
double sweep_seconds(bool ground_once, std::size_t jobs, RunContext* ctx = nullptr,
                     int rounds = 3, bool static_prefilter = true) {
    const int n = 8;
    auto m = chain_model(n);
    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Topology;
    options.horizon = n + 1;
    options.ground_once = ground_once;
    options.static_prefilter = static_prefilter;
    RunContext local;
    if (ctx == nullptr && jobs != 1) ctx = &local;
    if (ctx != nullptr) {
        ctx->jobs = jobs;
        options.ctx = ctx;
    }
    auto analysis = epa::ErrorPropagationAnalysis::create(
        m, {epa::Requirement::no_error_reaches("c" + std::to_string(n - 1))}, {}, options);
    const auto space = sweep_space(48, n);
    (void)analysis.value().evaluate_all(space, {});  // warm-up
    double best = 0.0;
    for (int round = 0; round < rounds; ++round) {
        const auto start = std::chrono::steady_clock::now();
        auto verdicts = analysis.value().evaluate_all(space, {});
        benchmark::DoNotOptimize(verdicts);
        const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
        if (round == 0 || elapsed.count() < best) best = elapsed.count();
    }
    return best;
}

/// Ratio of sweep wall-clock with a null-sink RunContext over plain options
/// (no context at all). The delta isolates the observability
/// instrumentation: the Span/metric enabled() branches and the context
/// accessors, with nobody listening. Budget: < 1.02
/// (docs/observability.md).
double null_obs_overhead() {
    // Interleave A/B rounds so drift (thermal, page cache) hits both arms.
    double plain = 0.0;
    double with_ctx = 0.0;
    for (int round = 0; round < 5; ++round) {
        const double p = sweep_seconds(true, 1, nullptr, 1);
        RunContext ctx;
        const double c = sweep_seconds(true, 1, &ctx, 1);
        if (round == 0 || p < plain) plain = p;
        if (round == 0 || c < with_ctx) with_ctx = c;
    }
    return with_ctx / plain;
}

/// Fraction of the sweep's scenarios the ternary prefilter resolved without
/// a DPLL solve (docs/static-analysis.md), read off the metrics counters of
/// one instrumented sweep.
double static_resolution_fraction() {
    obs::MetricsRegistry metrics;
    RunContext ctx;
    ctx.metrics = &metrics;
    (void)sweep_seconds(true, 1, &ctx, 1);
    const double resolved =
        static_cast<double>(metrics.counter("epa.absint.static_safe").value() +
                            metrics.counter("epa.absint.static_hazard").value());
    const double unknown =
        static_cast<double>(metrics.counter("epa.absint.static_unknown").value());
    const double total = resolved + unknown;
    return total > 0.0 ? resolved / total : 0.0;
}

/// One pruned exhaustive frontier over the full 2^n fault lattice of a
/// negation-free chain (docs/exhaustive-search.md). The chain certifies
/// monotone, so the sweep evaluates the empty set plus the n singletons and
/// prunes everything above them: the pruning ratio candidates/evaluated is
/// 2^n/(n+1), ~3855x at n=16 — the number EXPERIMENTS.md records.
struct FrontierNumbers {
    double seconds = 0.0;
    std::size_t candidates = 0;
    std::size_t evaluated = 0;
    std::size_t pruned = 0;
    std::size_t minimal = 0;
    bool monotone = false;
};

FrontierNumbers frontier_numbers(int n) {
    auto m = chain_model(n);
    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Topology;
    options.horizon = n + 1;
    auto analysis = epa::ErrorPropagationAnalysis::create(
        m, {epa::Requirement::no_error_reaches("c" + std::to_string(n - 1))}, {}, options);
    FrontierNumbers numbers;
    for (int round = 0; round < 3; ++round) {
        const auto start = std::chrono::steady_clock::now();
        auto result = epa::run_frontier(analysis.value(), {});
        const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
        if (!result.ok()) {
            std::fprintf(stderr, "bench_perf_epa: frontier failed: %s\n", result.error().c_str());
            return numbers;
        }
        const epa::FrontierResult& frontier = result.value();
        if (round == 0 || elapsed.count() < numbers.seconds) numbers.seconds = elapsed.count();
        numbers.candidates = frontier.candidates;
        numbers.evaluated = frontier.evaluated;
        numbers.pruned = frontier.pruned;
        numbers.minimal = frontier.minimal_hazards.size();
        numbers.monotone = frontier.certificate.has_value() && frontier.certificate->monotone;
    }
    return numbers;
}

// --- CDCL vs DPLL engines on a search-heavy sweep ------------------------

/// Behaviour fragment that defeats the static prefilter and forces real
/// stable-model search per scenario. Three ingredients:
///
///  - `{ jam }.` — a free choice the ternary analysis cannot decide, so the
///    prefilter leaves every scenario to the solver (static_fraction < 1);
///  - positive loops ping(N)/pong(N) whose only external support is `jam`:
///    when jam is false the loops are supported-but-unfounded, so the DPLL
///    engine enumerates and stability-rejects the candidates on every
///    scenario, while the warm CDCL solver keeps the loop cuts (entailed by
///    the base program) across the whole sweep;
///  - a pigeonhole contradiction gated on `jam` (7 pigeons, 6 holes, places
///    forced empty when jam is off): refuting the jam branch takes real
///    search, which the chronological DPLL engine repeats on all 48
///    scenarios while the CDCL pool's learned lemmas — entailed by the base
///    program, so kept across solves — reduce it to propagation;
///  - `boom` depends on both the injected faults and the choice, so the
///    verdict genuinely needs the solver: the surviving jam-false answer
///    set violates the requirement exactly when a fault is injected.
constexpr const char* kSearchBehavior = R"(
#program base.
sidx(1..12).
ping(N) :- pong(N), sidx(N).
pong(N) :- ping(N), sidx(N).
ping(N) :- jam, sidx(N).
{ jam }.
pigeon(1..7). hole(1..6).
{ place(P, H) } :- pigeon(P), hole(H).
:- place(P, H), not jam.
placed(P) :- place(P, H).
:- jam, pigeon(P), not placed(P).
:- place(P1, H), place(P2, H), P1 < P2.
#program always.
boom :- injected_fault(C, _), not jam.
)";

struct CdclNumbers {
    double dpll_s = 0.0;        ///< steady-state sweep wall-clock, DPLL engine
    double cdcl_s = 0.0;        ///< same sweep, warm CDCL pool
    std::size_t learned = 0;    ///< clauses learned across one cold CDCL sweep
    std::size_t reused = 0;     ///< propagations from clauses learned by earlier scenarios
    double static_fraction = 0.0;  ///< prefilter share on this workload (< 1 by design)
    bool verdicts_match = false;   ///< both engines agreed on all 48 verdicts
};

/// The cdcl block of BENCH_epa.json (docs/solver.md): the same 48-scenario
/// ground-once sweep under both engines, on a workload the static prefilter
/// cannot resolve. The CDCL arm leases warm solvers from the cache's pool,
/// so clauses learned by early scenarios propagate for the remaining ones —
/// `reused` counts exactly those propagations.
CdclNumbers cdcl_numbers() {
    const int n = 8;
    auto m = chain_model(n);
    (void)m.add_behavior("c0", kSearchBehavior);
    const auto space = sweep_space(48, n);
    const std::vector<epa::Requirement> requirements = {
        epa::Requirement::never("rb", "the jammable loop bank must not report boom",
                                asp::parse_atom("boom").value())};

    const auto make_analysis = [&](asp::SolverEngine engine, RunContext* ctx) {
        epa::EpaOptions options;
        options.focus = epa::AnalysisFocus::Behavioral;
        options.horizon = 3;
        options.ground_once = true;
        options.solver = engine;
        options.ctx = ctx;
        return epa::ErrorPropagationAnalysis::create(m, requirements, {}, options);
    };

    CdclNumbers numbers;

    // Stats + agreement from one cold instrumented sweep per engine: the
    // first scenarios learn, the remaining ones reuse, so a single sweep
    // already shows cross-scenario reuse.
    std::vector<epa::ScenarioVerdict> cdcl_verdicts;
    {
        obs::MetricsRegistry metrics;
        RunContext ctx;
        ctx.metrics = &metrics;
        auto analysis = make_analysis(asp::SolverEngine::Cdcl, &ctx);
        auto verdicts = analysis.value().evaluate_all(space, {});
        if (!verdicts.ok()) {
            std::fprintf(stderr, "bench_perf_epa: cdcl sweep failed: %s\n",
                         verdicts.error().c_str());
            return numbers;
        }
        cdcl_verdicts = std::move(verdicts).value();
        for (const epa::ScenarioVerdict& verdict : cdcl_verdicts) {
            numbers.learned += verdict.solver_stats.learned_clauses;
            numbers.reused += verdict.solver_stats.reused_clause_propagations;
        }
        const double resolved =
            static_cast<double>(metrics.counter("epa.absint.static_safe").value() +
                                metrics.counter("epa.absint.static_hazard").value());
        const double unknown =
            static_cast<double>(metrics.counter("epa.absint.static_unknown").value());
        const double total = resolved + unknown;
        numbers.static_fraction = total > 0.0 ? resolved / total : 0.0;
    }
    {
        auto analysis = make_analysis(asp::SolverEngine::Dpll, nullptr);
        auto verdicts = analysis.value().evaluate_all(space, {});
        if (!verdicts.ok()) {
            std::fprintf(stderr, "bench_perf_epa: dpll sweep failed: %s\n",
                         verdicts.error().c_str());
            return numbers;
        }
        numbers.verdicts_match = verdicts.value().size() == cdcl_verdicts.size();
        for (std::size_t i = 0; numbers.verdicts_match && i < cdcl_verdicts.size(); ++i) {
            const epa::ScenarioVerdict& a = cdcl_verdicts[i];
            const epa::ScenarioVerdict& b = verdicts.value()[i];
            numbers.verdicts_match = a.status == b.status &&
                                     a.violated_requirements == b.violated_requirements;
        }
    }

    // Steady-state wall-clock: one warm-up sweep, then best of three. The
    // warm-up also charges the CDCL pool, so the timed rounds measure the
    // persistent-solver regime the daemon and exhaustive sweeps run in.
    for (const asp::SolverEngine engine :
         {asp::SolverEngine::Dpll, asp::SolverEngine::Cdcl}) {
        auto analysis = make_analysis(engine, nullptr);
        (void)analysis.value().evaluate_all(space, {});
        double best = 0.0;
        for (int round = 0; round < 3; ++round) {
            const auto start = std::chrono::steady_clock::now();
            auto verdicts = analysis.value().evaluate_all(space, {});
            benchmark::DoNotOptimize(verdicts);
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - start;
            if (round == 0 || elapsed.count() < best) best = elapsed.count();
        }
        (engine == asp::SolverEngine::Dpll ? numbers.dpll_s : numbers.cdcl_s) = best;
    }
    return numbers;
}

// --- Daemon hot cache: cold vs warm requests, eviction under the cap -----

/// Latency of one daemon-style assess request: ModelCache::acquire plus a
/// RiskAssessment run through the entry's shared ground-once bases — the
/// path `cprisk serve` executes per request (src/serve/server.cpp).
double request_seconds(serve::ModelCache& cache, const std::string& path,
                       const core::AssessmentConfig& config) {
    const auto start = std::chrono::steady_clock::now();
    auto model = cache.acquire(path);
    if (!model.ok()) {
        std::fprintf(stderr, "bench_perf_epa: acquire failed: %s\n", model.error().c_str());
        return 0.0;
    }
    RunContext ctx;
    ctx.base_cache = &model.value()->bases;
    auto report = model.value()->assessment->run(config, ctx);
    benchmark::DoNotOptimize(report);
    if (!report.ok()) {
        std::fprintf(stderr, "bench_perf_epa: assess failed: %s\n", report.error().c_str());
        return 0.0;
    }
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    return elapsed.count();
}

struct ServeNumbers {
    double cold_s = 0.0;    ///< first request on a fresh cache: load + ground + solve
    double warm_s = 0.0;    ///< steady state: cache hit, warm ground-once bases
    double thrash_s = 0.0;  ///< per-request cost while two tenants thrash a 1-entry cap
    std::size_t evictions = 0;
    std::size_t misses = 0;
    std::size_t hits = 0;
};

/// The serve block of BENCH_epa.json (docs/serve.md): warm-hit speedup of
/// the daemon's hot-model cache against a cold request, and the cost of
/// running over the cap. Two tenants share a `--hot-models 1` cache, each
/// issuing two consecutive requests per turn — the realistic burst shape:
/// the first request of a turn misses and evicts the other tenant, the
/// second hits the freshly resident entry, and all of them still succeed.
/// (A strictly alternating loop would report hits == 0 and measure only the
/// degenerate worst case.)
ServeNumbers serve_numbers() {
    const std::string watertank =
        std::string(CPRISK_SOURCE_DIR) + "/examples/models/watertank.cpm";
    const std::string reactor = std::string(CPRISK_SOURCE_DIR) + "/examples/models/reactor.cpm";
    core::AssessmentConfig config;
    config.horizon = 6;
    config.max_simultaneous_faults = 1;

    ServeNumbers numbers;
    // Cold = first request against a fresh cache; warm = repeat requests on
    // the resident entry. Best of three fresh caches / three repeats each.
    for (int round = 0; round < 3; ++round) {
        serve::ModelCache cache(1, 0, nullptr);
        const double cold = request_seconds(cache, watertank, config);
        if (round == 0 || cold < numbers.cold_s) numbers.cold_s = cold;
        for (int repeat = 0; repeat < 3; ++repeat) {
            const double warm = request_seconds(cache, watertank, config);
            if ((round == 0 && repeat == 0) || warm < numbers.warm_s) numbers.warm_s = warm;
        }
    }

    obs::MetricsRegistry metrics;
    serve::ModelCache cache(1, 0, &metrics);
    const auto start = std::chrono::steady_clock::now();
    for (int round = 0; round < 3; ++round) {
        (void)request_seconds(cache, watertank, config);
        (void)request_seconds(cache, watertank, config);  // hit: still resident
        (void)request_seconds(cache, reactor, config);
        (void)request_seconds(cache, reactor, config);  // hit
    }
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    numbers.thrash_s = elapsed.count() / 12.0;
    numbers.evictions =
        static_cast<std::size_t>(metrics.counter("serve.cache.evictions").value());
    numbers.misses = static_cast<std::size_t>(metrics.counter("serve.cache.misses").value());
    numbers.hits = static_cast<std::size_t>(metrics.counter("serve.cache.hits").value());
    if (numbers.hits == 0) {
        std::fprintf(stderr,
                     "bench_perf_epa: serve thrash bench expected warm hits under the "
                     "1-model cap but counted none\n");
    }
    return numbers;
}

// --- Anytime priors: coverage at a 50% evaluation budget -------------------

struct PriorNumbers {
    std::size_t scenarios = 0;
    long long total_micros = 0;        ///< expected-risk mass of the whole space
    long long enumeration_micros = 0;  ///< decided mass at half budget, generation order
    long long priority_micros = 0;     ///< same budget, expected-risk order
    double ratio = 0.0;                ///< priority / enumeration coverage
};

/// The priors block of BENCH_epa.json (docs/quantitative-risk.md): how much
/// expected-risk mass a run interrupted at half the watertank fault space
/// has decided, in generation order vs the expected-risk priority order.
/// Pure scoring arithmetic — no solves — so the ratio is deterministic.
PriorNumbers prior_numbers() {
    PriorNumbers numbers;
    const std::string watertank =
        std::string(CPRISK_SOURCE_DIR) + "/examples/models/watertank.cpm";
    auto bundle = core::load_bundle_file(watertank);
    if (!bundle.ok()) {
        std::fprintf(stderr, "bench_perf_epa: %s\n", bundle.error().c_str());
        return numbers;
    }
    const model::SystemModel& model = bundle.value().model;
    security::ScenarioSpaceOptions options;
    options.include_attack_scenarios = false;
    options.include_vulnerability_scenarios = false;
    options.max_simultaneous_faults = 2;
    const auto matrix = security::AttackMatrix::standard_ics();
    const auto space = security::ScenarioSpace::build(model, matrix, {}, options);
    const risk::ScenarioPriority priority(model, risk::PriorityPolicy::ExpectedRisk);
    std::vector<security::AttackScenario> ordered = space.scenarios();
    priority.order(ordered);

    const std::size_t budget = (space.size() + 1) / 2;
    const auto covered = [&](const std::vector<security::AttackScenario>& scenarios) {
        long long sum = 0;
        for (std::size_t i = 0; i < budget && i < scenarios.size(); ++i) {
            sum += priority.score_micros(scenarios[i]);
        }
        return sum;
    };
    numbers.scenarios = space.size();
    for (const auto& scenario : space.scenarios()) {
        numbers.total_micros += priority.score_micros(scenario);
    }
    numbers.enumeration_micros = covered(space.scenarios());
    numbers.priority_micros = covered(ordered);
    numbers.ratio = numbers.enumeration_micros > 0
                        ? static_cast<double>(numbers.priority_micros) /
                              static_cast<double>(numbers.enumeration_micros)
                        : 0.0;
    if (numbers.ratio < 2.0) {
        std::fprintf(stderr,
                     "bench_perf_epa: priority coverage ratio %.2f below the expected 2x\n",
                     numbers.ratio);
    }
    return numbers;
}

/// Times every sweep configuration and writes BENCH_epa.json.
void write_sweep_json() {
    const double seed = sweep_seconds(false, 1);
    const double cache_only = sweep_seconds(true, 1);
    const double no_prefilter = sweep_seconds(true, 1, nullptr, 3, false);
    const double jobs2 = sweep_seconds(true, 2);
    const double jobs4 = sweep_seconds(true, 4);
    const double jobs8 = sweep_seconds(true, 8);
    const double obs_overhead = null_obs_overhead();
    const double static_fraction = static_resolution_fraction();
    const CdclNumbers cdcl = cdcl_numbers();
    const double cdcl_speedup = cdcl.cdcl_s > 0.0 ? cdcl.dpll_s / cdcl.cdcl_s : 0.0;
    const ServeNumbers serve = serve_numbers();
    const double warm_speedup = serve.warm_s > 0.0 ? serve.cold_s / serve.warm_s : 0.0;
    const FrontierNumbers frontier = frontier_numbers(16);
    const double pruning_ratio =
        frontier.evaluated > 0
            ? static_cast<double>(frontier.candidates) / static_cast<double>(frontier.evaluated)
            : 0.0;
    const PriorNumbers priors = prior_numbers();

    std::FILE* out = std::fopen("BENCH_epa.json", "w");
    if (out == nullptr) {
        std::fprintf(stderr, "bench_perf_epa: cannot write BENCH_epa.json\n");
        return;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"epa_ground_once_parallel_sweep\",\n"
                 "  \"workload\": \"chain(8), topology focus, horizon 9, 48 scenarios\",\n"
                 "  \"seed_reground_jobs1_s\": %.6f,\n"
                 "  \"ground_once_jobs1_s\": %.6f,\n"
                 "  \"ground_once_jobs2_s\": %.6f,\n"
                 "  \"ground_once_jobs4_s\": %.6f,\n"
                 "  \"ground_once_jobs8_s\": %.6f,\n"
                 "  \"speedup_ground_once_alone\": %.2f,\n"
                 "  \"speedup_jobs8_vs_seed\": %.2f,\n"
                 "  \"obs_null_overhead\": %.4f,\n"
                 "  \"absint_prefilter\": {\n"
                 "    \"prefilter_on_jobs1_s\": %.6f,\n"
                 "    \"prefilter_off_jobs1_s\": %.6f,\n"
                 "    \"speedup\": %.2f,\n"
                 "    \"static_fraction\": %.4f\n"
                 "  },\n"
                 "  \"cdcl\": {\n"
                 "    \"workload\": \"chain(8) + choice-gated loop bank, behavioural "
                 "focus, horizon 3, 48 scenarios\",\n"
                 "    \"dpll_jobs1_s\": %.6f,\n"
                 "    \"cdcl_warm_jobs1_s\": %.6f,\n"
                 "    \"speedup\": %.2f,\n"
                 "    \"learned_clauses\": %zu,\n"
                 "    \"reused_propagations\": %zu,\n"
                 "    \"static_fraction\": %.4f,\n"
                 "    \"verdicts_match\": %s\n"
                 "  },\n"
                 "  \"exhaustive_frontier\": {\n"
                 "    \"workload\": \"chain(16), topology focus, horizon 17, full lattice\",\n"
                 "    \"certificate\": \"%s\",\n"
                 "    \"candidates\": %zu,\n"
                 "    \"evaluated\": %zu,\n"
                 "    \"pruned\": %zu,\n"
                 "    \"minimal_hazards\": %zu,\n"
                 "    \"wall_s\": %.6f,\n"
                 "    \"pruning_ratio\": %.2f\n"
                 "  },\n"
                 "  \"priors\": {\n"
                 "    \"workload\": \"watertank.cpm fault combinations, max_faults 2, "
                 "50%% evaluation budget\",\n"
                 "    \"scenarios\": %zu,\n"
                 "    \"total_risk_micros\": %lld,\n"
                 "    \"enumeration_covered_micros\": %lld,\n"
                 "    \"priority_covered_micros\": %lld,\n"
                 "    \"coverage_ratio\": %.2f\n"
                 "  },\n"
                 "  \"serve\": {\n"
                 "    \"workload\": \"watertank.cpm + reactor.cpm, horizon 6, single-fault\",\n"
                 "    \"cold_request_s\": %.6f,\n"
                 "    \"warm_request_s\": %.6f,\n"
                 "    \"warm_speedup\": %.2f,\n"
                 "    \"hot_models_cap\": 1,\n"
                 "    \"thrash_request_s\": %.6f,\n"
                 "    \"evictions\": %zu,\n"
                 "    \"misses\": %zu,\n"
                 "    \"hits\": %zu\n"
                 "  }\n"
                 "}\n",
                 seed, cache_only, jobs2, jobs4, jobs8, seed / cache_only, seed / jobs8,
                 obs_overhead, cache_only, no_prefilter, no_prefilter / cache_only,
                 static_fraction, cdcl.dpll_s, cdcl.cdcl_s, cdcl_speedup, cdcl.learned,
                 cdcl.reused, cdcl.static_fraction, cdcl.verdicts_match ? "true" : "false",
                 frontier.monotone ? "monotone" : "mixed", frontier.candidates,
                 frontier.evaluated, frontier.pruned, frontier.minimal, frontier.seconds,
                 pruning_ratio, priors.scenarios, priors.total_micros,
                 priors.enumeration_micros, priors.priority_micros, priors.ratio,
                 serve.cold_s, serve.warm_s, warm_speedup, serve.thrash_s, serve.evictions,
                 serve.misses, serve.hits);
    std::fclose(out);
    std::printf("BENCH_epa.json: ground-once alone %.2fx, jobs=8 vs seed %.2fx, "
                "null-obs overhead %.4fx, prefilter %.2fx (static fraction %.2f), "
                "cdcl vs dpll %.2fx (%zu reused propagations, verdicts %s), "
                "frontier pruning %.0fx (%zu/%zu), priority coverage %.2fx at half "
                "budget, serve warm hit %.2fx "
                "(%zu evictions, %zu hits under a 1-model cap)\n",
                seed / cache_only, seed / jobs8, obs_overhead, no_prefilter / cache_only,
                static_fraction, cdcl_speedup, cdcl.reused,
                cdcl.verdicts_match ? "match" : "MISMATCH", pruning_ratio,
                frontier.candidates, frontier.evaluated, priors.ratio, warm_speedup,
                serve.evictions, serve.hits);
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    write_sweep_json();
    return 0;
}
