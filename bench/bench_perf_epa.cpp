// EPA scaling: scenario evaluation cost as a function of model size
// (propagation chain length), temporal horizon, and scenario-space size —
// plus the DESIGN.md ablation 4 (topology-only vs behavioural focus cost).
#include <benchmark/benchmark.h>

#include <string>

#include "epa/epa.hpp"

namespace {

using namespace cprisk;

model::SystemModel chain_model(int n) {
    model::SystemModel m;
    for (int i = 0; i < n; ++i) {
        model::Component c;
        c.id = "c" + std::to_string(i);
        c.name = c.id;
        c.type = i + 1 == n ? model::ElementType::Equipment : model::ElementType::Controller;
        c.asset_value = i + 1 == n ? qual::Level::VeryHigh : qual::Level::Medium;
        c.fault_modes = {model::FaultMode{"fail", model::FaultEffect::Corruption, "",
                                          qual::Level::Medium, qual::Level::Low}};
        (void)m.add_component(std::move(c));
    }
    for (int i = 0; i + 1 < n; ++i) {
        (void)m.add_relation({"c" + std::to_string(i), "c" + std::to_string(i + 1),
                              model::RelationType::SignalFlow, ""});
    }
    return m;
}

security::AttackScenario head_fault() {
    security::AttackScenario s;
    s.id = "bench";
    s.mutations = {{"c0", "fail"}};
    s.likelihood = qual::Level::Low;
    return s;
}

void BM_EvaluateChain(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    auto m = chain_model(n);
    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Topology;
    options.horizon = n + 1;  // enough steps to traverse the chain
    auto analysis = epa::ErrorPropagationAnalysis::create(
        m, {epa::Requirement::no_error_reaches("c" + std::to_string(n - 1))}, {}, options);
    auto scenario = head_fault();
    for (auto _ : state) {
        auto verdict = analysis.value().evaluate(scenario, {});
        benchmark::DoNotOptimize(verdict);
    }
    state.SetComplexityN(n);
}
BENCHMARK(BM_EvaluateChain)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Complexity();

void BM_HorizonSweep(benchmark::State& state) {
    const int horizon = static_cast<int>(state.range(0));
    auto m = chain_model(6);
    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Topology;
    options.horizon = horizon;
    auto analysis = epa::ErrorPropagationAnalysis::create(
        m, {epa::Requirement::no_error_reaches("c5")}, {}, options);
    auto scenario = head_fault();
    for (auto _ : state) {
        auto verdict = analysis.value().evaluate(scenario, {});
        benchmark::DoNotOptimize(verdict);
    }
}
BENCHMARK(BM_HorizonSweep)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_ScenarioSpaceSweep(benchmark::State& state) {
    // Exhaustive evaluation cost over a growing scenario space
    // (k single-fault scenarios on a fixed chain).
    const int n = 6;
    auto m = chain_model(n);
    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Topology;
    options.horizon = n + 1;
    auto analysis = epa::ErrorPropagationAnalysis::create(
        m, {epa::Requirement::no_error_reaches("c5")}, {}, options);

    const int scenarios = static_cast<int>(state.range(0));
    std::vector<security::AttackScenario> space;
    for (int i = 0; i < scenarios; ++i) {
        security::AttackScenario s;
        s.id = "s" + std::to_string(i);
        s.mutations = {{"c" + std::to_string(i % n), "fail"}};
        space.push_back(std::move(s));
    }
    for (auto _ : state) {
        for (const auto& scenario : space) {
            auto verdict = analysis.value().evaluate(scenario, {});
            benchmark::DoNotOptimize(verdict);
        }
    }
    state.counters["scenarios"] = scenarios;
}
BENCHMARK(BM_ScenarioSpaceSweep)->Arg(4)->Arg(16)->Arg(64);

void BM_FocusAblation_Topology(benchmark::State& state) {
    // Ablation 4a: topology-only analysis of a behaviour-rich model.
    auto m = chain_model(6);
    (void)m.add_behavior("c0", "#program always. alarm :- error(c0).");
    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Topology;
    options.horizon = 7;
    auto analysis = epa::ErrorPropagationAnalysis::create(
        m, {epa::Requirement::no_error_reaches("c5")}, {}, options);
    auto scenario = head_fault();
    for (auto _ : state) {
        auto verdict = analysis.value().evaluate(scenario, {});
        benchmark::DoNotOptimize(verdict);
    }
}
BENCHMARK(BM_FocusAblation_Topology);

void BM_FocusAblation_Behavioral(benchmark::State& state) {
    // Ablation 4b: same model with the behaviour fragments compiled in.
    auto m = chain_model(6);
    (void)m.add_behavior("c0", "#program always. alarm :- error(c0).");
    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Behavioral;
    options.horizon = 7;
    auto analysis = epa::ErrorPropagationAnalysis::create(
        m, {epa::Requirement::no_error_reaches("c5")}, {}, options);
    auto scenario = head_fault();
    for (auto _ : state) {
        auto verdict = analysis.value().evaluate(scenario, {});
        benchmark::DoNotOptimize(verdict);
    }
}
BENCHMARK(BM_FocusAblation_Behavioral);

}  // namespace

BENCHMARK_MAIN();
