// Reproduces Fig. 3 of the paper: the hierarchical evaluation matrix (asset
// refinements x threat refinements) and its three evaluation focuses, run on
// the case study. Shows how the CEGAR pipeline shrinks the abstract hazard
// set without losing any confirmed hazard, and how focus 3 attaches a
// mitigation plan.
#include <cstdio>

#include "core/watertank.hpp"
#include "hierarchy/evaluation_matrix.hpp"
#include "security/threat_actor.hpp"

int main() {
    std::printf("== Fig. 3: hierarchical evaluation ==\n\n");
    std::printf("%s\n", cprisk::hierarchy::evaluation_matrix_table().render().c_str());

    auto built = cprisk::core::WaterTankCaseStudy::build();
    if (!built.ok()) {
        std::printf("build failed: %s\n", built.error().c_str());
        return 1;
    }
    const auto& cs = built.value();

    // Refined variant of the model (Fig. 4 asset refinement applied).
    auto refined = cs.system;
    auto applied = refined.refine(cprisk::core::WaterTankCaseStudy::workstation_refinement());
    if (!applied.ok()) {
        std::printf("refinement failed: %s\n", applied.error().c_str());
        return 1;
    }

    cprisk::security::ScenarioSpaceOptions space_options;
    space_options.max_simultaneous_faults = 2;
    space_options.include_attack_scenarios = false;
    const auto space = cprisk::security::ScenarioSpace::build(
        cs.system, cs.matrix, cprisk::security::standard_threat_actors(), space_options);

    cprisk::hierarchy::HierarchicalConfig config;
    config.abstract_model = &cs.system;
    config.abstract_requirements = cs.topology_requirements;
    config.detailed_requirements = cs.requirements;
    config.horizon = cs.horizon;

    auto result = cprisk::hierarchy::run_hierarchical_evaluation(config, space, cs.matrix,
                                                                 cs.mitigations);
    if (!result.ok()) {
        std::printf("hierarchical evaluation failed: %s\n", result.error().c_str());
        return 1;
    }
    const auto& r = result.value();

    std::printf("scenario space: %zu scenarios\n\n", space.size());
    for (const auto& iteration : r.cegar.iterations) {
        std::printf("  %-22s candidates in: %3zu   hazards out: %3zu   spurious eliminated: "
                    "%zu\n",
                    iteration.stage_name.c_str(), iteration.candidates_in, iteration.hazards_out,
                    iteration.spurious_eliminated);
    }
    std::printf("\nfocus 1 (topology-based propagation) : %zu candidate hazards\n",
                r.focus1_hazards);
    std::printf("focus 2 (detailed propagation)       : %zu confirmed hazards\n",
                r.focus2_hazards);
    std::printf("spurious solutions eliminated        : %zu\n", r.spurious_eliminated);
    std::printf("focus 3 (mitigation plan)            : {");
    for (std::size_t i = 0; i < r.mitigation_plan.chosen.size(); ++i) {
        std::printf("%s%s", i > 0 ? ", " : "", r.mitigation_plan.chosen[i].c_str());
    }
    std::printf("} cost=%lld residual=%lld\n",
                static_cast<long long>(r.mitigation_plan.mitigation_cost),
                static_cast<long long>(r.mitigation_plan.residual_loss));

    std::printf("\nconfirmed hazards after refinement:\n");
    for (const auto& hazard : r.cegar.confirmed) {
        std::printf("  %-6s severity=%s violations:", hazard.scenario_id.c_str(),
                    std::string(cprisk::qual::to_short_string(hazard.severity)).c_str());
        for (const auto& req : hazard.violated_requirements) std::printf(" %s", req.c_str());
        std::printf("\n");
    }

    // Shape checks: abstraction over-approximates (focus1 >= focus2), some
    // spurious candidates were eliminated, focus2 found real hazards.
    const bool shape_ok = r.focus1_hazards >= r.focus2_hazards && r.spurious_eliminated > 0 &&
                          r.focus2_hazards > 0;
    std::printf("\nshape check: focus1>=focus2=%d spurious>0=%d focus2>0=%d -> %s\n",
                r.focus1_hazards >= r.focus2_hazards, r.spurious_eliminated > 0,
                r.focus2_hazards > 0, shape_ok ? "OK" : "FAIL");
    return shape_ok ? 0 : 1;
}
