// Mitigation optimizer scaling and the DESIGN.md ablation 1: exact
// branch-and-bound vs the ASP weak-constraint encoding on the same problem
// family, with and without budget constraints.
#include <benchmark/benchmark.h>

#include <string>

#include "mitigation/optimizer.hpp"

namespace {

using namespace cprisk::mitigation;

/// Deterministic pseudo-random problem: m mitigations, t threats.
MitigationProblem generated(int mitigations, int threats, int seed = 7) {
    MitigationProblem problem;
    for (int i = 0; i < mitigations; ++i) {
        problem.candidates.push_back(
            Candidate{"m" + std::to_string(i), "M" + std::to_string(i),
                      1 + (seed * 5 + i * 3) % 7});
    }
    for (int t = 0; t < threats; ++t) {
        Threat threat;
        threat.scenario_id = "t" + std::to_string(t);
        threat.loss = 10 + (seed * 13 + t * 17) % 60;
        const int mutations = 1 + (t + seed) % 3;
        for (int u = 0; u < mutations; ++u) {
            std::vector<std::string> covers;
            for (int i = 0; i < mitigations; ++i) {
                if ((seed + t * 3 + u * 5 + i) % 3 == 0) {
                    covers.push_back("m" + std::to_string(i));
                }
            }
            if (covers.empty()) covers.push_back("m" + std::to_string((t + u) % mitigations));
            threat.mutation_covers.push_back(std::move(covers));
        }
        problem.threats.push_back(std::move(threat));
    }
    return problem;
}

void BM_ExactUnconstrained(benchmark::State& state) {
    auto problem = generated(static_cast<int>(state.range(0)), 12);
    for (auto _ : state) {
        auto selection = optimize_exact(problem);
        benchmark::DoNotOptimize(selection);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExactUnconstrained)->Arg(6)->Arg(10)->Arg(14)->Arg(18)->Complexity();

void BM_ExactWithBudget(benchmark::State& state) {
    auto problem = generated(static_cast<int>(state.range(0)), 12);
    OptimizerOptions options;
    options.budget = 10;
    for (auto _ : state) {
        auto selection = optimize_exact(problem, options);
        benchmark::DoNotOptimize(selection);
    }
}
BENCHMARK(BM_ExactWithBudget)->Arg(6)->Arg(10)->Arg(14)->Arg(18);

void BM_AspEngine(benchmark::State& state) {
    // Ablation 1: the same problems through the embedded ASP engine
    // (declarative encoding + weak-constraint branch & bound).
    auto problem = generated(static_cast<int>(state.range(0)), 12);
    for (auto _ : state) {
        auto selection = optimize_asp(problem);
        benchmark::DoNotOptimize(selection);
    }
}
BENCHMARK(BM_AspEngine)->Arg(6)->Arg(8)->Arg(10);

void BM_ThreatSweep(benchmark::State& state) {
    auto problem = generated(10, static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto selection = optimize_exact(problem);
        benchmark::DoNotOptimize(selection);
    }
}
BENCHMARK(BM_ThreatSweep)->Arg(8)->Arg(32)->Arg(128);

void BM_MultiPhasePlanning(benchmark::State& state) {
    auto problem = generated(static_cast<int>(state.range(0)), 16);
    for (auto _ : state) {
        auto phases = plan_phases(problem, /*budget_per_phase=*/8);
        benchmark::DoNotOptimize(phases);
    }
}
BENCHMARK(BM_MultiPhasePlanning)->Arg(6)->Arg(10)->Arg(14);

}  // namespace

int main(int argc, char** argv) {
    // Ablation sanity printed once: the two engines agree on the optimum.
    {
        auto problem = generated(8, 10);
        auto exact = optimize_exact(problem);
        auto asp = optimize_asp(problem);
        std::printf("ablation check (m=8, t=10): exact total=%lld, ASP total=%lld -> %s\n",
                    static_cast<long long>(exact.total_cost()),
                    asp.ok() ? static_cast<long long>(asp.value().total_cost()) : -1,
                    asp.ok() && asp.value().total_cost() == exact.total_cost() ? "AGREE"
                                                                               : "DISAGREE");
    }
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
