// Reproduces Table I of the paper: the O-RA 5x5 risk matrix (LM x LEF).
// Self-checking: exits non-zero if any cell deviates from the table as
// printed in the paper.
#include <cstdio>
#include <string>

#include "risk/ora.hpp"

namespace {

using cprisk::qual::Level;
using cprisk::qual::to_short_string;

// Table I as printed (rows LM descending VH..VL; columns LEF VL..VH).
constexpr const char* kExpected[5][5] = {
    {"M", "H", "VH", "VH", "VH"},   // LM = VH
    {"L", "M", "H", "VH", "VH"},    // LM = H
    {"VL", "L", "M", "H", "VH"},    // LM = M
    {"VL", "VL", "L", "M", "H"},    // LM = L
    {"VL", "VL", "VL", "L", "M"},   // LM = VL
};

}  // namespace

int main() {
    std::printf("== Table I: O-RA risk matrix (Risk = f(LM, LEF)) ==\n\n");
    std::printf("%s\n", cprisk::risk::ora_risk_matrix().render().render().c_str());

    int mismatches = 0;
    for (int row = 0; row < 5; ++row) {
        const Level lm = cprisk::qual::level_from_index(4 - row);
        for (int col = 0; col < 5; ++col) {
            const Level lef = cprisk::qual::level_from_index(col);
            const std::string got(to_short_string(cprisk::risk::ora_risk(lm, lef)));
            if (got != kExpected[row][col]) {
                std::printf("MISMATCH at LM=%s LEF=%s: paper=%s ours=%s\n",
                            std::string(to_short_string(lm)).c_str(),
                            std::string(to_short_string(lef)).c_str(), kExpected[row][col],
                            got.c_str());
                ++mismatches;
            }
        }
    }
    std::printf("paper-vs-ours: %d/25 cells match%s\n", 25 - mismatches,
                mismatches == 0 ? " (exact reproduction)" : "");
    std::printf("matrix monotone in both attributes: %s\n",
                cprisk::risk::ora_risk_matrix().is_monotone() ? "yes" : "NO");
    return mismatches == 0 ? 0 : 1;
}
