// Reproduces Fig. 2 of the paper: the O-RA risk attribute taxonomy. Prints
// the factor tree, derives Risk from the leaves on representative scenario
// profiles (with the per-step explanations the paper's SME audience needs),
// and runs the paper's §V-A sensitivity examples on the uncertain factors.
#include <cstdio>

#include "risk/ora.hpp"
#include "uncertainty/sensitivity.hpp"

namespace {

using cprisk::qual::Level;
using cprisk::qual::LevelRange;
using cprisk::risk::RiskCalculus;
using cprisk::risk::RiskInputs;

void print_tree() {
    std::printf(
        "Risk\n"
        "|- Loss Event Frequency (LEF)\n"
        "|  |- Threat Event Frequency (TEF)\n"
        "|  |  |- Contact Frequency (CF)\n"
        "|  |  `- Probability of Action (PoA)\n"
        "|  `- Vulnerability (Vuln)\n"
        "|     |- Threat Capability (TCap)\n"
        "|     `- Resistance Strength (RS)\n"
        "`- Loss Magnitude (LM)\n"
        "   |- Primary Loss (PL)\n"
        "   `- Secondary Loss (SL)\n\n");
}

int check(bool condition, const char* what) {
    std::printf("  check: %-55s %s\n", what, condition ? "OK" : "FAIL");
    return condition ? 0 : 1;
}

}  // namespace

int main() {
    std::printf("== Fig. 2: risk attributes of the Open FAIR / O-RA standard ==\n\n");
    print_tree();

    const auto calculus = RiskCalculus::standard();
    int failures = 0;

    struct Profile {
        const char* name;
        RiskInputs inputs;
    };
    auto inputs = [](Level cf, Level poa, Level tcap, Level rs, Level pl, Level sl) {
        RiskInputs in;
        in.contact_frequency = cf;
        in.probability_of_action = poa;
        in.threat_capability = tcap;
        in.resistance_strength = rs;
        in.primary_loss = pl;
        in.secondary_loss = sl;
        return in;
    };
    const Profile profiles[] = {
        {"opportunistic scan of a public service",
         inputs(Level::VeryHigh, Level::Medium, Level::Low, Level::Medium, Level::Low,
                Level::VeryLow)},
        {"targeted intrusion on the engineering workstation",
         inputs(Level::High, Level::VeryHigh, Level::High, Level::Low, Level::VeryHigh,
                Level::Medium)},
        {"insider misuse of the control network",
         inputs(Level::Medium, Level::Low, Level::Medium, Level::Medium, Level::High,
                Level::High)},
    };

    for (const Profile& profile : profiles) {
        const auto derivation = calculus.derive(profile.inputs);
        std::printf("profile: %s\n", profile.name);
        for (const auto& step : derivation.explanation) std::printf("  %s\n", step.c_str());
        std::printf("\n");
    }

    // Shape check: the targeted intrusion dominates the opportunistic scan.
    const auto scan = calculus.derive(profiles[0].inputs);
    const auto targeted = calculus.derive(profiles[1].inputs);
    failures += check(targeted.risk > scan.risk,
                      "targeted intrusion rated above opportunistic scan");
    failures += check(targeted.risk >= Level::High, "targeted intrusion at least High");

    // The paper's §V-A sensitivity examples over Fig. 2 factors.
    std::printf("\nsensitivity analysis (paper §V-A examples):\n");
    const auto insensitive = cprisk::uncertainty::ora_sensitivity(
        LevelRange(Level::VeryLow, Level::Low), LevelRange(Level::Low), true);
    std::printf("  %s\n", insensitive.to_string().c_str());
    failures += check(!insensitive.sensitive, "LM in [VL..L] at LEF=L is insensitive");

    const auto sensitive = cprisk::uncertainty::ora_sensitivity(
        LevelRange(Level::Low, Level::VeryHigh), LevelRange(Level::Low), true);
    std::printf("  %s\n", sensitive.to_string().c_str());
    failures += check(sensitive.sensitive, "LM in [L..VH] at LEF=L is sensitive");

    // Full-leaf uncertain derivation.
    cprisk::uncertainty::UncertainRiskInputs uncertain;
    uncertain.threat_capability = LevelRange(Level::Medium, Level::VeryHigh);
    uncertain.primary_loss = LevelRange(Level::High, Level::VeryHigh);
    const auto report = cprisk::uncertainty::analyze_risk_sensitivity(calculus, uncertain);
    std::printf("\nfactor-by-factor sensitivity of the final Risk:\n");
    for (const auto& factor : report.factors) std::printf("  %s\n", factor.to_string().c_str());
    std::printf("joint risk range over all uncertain leaves: [%s..%s]\n",
                std::string(cprisk::qual::to_short_string(report.risk_range.lo)).c_str(),
                std::string(cprisk::qual::to_short_string(report.risk_range.hi)).c_str());

    std::printf("\n%s\n", failures == 0 ? "all shape checks passed" : "SHAPE CHECKS FAILED");
    return failures == 0 ? 0 : 1;
}
