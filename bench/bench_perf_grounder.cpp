// Grounder ordering ablation: SCC-ordered bottom-up grounding
// (GrounderOptions::scc_order, analysis/dependency_graph.hpp) against the
// global fixpoint, on the shapes that separate them — deeply stratified
// layer chains (the global fixpoint re-scans every rule each round), the
// unrolled case-study bundles, and a flat fact base (where ordering cannot
// help and must not hurt).
#include <benchmark/benchmark.h>

#include <string>

#include "asp/grounder.hpp"
#include "asp/parser.hpp"
#include "asp/temporal.hpp"
#include "core/loader.hpp"
#include "epa/epa.hpp"
#include "security/attack_matrix.hpp"

namespace {

using namespace cprisk;
using namespace cprisk::asp;

GrounderOptions options_for(bool scc_order) {
    GrounderOptions options;
    options.scc_order = scc_order;
    return options;
}

/// `layers` strata, each derived from the previous through negation of a
/// sibling, over a domain of `width` constants. The global fixpoint grounds
/// every layer's rules in every round (O(layers) rounds); SCC order visits
/// each layer once.
std::string layered_program(int layers, int width) {
    std::string text = "d0(1.." + std::to_string(width) + ").\n";
    for (int layer = 1; layer <= layers; ++layer) {
        const std::string prev = "d" + std::to_string(layer - 1);
        const std::string cur = "d" + std::to_string(layer);
        text += cur + "(X) :- " + prev + "(X), not blocked" + std::to_string(layer) + "(X).\n";
        text += "blocked" + std::to_string(layer) + "(X) :- " + prev + "(X), X > " +
                std::to_string(width) + ".\n";
    }
    text += "#show d" + std::to_string(layers) + "/1.\n";
    return text;
}

void BM_GroundLayeredChain(benchmark::State& state) {
    const int layers = static_cast<int>(state.range(0));
    auto program = parse_program(layered_program(layers, 40)).value();
    const bool scc_order = state.range(1) != 0;
    for (auto _ : state) {
        auto grounded = ground(program, options_for(scc_order));
        benchmark::DoNotOptimize(grounded);
    }
    state.SetLabel(scc_order ? "scc_order" : "global_fixpoint");
    state.SetComplexityN(layers);
}
BENCHMARK(BM_GroundLayeredChain)
    ->Args({8, 1})->Args({8, 0})
    ->Args({16, 1})->Args({16, 0})
    ->Args({32, 1})->Args({32, 0})
    ->Args({64, 1})->Args({64, 0});

void BM_GroundTransitiveClosure(benchmark::State& state) {
    // One big recursive SCC: both paths must iterate it to the same
    // fixpoint, so SCC order can only save the non-recursive rules.
    const int n = static_cast<int>(state.range(0));
    std::string text = "edge(0,1).\n";
    for (int i = 1; i < n; ++i) {
        text += "edge(" + std::to_string(i) + "," + std::to_string(i + 1) + ").\n";
    }
    text += "reach(X,Y) :- edge(X,Y).\nreach(X,Z) :- reach(X,Y), edge(Y,Z).\n";
    auto program = parse_program(text).value();
    const bool scc_order = state.range(1) != 0;
    for (auto _ : state) {
        auto grounded = ground(program, options_for(scc_order));
        benchmark::DoNotOptimize(grounded);
    }
    state.SetLabel(scc_order ? "scc_order" : "global_fixpoint");
}
BENCHMARK(BM_GroundTransitiveClosure)->Args({32, 1})->Args({32, 0})->Args({64, 1})->Args({64, 0});

void BM_GroundFactsOnly(benchmark::State& state) {
    // Flat fact base: no dependencies at all. Measures the overhead of
    // building the dependency graph when it cannot pay off.
    const int n = static_cast<int>(state.range(0));
    std::string text;
    for (int i = 0; i < n; ++i) text += "f(" + std::to_string(i) + ", a, b).\n";
    auto program = parse_program(text).value();
    const bool scc_order = state.range(1) != 0;
    for (auto _ : state) {
        auto grounded = ground(program, options_for(scc_order));
        benchmark::DoNotOptimize(grounded);
    }
    state.SetLabel(scc_order ? "scc_order" : "global_fixpoint");
}
BENCHMARK(BM_GroundFactsOnly)->Args({512, 1})->Args({512, 0});

/// The real workload: a case-study bundle's EPA base program unrolled to
/// `horizon` (facts + propagation rules + requirement automata).
Program bundle_program(const std::string& relative_path, int horizon) {
    auto bundle = core::load_bundle_file(std::string(CPRISK_SOURCE_DIR) + relative_path).value();
    const auto mitigations = epa::MitigationMap::from_attack_matrix(
        bundle.model, security::AttackMatrix::standard_ics());
    epa::EpaOptions epa_options;
    epa_options.focus = epa::AnalysisFocus::Behavioral;
    epa_options.horizon = horizon;
    auto analysis = epa::ErrorPropagationAnalysis::create(
        bundle.model, bundle.effective_behavioral(), mitigations, epa_options).value();
    UnrollOptions unroll_options;
    unroll_options.horizon = horizon;
    return unroll(analysis.base_program(), unroll_options).value();
}

void BM_GroundWatertankBundle(benchmark::State& state) {
    const Program program = bundle_program("/examples/models/watertank.cpm", 6);
    const bool scc_order = state.range(0) != 0;
    for (auto _ : state) {
        auto grounded = ground(program, options_for(scc_order));
        benchmark::DoNotOptimize(grounded);
    }
    state.SetLabel(scc_order ? "scc_order" : "global_fixpoint");
}
BENCHMARK(BM_GroundWatertankBundle)->Arg(1)->Arg(0);

void BM_GroundReactorBundle(benchmark::State& state) {
    const Program program = bundle_program("/examples/models/reactor.cpm", 7);
    const bool scc_order = state.range(0) != 0;
    for (auto _ : state) {
        auto grounded = ground(program, options_for(scc_order));
        benchmark::DoNotOptimize(grounded);
    }
    state.SetLabel(scc_order ? "scc_order" : "global_fixpoint");
}
BENCHMARK(BM_GroundReactorBundle)->Arg(1)->Arg(0);

}  // namespace

BENCHMARK_MAIN();
