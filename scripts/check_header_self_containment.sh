#!/usr/bin/env bash
# Verifies that every public header reachable from the umbrella header
# (src/cprisk.hpp) is self-contained: each one must compile as its own
# translation unit, without relying on includes a previous header happened
# to pull in. Run from the repository root; exits non-zero naming every
# header that fails.
set -u

cxx="${CXX:-g++}"
flags=(-std=c++20 -Wall -Wextra -Werror -fsyntax-only -Isrc)

# The reachable set = cprisk.hpp itself plus every src/ header the
# preprocessor visits from it.
mapfile -t headers < <(
  "$cxx" -std=c++20 -Isrc -MM -MT x src/cprisk.hpp |
    tr ' \\' '\n\n' | grep '^src/.*\.hpp$' | sort -u
)

if [ "${#headers[@]}" -eq 0 ]; then
  echo "error: could not enumerate headers reachable from src/cprisk.hpp" >&2
  exit 2
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

failed=()
for header in "${headers[@]}"; do
  tu="$tmpdir/tu.cpp"
  printf '#include "%s"\n' "${header#src/}" > "$tu"
  if ! "$cxx" "${flags[@]}" "$tu" 2> "$tmpdir/log"; then
    failed+=("$header")
    echo "NOT SELF-CONTAINED: $header"
    sed 's/^/    /' "$tmpdir/log" | head -20
  fi
done

echo "checked ${#headers[@]} headers, ${#failed[@]} failure(s)"
[ "${#failed[@]}" -eq 0 ]
