#!/usr/bin/env python3
"""Chaos harness for the cprisk assessment daemon (docs/serve.md).

Drives a real `cprisk serve` process — not the in-process Server used by the
unit tests — through the failure modes the daemon promises to survive:

  * every serve.* fault seam armed while concurrent clients hammer it,
  * SIGTERM landing mid-flight (graceful drain) and a second SIGTERM
    escalating to hard cancellation,
  * a client that vanishes with requests still in flight.

Invariants checked on every round: each reply any client receives is one
well-formed JSON object that echoes the request id and carries an `ok`
flag (failures also carry error.code); the daemon exits 0 within the
timeout; the socket file is gone afterwards.

Usage: serve_chaos.py /path/to/cprisk [--model bundle.cpm]
"""

import argparse
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

CLIENTS = 4
REQUESTS = 6
FAULT_SITES = [
    None,  # baseline: no fault armed
    "serve.accept",
    "serve.read",
    "serve.dispatch",
    "serve.evict",
    "serve.drain",
    "asp.solver.solve",
]


class Failure(Exception):
    pass


def default_model():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(root, "examples", "models", "watertank.cpm")


class Daemon:
    """One `cprisk serve` process bound to a throwaway socket."""

    def __init__(self, binary, workdir, chaos=True, drain_ms=10000):
        self.socket_path = os.path.join(workdir, "cprisk.sock")
        argv = [
            binary, "serve", "--socket", self.socket_path,
            "--executors", "2", "--max-inflight", "4", "--hot-models", "1",
            "--drain-ms", str(drain_ms),
        ]
        if chaos:
            argv.append("--chaos")
        self.proc = subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        # cmd_serve prints (and flushes) the readiness marker once bound.
        line = self.proc.stdout.readline()
        if "listening on" not in line:
            raise Failure(f"daemon did not come up: {line!r}")

    def signal(self, sig):
        self.proc.send_signal(sig)

    def finish(self, timeout=30):
        """Waits for exit; returns the process exit code."""
        try:
            self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            raise Failure("daemon did not exit within the drain timeout")
        finally:
            self.proc.stdout.close()
        return self.proc.returncode


class Client:
    def __init__(self, path):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(30)
        self.sock.connect(path)
        self.buffer = b""

    def send(self, obj):
        try:
            self.sock.sendall((json.dumps(obj) + "\n").encode())
            return True
        except OSError:
            return False  # daemon hung up: allowed under chaos

    def read_line(self):
        """Next reply line, or None on clean close/timeout."""
        while b"\n" not in self.buffer:
            try:
                chunk = self.sock.recv(4096)
            except OSError:
                return None
            if not chunk:
                return None
            self.buffer += chunk
        line, self.buffer = self.buffer.split(b"\n", 1)
        return line.decode()

    def close(self):
        self.sock.close()


def validate_reply(line, sent_ids):
    reply = json.loads(line)  # raises on malformed output = test failure
    if not isinstance(reply, dict):
        raise Failure(f"reply is not an object: {line}")
    if "ok" not in reply:
        raise Failure(f"reply lacks ok flag: {line}")
    if reply.get("id") and reply["id"] not in sent_ids:
        raise Failure(f"reply echoes an id never sent: {line}")
    if reply["ok"] is False:
        code = reply.get("error", {}).get("code")
        if not code:
            raise Failure(f"failure reply lacks error.code: {line}")


def client_round(tag, path, model, replies, errors):
    """One client: mixed ops, collect every reply until close."""
    try:
        client = Client(path)
    except OSError:
        return  # connection refused mid-drain / accept fault: allowed
    sent = []
    for r in range(REQUESTS):
        rid = f"{tag}-{r}"
        if r % 3 == 1:
            request = {"id": rid, "op": "ping"}
        elif r % 3 == 2:
            request = {"id": rid, "op": "metrics"}
        else:
            request = {"id": rid, "op": "assess", "model": model,
                       "config": {"horizon": 4}}
        if not client.send(request):
            break
        sent.append(rid)
    try:
        for _ in sent:
            line = client.read_line()
            if line is None:
                break  # clean close: allowed
            validate_reply(line, set(sent))
            replies.append(line)
    except Exception as error:  # validation failures propagate to main
        errors.append(f"{tag}: {error}")
    finally:
        client.close()


def run_clients(daemon, model, prefix):
    replies, errors, threads = [], [], []
    for c in range(CLIENTS):
        thread = threading.Thread(
            target=client_round,
            args=(f"{prefix}-c{c}", daemon.socket_path, model, replies, errors))
        thread.start()
        threads.append(thread)
    return replies, errors, threads


def arm(daemon, site):
    client = Client(daemon.socket_path)
    client.send({"id": "arm", "op": "fault", "site": site, "countdown": 3})
    line = client.read_line()
    client.close()
    reply = json.loads(line)
    if not reply.get("ok"):
        raise Failure(f"arming {site} failed: {line}")


def expect_gone(daemon):
    if os.path.exists(daemon.socket_path):
        raise Failure("socket file survived shutdown")


def scenario_fault_sweep(binary, model, workdir, site):
    daemon = Daemon(binary, workdir)
    if site:
        arm(daemon, site)
    replies, errors, threads = run_clients(daemon, model, site or "baseline")
    time.sleep(0.05)  # land the signal while requests are in flight
    daemon.signal(signal.SIGTERM)
    for thread in threads:
        thread.join()
    code = daemon.finish()
    if errors:
        raise Failure("; ".join(errors))
    if code != 0:
        raise Failure(f"daemon exited {code}")
    expect_gone(daemon)
    return len(replies)


def scenario_double_sigterm(binary, model, workdir):
    # A generous drain deadline that the second signal must cut short.
    daemon = Daemon(binary, workdir, drain_ms=60000)
    replies, errors, threads = run_clients(daemon, model, "hard")
    time.sleep(0.05)
    daemon.signal(signal.SIGTERM)
    time.sleep(0.05)
    daemon.signal(signal.SIGTERM)  # escalates to hard cancel
    for thread in threads:
        thread.join()
    code = daemon.finish()
    if errors:
        raise Failure("; ".join(errors))
    if code != 0:
        raise Failure(f"daemon exited {code}")
    expect_gone(daemon)
    return len(replies)


def scenario_abrupt_disconnect(binary, model, workdir):
    daemon = Daemon(binary, workdir)
    # The vanishing client leaves a deep request in flight and hangs up.
    vanishing = Client(daemon.socket_path)
    vanishing.send({"id": "gone", "op": "assess", "model": model,
                    "config": {"horizon": 10}})
    vanishing.close()
    # The daemon must keep serving others afterwards.
    survivor = Client(daemon.socket_path)
    survivor.send({"id": "alive", "op": "ping"})
    line = survivor.read_line()
    survivor.close()
    if line is None or not json.loads(line).get("ok"):
        raise Failure(f"daemon unresponsive after abrupt disconnect: {line!r}")
    daemon.signal(signal.SIGTERM)
    code = daemon.finish()
    if code != 0:
        raise Failure(f"daemon exited {code}")
    expect_gone(daemon)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binary", help="path to the cprisk binary")
    parser.add_argument("--model", default=default_model(),
                        help="model bundle assess requests load")
    args = parser.parse_args()

    failures = 0
    for site in FAULT_SITES:
        name = f"fault-sweep[{site or 'baseline'}]"
        workdir = tempfile.mkdtemp(prefix="cprisk-chaos-")
        try:
            count = scenario_fault_sweep(args.binary, args.model, workdir, site)
            print(f"PASS {name} ({count} replies validated)")
        except Failure as error:
            failures += 1
            print(f"FAIL {name}: {error}")
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    for name, scenario in [("double-sigterm", scenario_double_sigterm),
                           ("abrupt-disconnect", scenario_abrupt_disconnect)]:
        workdir = tempfile.mkdtemp(prefix="cprisk-chaos-")
        try:
            count = scenario(args.binary, args.model, workdir)
            print(f"PASS {name} ({count} replies validated)")
        except Failure as error:
            failures += 1
            print(f"FAIL {name}: {error}")
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    if failures:
        print(f"{failures} scenario(s) failed")
        return 1
    print("all chaos scenarios passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
