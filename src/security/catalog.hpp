// cprisk/security/catalog.hpp
//
// Security knowledge catalogs modeled after the public databases the paper
// injects as "validated information on component security faults" (step 2):
// CWE-style weaknesses, CVE-style vulnerabilities (CVSS-scored) and
// CAPEC-style attack patterns. The shipped entries are a synthetic,
// ICS-flavoured subset: the real corpora are not redistributable, but the
// analysis only depends on the schema (id, applicability, caused fault
// effect, severity), which is preserved (see DESIGN.md substitutions).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "model/component.hpp"
#include "qualitative/level.hpp"

namespace cprisk::security {

/// CWE-style weakness: a class of flaw that component types can exhibit.
struct Weakness {
    std::string id;           ///< e.g. "CWE-787-like"
    std::string name;
    std::vector<model::ElementType> applies_to;
    std::string description;
};

/// CVE-style vulnerability: a concrete, version-specific instance of a
/// weakness with a CVSS base score (either a plain number or an
/// authoritative v3.1 vector string — see security/cvss.hpp).
struct Vulnerability {
    std::string id;           ///< e.g. "CVE-2021-XXXX-like"
    std::string weakness_id;  ///< owning weakness
    std::string affected_template;  ///< component template key, empty = any
    std::string affected_version;   ///< exact version match, empty = any
    double cvss = 5.0;              ///< 0.0 .. 10.0 base score
    std::string caused_fault;       ///< fault mode id it activates
    std::string description;
    /// Optional CVSS v3.1 vector; when set it overrides `cvss` (the score is
    /// computed by the spec formula).
    std::string cvss_vector;

    /// Effective base score (from the vector when present).
    double effective_cvss() const;

    /// CVSS bands mapped onto the qualitative scale (0-2 VL, 2-4 L, 4-6 M,
    /// 6-8 H, 8-10 VH).
    qual::Level severity_level() const;
};

/// CAPEC-style attack pattern: how an adversary exploits weaknesses.
struct AttackPattern {
    std::string id;           ///< e.g. "CAPEC-98-like"
    std::string name;
    std::vector<std::string> exploits_weaknesses;  ///< weakness ids
    qual::Level typical_likelihood = qual::Level::Medium;
    qual::Level typical_severity = qual::Level::Medium;
};

class SecurityCatalog {
public:
    void add_weakness(Weakness weakness);
    void add_vulnerability(Vulnerability vulnerability);
    void add_pattern(AttackPattern pattern);

    const std::vector<Weakness>& weaknesses() const { return weaknesses_; }
    const std::vector<Vulnerability>& vulnerabilities() const { return vulnerabilities_; }
    const std::vector<AttackPattern>& patterns() const { return patterns_; }

    const Weakness* find_weakness(std::string_view id) const;
    const Vulnerability* find_vulnerability(std::string_view id) const;
    const AttackPattern* find_pattern(std::string_view id) const;

    /// Weaknesses applicable to a component (by element type).
    std::vector<const Weakness*> weaknesses_for(const model::Component& component) const;

    /// Vulnerabilities applicable to a component. Template applicability
    /// matches the component's "template" property; version-specific entries
    /// require an exact version match (paper §VI: "many databases of known
    /// vulnerabilities are version-specific").
    std::vector<const Vulnerability*> vulnerabilities_for(
        const model::Component& component) const;

    /// Attack patterns exploiting any weakness of the component's type.
    std::vector<const AttackPattern*> patterns_for(const model::Component& component) const;

    /// The embedded ICS-flavoured subset used by the case study.
    static SecurityCatalog standard_ics();

private:
    std::vector<Weakness> weaknesses_;
    std::vector<Vulnerability> vulnerabilities_;
    std::vector<AttackPattern> patterns_;
};

}  // namespace cprisk::security
