#include "security/cvss.hpp"

#include <cmath>
#include <string>

#include "common/strings.hpp"

namespace cprisk::security {

namespace {

double av_weight(CvssBase::AttackVector v) {
    switch (v) {
        case CvssBase::AttackVector::Network: return 0.85;
        case CvssBase::AttackVector::Adjacent: return 0.62;
        case CvssBase::AttackVector::Local: return 0.55;
        case CvssBase::AttackVector::Physical: return 0.2;
    }
    return 0.0;
}

double ac_weight(CvssBase::AttackComplexity v) {
    return v == CvssBase::AttackComplexity::Low ? 0.77 : 0.44;
}

double pr_weight(CvssBase::PrivilegesRequired v, CvssBase::Scope scope) {
    const bool changed = scope == CvssBase::Scope::Changed;
    switch (v) {
        case CvssBase::PrivilegesRequired::None: return 0.85;
        case CvssBase::PrivilegesRequired::Low: return changed ? 0.68 : 0.62;
        case CvssBase::PrivilegesRequired::High: return changed ? 0.5 : 0.27;
    }
    return 0.0;
}

double ui_weight(CvssBase::UserInteraction v) {
    return v == CvssBase::UserInteraction::None ? 0.85 : 0.62;
}

double impact_weight(CvssBase::Impact v) {
    switch (v) {
        case CvssBase::Impact::High: return 0.56;
        case CvssBase::Impact::Low: return 0.22;
        case CvssBase::Impact::None: return 0.0;
    }
    return 0.0;
}

/// Spec "Roundup": smallest number with one decimal >= input (with the
/// 10^-5 epsilon dance from the official pseudocode).
double roundup(double value) {
    const long long scaled = static_cast<long long>(std::round(value * 100000.0));
    if (scaled % 10000 == 0) return static_cast<double>(scaled) / 100000.0;
    return (std::floor(static_cast<double>(scaled) / 10000.0) + 1.0) / 10.0;
}

}  // namespace

double CvssBase::base_score() const {
    const double iss = 1.0 - (1.0 - impact_weight(confidentiality)) *
                                 (1.0 - impact_weight(integrity)) *
                                 (1.0 - impact_weight(availability));
    double impact = 0.0;
    if (scope == Scope::Unchanged) {
        impact = 6.42 * iss;
    } else {
        impact = 7.52 * (iss - 0.029) - 3.25 * std::pow(iss - 0.02, 15.0);
    }
    const double exploitability = 8.22 * av_weight(attack_vector) *
                                  ac_weight(attack_complexity) *
                                  pr_weight(privileges_required, scope) *
                                  ui_weight(user_interaction);
    if (impact <= 0.0) return 0.0;
    if (scope == Scope::Unchanged) {
        return roundup(std::min(impact + exploitability, 10.0));
    }
    return roundup(std::min(1.08 * (impact + exploitability), 10.0));
}

qual::Level CvssBase::severity_level() const {
    const double score = base_score();
    if (score < 0.1) return qual::Level::VeryLow;
    if (score < 4.0) return qual::Level::Low;
    if (score < 7.0) return qual::Level::Medium;
    if (score < 9.0) return qual::Level::High;
    return qual::Level::VeryHigh;
}

std::string CvssBase::to_vector() const {
    auto av = [this]() {
        switch (attack_vector) {
            case AttackVector::Network: return "N";
            case AttackVector::Adjacent: return "A";
            case AttackVector::Local: return "L";
            case AttackVector::Physical: return "P";
        }
        return "?";
    };
    auto impact = [](Impact v) {
        switch (v) {
            case Impact::High: return "H";
            case Impact::Low: return "L";
            case Impact::None: return "N";
        }
        return "?";
    };
    std::string out = "CVSS:3.1/AV:";
    out += av();
    out += std::string("/AC:") + (attack_complexity == AttackComplexity::Low ? "L" : "H");
    out += std::string("/PR:") +
           (privileges_required == PrivilegesRequired::None
                ? "N"
                : privileges_required == PrivilegesRequired::Low ? "L" : "H");
    out += std::string("/UI:") + (user_interaction == UserInteraction::None ? "N" : "R");
    out += std::string("/S:") + (scope == Scope::Unchanged ? "U" : "C");
    out += std::string("/C:") + impact(confidentiality);
    out += std::string("/I:") + impact(integrity);
    out += std::string("/A:") + impact(availability);
    return out;
}

Result<CvssBase> parse_cvss(std::string_view vector) {
    std::string text(trim(vector));
    if (starts_with(text, "CVSS:3.1/")) text = text.substr(9);
    if (starts_with(text, "CVSS:3.0/")) text = text.substr(9);

    CvssBase base;
    bool seen_av = false, seen_ac = false, seen_pr = false, seen_ui = false, seen_s = false,
         seen_c = false, seen_i = false, seen_a = false;

    for (const std::string& field : split(text, '/')) {
        const auto colon = field.find(':');
        if (colon == std::string::npos) {
            return Result<CvssBase>::failure("CVSS: malformed metric '" + field + "'");
        }
        const std::string key = field.substr(0, colon);
        const std::string value = field.substr(colon + 1);
        auto bad = [&]() {
            return Result<CvssBase>::failure("CVSS: invalid value '" + value + "' for " + key);
        };
        if (key == "AV") {
            seen_av = true;
            if (value == "N") base.attack_vector = CvssBase::AttackVector::Network;
            else if (value == "A") base.attack_vector = CvssBase::AttackVector::Adjacent;
            else if (value == "L") base.attack_vector = CvssBase::AttackVector::Local;
            else if (value == "P") base.attack_vector = CvssBase::AttackVector::Physical;
            else return bad();
        } else if (key == "AC") {
            seen_ac = true;
            if (value == "L") base.attack_complexity = CvssBase::AttackComplexity::Low;
            else if (value == "H") base.attack_complexity = CvssBase::AttackComplexity::High;
            else return bad();
        } else if (key == "PR") {
            seen_pr = true;
            if (value == "N") base.privileges_required = CvssBase::PrivilegesRequired::None;
            else if (value == "L") base.privileges_required = CvssBase::PrivilegesRequired::Low;
            else if (value == "H") base.privileges_required = CvssBase::PrivilegesRequired::High;
            else return bad();
        } else if (key == "UI") {
            seen_ui = true;
            if (value == "N") base.user_interaction = CvssBase::UserInteraction::None;
            else if (value == "R") base.user_interaction = CvssBase::UserInteraction::Required;
            else return bad();
        } else if (key == "S") {
            seen_s = true;
            if (value == "U") base.scope = CvssBase::Scope::Unchanged;
            else if (value == "C") base.scope = CvssBase::Scope::Changed;
            else return bad();
        } else if (key == "C" || key == "I" || key == "A") {
            CvssBase::Impact impact;
            if (value == "H") impact = CvssBase::Impact::High;
            else if (value == "L") impact = CvssBase::Impact::Low;
            else if (value == "N") impact = CvssBase::Impact::None;
            else return bad();
            if (key == "C") {
                base.confidentiality = impact;
                seen_c = true;
            } else if (key == "I") {
                base.integrity = impact;
                seen_i = true;
            } else {
                base.availability = impact;
                seen_a = true;
            }
        } else {
            // Temporal/environmental metrics are ignored (base score only).
        }
    }
    if (!(seen_av && seen_ac && seen_pr && seen_ui && seen_s && seen_c && seen_i && seen_a)) {
        return Result<CvssBase>::failure("CVSS: missing base metrics in '" +
                                         std::string(vector) + "'");
    }
    return base;
}

Result<double> cvss_base_score(std::string_view vector) {
    auto parsed = parse_cvss(vector);
    if (!parsed.ok()) return Result<double>::failure(parsed.error());
    return parsed.value().base_score();
}

}  // namespace cprisk::security
