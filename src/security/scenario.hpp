// cprisk/security/scenario.hpp
//
// The attack/fault scenario space (paper step 2 and §IV-A): "the outcome of
// the step is the so-called 'scenario space' that contains all potential
// scenarios that can lead to failures/losses". A scenario is a *set of
// candidate system mutations* — fault modes activated on components —
// optionally annotated with the attack path that causes them.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "model/system_model.hpp"
#include "qualitative/level.hpp"
#include "security/attack_graph.hpp"
#include "security/attack_matrix.hpp"
#include "security/catalog.hpp"
#include "security/threat_actor.hpp"

namespace cprisk::security {

/// One candidate system mutation: a fault mode activated on a component.
struct Mutation {
    model::ComponentId component;
    std::string fault_id;

    bool operator==(const Mutation&) const = default;
    bool operator<(const Mutation& other) const {
        if (component != other.component) return component < other.component;
        return fault_id < other.fault_id;
    }
    std::string to_string() const { return component + "." + fault_id; }
};

/// How a scenario was generated.
enum class ScenarioOrigin : std::uint8_t {
    FaultCombination,  ///< dependability view: spontaneous fault-mode subset
    AttackPath,        ///< security view: derived from an attack path
    Vulnerability,     ///< security view: a catalog vulnerability exploited
};

struct AttackScenario {
    std::string id;  ///< "S1", "S2", ...
    ScenarioOrigin origin = ScenarioOrigin::FaultCombination;
    std::string actor_id;             ///< empty for pure fault combinations
    std::vector<Mutation> mutations;  ///< sorted, unique
    std::vector<std::string> technique_ids;     ///< for AttackPath scenarios
    std::string vulnerability_id;     ///< for Vulnerability scenarios
    qual::Level likelihood = qual::Level::Medium;

    std::string to_string() const;
};

struct ScenarioSpaceOptions {
    /// Maximum number of simultaneous fault modes in dependability
    /// combinations ("in security, most attacks are based on exploiting a
    /// combination of vulnerabilities", §IV — but the spontaneous-fault view
    /// bounds simultaneity).
    std::size_t max_simultaneous_faults = 2;
    bool include_fault_combinations = true;
    bool include_attack_scenarios = true;
    /// One scenario per applicable catalog vulnerability (paper step 2:
    /// injection from "validated public collections"); requires a catalog
    /// in `build`.
    bool include_vulnerability_scenarios = true;
    std::size_t max_attack_paths_per_target = 16;
};

/// Enumerates the scenario space for `model`.
class ScenarioSpace {
public:
    ScenarioSpace() = default;
    /// Wraps an explicit scenario list (bench and test harnesses that
    /// evaluate a hand-picked set instead of the enumerated space).
    explicit ScenarioSpace(std::vector<AttackScenario> scenarios)
        : scenarios_(std::move(scenarios)) {}

    static ScenarioSpace build(const model::SystemModel& model, const AttackMatrix& matrix,
                               const std::vector<ThreatActor>& actors,
                               const ScenarioSpaceOptions& options = {},
                               const SecurityCatalog* catalog = nullptr);

    const std::vector<AttackScenario>& scenarios() const { return scenarios_; }
    std::size_t size() const { return scenarios_.size(); }

    /// All distinct mutations appearing anywhere in the space.
    std::vector<Mutation> mutation_universe() const;

private:
    std::vector<AttackScenario> scenarios_;
};

/// Combined likelihood of simultaneous independent fault modes: one ordinal
/// step down per extra fault (rare events compound), floored at VL.
qual::Level combined_likelihood(const std::vector<qual::Level>& likelihoods);

}  // namespace cprisk::security
