#include "security/scenario.hpp"

#include <algorithm>
#include <functional>
#include <set>

namespace cprisk::security {

using model::ComponentId;

std::string AttackScenario::to_string() const {
    std::string out = id + " [" +
                      (origin == ScenarioOrigin::FaultCombination ? "faults" : "attack") + "]";
    if (!actor_id.empty()) out += " actor=" + actor_id;
    out += " {";
    for (std::size_t i = 0; i < mutations.size(); ++i) {
        if (i > 0) out += ", ";
        out += mutations[i].to_string();
    }
    out += "} likelihood=" + std::string(qual::to_short_string(likelihood));
    return out;
}

qual::Level combined_likelihood(const std::vector<qual::Level>& likelihoods) {
    if (likelihoods.empty()) return qual::Level::VeryLow;
    qual::Level combined = likelihoods[0];
    for (std::size_t i = 1; i < likelihoods.size(); ++i) {
        combined = qual::qmin(combined, likelihoods[i]);
        combined = qual::shift(combined, -1);  // simultaneity penalty
    }
    return combined;
}

ScenarioSpace ScenarioSpace::build(const model::SystemModel& model, const AttackMatrix& matrix,
                                   const std::vector<ThreatActor>& actors,
                                   const ScenarioSpaceOptions& options,
                                   const SecurityCatalog* catalog) {
    ScenarioSpace space;
    int next_id = 1;
    auto make_id = [&next_id]() { return "S" + std::to_string(next_id++); };

    if (options.include_fault_combinations) {
        // Collect the mutation universe with per-mutation likelihoods.
        std::vector<std::pair<Mutation, qual::Level>> universe;
        for (const model::Component& component : model.components()) {
            if (model.is_refined(component.id)) continue;
            for (const model::FaultMode& mode : component.fault_modes) {
                universe.emplace_back(Mutation{component.id, mode.id}, mode.likelihood);
            }
        }
        // All subsets of size 1..max_simultaneous_faults.
        std::vector<std::size_t> indices;
        std::function<void(std::size_t)> choose = [&](std::size_t start) {
            if (!indices.empty()) {
                AttackScenario scenario;
                scenario.id = make_id();
                scenario.origin = ScenarioOrigin::FaultCombination;
                std::vector<qual::Level> likelihoods;
                for (std::size_t index : indices) {
                    scenario.mutations.push_back(universe[index].first);
                    likelihoods.push_back(universe[index].second);
                }
                std::sort(scenario.mutations.begin(), scenario.mutations.end());
                scenario.likelihood = combined_likelihood(likelihoods);
                space.scenarios_.push_back(std::move(scenario));
            }
            if (indices.size() >= options.max_simultaneous_faults) return;
            for (std::size_t i = start; i < universe.size(); ++i) {
                indices.push_back(i);
                choose(i + 1);
                indices.pop_back();
            }
        };
        choose(0);
    }

    if (options.include_attack_scenarios) {
        // One scenario per attack path reaching any OT component.
        std::set<std::string> seen;  // dedupe identical mutation sets per actor
        for (const ThreatActor& actor : actors) {
            AttackGraph graph = AttackGraph::build(model, matrix, actor);
            for (const model::Component& target : model.components()) {
                if (!model::is_ot(target.type)) continue;
                if (model.is_refined(target.id)) continue;
                for (const AttackPath& path :
                     graph.paths_to(target.id, options.max_attack_paths_per_target)) {
                    AttackScenario scenario;
                    scenario.origin = ScenarioOrigin::AttackPath;
                    scenario.actor_id = actor.id;
                    std::vector<qual::Level> likelihoods = {actor.motivation};
                    for (const AttackStep& step : path.steps) {
                        if (!step.caused_fault.empty() &&
                            model.component(step.component).has_fault_mode(step.caused_fault)) {
                            scenario.mutations.push_back(
                                Mutation{step.component, step.caused_fault});
                        }
                        scenario.technique_ids.push_back(step.technique_id);
                    }
                    if (scenario.mutations.empty()) continue;
                    std::sort(scenario.mutations.begin(), scenario.mutations.end());
                    scenario.mutations.erase(
                        std::unique(scenario.mutations.begin(), scenario.mutations.end()),
                        scenario.mutations.end());
                    std::string key = actor.id;
                    for (const Mutation& m : scenario.mutations) key += "|" + m.to_string();
                    if (!seen.insert(key).second) continue;
                    scenario.likelihood = combined_likelihood(likelihoods);
                    scenario.id = make_id();
                    space.scenarios_.push_back(std::move(scenario));
                }
            }
        }
    }

    if (options.include_vulnerability_scenarios && catalog != nullptr) {
        // One scenario per (component, applicable vulnerability) — the
        // paper's step-2 injection from validated public collections. The
        // likelihood couples the CVSS severity band (an easy exploit is a
        // likely one at this granularity).
        for (const model::Component& component : model.components()) {
            if (model.is_refined(component.id)) continue;
            for (const Vulnerability* vulnerability : catalog->vulnerabilities_for(component)) {
                if (vulnerability->caused_fault.empty()) continue;
                if (!component.has_fault_mode(vulnerability->caused_fault)) continue;
                AttackScenario scenario;
                scenario.id = make_id();
                scenario.origin = ScenarioOrigin::Vulnerability;
                scenario.vulnerability_id = vulnerability->id;
                scenario.mutations = {Mutation{component.id, vulnerability->caused_fault}};
                scenario.likelihood = vulnerability->severity_level();
                space.scenarios_.push_back(std::move(scenario));
            }
        }
    }

    return space;
}

std::vector<Mutation> ScenarioSpace::mutation_universe() const {
    std::set<Mutation> universe;
    for (const AttackScenario& scenario : scenarios_) {
        universe.insert(scenario.mutations.begin(), scenario.mutations.end());
    }
    return {universe.begin(), universe.end()};
}

}  // namespace cprisk::security
