// cprisk/security/cvss.hpp
//
// CVSS v3.1 base-score computation from vector strings (paper §III-B: "the
// vulnerabilities in CVE are measured by the Common Vulnerability Scoring
// System (CVSS) that denotes its severity via a calculated score"). The
// implementation follows the FIRST.org specification (ref [12]) exactly, so
// catalog entries can carry the authoritative vector instead of a hand-typed
// number.
#pragma once

#include <string_view>

#include "common/result.hpp"
#include "qualitative/level.hpp"

namespace cprisk::security {

/// Parsed CVSS v3.1 base metrics.
struct CvssBase {
    enum class AttackVector : std::uint8_t { Network, Adjacent, Local, Physical };
    enum class AttackComplexity : std::uint8_t { Low, High };
    enum class PrivilegesRequired : std::uint8_t { None, Low, High };
    enum class UserInteraction : std::uint8_t { None, Required };
    enum class Scope : std::uint8_t { Unchanged, Changed };
    enum class Impact : std::uint8_t { None, Low, High };

    AttackVector attack_vector = AttackVector::Network;
    AttackComplexity attack_complexity = AttackComplexity::Low;
    PrivilegesRequired privileges_required = PrivilegesRequired::None;
    UserInteraction user_interaction = UserInteraction::None;
    Scope scope = Scope::Unchanged;
    Impact confidentiality = Impact::None;
    Impact integrity = Impact::None;
    Impact availability = Impact::None;

    /// Base score per the v3.1 formula (0.0 .. 10.0, one decimal, rounded up).
    double base_score() const;

    /// Official severity bands: None/Low 0-3.9 -> VL/L, Medium 4-6.9 -> M,
    /// High 7-8.9 -> H, Critical 9-10 -> VH.
    qual::Level severity_level() const;

    /// Canonical vector string ("CVSS:3.1/AV:N/AC:L/...").
    std::string to_vector() const;
};

/// Parses a vector like "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H" (the
/// "CVSS:3.1/" prefix is optional). All eight base metrics are required.
Result<CvssBase> parse_cvss(std::string_view vector);

/// Convenience: base score straight from a vector string.
Result<double> cvss_base_score(std::string_view vector);

}  // namespace cprisk::security
