#include "security/catalog.hpp"

#include "security/cvss.hpp"

#include <algorithm>

namespace cprisk::security {

using model::Component;
using model::ElementType;

double Vulnerability::effective_cvss() const {
    if (!cvss_vector.empty()) {
        auto computed = cvss_base_score(cvss_vector);
        if (computed.ok()) return computed.value();
    }
    return cvss;
}

qual::Level Vulnerability::severity_level() const {
    const double score = effective_cvss();
    if (score < 2.0) return qual::Level::VeryLow;
    if (score < 4.0) return qual::Level::Low;
    if (score < 6.0) return qual::Level::Medium;
    if (score < 8.0) return qual::Level::High;
    return qual::Level::VeryHigh;
}

void SecurityCatalog::add_weakness(Weakness weakness) {
    weaknesses_.push_back(std::move(weakness));
}

void SecurityCatalog::add_vulnerability(Vulnerability vulnerability) {
    vulnerabilities_.push_back(std::move(vulnerability));
}

void SecurityCatalog::add_pattern(AttackPattern pattern) {
    patterns_.push_back(std::move(pattern));
}

const Weakness* SecurityCatalog::find_weakness(std::string_view id) const {
    for (const Weakness& w : weaknesses_) {
        if (w.id == id) return &w;
    }
    return nullptr;
}

const Vulnerability* SecurityCatalog::find_vulnerability(std::string_view id) const {
    for (const Vulnerability& v : vulnerabilities_) {
        if (v.id == id) return &v;
    }
    return nullptr;
}

const AttackPattern* SecurityCatalog::find_pattern(std::string_view id) const {
    for (const AttackPattern& p : patterns_) {
        if (p.id == id) return &p;
    }
    return nullptr;
}

std::vector<const Weakness*> SecurityCatalog::weaknesses_for(const Component& component) const {
    std::vector<const Weakness*> out;
    for (const Weakness& w : weaknesses_) {
        if (std::find(w.applies_to.begin(), w.applies_to.end(), component.type) !=
            w.applies_to.end()) {
            out.push_back(&w);
        }
    }
    return out;
}

std::vector<const Vulnerability*> SecurityCatalog::vulnerabilities_for(
    const Component& component) const {
    std::vector<const Vulnerability*> out;
    auto template_it = component.properties.find("template");
    const std::string component_template =
        template_it == component.properties.end() ? "" : template_it->second;
    for (const Vulnerability& v : vulnerabilities_) {
        if (!v.affected_template.empty() && v.affected_template != component_template) continue;
        if (!v.affected_version.empty() && v.affected_version != component.version) continue;
        // The weakness must be applicable to the component's type when the
        // vulnerability is not template-pinned.
        if (v.affected_template.empty()) {
            const Weakness* weakness = find_weakness(v.weakness_id);
            if (weakness == nullptr) continue;
            if (std::find(weakness->applies_to.begin(), weakness->applies_to.end(),
                          component.type) == weakness->applies_to.end()) {
                continue;
            }
        }
        out.push_back(&v);
    }
    return out;
}

std::vector<const AttackPattern*> SecurityCatalog::patterns_for(
    const Component& component) const {
    std::vector<const AttackPattern*> out;
    const auto applicable = weaknesses_for(component);
    for (const AttackPattern& p : patterns_) {
        const bool relevant = std::any_of(
            p.exploits_weaknesses.begin(), p.exploits_weaknesses.end(),
            [&](const std::string& weakness_id) {
                return std::any_of(applicable.begin(), applicable.end(),
                                   [&](const Weakness* w) { return w->id == weakness_id; });
            });
        if (relevant) out.push_back(&p);
    }
    return out;
}

SecurityCatalog SecurityCatalog::standard_ics() {
    SecurityCatalog catalog;

    catalog.add_weakness(Weakness{
        "W-PHISH", "Susceptibility to Phishing",
        {ElementType::ApplicationComponent, ElementType::Node},
        "User-facing software through which social-engineering payloads arrive."});
    catalog.add_weakness(Weakness{
        "W-RCE", "Remote Code Execution via Unpatched Service",
        {ElementType::Node, ElementType::SystemSoftware, ElementType::ApplicationComponent},
        "Network-reachable service running exploitable code."});
    catalog.add_weakness(Weakness{
        "W-AUTH", "Missing/Weak Authentication on Control Interface",
        {ElementType::Controller, ElementType::HumanMachineInterface, ElementType::Device},
        "Control-plane endpoints accepting unauthenticated commands."});
    catalog.add_weakness(Weakness{
        "W-PROTO", "Insecure Fieldbus Protocol",
        {ElementType::Controller, ElementType::Actuator, ElementType::Sensor,
         ElementType::CommunicationNetwork},
        "Legacy OT protocols without integrity protection."});
    catalog.add_weakness(Weakness{
        "W-FW", "Unsigned Firmware Update",
        {ElementType::Device, ElementType::Controller, ElementType::Actuator,
         ElementType::Sensor},
        "Firmware accepted without signature verification."});

    catalog.add_vulnerability(Vulnerability{
        "V-MAIL-1", "W-PHISH", "email_client", "", 6.5, "phishing_link_opened",
        "Spam filter bypass allows crafted links to reach users."});
    {
        Vulnerability v{"V-BROWSER-1", "W-RCE", "web_browser", "98.0", 8.8,
                        "malware_download",
                        "Drive-by download in outdated browser version.", ""};
        v.cvss_vector = "CVSS:3.1/AV:N/AC:L/PR:N/UI:R/S:U/C:H/I:H/A:H";  // 8.8
        catalog.add_vulnerability(std::move(v));
    }
    catalog.add_vulnerability(Vulnerability{
        "V-WS-1", "W-RCE", "engineering_workstation", "", 9.1, "infected",
        "SMB service exploitable for remote code execution."});
    {
        Vulnerability v{"V-PLC-1", "W-AUTH", "plc", "", 9.8, "logic_tampered",
                        "Ladder logic writable without authentication.", ""};
        v.cvss_vector = "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H";  // 9.8
        catalog.add_vulnerability(std::move(v));
    }
    catalog.add_vulnerability(Vulnerability{
        "V-NET-1", "W-PROTO", "control_network", "", 7.4, "intrusion",
        "Unencrypted fieldbus allows command injection from the network."});
    catalog.add_vulnerability(Vulnerability{
        "V-HMI-1", "W-AUTH", "hmi", "", 6.1, "no_signal",
        "Display server crashable by malformed packets (alarm suppression)."});
    catalog.add_vulnerability(Vulnerability{
        "V-VCTRL-1", "W-PROTO", "valve_controller", "", 7.0, "wrong_command",
        "Spoofed setpoint frames accepted by the valve controller."});

    catalog.add_pattern(AttackPattern{
        "P-SPEARPHISH", "Spearphishing Attachment", {"W-PHISH"},
        qual::Level::High, qual::Level::Medium});
    catalog.add_pattern(AttackPattern{
        "P-DRIVEBY", "Drive-by Compromise", {"W-PHISH", "W-RCE"},
        qual::Level::Medium, qual::Level::High});
    catalog.add_pattern(AttackPattern{
        "P-REMOTE-EXPLOIT", "Exploitation of Remote Services", {"W-RCE", "W-AUTH"},
        qual::Level::Medium, qual::Level::VeryHigh});
    catalog.add_pattern(AttackPattern{
        "P-CMD-INJECT", "Command Injection over Fieldbus", {"W-PROTO", "W-AUTH"},
        qual::Level::Low, qual::Level::VeryHigh});
    catalog.add_pattern(AttackPattern{
        "P-FW-TROJAN", "Malicious Firmware Update", {"W-FW"},
        qual::Level::VeryLow, qual::Level::VeryHigh});

    return catalog;
}

}  // namespace cprisk::security
