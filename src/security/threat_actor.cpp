#include "security/threat_actor.hpp"

#include <algorithm>

namespace cprisk::security {

bool ThreatActor::can_reach(model::Exposure exposure) const {
    return std::find(reachable_exposures.begin(), reachable_exposures.end(), exposure) !=
           reachable_exposures.end();
}

std::vector<ThreatActor> standard_threat_actors() {
    using model::Exposure;
    return {
        ThreatActor{"A-SCRIPT", "Opportunistic Attacker", qual::Level::Low, qual::Level::Medium,
                    {Exposure::Public}},
        ThreatActor{"A-CRIME", "Cybercriminal Group", qual::Level::High, qual::Level::High,
                    {Exposure::Public}},
        ThreatActor{"A-INSIDER", "Malicious Insider", qual::Level::Medium, qual::Level::Medium,
                    {Exposure::Public, Exposure::Internal}},
        ThreatActor{"A-APT", "State-sponsored Actor", qual::Level::VeryHigh, qual::Level::High,
                    {Exposure::Public, Exposure::Internal}},
    };
}

}  // namespace cprisk::security
