// cprisk/security/attack_graph.hpp
//
// Attack graph generation over the system model, reproducing the capability
// the paper cites from [15]/[18]: nodes are components, edges are technique
// applications, and paths trace multi-stage attacks (e.g. Fig. 4's E-mail
// Client -> Browser -> Infected Computer chain) from actor-reachable entry
// points to targets.
#pragma once

#include <string>
#include <vector>

#include "model/system_model.hpp"
#include "security/attack_matrix.hpp"
#include "security/threat_actor.hpp"

namespace cprisk::security {

/// One technique application in an attack path.
struct AttackStep {
    model::ComponentId component;
    std::string technique_id;
    std::string caused_fault;  ///< fault mode activated on this component
};

/// A multi-stage attack: steps in causal order.
struct AttackPath {
    std::string actor_id;
    std::vector<AttackStep> steps;

    std::string to_string() const;
};

class AttackGraph {
public:
    /// Builds the graph of techniques `actor` can execute against `model`:
    /// entry components are those whose exposure the actor reaches with an
    /// initial-access technique; lateral edges follow the model's
    /// propagating relations.
    static AttackGraph build(const model::SystemModel& model, const AttackMatrix& matrix,
                             const ThreatActor& actor);

    /// Components the actor can initially compromise.
    const std::vector<AttackStep>& entry_points() const { return entries_; }

    /// Techniques executable on `component` once the attacker is adjacent.
    std::vector<AttackStep> lateral_steps(const model::ComponentId& component) const;

    /// All attack paths reaching `target`, bounded by `max_paths` and
    /// `max_length` steps.
    std::vector<AttackPath> paths_to(const model::ComponentId& target,
                                     std::size_t max_paths = 64,
                                     std::size_t max_length = 8) const;

    /// Every component compromisable by the actor (transitively).
    std::vector<model::ComponentId> compromisable() const;

    /// Total attacker expenditure of a path (sum of technique costs,
    /// paper §IV-D "Attack Cost").
    long long path_cost(const AttackPath& path) const;

    /// The cheapest attack reaching `target` — the paper's "most efficient
    /// attack" query. Fails when the target is unreachable.
    Result<AttackPath> cheapest_path_to(const model::ComponentId& target,
                                        std::size_t max_paths = 256,
                                        std::size_t max_length = 8) const;

private:
    const model::SystemModel* model_ = nullptr;
    const AttackMatrix* matrix_ = nullptr;
    ThreatActor actor_;
    std::vector<AttackStep> entries_;
};

}  // namespace cprisk::security
