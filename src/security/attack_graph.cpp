#include "security/attack_graph.hpp"

#include <algorithm>
#include <functional>
#include <set>

namespace cprisk::security {

using model::ComponentId;

std::string AttackPath::to_string() const {
    std::string out = actor_id + ":";
    for (const AttackStep& step : steps) {
        out += " -> " + step.component + "[" + step.technique_id + "]";
    }
    return out;
}

AttackGraph AttackGraph::build(const model::SystemModel& model, const AttackMatrix& matrix,
                               const ThreatActor& actor) {
    AttackGraph graph;
    graph.model_ = &model;
    graph.matrix_ = &matrix;
    graph.actor_ = actor;

    for (const model::Component& component : model.components()) {
        if (model.is_refined(component.id)) continue;
        if (!actor.can_reach(component.exposure)) continue;
        for (const Technique* technique : matrix.techniques_for(component)) {
            if (technique->tactic != Tactic::InitialAccess &&
                technique->tactic != Tactic::Execution) {
                continue;
            }
            if (!actor.capable_of(technique->required_capability)) continue;
            graph.entries_.push_back(
                AttackStep{component.id, technique->id, technique->caused_fault});
        }
    }
    return graph;
}

std::vector<AttackStep> AttackGraph::lateral_steps(const ComponentId& component) const {
    std::vector<AttackStep> steps;
    if (model_ == nullptr || model_->is_refined(component)) return steps;
    for (const Technique* technique : matrix_->techniques_for(model_->component(component))) {
        if (technique->tactic == Tactic::InitialAccess) continue;
        if (!actor_.capable_of(technique->required_capability)) continue;
        steps.push_back(AttackStep{component, technique->id, technique->caused_fault});
    }
    return steps;
}

std::vector<AttackPath> AttackGraph::paths_to(const ComponentId& target, std::size_t max_paths,
                                              std::size_t max_length) const {
    std::vector<AttackPath> paths;
    if (model_ == nullptr) return paths;

    std::vector<AttackStep> current;
    std::set<ComponentId> visited;

    std::function<void(const ComponentId&)> dfs = [&](const ComponentId& at) {
        if (paths.size() >= max_paths) return;
        if (at == target) {
            paths.push_back(AttackPath{actor_.id, current});
            return;
        }
        if (current.size() >= max_length) return;
        for (const ComponentId& next : model_->propagation_successors(at)) {
            if (visited.count(next) > 0) continue;
            const auto steps = lateral_steps(next);
            if (steps.empty() && next != target) continue;
            visited.insert(next);
            if (next == target) {
                // The error/compromise reaches the target by pure
                // propagation — no further technique needed.
                dfs(next);
            }
            for (const AttackStep& step : steps) {
                if (paths.size() >= max_paths) break;
                current.push_back(step);
                dfs(next);
                current.pop_back();
            }
            visited.erase(next);
        }
    };

    for (const AttackStep& entry : entries_) {
        if (paths.size() >= max_paths) break;
        visited.insert(entry.component);
        current.push_back(entry);
        dfs(entry.component);
        current.pop_back();
        visited.erase(entry.component);
    }
    return paths;
}

long long AttackGraph::path_cost(const AttackPath& path) const {
    long long cost = 0;
    if (matrix_ == nullptr) return cost;
    for (const AttackStep& step : path.steps) {
        const Technique* technique = matrix_->find_technique(step.technique_id);
        cost += technique != nullptr ? technique->attack_cost : 1;
    }
    return cost;
}

Result<AttackPath> AttackGraph::cheapest_path_to(const ComponentId& target,
                                                 std::size_t max_paths,
                                                 std::size_t max_length) const {
    const auto paths = paths_to(target, max_paths, max_length);
    if (paths.empty()) {
        return Result<AttackPath>::failure("no attack path from actor '" + actor_.id + "' to '" +
                                           target + "'");
    }
    const AttackPath* best = &paths.front();
    long long best_cost = path_cost(*best);
    for (const AttackPath& path : paths) {
        const long long cost = path_cost(path);
        if (cost < best_cost) {
            best = &path;
            best_cost = cost;
        }
    }
    return *best;
}

std::vector<ComponentId> AttackGraph::compromisable() const {
    std::set<ComponentId> reached;
    if (model_ == nullptr) return {};
    std::vector<ComponentId> stack;
    for (const AttackStep& entry : entries_) {
        if (reached.insert(entry.component).second) stack.push_back(entry.component);
    }
    while (!stack.empty()) {
        const ComponentId at = stack.back();
        stack.pop_back();
        for (const ComponentId& next : model_->propagation_successors(at)) {
            if (reached.count(next) > 0) continue;
            if (lateral_steps(next).empty()) continue;
            reached.insert(next);
            stack.push_back(next);
        }
    }
    return {reached.begin(), reached.end()};
}

}  // namespace cprisk::security
