#include "security/attack_matrix.hpp"

#include <algorithm>

namespace cprisk::security {

using model::ElementType;

std::string_view to_string(Tactic tactic) {
    switch (tactic) {
        case Tactic::InitialAccess: return "initial_access";
        case Tactic::Execution: return "execution";
        case Tactic::Persistence: return "persistence";
        case Tactic::LateralMovement: return "lateral_movement";
        case Tactic::ImpairProcessControl: return "impair_process_control";
        case Tactic::InhibitResponseFunction: return "inhibit_response_function";
        case Tactic::Impact: return "impact";
    }
    return "?";
}

void AttackMatrix::add_technique(Technique technique) {
    techniques_.push_back(std::move(technique));
}

void AttackMatrix::add_mitigation(Mitigation mitigation) {
    mitigations_.push_back(std::move(mitigation));
}

const Technique* AttackMatrix::find_technique(std::string_view id) const {
    for (const Technique& t : techniques_) {
        if (t.id == id) return &t;
    }
    return nullptr;
}

const Mitigation* AttackMatrix::find_mitigation(std::string_view id) const {
    for (const Mitigation& m : mitigations_) {
        if (m.id == id) return &m;
    }
    return nullptr;
}

std::vector<const Technique*> AttackMatrix::techniques_for(
    const model::Component& component) const {
    std::vector<const Technique*> out;
    for (const Technique& t : techniques_) {
        if (std::find(t.applies_to.begin(), t.applies_to.end(), component.type) !=
            t.applies_to.end()) {
            out.push_back(&t);
        }
    }
    return out;
}

std::vector<const Technique*> AttackMatrix::techniques_in(Tactic tactic) const {
    std::vector<const Technique*> out;
    for (const Technique& t : techniques_) {
        if (t.tactic == tactic) out.push_back(&t);
    }
    return out;
}

std::vector<const Mitigation*> AttackMatrix::mitigations_for(const Technique& technique) const {
    std::vector<const Mitigation*> out;
    for (const std::string& id : technique.mitigated_by) {
        if (const Mitigation* m = find_mitigation(id)) out.push_back(m);
    }
    return out;
}

AttackMatrix AttackMatrix::standard_ics() {
    AttackMatrix matrix;

    // Mitigations (the paper's M1/M2 first).
    matrix.add_mitigation(Mitigation{"M-TRAIN", "User Training", 2, qual::Level::Medium});
    matrix.add_mitigation(Mitigation{"M-ENDPOINT", "Endpoint Security", 4, qual::Level::High});
    matrix.add_mitigation(Mitigation{"M-SEGMENT", "Network Segmentation", 6, qual::Level::High});
    matrix.add_mitigation(Mitigation{"M-PATCH", "Software Update / Patching", 3,
                                     qual::Level::Medium});
    matrix.add_mitigation(Mitigation{"M-AUTHZ", "Authorization Enforcement", 5,
                                     qual::Level::High});
    matrix.add_mitigation(Mitigation{"M-FWSIGN", "Code/Firmware Signing", 4, qual::Level::High});
    matrix.add_mitigation(Mitigation{"M-BACKUP", "Alarm Redundancy / Out-of-band Monitoring", 3,
                                     qual::Level::Medium});

    // Initial access.
    matrix.add_technique(Technique{
        "T-SPEARPHISH", "Spearphishing Attachment", Tactic::InitialAccess,
        {ElementType::ApplicationComponent, ElementType::Node},
        "phishing_link_opened", qual::Level::Low,
        {"M-TRAIN"},
        2});
    matrix.add_technique(Technique{
        "T-DRIVEBY", "Drive-by Compromise", Tactic::InitialAccess,
        {ElementType::ApplicationComponent},
        "malware_download", qual::Level::Medium,
        {"M-ENDPOINT", "M-PATCH"},
        3});
    matrix.add_technique(Technique{
        "T-EXT-REMOTE", "External Remote Services", Tactic::InitialAccess,
        {ElementType::Node, ElementType::CommunicationNetwork},
        "intrusion", qual::Level::Medium,
        {"M-SEGMENT", "M-AUTHZ"},
        4});

    // Execution / persistence on IT hosts.
    matrix.add_technique(Technique{
        "T-USER-EXec", "User Execution (Malicious File)", Tactic::Execution,
        {ElementType::Node, ElementType::ApplicationComponent},
        "infected", qual::Level::Low,
        {"M-TRAIN", "M-ENDPOINT"},
        1});

    // Lateral movement into OT.
    matrix.add_technique(Technique{
        "T-REMOTE-EXPLOIT", "Exploitation of Remote Services", Tactic::LateralMovement,
        {ElementType::Node, ElementType::Controller, ElementType::SystemSoftware},
        "infected", qual::Level::High,
        {"M-PATCH", "M-SEGMENT"},
        6});

    // Impair process control.
    matrix.add_technique(Technique{
        "T-MOD-PARAM", "Modify Parameter", Tactic::ImpairProcessControl,
        {ElementType::Controller, ElementType::Actuator},
        "wrong_command", qual::Level::High,
        {"M-AUTHZ"},
        5});
    matrix.add_technique(Technique{
        "T-MOD-LOGIC", "Modify Controller Logic", Tactic::ImpairProcessControl,
        {ElementType::Controller},
        "logic_tampered", qual::Level::VeryHigh,
        {"M-AUTHZ", "M-FWSIGN"},
        8});

    // Inhibit response function.
    matrix.add_technique(Technique{
        "T-ALARM-SUPPRESS", "Alarm Suppression", Tactic::InhibitResponseFunction,
        {ElementType::HumanMachineInterface},
        "no_signal", qual::Level::High,
        {"M-BACKUP", "M-AUTHZ"},
        4});

    // Impact.
    matrix.add_technique(Technique{
        "T-DAMAGE", "Damage to Property", Tactic::Impact,
        {ElementType::Equipment, ElementType::Actuator},
        "stuck_at_open", qual::Level::VeryHigh,
        {"M-AUTHZ", "M-SEGMENT"},
        7});

    return matrix;
}

}  // namespace cprisk::security
