// cprisk/security/attack_matrix.hpp
//
// MITRE ATT&CK (ICS)-style tactic/technique/mitigation matrix (paper §IV-A:
// "MITRE ATT&CK (ICS) matrices were also used to assess what techniques and
// tactics are potentially exploitable"; §IV-C: "by incorporating MITRE
// ATT&CK Mitigation, the aim is to generate a Mitigation Solution Space").
// The shipped matrix is a representative ICS subset with the structure of
// the real matrix (the corpus itself is external data; see DESIGN.md).
#pragma once

#include <string>
#include <vector>

#include "model/component.hpp"
#include "qualitative/level.hpp"

namespace cprisk::security {

/// Kill-chain stage (ATT&CK ICS tactics, abbreviated set).
enum class Tactic : std::uint8_t {
    InitialAccess,
    Execution,
    Persistence,
    LateralMovement,
    ImpairProcessControl,
    InhibitResponseFunction,
    Impact,
};

std::string_view to_string(Tactic tactic);

/// An attack technique: what the adversary does, to which component types,
/// and which fault mode it activates on success.
struct Technique {
    std::string id;    ///< e.g. "T0865-like"
    std::string name;  ///< e.g. "Spearphishing Attachment"
    Tactic tactic = Tactic::InitialAccess;
    std::vector<model::ElementType> applies_to;
    std::string caused_fault;             ///< fault mode id activated on success
    qual::Level required_capability = qual::Level::Medium;  ///< attacker skill floor
    std::vector<std::string> mitigated_by;  ///< mitigation ids
    /// Resources the attacker must expend (paper §IV-D "Attack Cost": time,
    /// hardware, exploit acquisition), in the same units as mitigation cost.
    long long attack_cost = 1;
};

/// A defensive mitigation with an implementation cost (used by the
/// cost-benefit optimization, §IV-D).
struct Mitigation {
    std::string id;    ///< e.g. "M0917-like"
    std::string name;  ///< e.g. "User Training"
    long long cost = 1;              ///< implementation + upkeep cost units
    qual::Level strength = qual::Level::Medium;  ///< resistance added
};

class AttackMatrix {
public:
    void add_technique(Technique technique);
    void add_mitigation(Mitigation mitigation);

    const std::vector<Technique>& techniques() const { return techniques_; }
    const std::vector<Mitigation>& mitigations() const { return mitigations_; }

    const Technique* find_technique(std::string_view id) const;
    const Mitigation* find_mitigation(std::string_view id) const;

    /// Techniques applicable to a component type.
    std::vector<const Technique*> techniques_for(const model::Component& component) const;

    /// Techniques of one tactic.
    std::vector<const Technique*> techniques_in(Tactic tactic) const;

    /// Mitigations that block a given technique.
    std::vector<const Mitigation*> mitigations_for(const Technique& technique) const;

    /// The embedded ICS-style matrix used by the case study; includes the
    /// paper's M1 "User Training" and M2 "Endpoint Security".
    static AttackMatrix standard_ics();

private:
    std::vector<Technique> techniques_;
    std::vector<Mitigation> mitigations_;
};

}  // namespace cprisk::security
