// cprisk/security/threat_actor.hpp
//
// Threat actor profiles (paper §IV: "an attacker's ability to exploit a
// vulnerability depends on factors such as their attack profile, skill, and
// motivation"; §IV-A step 3: threat actor identification).
#pragma once

#include <string>
#include <vector>

#include "model/component.hpp"
#include "qualitative/level.hpp"

namespace cprisk::security {

struct ThreatActor {
    std::string id;
    std::string name;
    qual::Level capability = qual::Level::Medium;   ///< TCap in FAIR terms
    qual::Level motivation = qual::Level::Medium;   ///< drives probability of action
    /// Exposure classes this actor can initially reach.
    std::vector<model::Exposure> reachable_exposures;

    /// True if the actor can initially contact a component with `exposure`.
    bool can_reach(model::Exposure exposure) const;

    /// True if the actor can execute a technique needing `required` skill.
    bool capable_of(qual::Level required) const { return capability >= required; }
};

/// The standard actor roster used by the examples and benches.
std::vector<ThreatActor> standard_threat_actors();

}  // namespace cprisk::security
