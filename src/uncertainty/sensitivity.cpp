#include "uncertainty/sensitivity.hpp"

namespace cprisk::uncertainty {

using qual::Level;
using qual::level_from_index;
using qual::LevelRange;

std::string SensitivityReport::to_string() const {
    std::string out = factor + ": input [" +
                      std::string(qual::to_short_string(input_range.lo)) + ".." +
                      std::string(qual::to_short_string(input_range.hi)) + "] -> risk [" +
                      std::string(qual::to_short_string(output_range.lo)) + ".." +
                      std::string(qual::to_short_string(output_range.hi)) + "] (" +
                      (sensitive ? "SENSITIVE" : "insensitive") + ")";
    return out;
}

LevelRange sweep(const std::function<Level(Level)>& f, LevelRange input) {
    Level lo = f(input.lo);
    Level hi = lo;
    for (int i = qual::index_of(input.lo); i <= qual::index_of(input.hi); ++i) {
        const Level out = f(level_from_index(i));
        lo = qual::qmin(lo, out);
        hi = qual::qmax(hi, out);
    }
    return LevelRange(lo, hi);
}

SensitivityReport ora_sensitivity(LevelRange lm_range, LevelRange lef_range, bool vary_lm) {
    SensitivityReport report;
    if (vary_lm) {
        report.factor = "LM";
        report.input_range = lm_range;
        // The fixed factor is pinned at its midpoint estimate.
        const Level lef = level_from_index(
            (qual::index_of(lef_range.lo) + qual::index_of(lef_range.hi)) / 2);
        report.output_range = sweep([&](Level lm) { return risk::ora_risk(lm, lef); }, lm_range);
    } else {
        report.factor = "LEF";
        report.input_range = lef_range;
        const Level lm = level_from_index(
            (qual::index_of(lm_range.lo) + qual::index_of(lm_range.hi)) / 2);
        report.output_range = sweep([&](Level lef) { return risk::ora_risk(lm, lef); }, lef_range);
    }
    report.sensitive = !report.output_range.is_exact();
    return report;
}

namespace {

Level midpoint(LevelRange range) {
    return level_from_index((qual::index_of(range.lo) + qual::index_of(range.hi)) / 2);
}

Level derive_point(const risk::RiskCalculus& calculus, Level cf, Level poa, Level tcap, Level rs,
                   Level pl, Level sl) {
    risk::RiskInputs inputs;
    inputs.contact_frequency = cf;
    inputs.probability_of_action = poa;
    inputs.threat_capability = tcap;
    inputs.resistance_strength = rs;
    inputs.primary_loss = pl;
    inputs.secondary_loss = sl;
    return calculus.derive(inputs).risk;
}

}  // namespace

UncertainRiskReport analyze_risk_sensitivity(const risk::RiskCalculus& calculus,
                                             const UncertainRiskInputs& inputs) {
    UncertainRiskReport report;

    struct Factor {
        const char* name;
        LevelRange range;
    };
    const std::vector<Factor> factors = {
        {"CF", inputs.contact_frequency},   {"PoA", inputs.probability_of_action},
        {"TCap", inputs.threat_capability}, {"RS", inputs.resistance_strength},
        {"PL", inputs.primary_loss},        {"SL", inputs.secondary_loss},
    };

    // One-at-a-time: sweep factor i over its range, others at midpoints.
    for (std::size_t i = 0; i < factors.size(); ++i) {
        std::vector<Level> point;
        point.reserve(factors.size());
        for (const Factor& factor : factors) point.push_back(midpoint(factor.range));

        SensitivityReport factor_report;
        factor_report.factor = factors[i].name;
        factor_report.input_range = factors[i].range;
        factor_report.output_range = sweep(
            [&](Level value) {
                auto p = point;
                p[i] = value;
                return derive_point(calculus, p[0], p[1], p[2], p[3], p[4], p[5]);
            },
            factors[i].range);
        factor_report.sensitive = !factor_report.output_range.is_exact();
        report.factors.push_back(std::move(factor_report));
    }

    // Joint sweep: full cartesian product over all ranges (5^6 = 15625 at
    // worst — trivial).
    Level lo = Level::VeryHigh;
    Level hi = Level::VeryLow;
    for (int cf = qual::index_of(inputs.contact_frequency.lo);
         cf <= qual::index_of(inputs.contact_frequency.hi); ++cf) {
        for (int poa = qual::index_of(inputs.probability_of_action.lo);
             poa <= qual::index_of(inputs.probability_of_action.hi); ++poa) {
            for (int tcap = qual::index_of(inputs.threat_capability.lo);
                 tcap <= qual::index_of(inputs.threat_capability.hi); ++tcap) {
                for (int rs = qual::index_of(inputs.resistance_strength.lo);
                     rs <= qual::index_of(inputs.resistance_strength.hi); ++rs) {
                    for (int pl = qual::index_of(inputs.primary_loss.lo);
                         pl <= qual::index_of(inputs.primary_loss.hi); ++pl) {
                        for (int sl = qual::index_of(inputs.secondary_loss.lo);
                             sl <= qual::index_of(inputs.secondary_loss.hi); ++sl) {
                            const Level risk_value = derive_point(
                                calculus, level_from_index(cf), level_from_index(poa),
                                level_from_index(tcap), level_from_index(rs),
                                level_from_index(pl), level_from_index(sl));
                            lo = qual::qmin(lo, risk_value);
                            hi = qual::qmax(hi, risk_value);
                        }
                    }
                }
            }
        }
    }
    report.risk_range = LevelRange(lo, hi);
    return report;
}

}  // namespace cprisk::uncertainty
