// cprisk/uncertainty/rough_set.hpp
//
// Rough Set Theory (paper §V-A, refs [29][30]): approximation of a target
// concept from an information system of qualitative observations. "The
// result of the RST approximation consists of three sets": the positive
// region (certainly in the concept), the negative region (certainly not),
// and the boundary region (undecidable from the available attributes) —
// boundary objects are where the analyst must refine or consult experts.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace cprisk::uncertainty {

/// A decision table: objects described by categorical attributes plus one
/// decision attribute.
class InformationSystem {
public:
    using ObjectId = std::size_t;

    /// Adds an object; `attributes` maps attribute name -> value and must
    /// cover all previously seen attribute names (rectangular table).
    /// Returns the object's id.
    Result<ObjectId> add_object(std::map<std::string, std::string> attributes,
                                std::string decision);

    std::size_t object_count() const { return objects_.size(); }
    const std::vector<std::string>& attribute_names() const { return attribute_names_; }

    const std::string& value(ObjectId object, const std::string& attribute) const;
    const std::string& decision(ObjectId object) const;

    /// Equivalence classes of the indiscernibility relation IND(attrs):
    /// objects identical on every attribute in `attrs` fall together.
    std::vector<std::set<ObjectId>> equivalence_classes(
        const std::vector<std::string>& attrs) const;

    /// Objects whose decision equals `decision_value`.
    std::set<ObjectId> decision_class(const std::string& decision_value) const;

    /// Lower approximation of `target` under IND(attrs): union of classes
    /// fully inside the target.
    std::set<ObjectId> lower_approximation(const std::set<ObjectId>& target,
                                           const std::vector<std::string>& attrs) const;

    /// Upper approximation: union of classes intersecting the target.
    std::set<ObjectId> upper_approximation(const std::set<ObjectId>& target,
                                           const std::vector<std::string>& attrs) const;

    struct Regions {
        std::set<ObjectId> positive;  ///< certainly in the concept
        std::set<ObjectId> negative;  ///< certainly outside
        std::set<ObjectId> boundary;  ///< uncertain — candidates for refinement
    };

    /// Positive/negative/boundary split for a decision value under attrs.
    Regions regions(const std::string& decision_value,
                    const std::vector<std::string>& attrs) const;

    /// Degree of dependency gamma(attrs -> decision): fraction of objects in
    /// the positive region over all decision classes. 1.0 = the attributes
    /// determine the decision exactly.
    double dependency_degree(const std::vector<std::string>& attrs) const;

    /// Minimal attribute subsets preserving the full-attribute dependency
    /// degree (decision-relative reducts; exhaustive search — suitable for
    /// the small qualitative tables this framework produces).
    std::vector<std::vector<std::string>> reducts() const;

private:
    struct Object {
        std::map<std::string, std::string> attributes;
        std::string decision;
    };
    std::vector<Object> objects_;
    std::vector<std::string> attribute_names_;
};

}  // namespace cprisk::uncertainty
