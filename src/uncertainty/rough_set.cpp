#include "uncertainty/rough_set.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cprisk::uncertainty {

Result<InformationSystem::ObjectId> InformationSystem::add_object(
    std::map<std::string, std::string> attributes, std::string decision) {
    if (objects_.empty()) {
        for (const auto& [name, value] : attributes) {
            (void)value;
            attribute_names_.push_back(name);
        }
    } else {
        if (attributes.size() != attribute_names_.size()) {
            return Result<ObjectId>::failure("InformationSystem: attribute arity mismatch");
        }
        for (const std::string& name : attribute_names_) {
            if (attributes.find(name) == attributes.end()) {
                return Result<ObjectId>::failure("InformationSystem: missing attribute '" + name +
                                                 "'");
            }
        }
    }
    objects_.push_back(Object{std::move(attributes), std::move(decision)});
    return objects_.size() - 1;
}

const std::string& InformationSystem::value(ObjectId object, const std::string& attribute) const {
    require(object < objects_.size(), "InformationSystem: object id out of range");
    auto it = objects_[object].attributes.find(attribute);
    require(it != objects_[object].attributes.end(),
            "InformationSystem: unknown attribute '" + attribute + "'");
    return it->second;
}

const std::string& InformationSystem::decision(ObjectId object) const {
    require(object < objects_.size(), "InformationSystem: object id out of range");
    return objects_[object].decision;
}

std::vector<std::set<InformationSystem::ObjectId>> InformationSystem::equivalence_classes(
    const std::vector<std::string>& attrs) const {
    std::map<std::string, std::set<ObjectId>> classes;
    for (ObjectId object = 0; object < objects_.size(); ++object) {
        std::string key;
        for (const std::string& attribute : attrs) {
            key += value(object, attribute) + "\x1f";
        }
        classes[key].insert(object);
    }
    std::vector<std::set<ObjectId>> out;
    out.reserve(classes.size());
    for (auto& [key, members] : classes) {
        (void)key;
        out.push_back(std::move(members));
    }
    return out;
}

std::set<InformationSystem::ObjectId> InformationSystem::decision_class(
    const std::string& decision_value) const {
    std::set<ObjectId> out;
    for (ObjectId object = 0; object < objects_.size(); ++object) {
        if (objects_[object].decision == decision_value) out.insert(object);
    }
    return out;
}

std::set<InformationSystem::ObjectId> InformationSystem::lower_approximation(
    const std::set<ObjectId>& target, const std::vector<std::string>& attrs) const {
    std::set<ObjectId> out;
    for (const auto& eq_class : equivalence_classes(attrs)) {
        const bool inside = std::all_of(eq_class.begin(), eq_class.end(), [&](ObjectId object) {
            return target.count(object) > 0;
        });
        if (inside) out.insert(eq_class.begin(), eq_class.end());
    }
    return out;
}

std::set<InformationSystem::ObjectId> InformationSystem::upper_approximation(
    const std::set<ObjectId>& target, const std::vector<std::string>& attrs) const {
    std::set<ObjectId> out;
    for (const auto& eq_class : equivalence_classes(attrs)) {
        const bool intersects = std::any_of(eq_class.begin(), eq_class.end(), [&](ObjectId object) {
            return target.count(object) > 0;
        });
        if (intersects) out.insert(eq_class.begin(), eq_class.end());
    }
    return out;
}

InformationSystem::Regions InformationSystem::regions(
    const std::string& decision_value, const std::vector<std::string>& attrs) const {
    const std::set<ObjectId> target = decision_class(decision_value);
    Regions regions;
    regions.positive = lower_approximation(target, attrs);
    const std::set<ObjectId> upper = upper_approximation(target, attrs);
    for (ObjectId object = 0; object < objects_.size(); ++object) {
        if (upper.count(object) == 0) {
            regions.negative.insert(object);
        } else if (regions.positive.count(object) == 0) {
            regions.boundary.insert(object);
        }
    }
    return regions;
}

double InformationSystem::dependency_degree(const std::vector<std::string>& attrs) const {
    if (objects_.empty()) return 1.0;
    std::set<std::string> decisions;
    for (const Object& object : objects_) decisions.insert(object.decision);
    std::set<ObjectId> positive;
    for (const std::string& decision_value : decisions) {
        const auto lower = lower_approximation(decision_class(decision_value), attrs);
        positive.insert(lower.begin(), lower.end());
    }
    return static_cast<double>(positive.size()) / static_cast<double>(objects_.size());
}

std::vector<std::vector<std::string>> InformationSystem::reducts() const {
    std::vector<std::vector<std::string>> out;
    const double full = dependency_degree(attribute_names_);
    const std::size_t n = attribute_names_.size();
    require(n <= 20, "InformationSystem::reducts: too many attributes for exhaustive search");

    // Enumerate subsets by increasing size so minimality holds by
    // construction: a subset qualifies only if no smaller reduct is
    // contained in it.
    for (std::size_t size = 1; size <= n; ++size) {
        for (std::size_t mask = 1; mask < (1u << n); ++mask) {
            if (static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(mask))) !=
                size) {
                continue;
            }
            std::vector<std::string> subset;
            for (std::size_t bit = 0; bit < n; ++bit) {
                if (mask & (1u << bit)) subset.push_back(attribute_names_[bit]);
            }
            if (dependency_degree(subset) + 1e-12 < full) continue;
            const bool superset_of_existing = std::any_of(
                out.begin(), out.end(), [&](const std::vector<std::string>& reduct) {
                    return std::includes(subset.begin(), subset.end(), reduct.begin(),
                                         reduct.end());
                });
            if (!superset_of_existing) out.push_back(subset);
        }
    }
    return out;
}

}  // namespace cprisk::uncertainty
