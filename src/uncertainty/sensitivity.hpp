// cprisk/uncertainty/sensitivity.hpp
//
// Sensitivity analysis over the qualitative risk factors (paper §V-A):
// "sensitivity analysis examines how uncertain factors impact the output by
// altering its values ... If a sensitivity analysis reveals that a factor
// of the risk is sensitive, further evaluation is required." This is also
// the paper's §II-A modeling support: it highlights which estimates are
// critical for the overall result.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "qualitative/algebra.hpp"
#include "risk/ora.hpp"

namespace cprisk::uncertainty {

/// Sensitivity verdict for one factor.
struct SensitivityReport {
    std::string factor;
    qual::LevelRange input_range;   ///< the uncertainty supplied
    qual::LevelRange output_range;  ///< resulting risk spread
    bool sensitive = false;         ///< output varies over the input range

    std::string to_string() const;
};

/// Output range of an ordinal function when one input sweeps a range.
qual::LevelRange sweep(const std::function<qual::Level(qual::Level)>& f,
                       qual::LevelRange input);

/// The paper's worked example: Risk(LM, LEF) with one factor uncertain.
/// Sweeps `lm_range` at fixed `lef` (or vice versa via `vary_lm = false`).
SensitivityReport ora_sensitivity(qual::LevelRange lm_range, qual::LevelRange lef_range,
                                  bool vary_lm);

/// Uncertain variant of the full Fig. 2 derivation: every leaf is a range;
/// reports per-factor sensitivity of the final Risk (one-at-a-time sweep
/// around the range midpoints) plus the overall risk range (all factors
/// swept jointly).
struct UncertainRiskInputs {
    qual::LevelRange contact_frequency{qual::Level::Medium};
    qual::LevelRange probability_of_action{qual::Level::Medium};
    qual::LevelRange threat_capability{qual::Level::Medium};
    qual::LevelRange resistance_strength{qual::Level::Medium};
    qual::LevelRange primary_loss{qual::Level::Medium};
    qual::LevelRange secondary_loss{qual::Level::Medium};
};

struct UncertainRiskReport {
    std::vector<SensitivityReport> factors;  ///< one-at-a-time sensitivity
    qual::LevelRange risk_range;             ///< joint sweep over all factors
};

UncertainRiskReport analyze_risk_sensitivity(const risk::RiskCalculus& calculus,
                                             const UncertainRiskInputs& inputs);

}  // namespace cprisk::uncertainty
