// cprisk/hierarchy/cegar.hpp
//
// CEGAR-styled hazard refinement (paper step 5): "the shortlist of
// potentially successful attacks may contain spurious solutions due to
// over-abstraction (but the method guarantees that no actual hazardous
// attack is overlooked). This way, a successive iteration after CEGAR-styled
// model refinement and re-analysis ... is needed to eliminate false
// solutions."
//
// Round 1 runs the abstract (topology-focus) analysis over the scenario
// space, producing candidate hazards. Each further round re-evaluates only
// the surviving candidates under a more precise analysis (behavioural
// focus, optionally on a structurally refined model); candidates that stop
// violating are recorded as spurious and eliminated. The soundness property
// — every hazard confirmed at the concrete level was already flagged
// abstractly — is property-tested in tests/hierarchy.
//
// The refinement walks the ladder *per scenario* (scenarios are independent,
// so this yields the same hazard set and per-stage statistics as a
// stage-major sweep) which enables two robustness features:
//  - checkpoint/resume: each finished scenario yields one ScenarioRecord
//    that hooks can journal and replay (core/journal.hpp);
//  - graceful degradation: a scenario whose most precise solve ends
//    Undetermined (budget/deadline/solver error) is retried once on the
//    previous, cheaper stage. The abstract stage over-approximates, so a
//    *complete* abstract Safe soundly eliminates the scenario; anything
//    else records it Undetermined instead of failing the run.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/budget.hpp"
#include "epa/epa.hpp"
#include "security/scenario.hpp"

namespace cprisk::hierarchy {

/// One refinement stage: an analysis configuration of increasing precision.
struct CegarStage {
    std::string name;  ///< e.g. "topology", "behavioral", "behavioral+refined"
    const model::SystemModel* model = nullptr;
    epa::AnalysisFocus focus = epa::AnalysisFocus::Topology;
    std::vector<epa::Requirement> requirements;
    int horizon = 4;
};

struct CegarIterationStats {
    std::string stage_name;
    std::size_t candidates_in = 0;   ///< scenarios entering this round
    std::size_t hazards_out = 0;     ///< still violating after this round
    std::size_t spurious_eliminated = 0;
};

/// Where one scenario ended up after walking the stage ladder.
enum class ScenarioOutcome : std::uint8_t {
    Safe,          ///< complete Safe at the most abstract stage
    Spurious,      ///< flagged abstractly, eliminated by a later stage
    Confirmed,     ///< hazardous at the most precise stage
    Undetermined,  ///< resources ran out before a sound conclusion
};

std::string_view to_string(ScenarioOutcome outcome);
std::optional<ScenarioOutcome> parse_scenario_outcome(std::string_view text);

/// Outcome of one scenario at one stage of the ladder.
struct StageOutcome {
    std::string stage;  ///< CegarStage::name
    epa::VerdictStatus status = epa::VerdictStatus::Safe;
    std::optional<epa::UndeterminedReason> undetermined_reason;
    /// True for the fallback re-evaluation on the previous, cheaper stage
    /// after an undetermined final-stage solve (the degradation ladder).
    bool degraded = false;
};

/// Complete, journal-able record of one scenario's walk down the ladder.
/// Replaying records (see CegarHooks::lookup) reconstructs the exact
/// CegarResult of an uninterrupted run.
struct ScenarioRecord {
    std::string scenario_id;
    ScenarioOutcome outcome = ScenarioOutcome::Safe;
    std::vector<StageOutcome> stages;  ///< in evaluation order
    /// The verdict backing the outcome (final-stage verdict for Confirmed;
    /// the eliminating verdict for Safe/Spurious; the last undetermined
    /// verdict otherwise).
    epa::ScenarioVerdict verdict;
    /// Expected-risk score in micro-units (risk/prior.hpp) under the run's
    /// priority policy; -1 = not scored (PriorityPolicy::Enumeration).
    /// Stamped by the assessment pipeline when journaling, so an anytime
    /// interruption's journal shows the risk mass already covered.
    long long expected_risk_micros = -1;
};

/// Checkpoint/resume seams. Both hooks are optional.
struct CegarHooks {
    /// Consulted before a scenario is evaluated; returning a record skips
    /// evaluation and replays it (journal resume).
    std::function<std::optional<ScenarioRecord>(const std::string& scenario_id)> lookup;
    /// Called once per scenario with its final record (journal append). A
    /// failure aborts the run.
    std::function<Result<void>(const ScenarioRecord&)> completed;
};

struct CegarOptions {
    /// Per-solve decision cap applied to every stage (0 = solver default).
    std::size_t max_decisions = 0;
    /// Forwarded to every stage's EpaOptions::static_prefilter
    /// (docs/static-analysis.md).
    bool static_prefilter = true;
    /// Forwarded to every stage's EpaOptions::solver (docs/solver.md).
    /// Verdict-neutral: both engines produce identical records.
    asp::SolverEngine solver = asp::SolverEngine::Cdcl;
    /// Unified run state: budget, worker pool, trace sink, metrics registry
    /// (obs/run_context.hpp). Borrowed; must outlive the run. Worker lanes
    /// come from ctx->jobs (0 = hardware concurrency, 1 = the sequential
    /// engine); records, statistics, and the order of `completed` hook
    /// invocations are independent of the value: finished walks are drained
    /// to the hook strictly in scenario order (docs/performance.md).
    RunContext* ctx = nullptr;
    CegarHooks hooks;

    /// Resolved views over the run context (see epa::EpaOptions for the
    /// idiom).
    Budget* effective_budget() const { return ctx != nullptr ? &ctx->budget : nullptr; }
    std::size_t effective_jobs() const { return ctx != nullptr ? ctx->jobs : 1; }
    obs::TraceSink* trace_sink() const { return ctx != nullptr ? ctx->trace : nullptr; }
    obs::MetricsRegistry* metrics_sink() const { return ctx != nullptr ? ctx->metrics : nullptr; }
};

struct CegarResult {
    /// Verdicts of scenarios still hazardous after the last stage.
    std::vector<epa::ScenarioVerdict> confirmed;
    /// Scenarios whose evaluation ran out of resources, with the reason in
    /// the verdict (sorted by scenario id). A non-empty list means the
    /// hazard identification was NOT exhaustive.
    std::vector<epa::ScenarioVerdict> undetermined;
    /// Scenario ids eliminated as spurious, per stage.
    std::vector<std::vector<std::string>> eliminated_per_stage;
    std::vector<CegarIterationStats> iterations;
    /// One record per scenario, in scenario-space order.
    std::vector<ScenarioRecord> records;

    std::size_t total_spurious() const;
    bool complete() const { return undetermined.empty(); }
};

/// Runs the staged refinement over `space`. Stages must be ordered from the
/// most abstract to the most precise; each scenario walks the ladder until
/// a stage soundly eliminates it (complete Safe) or the last stage confirms
/// it.
Result<CegarResult> run_cegar(const std::vector<CegarStage>& stages,
                              const security::ScenarioSpace& space,
                              const epa::MitigationMap& mitigations,
                              const std::vector<std::string>& active_mitigations,
                              const CegarOptions& options = {});

}  // namespace cprisk::hierarchy
