// cprisk/hierarchy/cegar.hpp
//
// CEGAR-styled hazard refinement (paper step 5): "the shortlist of
// potentially successful attacks may contain spurious solutions due to
// over-abstraction (but the method guarantees that no actual hazardous
// attack is overlooked). This way, a successive iteration after CEGAR-styled
// model refinement and re-analysis ... is needed to eliminate false
// solutions."
//
// Round 1 runs the abstract (topology-focus) analysis over the scenario
// space, producing candidate hazards. Each further round re-evaluates only
// the surviving candidates under a more precise analysis (behavioural
// focus, optionally on a structurally refined model); candidates that stop
// violating are recorded as spurious and eliminated. The soundness property
// — every hazard confirmed at the concrete level was already flagged
// abstractly — is property-tested in tests/hierarchy.
#pragma once

#include <string>
#include <vector>

#include "epa/epa.hpp"
#include "security/scenario.hpp"

namespace cprisk::hierarchy {

/// One refinement stage: an analysis configuration of increasing precision.
struct CegarStage {
    std::string name;  ///< e.g. "topology", "behavioral", "behavioral+refined"
    const model::SystemModel* model = nullptr;
    epa::AnalysisFocus focus = epa::AnalysisFocus::Topology;
    std::vector<epa::Requirement> requirements;
    int horizon = 4;
};

struct CegarIterationStats {
    std::string stage_name;
    std::size_t candidates_in = 0;   ///< scenarios entering this round
    std::size_t hazards_out = 0;     ///< still violating after this round
    std::size_t spurious_eliminated = 0;
};

struct CegarResult {
    /// Verdicts of scenarios still hazardous after the last stage.
    std::vector<epa::ScenarioVerdict> confirmed;
    /// Scenario ids eliminated as spurious, per stage.
    std::vector<std::vector<std::string>> eliminated_per_stage;
    std::vector<CegarIterationStats> iterations;

    std::size_t total_spurious() const;
};

/// Runs the staged refinement over `space`. Stages must be ordered from the
/// most abstract to the most precise; every scenario is evaluated at stage
/// 0, and only surviving candidates are re-evaluated at later stages.
Result<CegarResult> run_cegar(const std::vector<CegarStage>& stages,
                              const security::ScenarioSpace& space,
                              const epa::MitigationMap& mitigations,
                              const std::vector<std::string>& active_mitigations);

}  // namespace cprisk::hierarchy
