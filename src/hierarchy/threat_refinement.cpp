#include "hierarchy/threat_refinement.hpp"

#include <algorithm>
#include <set>

#include "analysis/reachability.hpp"

namespace cprisk::hierarchy {

std::string_view to_string(ThreatAspect aspect) {
    switch (aspect) {
        case ThreatAspect::Availability: return "availability";
        case ThreatAspect::Integrity: return "integrity";
    }
    return "?";
}

namespace {

/// Effect class -> endangered aspect. Omission/delay stop the service
/// (availability); value-domain effects corrupt it (integrity); a
/// compromise endangers both.
bool endangers(model::FaultEffect effect, ThreatAspect aspect) {
    switch (effect) {
        case model::FaultEffect::Omission:
        case model::FaultEffect::Delay:
            return aspect == ThreatAspect::Availability;
        case model::FaultEffect::StuckAt:
        case model::FaultEffect::Corruption:
            return aspect == ThreatAspect::Integrity;
        case model::FaultEffect::Compromise: return true;
    }
    return false;
}

}  // namespace

ThreatRefinementResult refine_threats(const model::SystemModel& model,
                                      const std::vector<epa::ScenarioVerdict>& verdicts,
                                      const epa::MitigationMap& mitigation_map) {
    ThreatRefinementResult result;

    // --- level 1: endangered aspects of OT assets --------------------------
    // One reachability closure for the whole asset x source sweep; querying
    // SystemModel::reachable_from per pair re-walked the relation list for
    // every hop of every pair.
    const analysis::ReachabilityClosure closure(model);
    for (const model::Component& asset : model.components()) {
        if (!model::is_ot(asset.type)) continue;
        if (model.is_refined(asset.id)) continue;
        for (ThreatAspect aspect : {ThreatAspect::Availability, ThreatAspect::Integrity}) {
            EndangeredAspect finding;
            finding.asset = asset.id;
            finding.aspect = aspect;
            for (const model::Component& source : model.components()) {
                if (model.is_refined(source.id)) continue;
                const bool has_matching_fault = std::any_of(
                    source.fault_modes.begin(), source.fault_modes.end(),
                    [&](const model::FaultMode& mode) { return endangers(mode.effect, aspect); });
                if (!has_matching_fault) continue;
                const bool reaches =
                    source.id == asset.id || closure.reaches(source.id, asset.id);
                if (reaches) finding.sources.push_back(source.id);
            }
            if (!finding.sources.empty()) result.endangered.push_back(std::move(finding));
        }
    }

    // --- level 2: concrete threats from the EPA verdicts --------------------
    std::map<std::string, ConcreteThreat> ranked;
    for (const epa::ScenarioVerdict& verdict : verdicts) {
        if (!verdict.any_violation()) continue;
        for (const security::Mutation& mutation : verdict.injected) {
            auto [it, inserted] =
                ranked.emplace(mutation.to_string(), ConcreteThreat{mutation});
            it->second.severity = qual::qmax(it->second.severity, verdict.severity);
        }
    }
    for (auto& [key, value] : ranked) {
        (void)key;
        result.concrete_threats.push_back(std::move(value));
    }
    std::sort(result.concrete_threats.begin(), result.concrete_threats.end(),
              [](const ConcreteThreat& a, const ConcreteThreat& b) {
                  if (a.severity != b.severity) return b.severity < a.severity;
                  return a.mutation < b.mutation;
              });

    // --- level 3: mitigation attachment --------------------------------------
    for (const ConcreteThreat& threat : result.concrete_threats) {
        std::vector<std::string> applicable;
        for (const epa::MitigationMap::Entry& entry : mitigation_map.entries()) {
            if (entry.component == threat.mutation.component &&
                entry.fault_id == threat.mutation.fault_id) {
                if (std::find(applicable.begin(), applicable.end(), entry.mitigation_id) ==
                    applicable.end()) {
                    applicable.push_back(entry.mitigation_id);
                }
            }
        }
        if (!applicable.empty()) {
            result.mitigations.emplace(threat.mutation.to_string(), applicable);
        }
    }
    return result;
}

std::vector<security::Mutation> ThreatRefinementResult::unmitigated() const {
    std::vector<security::Mutation> out;
    for (const ConcreteThreat& threat : concrete_threats) {
        if (mitigations.count(threat.mutation.to_string()) == 0) out.push_back(threat.mutation);
    }
    return out;
}

}  // namespace cprisk::hierarchy
