#include "hierarchy/cegar.hpp"

#include <algorithm>
#include <mutex>

#include "common/thread_pool.hpp"

namespace cprisk::hierarchy {

std::size_t CegarResult::total_spurious() const {
    std::size_t total = 0;
    for (const auto& stage : eliminated_per_stage) total += stage.size();
    return total;
}

std::string_view to_string(ScenarioOutcome outcome) {
    switch (outcome) {
        case ScenarioOutcome::Safe: return "safe";
        case ScenarioOutcome::Spurious: return "spurious";
        case ScenarioOutcome::Confirmed: return "confirmed";
        case ScenarioOutcome::Undetermined: return "undetermined";
    }
    return "undetermined";
}

std::optional<ScenarioOutcome> parse_scenario_outcome(std::string_view text) {
    if (text == "safe") return ScenarioOutcome::Safe;
    if (text == "spurious") return ScenarioOutcome::Spurious;
    if (text == "confirmed") return ScenarioOutcome::Confirmed;
    if (text == "undetermined") return ScenarioOutcome::Undetermined;
    return std::nullopt;
}

namespace {

StageOutcome outcome_of(const std::string& stage_name, const epa::ScenarioVerdict& verdict,
                        bool degraded) {
    StageOutcome out;
    out.stage = stage_name;
    out.status = verdict.status;
    out.undetermined_reason = verdict.undetermined_reason;
    out.degraded = degraded;
    return out;
}

/// Walks one scenario down the stage ladder. Stops on the first *complete*
/// Safe (sound elimination: every stage over-approximates the stages after
/// it); walks past Hazard and Undetermined verdicts — the most precise
/// stage has the last word. An undetermined final stage falls back once to
/// the previous, cheaper stage (skipped when that stage already produced a
/// complete Hazard for this scenario — a deterministic re-run cannot
/// eliminate it).
Result<ScenarioRecord> walk_ladder(const std::vector<CegarStage>& stages,
                                   const std::vector<epa::ErrorPropagationAnalysis>& analyses,
                                   const security::AttackScenario& scenario,
                                   const std::vector<std::string>& active_mitigations,
                                   const CegarOptions& options) {
    ScenarioRecord record;
    record.scenario_id = scenario.id;
    // One scenario-scoped span per ladder walk; the nested epa.evaluate /
    // asp.* spans inherit the scenario id through the thread-local stack.
    obs::Span span(options.trace_sink(), "cegar.walk", "scenario", scenario.id);

    for (std::size_t k = 0; k < stages.size(); ++k) {
        auto verdict = analyses[k].evaluate(scenario, active_mitigations);
        if (!verdict.ok()) return Result<ScenarioRecord>::failure(verdict.error());
        record.verdict = std::move(verdict).value();
        record.stages.push_back(outcome_of(stages[k].name, record.verdict, false));
        if (record.verdict.status == epa::VerdictStatus::Safe) {
            record.outcome = k == 0 ? ScenarioOutcome::Safe : ScenarioOutcome::Spurious;
            return record;
        }
    }

    if (record.verdict.status == epa::VerdictStatus::Hazard) {
        record.outcome = ScenarioOutcome::Confirmed;
        return record;
    }

    // Final stage undetermined: degradation retry on the previous stage.
    const std::size_t last = stages.size() - 1;
    if (last > 0 && record.stages[last - 1].status != epa::VerdictStatus::Hazard) {
        obs::add_counter(options.metrics_sink(), "cegar.degraded_retries");
        auto retry = analyses[last - 1].evaluate(scenario, active_mitigations);
        if (!retry.ok()) return Result<ScenarioRecord>::failure(retry.error());
        epa::ScenarioVerdict fallback = std::move(retry).value();
        record.stages.push_back(outcome_of(stages[last - 1].name, fallback, true));
        if (fallback.status == epa::VerdictStatus::Safe) {
            // Complete Safe at the more abstract stage implies Safe at every
            // more precise one.
            record.outcome = ScenarioOutcome::Spurious;
            record.verdict = std::move(fallback);
            return record;
        }
    }
    record.outcome = ScenarioOutcome::Undetermined;
    return record;
}

void sort_by_scenario_id(std::vector<epa::ScenarioVerdict>& verdicts) {
    std::sort(verdicts.begin(), verdicts.end(),
              [](const epa::ScenarioVerdict& a, const epa::ScenarioVerdict& b) {
                  return a.scenario_id < b.scenario_id;
              });
}

/// Rebuilds the stage-major statistics from the per-scenario records, so a
/// resumed run (records replayed from the journal) reports identically to
/// an uninterrupted one.
void derive_statistics(const std::vector<CegarStage>& stages, CegarResult& result) {
    const std::size_t n = stages.size();
    result.iterations.assign(n, CegarIterationStats{});
    result.eliminated_per_stage.assign(n, {});
    for (std::size_t k = 0; k < n; ++k) result.iterations[k].stage_name = stages[k].name;

    for (const ScenarioRecord& record : result.records) {
        for (std::size_t k = 0; k < record.stages.size() && k < n; ++k) {
            const StageOutcome& at_stage = record.stages[k];
            if (at_stage.degraded) break;  // appended after the ladder walk
            CegarIterationStats& stats = result.iterations[k];
            ++stats.candidates_in;
            switch (at_stage.status) {
                case epa::VerdictStatus::Hazard: ++stats.hazards_out; break;
                case epa::VerdictStatus::Safe:
                    if (k > 0) {
                        ++stats.spurious_eliminated;
                        result.eliminated_per_stage[k].push_back(record.scenario_id);
                    }
                    break;
                case epa::VerdictStatus::Undetermined: break;
            }
        }
        // Eliminations via the degraded fallback leave the candidate set at
        // the last stage.
        if (record.outcome == ScenarioOutcome::Spurious && !record.stages.empty() &&
            record.stages.back().degraded) {
            ++result.iterations[n - 1].spurious_eliminated;
            result.eliminated_per_stage[n - 1].push_back(record.scenario_id);
        }
    }
}

}  // namespace

Result<CegarResult> run_cegar(const std::vector<CegarStage>& stages,
                              const security::ScenarioSpace& space,
                              const epa::MitigationMap& mitigations,
                              const std::vector<std::string>& active_mitigations,
                              const CegarOptions& options) {
    if (stages.empty()) return Result<CegarResult>::failure("CEGAR: no stages given");

    std::vector<epa::ErrorPropagationAnalysis> analyses;
    analyses.reserve(stages.size());
    for (const CegarStage& stage : stages) {
        if (stage.model == nullptr) {
            return Result<CegarResult>::failure("CEGAR: stage '" + stage.name + "' has no model");
        }
        obs::Span setup_span(options.trace_sink(), "cegar.stage_setup", "setup");
        setup_span.arg("stage", stage.name);
        epa::EpaOptions epa_options;
        epa_options.focus = stage.focus;
        epa_options.horizon = stage.horizon;
        epa_options.max_decisions = options.max_decisions;
        epa_options.static_prefilter = options.static_prefilter;
        epa_options.solver = options.solver;
        epa_options.ctx = options.ctx;
        auto epa = epa::ErrorPropagationAnalysis::create(*stage.model, stage.requirements,
                                                         mitigations, epa_options);
        if (!epa.ok()) {
            return Result<CegarResult>::failure("CEGAR stage '" + stage.name +
                                                "': " + epa.error());
        }
        analyses.push_back(std::move(epa).value());
    }

    CegarResult result;
    result.records.reserve(space.size());
    const auto& scenarios = space.scenarios();
    const std::size_t jobs = std::min(ThreadPool::resolve(options.effective_jobs()),
                                      std::max<std::size_t>(scenarios.size(), 1));
    if (jobs <= 1) {
        for (const security::AttackScenario& scenario : scenarios) {
            if (options.hooks.lookup) {
                if (std::optional<ScenarioRecord> replayed = options.hooks.lookup(scenario.id)) {
                    result.records.push_back(std::move(*replayed));
                    continue;
                }
            }
            auto record = walk_ladder(stages, analyses, scenario, active_mitigations, options);
            if (!record.ok()) return Result<CegarResult>::failure(record.error());
            if (options.hooks.completed) {
                auto appended = options.hooks.completed(record.value());
                if (!appended.ok()) return Result<CegarResult>::failure(appended.error());
            }
            result.records.push_back(std::move(record).value());
        }
    } else {
        // Parallel walk. The lookup hook mutates caller state (resume
        // counters), so replays are resolved in a sequential pre-pass; only
        // the remaining scenarios go to the pool. Finished walks are drained
        // in strict scenario order — the `completed` hook (journal append)
        // fires for scenario i only once 0..i-1 are drained — so the journal
        // is byte-identical to a sequential run at any job count, and on
        // failure it holds exactly the records preceding the first error.
        struct Slot {
            bool replayed = false;
            std::optional<Result<ScenarioRecord>> record;
        };
        std::vector<Slot> slots(scenarios.size());
        std::vector<std::size_t> pending;
        pending.reserve(scenarios.size());
        for (std::size_t i = 0; i < scenarios.size(); ++i) {
            if (options.hooks.lookup) {
                if (std::optional<ScenarioRecord> replayed =
                        options.hooks.lookup(scenarios[i].id)) {
                    slots[i].replayed = true;
                    slots[i].record = Result<ScenarioRecord>(std::move(*replayed));
                    continue;
                }
            }
            pending.push_back(i);
        }

        // drain_mutex guards the slots, the drain cursor, and first_error;
        // workers publish their record and drain under one critical section.
        std::mutex drain_mutex;
        std::size_t next_to_drain = 0;
        std::optional<std::string> first_error;
        const auto drain_ready_prefix_locked = [&] {
            while (next_to_drain < slots.size() && !first_error &&
                   slots[next_to_drain].record.has_value()) {
                Slot& slot = slots[next_to_drain];
                if (!slot.record->ok()) {
                    first_error = slot.record->error();
                    break;
                }
                if (!slot.replayed && options.hooks.completed) {
                    auto appended = options.hooks.completed(slot.record->value());
                    if (!appended.ok()) {
                        first_error = appended.error();
                        break;
                    }
                }
                result.records.push_back(std::move(*slot.record).value());
                ++next_to_drain;
            }
        };

        {
            // Replayed prefix first: a journalled run may be all-replay.
            std::lock_guard<std::mutex> lock(drain_mutex);
            drain_ready_prefix_locked();
        }
        std::optional<ThreadPool> local_pool;
        ThreadPool& pool =
            options.ctx != nullptr ? options.ctx->pool() : local_pool.emplace(jobs);
        obs::set_gauge(options.metrics_sink(), "cegar.pool.lanes",
                       static_cast<long long>(pool.jobs()));
        pool.run_batch(pending.size(), [&](std::size_t k) {
            const std::size_t index = pending[k];
            auto record =
                walk_ladder(stages, analyses, scenarios[index], active_mitigations, options);
            std::lock_guard<std::mutex> lock(drain_mutex);
            slots[index].record = std::move(record);
            drain_ready_prefix_locked();
        });
        std::lock_guard<std::mutex> lock(drain_mutex);
        drain_ready_prefix_locked();
        if (first_error) return Result<CegarResult>::failure(*first_error);
    }

    for (const ScenarioRecord& record : result.records) {
        if (record.outcome == ScenarioOutcome::Confirmed) {
            result.confirmed.push_back(record.verdict);
        } else if (record.outcome == ScenarioOutcome::Undetermined) {
            result.undetermined.push_back(record.verdict);
        }
        obs::add_counter(options.metrics_sink(),
                         std::string("cegar.scenarios.") + std::string(to_string(record.outcome)));
    }
    sort_by_scenario_id(result.confirmed);
    sort_by_scenario_id(result.undetermined);
    derive_statistics(stages, result);
    return result;
}

}  // namespace cprisk::hierarchy
