#include "hierarchy/cegar.hpp"

#include <algorithm>
#include <map>

namespace cprisk::hierarchy {

std::size_t CegarResult::total_spurious() const {
    std::size_t total = 0;
    for (const auto& stage : eliminated_per_stage) total += stage.size();
    return total;
}

Result<CegarResult> run_cegar(const std::vector<CegarStage>& stages,
                              const security::ScenarioSpace& space,
                              const epa::MitigationMap& mitigations,
                              const std::vector<std::string>& active_mitigations) {
    if (stages.empty()) return Result<CegarResult>::failure("CEGAR: no stages given");

    CegarResult result;

    // Candidates: all scenarios initially.
    std::vector<const security::AttackScenario*> candidates;
    candidates.reserve(space.size());
    for (const security::AttackScenario& scenario : space.scenarios()) {
        candidates.push_back(&scenario);
    }

    std::map<std::string, epa::ScenarioVerdict> last_verdicts;

    for (const CegarStage& stage : stages) {
        if (stage.model == nullptr) {
            return Result<CegarResult>::failure("CEGAR: stage '" + stage.name + "' has no model");
        }
        epa::EpaOptions options;
        options.focus = stage.focus;
        options.horizon = stage.horizon;
        auto epa = epa::ErrorPropagationAnalysis::create(*stage.model, stage.requirements,
                                                         mitigations, options);
        if (!epa.ok()) {
            return Result<CegarResult>::failure("CEGAR stage '" + stage.name +
                                                "': " + epa.error());
        }

        CegarIterationStats stats;
        stats.stage_name = stage.name;
        stats.candidates_in = candidates.size();

        std::vector<const security::AttackScenario*> survivors;
        std::vector<std::string> eliminated;
        for (const security::AttackScenario* scenario : candidates) {
            auto verdict = epa.value().evaluate(*scenario, active_mitigations);
            if (!verdict.ok()) return Result<CegarResult>::failure(verdict.error());
            if (verdict.value().any_violation()) {
                survivors.push_back(scenario);
                last_verdicts[scenario->id] = std::move(verdict).value();
            } else {
                eliminated.push_back(scenario->id);
                last_verdicts.erase(scenario->id);
            }
        }

        stats.hazards_out = survivors.size();
        // Round 1 filters non-hazards (not "spurious" — they were never
        // flagged); later rounds eliminate previously flagged candidates.
        stats.spurious_eliminated = (&stage == &stages.front()) ? 0 : eliminated.size();
        result.iterations.push_back(stats);
        result.eliminated_per_stage.push_back(&stage == &stages.front()
                                                  ? std::vector<std::string>{}
                                                  : std::move(eliminated));
        candidates = std::move(survivors);
    }

    for (const security::AttackScenario* scenario : candidates) {
        result.confirmed.push_back(last_verdicts.at(scenario->id));
    }
    std::sort(result.confirmed.begin(), result.confirmed.end(),
              [](const epa::ScenarioVerdict& a, const epa::ScenarioVerdict& b) {
                  return a.scenario_id < b.scenario_id;
              });
    return result;
}

}  // namespace cprisk::hierarchy
