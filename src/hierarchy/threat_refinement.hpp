// cprisk/hierarchy/threat_refinement.hpp
//
// The three threat refinement levels of the paper's §VI: "The first level is
// concerned with high-level aspects such as reliability, availability, and
// timeliness. At the second level, specific faults and vulnerabilities in
// the system are identified. Finally, at the lowest level, mitigation
// mechanisms are introduced."
//
//   Level 1 — per critical asset, which dependability aspects are endangered
//             at all (derived from the fault-effect classes that can reach
//             the asset through the topology);
//   Level 2 — the concrete (component, fault-mode) pairs confirmed by the
//             EPA to cause requirement violations;
//   Level 3 — the mitigation mechanisms attached to those concrete threats.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "epa/epa.hpp"
#include "security/scenario.hpp"

namespace cprisk::hierarchy {

/// Dependability aspects tracked at refinement level 1.
enum class ThreatAspect : std::uint8_t {
    Availability,  ///< service delivery can stop (omission/delay effects)
    Integrity,     ///< service can go wrong (corruption/stuck-at/compromise)
};

std::string_view to_string(ThreatAspect aspect);

/// Level-1 finding: an endangered aspect of a critical asset.
struct EndangeredAspect {
    model::ComponentId asset;
    ThreatAspect aspect = ThreatAspect::Integrity;
    /// Fault sources that can reach the asset with a matching effect class.
    std::vector<model::ComponentId> sources;
};

/// Level-2 finding: a mutation confirmed to participate in some requirement
/// violation, with the worst impact severity it was involved in.
struct ConcreteThreat {
    security::Mutation mutation;
    qual::Level severity = qual::Level::VeryLow;
};

struct ThreatRefinementResult {
    /// Level 1: endangered aspects of OT assets (topology + effect class).
    std::vector<EndangeredAspect> endangered;
    /// Level 2: concrete threats, most severe first.
    std::vector<ConcreteThreat> concrete_threats;
    /// Level 3: mitigation ids applicable to each concrete threat
    /// (keyed by Mutation::to_string()). Threats without entries have no
    /// known mitigation — residual risk.
    std::map<std::string, std::vector<std::string>> mitigations;

    /// Concrete threats with no applicable mitigation.
    std::vector<security::Mutation> unmitigated() const;
};

/// Runs all three refinement levels. `verdicts` must come from an EPA run
/// over `model` (any focus).
ThreatRefinementResult refine_threats(const model::SystemModel& model,
                                      const std::vector<epa::ScenarioVerdict>& verdicts,
                                      const epa::MitigationMap& mitigation_map);

}  // namespace cprisk::hierarchy
