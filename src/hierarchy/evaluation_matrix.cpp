#include "hierarchy/evaluation_matrix.hpp"

namespace cprisk::hierarchy {

std::string_view to_string(AssetLevel level) {
    switch (level) {
        case AssetLevel::MainAssets: return "main assets";
        case AssetLevel::RefinedAssets: return "refined assets";
    }
    return "?";
}

std::string_view to_string(ThreatLevel level) {
    switch (level) {
        case ThreatLevel::HighLevelAspects: return "high-level aspects";
        case ThreatLevel::SpecificFaults: return "specific faults/vulnerabilities";
        case ThreatLevel::Mitigations: return "mitigation mechanisms";
    }
    return "?";
}

TextTable evaluation_matrix_table() {
    TextTable table({"Assets \\ Threats", "high-level aspects", "specific faults/vulns",
                     "mitigation mechanisms"});
    table.add_row({"main assets", "1. topology-based propagation", "-", "-"});
    table.add_row({"refined assets", "-", "2. detailed propagation analysis",
                   "3. mitigation plan"});
    return table;
}

Result<HierarchicalResult> run_hierarchical_evaluation(
    const HierarchicalConfig& config, const security::ScenarioSpace& space,
    const security::AttackMatrix& matrix, const epa::MitigationMap& mitigations,
    const std::vector<std::string>& active_mitigations) {
    if (config.abstract_model == nullptr) {
        return Result<HierarchicalResult>::failure("hierarchical evaluation: no abstract model");
    }
    const model::SystemModel* refined =
        config.refined_model != nullptr ? config.refined_model : config.abstract_model;

    // Focus 1 -> focus 2 as a two-stage CEGAR pipeline.
    std::vector<CegarStage> stages;
    stages.push_back(CegarStage{"focus1:topology", config.abstract_model,
                                epa::AnalysisFocus::Topology, config.abstract_requirements,
                                config.horizon});
    stages.push_back(CegarStage{"focus2:behavioral", refined, epa::AnalysisFocus::Behavioral,
                                config.detailed_requirements, config.horizon});
    auto cegar = run_cegar(stages, space, mitigations, active_mitigations);
    if (!cegar.ok()) return Result<HierarchicalResult>::failure(cegar.error());

    HierarchicalResult result;
    result.cegar = std::move(cegar).value();
    result.focus1_hazards = result.cegar.iterations.front().hazards_out;
    result.focus2_hazards = result.cegar.iterations.back().hazards_out;
    result.spurious_eliminated = result.cegar.total_spurious();

    // Focus 3: mitigation plan over the confirmed hazards.
    mitigation::MitigationProblem problem = mitigation::MitigationProblem::build(
        space, result.cegar.confirmed, matrix, mitigations);
    result.mitigation_plan = mitigation::optimize_exact(problem);
    return result;
}

}  // namespace cprisk::hierarchy
