// cprisk/hierarchy/evaluation_matrix.hpp
//
// The hierarchical evaluation matrix of Fig. 3: asset-type refinements
// arranged on one axis, threat refinements on the other, with the three key
// evaluation focuses placed in the cells:
//
//   1. topology-based propagation  — main assets x high-level aspects;
//   2. detailed propagation        — refined assets x specific faults;
//   3. mitigation plan             — refined assets x mitigation mechanisms.
//
// `HierarchicalEvaluation` orchestrates the three focuses over a model (and
// optionally its refined variant), feeding focus-1 candidates through the
// CEGAR loop into focus 2 and handing confirmed hazards to the focus-3
// mitigation optimizer.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "hierarchy/cegar.hpp"
#include "mitigation/optimizer.hpp"

namespace cprisk::hierarchy {

/// Asset refinement levels (vertical axis of Fig. 3).
enum class AssetLevel : std::uint8_t { MainAssets, RefinedAssets };
/// Threat refinement levels (horizontal axis of Fig. 3).
enum class ThreatLevel : std::uint8_t { HighLevelAspects, SpecificFaults, Mitigations };

std::string_view to_string(AssetLevel level);
std::string_view to_string(ThreatLevel level);

/// Renders the Fig. 3 matrix: which evaluation focus occupies which cell.
TextTable evaluation_matrix_table();

struct HierarchicalConfig {
    const model::SystemModel* abstract_model = nullptr;  ///< main assets
    const model::SystemModel* refined_model = nullptr;   ///< after asset refinement
    std::vector<epa::Requirement> abstract_requirements;  ///< high-level aspects
    std::vector<epa::Requirement> detailed_requirements;  ///< specific faults
    int horizon = 4;
};

struct HierarchicalResult {
    CegarResult cegar;                       ///< focus 1 -> focus 2 pipeline
    mitigation::Selection mitigation_plan;   ///< focus 3 outcome
    std::size_t focus1_hazards = 0;
    std::size_t focus2_hazards = 0;
    std::size_t spurious_eliminated = 0;
};

/// Runs the full three-focus hierarchical evaluation.
Result<HierarchicalResult> run_hierarchical_evaluation(
    const HierarchicalConfig& config, const security::ScenarioSpace& space,
    const security::AttackMatrix& matrix, const epa::MitigationMap& mitigations,
    const std::vector<std::string>& active_mitigations = {});

}  // namespace cprisk::hierarchy
