// cprisk.hpp — umbrella header: the framework's stable public surface.
//
// Embedding applications include this one header and work against the
// documented API (see README "Library use"):
//
//   #include "cprisk.hpp"
//
//   cprisk::core::RiskAssessment assessment(...);
//   cprisk::RunContext ctx;                 // budget/jobs/trace/metrics
//   auto report = assessment.run(config, ctx);
//   std::string md = cprisk::core::render_markdown(report.value());
//
// Everything reachable from here follows the deprecation policy in
// CHANGES.md: fields and signatures are shimmed for one release before
// removal. Internal layers (asp solver internals, analysis passes, lint
// rule packs) are deliberately NOT exported; include their headers directly
// at your own risk.
#pragma once

// Model building and the qualitative scale.
#include "model/component_library.hpp"
#include "model/system_model.hpp"
#include "qualitative/level.hpp"

// Security model: attack matrices, scenario spaces, threat actors.
#include "security/attack_graph.hpp"
#include "security/attack_matrix.hpp"
#include "security/scenario.hpp"
#include "security/threat_actor.hpp"

// Error propagation analysis and requirements.
#include "epa/epa.hpp"
#include "epa/requirement.hpp"
#include "epa/uncertain.hpp"

// Hierarchical refinement and mitigation optimization.
#include "hierarchy/cegar.hpp"
#include "mitigation/optimizer.hpp"

// Risk rating (O-RA Table I, IEC 61508) and uncertainty handling.
#include "risk/iec61508.hpp"
#include "risk/ora.hpp"
#include "uncertainty/rough_set.hpp"

// The seven-step pipeline facade, bundle loader, report renderers, and the
// built-in case studies.
#include "core/assessment.hpp"
#include "core/loader.hpp"
#include "core/reactor.hpp"
#include "core/report.hpp"
#include "core/watertank.hpp"

// Cross-cutting run state and observability (RunContext, trace sinks,
// metrics registry), resource governance, and result/error plumbing.
#include "common/budget.hpp"
#include "common/result.hpp"
#include "common/retry.hpp"
#include "obs/metrics.hpp"
#include "obs/run_context.hpp"
#include "obs/trace.hpp"

// The assessment daemon (docs/serve.md): wire protocol, hot-model cache,
// and the multi-tenant server behind `cprisk serve`.
#include "serve/model_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
