#include "qualitative/domain.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cprisk::qual {

QuantitySpace::QuantitySpace(std::string variable, std::vector<std::string> region_names,
                             std::vector<double> landmarks)
    : variable_(std::move(variable)),
      region_names_(std::move(region_names)),
      landmarks_(std::move(landmarks)) {
    require(region_names_.size() == landmarks_.size() + 1,
            "QuantitySpace '" + variable_ + "': need exactly one more region than landmarks");
    require(std::adjacent_find(landmarks_.begin(), landmarks_.end(),
                               [](double a, double b) { return a >= b; }) == landmarks_.end(),
            "QuantitySpace '" + variable_ + "': landmarks must be strictly increasing");
}

QuantitySpace QuantitySpace::five_level(std::string variable, std::vector<double> landmarks) {
    require(landmarks.size() == 4, "five_level space needs exactly 4 landmarks");
    return QuantitySpace(std::move(variable),
                         {"very_low", "low", "medium", "high", "very_high"},
                         std::move(landmarks));
}

const std::string& QuantitySpace::region_name(int index) const {
    require(index >= 0 && index < static_cast<int>(region_names_.size()),
            "QuantitySpace '" + variable_ + "': region index out of range");
    return region_names_[static_cast<std::size_t>(index)];
}

int QuantitySpace::classify(double value) const {
    int index = 0;
    for (double landmark : landmarks_) {
        if (value < landmark) break;
        ++index;
    }
    return index;
}

const std::string& QuantitySpace::classify_name(double value) const {
    return region_names_[static_cast<std::size_t>(classify(value))];
}

Result<int> QuantitySpace::region_index(std::string_view name) const {
    for (std::size_t i = 0; i < region_names_.size(); ++i) {
        if (region_names_[i] == name) return static_cast<int>(i);
    }
    return Result<int>::failure("QuantitySpace '" + variable_ + "': no region named '" +
                                std::string(name) + "'");
}

Level QuantitySpace::to_level(int region_index) const {
    require(region_index >= 0 && region_index < static_cast<int>(region_names_.size()),
            "QuantitySpace '" + variable_ + "': region index out of range");
    if (region_names_.size() <= 1) return Level::Medium;
    const double frac =
        static_cast<double>(region_index) / static_cast<double>(region_names_.size() - 1);
    return level_from_index(static_cast<int>(std::lround(frac * (kLevelCount - 1))));
}

double QuantitySpace::representative(int index) const {
    require(index >= 0 && index < static_cast<int>(region_names_.size()),
            "QuantitySpace '" + variable_ + "': region index out of range");
    if (landmarks_.empty()) return 0.0;
    const double span = landmarks_.back() - landmarks_.front();
    const double margin = (span > 0 ? span : 1.0) * 0.5;
    if (index == 0) return landmarks_.front() - margin;
    if (index == static_cast<int>(landmarks_.size())) return landmarks_.back() + margin;
    return 0.5 * (landmarks_[static_cast<std::size_t>(index - 1)] +
                  landmarks_[static_cast<std::size_t>(index)]);
}

OrderedDomain::OrderedDomain(std::string name, std::vector<std::string> values)
    : name_(std::move(name)), values_(std::move(values)) {
    require(!values_.empty(), "OrderedDomain '" + name_ + "': needs at least one value");
}

const std::string& OrderedDomain::value(int index) const {
    require(index >= 0 && index < static_cast<int>(values_.size()),
            "OrderedDomain '" + name_ + "': index out of range");
    return values_[static_cast<std::size_t>(index)];
}

Result<int> OrderedDomain::index_of(std::string_view value) const {
    for (std::size_t i = 0; i < values_.size(); ++i) {
        if (values_[i] == value) return static_cast<int>(i);
    }
    return Result<int>::failure("OrderedDomain '" + name_ + "': no value '" + std::string(value) +
                                "'");
}

}  // namespace cprisk::qual
