// cprisk/qualitative/state.hpp
//
// Qualitative states and trajectories: a state assigns each variable a
// region of its quantity space; a trajectory is the time-ordered sequence of
// distinct states a system passes through. The EPA reasons over these
// discrete states; the simulator bridge (abstraction.hpp) produces them from
// numeric traces.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace cprisk::qual {

/// An assignment of qualitative region names to variables.
class QualitativeState {
public:
    QualitativeState() = default;

    void set(std::string variable, std::string region);
    bool has(std::string_view variable) const;

    /// Region of `variable`; fails if unassigned.
    Result<std::string> get(std::string_view variable) const;

    /// Region of `variable`, or `fallback` if unassigned.
    std::string get_or(std::string_view variable, std::string fallback) const;

    std::size_t size() const { return assignment_.size(); }
    const std::map<std::string, std::string>& assignment() const { return assignment_; }

    bool operator==(const QualitativeState&) const = default;

    /// "var1=reg1, var2=reg2, ..." in variable order.
    std::string to_string() const;

private:
    std::map<std::string, std::string> assignment_;
};

std::ostream& operator<<(std::ostream& os, const QualitativeState& s);

/// One step of a trajectory: the state and the time at which it was entered.
struct TrajectoryStep {
    double time = 0.0;
    QualitativeState state;
};

/// A time-ordered sequence of qualitative states. Consecutive duplicate
/// states are merged on append, so a trajectory records *changes* (landmark
/// crossings), matching the event-oriented view of qualitative simulation.
class QualitativeTrajectory {
public:
    /// Appends a state observed at `time`; ignored if it equals the last
    /// state (times must be non-decreasing).
    void append(double time, QualitativeState state);

    std::size_t size() const { return steps_.size(); }
    bool empty() const { return steps_.empty(); }
    const TrajectoryStep& step(std::size_t i) const;
    const std::vector<TrajectoryStep>& steps() const { return steps_; }

    /// True if any state in the trajectory maps `variable` to `region`.
    bool ever(std::string_view variable, std::string_view region) const;

    /// True if every state that assigns `variable` maps it to `region`.
    bool always(std::string_view variable, std::string_view region) const;

    /// First time at which `variable` enters `region`, if ever.
    Result<double> first_time(std::string_view variable, std::string_view region) const;

private:
    std::vector<TrajectoryStep> steps_;
};

}  // namespace cprisk::qual
