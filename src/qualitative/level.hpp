// cprisk/qualitative/level.hpp
//
// The uniform five-point qualitative scale used throughout the paper for
// risk attributes (§IV-B): very low (VL), low (L), medium (M), high (H),
// very high (VH). "The domain and the analyst determine which values for
// each attribute fall into each category" — calibration lives in
// qualitative/domain.hpp; this header is the ordinal scale itself.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "common/result.hpp"

namespace cprisk::qual {

/// Ordered five-point qualitative category.
enum class Level : std::uint8_t {
    VeryLow = 0,
    Low = 1,
    Medium = 2,
    High = 3,
    VeryHigh = 4,
};

inline constexpr std::size_t kLevelCount = 5;

/// All levels, in ascending order.
inline constexpr std::array<Level, kLevelCount> kAllLevels = {
    Level::VeryLow, Level::Low, Level::Medium, Level::High, Level::VeryHigh};

/// Ordinal index (0 = VeryLow .. 4 = VeryHigh).
constexpr int index_of(Level l) { return static_cast<int>(l); }

/// Level from ordinal index, saturating to the scale ends.
constexpr Level level_from_index(int index) {
    if (index < 0) return Level::VeryLow;
    if (index >= static_cast<int>(kLevelCount)) return Level::VeryHigh;
    return static_cast<Level>(index);
}

/// Short label used in the paper's tables: "VL", "L", "M", "H", "VH".
std::string_view to_short_string(Level l);

/// Long label: "very low" .. "very high".
std::string_view to_long_string(Level l);

/// Parses either the short or the long form (case-insensitive).
Result<Level> parse_level(std::string_view text);

/// Saturating shift on the ordinal scale (e.g. `shift(Level::Low, +2)` = H).
constexpr Level shift(Level l, int delta) { return level_from_index(index_of(l) + delta); }

constexpr Level qmax(Level a, Level b) { return index_of(a) >= index_of(b) ? a : b; }
constexpr Level qmin(Level a, Level b) { return index_of(a) <= index_of(b) ? a : b; }

constexpr auto operator<=>(Level a, Level b) { return index_of(a) <=> index_of(b); }

std::ostream& operator<<(std::ostream& os, Level l);

}  // namespace cprisk::qual
