#include "qualitative/algebra.hpp"

#include <ostream>

namespace cprisk::qual {

std::ostream& operator<<(std::ostream& os, const LevelRange& r) {
    if (r.is_exact()) return os << r.lo;
    return os << '[' << r.lo << ".." << r.hi << ']';
}

std::string_view to_string(Sign s) {
    switch (s) {
        case Sign::Negative: return "-";
        case Sign::Zero: return "0";
        case Sign::Positive: return "+";
        case Sign::Ambiguous: return "?";
    }
    return "?";
}

std::ostream& operator<<(std::ostream& os, Sign s) { return os << to_string(s); }

}  // namespace cprisk::qual
