// cprisk/qualitative/influence.hpp
//
// Qualitative influence graphs — the Forbus-style "qualitative physics"
// core the paper builds on (§II-B, refs [3],[6]): variables connected by
// signed influences (I+ / I-), with perturbations propagated through the
// sign algebra. Answers analyst questions like "if the input valve opens
// further, which way does the tank level move?" without numeric models, and
// reports ambiguity honestly when opposing influences meet.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "qualitative/algebra.hpp"

namespace cprisk::qual {

/// A directed, signed influence: `source` pushes `target` in direction
/// `polarity` (Positive: increase begets increase; Negative: inverse).
struct Influence {
    std::string source;
    std::string target;
    Sign polarity = Sign::Positive;
};

class InfluenceGraph {
public:
    /// Declares a variable (idempotent).
    void add_variable(const std::string& name);

    /// Adds an influence edge; endpoints are auto-declared. Polarity must be
    /// Positive or Negative.
    Result<void> add_influence(const std::string& source, const std::string& target,
                               Sign polarity);

    bool has_variable(const std::string& name) const;
    std::size_t variable_count() const { return variables_.size(); }
    const std::vector<Influence>& influences() const { return influences_; }

    /// Propagates a perturbation of `variable` in direction `direction`
    /// through the graph to a sign fixpoint: each variable's resulting trend
    /// is the qualitative sum over its incoming influences. Opposing
    /// contributions yield Ambiguous; untouched variables report Zero.
    /// Cycles converge because the sign lattice is finite and monotone
    /// (Zero < {+,-} < Ambiguous).
    Result<std::map<std::string, Sign>> propagate(const std::string& variable,
                                                  Sign direction) const;

    /// The trend of `target` after perturbing `source` (convenience).
    Result<Sign> effect(const std::string& source, Sign direction,
                        const std::string& target) const;

    /// Variables whose trend is Ambiguous under the perturbation — the spots
    /// where qualitative knowledge alone cannot decide and refinement (or a
    /// quantitative model) is needed.
    Result<std::vector<std::string>> ambiguous_under(const std::string& variable,
                                                     Sign direction) const;

private:
    std::vector<std::string> variables_;
    std::map<std::string, std::size_t> ids_;
    std::vector<Influence> influences_;
};

}  // namespace cprisk::qual
