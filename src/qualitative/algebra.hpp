// cprisk/qualitative/algebra.hpp
//
// Qualitative algebra over the ordinal scale and Forbus-style sign algebra
// for qualitative-physics influence reasoning (paper §II-B, refs [3], [6]).
//
// Two algebras live here:
//  * ordinal combination operators on `Level` (saturating add, weighted
//    combine, ranges for uncertain values), used by the risk calculus;
//  * the classic {-, 0, +, ?} sign algebra for derivatives/influences, used
//    by the dynamics aspect of system models (e.g. inflow +, outflow -).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>

#include "qualitative/level.hpp"

namespace cprisk::qual {

// ---------------------------------------------------------------------------
// Ordinal (Level) algebra
// ---------------------------------------------------------------------------

/// Saturating ordinal sum: index(a) + index(b) clipped to the scale. Models
/// compounding of two contributions on a severity-like scale.
constexpr Level saturating_add(Level a, Level b) {
    return level_from_index(index_of(a) + index_of(b));
}

/// Saturating ordinal difference: models risk reduction by a mitigation of
/// a given strength (reducing H risk with an M-strength control gives L).
constexpr Level saturating_sub(Level a, Level b) {
    return level_from_index(index_of(a) - index_of(b));
}

/// Rounded ordinal midpoint, biased upward on ties (conservative: a risk
/// aggregation should not understate).
constexpr Level midpoint_up(Level a, Level b) {
    return level_from_index((index_of(a) + index_of(b) + 1) / 2);
}

/// A closed interval of levels [lo, hi] used when a factor's value is only
/// known approximately (paper §V-A sensitivity analysis input).
struct LevelRange {
    Level lo = Level::VeryLow;
    Level hi = Level::VeryHigh;

    constexpr LevelRange() = default;
    constexpr LevelRange(Level single) : lo(single), hi(single) {}  // NOLINT
    constexpr LevelRange(Level lo_, Level hi_) : lo(qmin(lo_, hi_)), hi(qmax(lo_, hi_)) {}

    constexpr bool contains(Level l) const { return lo <= l && l <= hi; }
    constexpr bool is_exact() const { return lo == hi; }
    constexpr int width() const { return index_of(hi) - index_of(lo); }

    constexpr bool operator==(const LevelRange&) const = default;
};

std::ostream& operator<<(std::ostream& os, const LevelRange& r);

// ---------------------------------------------------------------------------
// Sign algebra
// ---------------------------------------------------------------------------

/// Qualitative sign with the usual "ambiguous" element.
enum class Sign : std::uint8_t {
    Negative = 0,
    Zero = 1,
    Positive = 2,
    Ambiguous = 3,  ///< unknown / both directions possible
};

std::string_view to_string(Sign s);
std::ostream& operator<<(std::ostream& os, Sign s);

/// Sign of a numeric value.
constexpr Sign sign_of(double v) {
    if (v > 0) return Sign::Positive;
    if (v < 0) return Sign::Negative;
    return Sign::Zero;
}

/// Qualitative addition: + plus - is ambiguous.
constexpr Sign qadd(Sign a, Sign b) {
    if (a == Sign::Ambiguous || b == Sign::Ambiguous) return Sign::Ambiguous;
    if (a == Sign::Zero) return b;
    if (b == Sign::Zero) return a;
    if (a == b) return a;
    return Sign::Ambiguous;
}

/// Qualitative multiplication (exact: no ambiguity introduced).
constexpr Sign qmul(Sign a, Sign b) {
    if (a == Sign::Ambiguous || b == Sign::Ambiguous) {
        // 0 * ? == 0; otherwise unknown.
        if (a == Sign::Zero || b == Sign::Zero) return Sign::Zero;
        return Sign::Ambiguous;
    }
    if (a == Sign::Zero || b == Sign::Zero) return Sign::Zero;
    return a == b ? Sign::Positive : Sign::Negative;
}

/// Qualitative negation.
constexpr Sign qneg(Sign a) {
    switch (a) {
        case Sign::Negative: return Sign::Positive;
        case Sign::Positive: return Sign::Negative;
        default: return a;
    }
}

/// True if `a` refines `b` (every behaviour of `a` is allowed by `b`);
/// Ambiguous is the top element of the refinement order.
constexpr bool refines(Sign a, Sign b) { return b == Sign::Ambiguous || a == b; }

}  // namespace cprisk::qual
