// cprisk/qualitative/domain.hpp
//
// Quantity spaces: "Qualitative modeling partitions continuous domains into
// different clusters of identical or similar behavior along landmarks and
// represents them by a discrete model at the granularity level of clusters"
// (paper §II-B). A `QuantitySpace` is an ordered list of named regions
// separated by numeric landmarks; it abstracts a continuous variable (water
// level, workload, temperature) to a categorical ordered variable.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "qualitative/level.hpp"

namespace cprisk::qual {

/// One ordered region of a quantity space.
struct Region {
    std::string name;  ///< e.g. "normal", "overloaded"
    int index = 0;     ///< ordinal position, 0-based from the lowest region
};

/// An ordered partition of a continuous domain along landmark values.
///
/// With landmarks l1 < l2 < ... < ln, the space has n+1 regions:
/// (-inf, l1), [l1, l2), ..., [ln, +inf). Region i covers [l_i, l_{i+1}).
class QuantitySpace {
public:
    /// Builds a space from region names and the landmarks separating them.
    /// `region_names.size()` must equal `landmarks.size() + 1`, and landmarks
    /// must be strictly increasing.
    QuantitySpace(std::string variable, std::vector<std::string> region_names,
                  std::vector<double> landmarks);

    /// Convenience factory: a five-region space aligned with the uniform
    /// VL/L/M/H/VH scale, calibrated by four landmarks.
    static QuantitySpace five_level(std::string variable, std::vector<double> landmarks);

    const std::string& variable() const { return variable_; }
    std::size_t region_count() const { return region_names_.size(); }
    const std::vector<double>& landmarks() const { return landmarks_; }

    const std::string& region_name(int index) const;

    /// Ordinal region index of a numeric value.
    int classify(double value) const;

    /// Region name of a numeric value.
    const std::string& classify_name(double value) const;

    /// Region index by name.
    Result<int> region_index(std::string_view name) const;

    /// Maps a region index onto the uniform five-point scale by proportional
    /// position (exact when the space has five regions).
    Level to_level(int region_index) const;

    /// A representative numeric value inside region `index` (midpoint of the
    /// region, or landmark +/- an epsilon-sized offset for the open ends).
    double representative(int index) const;

private:
    std::string variable_;
    std::vector<std::string> region_names_;
    std::vector<double> landmarks_;
};

/// A purely categorical ordered domain without numeric landmarks (e.g. a
/// component health domain: ok < degraded < failed).
class OrderedDomain {
public:
    OrderedDomain(std::string name, std::vector<std::string> values);

    const std::string& name() const { return name_; }
    std::size_t size() const { return values_.size(); }
    const std::string& value(int index) const;
    Result<int> index_of(std::string_view value) const;
    const std::vector<std::string>& values() const { return values_; }

private:
    std::string name_;
    std::vector<std::string> values_;
};

}  // namespace cprisk::qual
