#include "qualitative/abstraction.hpp"

#include "common/error.hpp"

namespace cprisk::qual {

void TraceAbstractor::register_space(QuantitySpace space) {
    const std::string variable = space.variable();
    spaces_.insert_or_assign(variable, std::move(space));
}

bool TraceAbstractor::has_space(const std::string& variable) const {
    return spaces_.find(variable) != spaces_.end();
}

const QuantitySpace& TraceAbstractor::space(const std::string& variable) const {
    auto it = spaces_.find(variable);
    require(it != spaces_.end(), "TraceAbstractor: no quantity space for '" + variable + "'");
    return it->second;
}

QualitativeState TraceAbstractor::abstract_sample(const TraceSample& sample) const {
    QualitativeState state;
    for (const auto& [variable, value] : sample.values) {
        auto it = spaces_.find(variable);
        if (it == spaces_.end()) continue;
        state.set(variable, it->second.classify_name(value));
    }
    return state;
}

QualitativeTrajectory TraceAbstractor::abstract_trace(const NumericTrace& trace) const {
    QualitativeTrajectory trajectory;
    for (const auto& sample : trace) {
        trajectory.append(sample.time, abstract_sample(sample));
    }
    return trajectory;
}

}  // namespace cprisk::qual
