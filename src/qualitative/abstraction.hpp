// cprisk/qualitative/abstraction.hpp
//
// Bridge from quantitative traces (produced by the simulator substrate) to
// qualitative trajectories. This is the abstraction direction of the
// CEGAR-style loop: the qualitative model must *over-approximate* the
// concrete behaviour, so hazards visible in a concrete trace must also be
// visible in its abstraction (property-tested in tests/qualitative).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "qualitative/domain.hpp"
#include "qualitative/state.hpp"

namespace cprisk::qual {

/// One sample of a multi-variable numeric trace.
struct TraceSample {
    double time = 0.0;
    std::map<std::string, double> values;  ///< variable name -> numeric value
};

/// A recorded numeric trace.
using NumericTrace = std::vector<TraceSample>;

/// Abstracts numeric traces into qualitative trajectories using one quantity
/// space per variable. Variables without a registered space are dropped.
class TraceAbstractor {
public:
    /// Registers the quantity space used for `space.variable()`.
    void register_space(QuantitySpace space);

    bool has_space(const std::string& variable) const;
    const QuantitySpace& space(const std::string& variable) const;

    /// Maps one sample to a qualitative state.
    QualitativeState abstract_sample(const TraceSample& sample) const;

    /// Maps a full trace; consecutive identical states are merged, so the
    /// result records landmark crossings only.
    QualitativeTrajectory abstract_trace(const NumericTrace& trace) const;

private:
    std::map<std::string, QuantitySpace> spaces_;
};

}  // namespace cprisk::qual
