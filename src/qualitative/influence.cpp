#include "qualitative/influence.hpp"

namespace cprisk::qual {

void InfluenceGraph::add_variable(const std::string& name) {
    if (ids_.count(name) > 0) return;
    ids_.emplace(name, variables_.size());
    variables_.push_back(name);
}

Result<void> InfluenceGraph::add_influence(const std::string& source, const std::string& target,
                                           Sign polarity) {
    if (polarity != Sign::Positive && polarity != Sign::Negative) {
        return Result<void>::failure("influence polarity must be + or -");
    }
    if (source == target) return Result<void>::failure("self-influence not allowed");
    add_variable(source);
    add_variable(target);
    influences_.push_back(Influence{source, target, polarity});
    return {};
}

bool InfluenceGraph::has_variable(const std::string& name) const { return ids_.count(name) > 0; }

namespace {

/// Join in the sign information lattice: Zero < {+,-} < Ambiguous.
Sign sign_join(Sign a, Sign b) {
    if (a == Sign::Zero) return b;
    if (b == Sign::Zero) return a;
    if (a == b) return a;
    return Sign::Ambiguous;
}

}  // namespace

Result<std::map<std::string, Sign>> InfluenceGraph::propagate(const std::string& variable,
                                                              Sign direction) const {
    if (!has_variable(variable)) {
        return Result<std::map<std::string, Sign>>::failure("unknown variable '" + variable +
                                                            "'");
    }
    if (direction != Sign::Positive && direction != Sign::Negative) {
        return Result<std::map<std::string, Sign>>::failure(
            "perturbation direction must be + or -");
    }

    std::map<std::string, Sign> trend;
    for (const std::string& name : variables_) trend[name] = Sign::Zero;
    trend[variable] = direction;

    // Monotone fixpoint over the finite sign lattice.
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (const Influence& influence : influences_) {
            const Sign incoming = qmul(trend[influence.source], influence.polarity);
            // The perturbed root keeps its exogenous direction.
            if (influence.target == variable) continue;
            const Sign joined = sign_join(trend[influence.target], incoming);
            if (joined != trend[influence.target]) {
                trend[influence.target] = joined;
                progressed = true;
            }
        }
    }
    return trend;
}

Result<Sign> InfluenceGraph::effect(const std::string& source, Sign direction,
                                    const std::string& target) const {
    if (!has_variable(target)) {
        return Result<Sign>::failure("unknown variable '" + target + "'");
    }
    auto trend = propagate(source, direction);
    if (!trend.ok()) return Result<Sign>::failure(trend.error());
    return trend.value().at(target);
}

Result<std::vector<std::string>> InfluenceGraph::ambiguous_under(const std::string& variable,
                                                                 Sign direction) const {
    auto trend = propagate(variable, direction);
    if (!trend.ok()) return Result<std::vector<std::string>>::failure(trend.error());
    std::vector<std::string> out;
    for (const auto& [name, sign] : trend.value()) {
        if (sign == Sign::Ambiguous) out.push_back(name);
    }
    return out;
}

}  // namespace cprisk::qual
