#include "qualitative/state.hpp"

#include <ostream>

#include "common/error.hpp"

namespace cprisk::qual {

void QualitativeState::set(std::string variable, std::string region) {
    assignment_[std::move(variable)] = std::move(region);
}

bool QualitativeState::has(std::string_view variable) const {
    return assignment_.find(std::string(variable)) != assignment_.end();
}

Result<std::string> QualitativeState::get(std::string_view variable) const {
    auto it = assignment_.find(std::string(variable));
    if (it == assignment_.end()) {
        return Result<std::string>::failure("QualitativeState: variable '" +
                                            std::string(variable) + "' unassigned");
    }
    return it->second;
}

std::string QualitativeState::get_or(std::string_view variable, std::string fallback) const {
    auto it = assignment_.find(std::string(variable));
    return it == assignment_.end() ? std::move(fallback) : it->second;
}

std::string QualitativeState::to_string() const {
    std::string out;
    for (const auto& [var, region] : assignment_) {
        if (!out.empty()) out += ", ";
        out += var + "=" + region;
    }
    return out;
}

std::ostream& operator<<(std::ostream& os, const QualitativeState& s) {
    return os << s.to_string();
}

void QualitativeTrajectory::append(double time, QualitativeState state) {
    if (!steps_.empty()) {
        require(time >= steps_.back().time,
                "QualitativeTrajectory: time must be non-decreasing");
        if (steps_.back().state == state) return;
    }
    steps_.push_back(TrajectoryStep{time, std::move(state)});
}

const TrajectoryStep& QualitativeTrajectory::step(std::size_t i) const {
    require(i < steps_.size(), "QualitativeTrajectory: step index out of range");
    return steps_[i];
}

bool QualitativeTrajectory::ever(std::string_view variable, std::string_view region) const {
    for (const auto& step : steps_) {
        auto r = step.state.get(variable);
        if (r.ok() && r.value() == region) return true;
    }
    return false;
}

bool QualitativeTrajectory::always(std::string_view variable, std::string_view region) const {
    for (const auto& step : steps_) {
        auto r = step.state.get(variable);
        if (r.ok() && r.value() != region) return false;
    }
    return true;
}

Result<double> QualitativeTrajectory::first_time(std::string_view variable,
                                                 std::string_view region) const {
    for (const auto& step : steps_) {
        auto r = step.state.get(variable);
        if (r.ok() && r.value() == region) return step.time;
    }
    return Result<double>::failure("QualitativeTrajectory: '" + std::string(variable) +
                                   "' never enters '" + std::string(region) + "'");
}

}  // namespace cprisk::qual
