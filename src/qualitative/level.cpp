#include "qualitative/level.hpp"

#include <ostream>

#include "common/strings.hpp"

namespace cprisk::qual {

std::string_view to_short_string(Level l) {
    switch (l) {
        case Level::VeryLow: return "VL";
        case Level::Low: return "L";
        case Level::Medium: return "M";
        case Level::High: return "H";
        case Level::VeryHigh: return "VH";
    }
    return "?";
}

std::string_view to_long_string(Level l) {
    switch (l) {
        case Level::VeryLow: return "very low";
        case Level::Low: return "low";
        case Level::Medium: return "medium";
        case Level::High: return "high";
        case Level::VeryHigh: return "very high";
    }
    return "?";
}

Result<Level> parse_level(std::string_view text) {
    const std::string t = to_lower(trim(text));
    if (t == "vl" || t == "very low" || t == "very_low" || t == "verylow") return Level::VeryLow;
    if (t == "l" || t == "low") return Level::Low;
    if (t == "m" || t == "medium" || t == "med") return Level::Medium;
    if (t == "h" || t == "high") return Level::High;
    if (t == "vh" || t == "very high" || t == "very_high" || t == "veryhigh") {
        return Level::VeryHigh;
    }
    return Result<Level>::failure("unknown qualitative level: '" + std::string(text) + "'");
}

std::ostream& operator<<(std::ostream& os, Level l) { return os << to_short_string(l); }

}  // namespace cprisk::qual
