// cprisk/obs/metrics.hpp
//
// Pipeline metrics registry (docs/observability.md). Three instrument kinds:
//
//  - counters:   monotonically increasing event/work counts (rules grounded,
//                cache hits, solver decisions, ...). Counter values are
//                *deterministic across --jobs settings*: every site counts
//                work whose total is independent of scheduling.
//  - gauges:     last-written values for configuration- or wall-clock-
//                dependent observations (pool lanes, phase wall times,
//                enqueued batch depth). Excluded from cross-jobs determinism.
//  - histograms: power-of-two bucketed distributions of per-unit work
//                (e.g. solver decisions per scenario). Deterministic like
//                counters — the multiset of samples is schedule-independent.
//
// Instrument handles are stable for the registry's lifetime and update via
// relaxed atomics, so concurrent workers record without coordination; the
// find-or-create lookup takes a mutex and therefore belongs at coarse sites
// (per solve / per scenario), never in inner loops. Export is JSON with all
// three sections sorted by instrument name — byte-deterministic given the
// same recorded values.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/result.hpp"

namespace cprisk::obs {

class MetricsRegistry {
public:
    class Counter {
    public:
        void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
        std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

    private:
        std::atomic<std::uint64_t> value_{0};
    };

    /// Fixed power-of-two buckets: bucket 0 counts zeros and ones, bucket i
    /// counts samples in (2^(i-1), 2^i], the last bucket is open-ended.
    class Histogram {
    public:
        static constexpr std::size_t kBuckets = 24;

        void observe(std::uint64_t sample);
        std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
        std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
        std::uint64_t bucket(std::size_t i) const {
            return buckets_[i].load(std::memory_order_relaxed);
        }

    private:
        std::atomic<std::uint64_t> count_{0};
        std::atomic<std::uint64_t> sum_{0};
        std::atomic<std::uint64_t> buckets_[kBuckets] = {};
    };

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// Find-or-create; the returned reference stays valid for the registry's
    /// lifetime.
    Counter& counter(std::string_view name);
    Histogram& histogram(std::string_view name);

    /// Overwrites the gauge (last writer wins).
    void set_gauge(std::string_view name, long long value);

    /// {"counters": {...}, "gauges": {...}, "histograms": {...}}, each
    /// section sorted by name. Histogram buckets are exported sparsely as
    /// {"le_2^i": count} entries plus count/sum.
    std::string export_json() const;

    Result<void> write_file(const std::string& path) const;

private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
    std::map<std::string, long long, std::less<>> gauges_;
};

/// Null-tolerant helpers: every instrumentation site takes a possibly-null
/// registry pointer, so the disabled path costs one branch.
inline void add_counter(MetricsRegistry* metrics, std::string_view name,
                        std::uint64_t n = 1) {
    if (metrics != nullptr) metrics->counter(name).add(n);
}
inline void set_gauge(MetricsRegistry* metrics, std::string_view name, long long value) {
    if (metrics != nullptr) metrics->set_gauge(name, value);
}
inline void observe(MetricsRegistry* metrics, std::string_view name, std::uint64_t sample) {
    if (metrics != nullptr) metrics->histogram(name).observe(sample);
}

}  // namespace cprisk::obs
