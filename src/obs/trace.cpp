#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>

#include "common/json.hpp"
#include "common/schema.hpp"

namespace cprisk::obs {

namespace {

/// Per-thread span context: the innermost explicit scope and the current
/// nesting depth. Only touched by *active* spans, so the disabled path never
/// reads thread-local state.
struct ThreadSpanState {
    std::vector<std::string> scopes;
    int depth = 0;
};

ThreadSpanState& thread_state() {
    thread_local ThreadSpanState state;
    return state;
}

}  // namespace

// --- ChromeTraceSink -------------------------------------------------------

ChromeTraceSink::ChromeTraceSink() : epoch_(std::chrono::steady_clock::now()) {}

void ChromeTraceSink::record(TraceEvent event) {
    const std::thread::id me = std::this_thread::get_id();
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < buffers_.size(); ++i) {
        if (buffers_[i].first == me) {
            event.thread = static_cast<std::uint32_t>(i);
            buffers_[i].second.push_back(std::move(event));
            return;
        }
    }
    event.thread = static_cast<std::uint32_t>(buffers_.size());
    buffers_.emplace_back(me, std::vector<TraceEvent>{});
    buffers_.back().second.push_back(std::move(event));
}

std::size_t ChromeTraceSink::event_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto& [id, events] : buffers_) n += events.size();
    return n;
}

std::vector<TraceEvent> ChromeTraceSink::drain_ordered() const {
    std::lock_guard<std::mutex> lock(mutex_);
    // Group by scope, keeping each scope's single-thread recording order.
    // The global scope "" sorts first, scenario scopes follow in id order —
    // the deterministic scenario-order drain (docs/observability.md).
    std::map<std::string, std::vector<TraceEvent>> by_scope;
    for (const auto& [id, events] : buffers_) {
        for (const TraceEvent& event : events) by_scope[event.scope].push_back(event);
    }
    std::vector<TraceEvent> ordered;
    for (auto& [scope, events] : by_scope) {
        for (TraceEvent& event : events) ordered.push_back(std::move(event));
    }
    return ordered;
}

std::string ChromeTraceSink::export_json() const {
    json::Array events;
    for (const TraceEvent& event : drain_ordered()) {
        json::Object entry;
        json::set(entry, "name", event.name);
        json::set(entry, "cat", event.category);
        json::set(entry, "ph", "X");
        json::set(entry, "ts", static_cast<long long>(event.start_us));
        json::set(entry, "dur", static_cast<long long>(event.duration_us));
        json::set(entry, "pid", 0);
        json::set(entry, "tid", static_cast<long long>(event.thread));
        json::Object args;
        json::set(args, "scope", event.scope);
        json::set(args, "depth", event.depth);
        for (const auto& [key, value] : event.args) json::set(args, key, value);
        json::set(entry, "args", std::move(args));
        events.push_back(std::move(entry));
    }
    json::Object root;
    json::set(root, "schema_version", kSchemaVersion);
    json::set(root, "traceEvents", std::move(events));
    json::set(root, "displayTimeUnit", "ms");
    return json::Value(std::move(root)).serialize() + "\n";
}

Result<void> ChromeTraceSink::write_file(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return Result<void>::failure("trace: cannot write '" + path + "'");
    out << export_json();
    if (!out) return Result<void>::failure("trace: write to '" + path + "' failed");
    return {};
}

// --- Span ------------------------------------------------------------------

Span::Span(TraceSink* sink, std::string_view name, std::string_view category,
           std::string_view scope) {
    if (sink == nullptr || !sink->enabled()) return;  // the disabled fast path
    sink_ = sink;
    event_.name = std::string(name);
    event_.category = std::string(category);
    ThreadSpanState& state = thread_state();
    if (!scope.empty()) {
        state.scopes.emplace_back(scope);
        pushed_scope_ = true;
        event_.scope = std::string(scope);
    } else if (!state.scopes.empty()) {
        event_.scope = state.scopes.back();
    }
    event_.depth = state.depth++;
    start_ = std::chrono::steady_clock::now();
}

Span::~Span() { close(); }

void Span::close() {
    if (sink_ == nullptr) return;
    const auto now = std::chrono::steady_clock::now();
    event_.duration_us =
        std::chrono::duration_cast<std::chrono::microseconds>(now - start_).count();
    // start_us is relative to the span's own start; ChromeTraceSink rebases
    // against its epoch lazily on record — keep it simple: export absolute
    // steady_clock microseconds (Chrome only needs consistency, not origin).
    event_.start_us = std::chrono::duration_cast<std::chrono::microseconds>(
                          start_.time_since_epoch())
                          .count();
    ThreadSpanState& state = thread_state();
    --state.depth;
    if (pushed_scope_) state.scopes.pop_back();
    sink_->record(std::move(event_));
    sink_ = nullptr;  // idempotent: explicit close() disarms the destructor
}

void Span::arg(std::string_view key, std::string_view value) {
    if (sink_ == nullptr) return;
    event_.args.emplace_back(std::string(key), std::string(value));
}

void Span::arg(std::string_view key, long long value) {
    if (sink_ == nullptr) return;
    event_.args.emplace_back(std::string(key), std::to_string(value));
}

}  // namespace cprisk::obs
