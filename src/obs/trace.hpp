// cprisk/obs/trace.hpp
//
// Low-overhead hierarchical tracing for the assessment pipeline
// (docs/observability.md). A TraceSink collects TraceEvents recorded by
// scoped Span RAII guards placed around the pipeline's coarse units of work
// (grounding, per-scenario solve, CEGAR ladder steps, mitigation
// optimization) — never inside hot inner loops, so the enabled cost is a
// handful of events per scenario and the disabled cost is one branch per
// span (a null or disabled sink makes every Span inert; see the
// null-overhead guard in bench_perf_epa).
//
// Determinism: every event carries a *scope* — the scenario id for
// per-scenario work, "" for global pipeline phases — plus its nesting depth
// within that scope. All events of one scope are recorded by a single
// thread (a scenario never migrates mid-walk), so grouping events by scope
// and keeping each scope's recording order yields an export that is
// byte-identical across --jobs settings once the wall-clock fields
// (ts/dur/tid) are ignored. ChromeTraceSink exports the Chrome trace-event
// JSON consumed by chrome://tracing and Perfetto.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.hpp"

namespace cprisk::obs {

/// One completed span. Wall-clock fields (start_us, duration_us, thread)
/// are excluded from determinism comparisons; everything else is stable
/// across job counts.
struct TraceEvent {
    std::string name;      ///< span name, e.g. "epa.evaluate"
    std::string category;  ///< phase bucket: "ground", "solve", "cegar", ...
    std::string scope;     ///< deterministic grouping key ("" = global phase)
    int depth = 0;         ///< nesting depth of enclosing active spans
    /// Extra key/value annotations (stage name, focus, verdict, ...).
    std::vector<std::pair<std::string, std::string>> args;

    // Wall-clock fields.
    std::int64_t start_us = 0;     ///< microseconds since sink creation
    std::int64_t duration_us = 0;
    std::uint32_t thread = 0;      ///< per-sink worker buffer index
};

/// Base sink. The base class *is* the compiled-in null sink: it reports
/// disabled and drops events, so a `TraceSink*` that is null or points at a
/// plain TraceSink makes every Span constructor bail after one branch.
class TraceSink {
public:
    virtual ~TraceSink() = default;
    virtual bool enabled() const { return false; }
    virtual void record(TraceEvent event) { (void)event; }
};

/// Collecting sink with thread-safe per-worker buffers and Chrome
/// trace-event JSON export.
class ChromeTraceSink final : public TraceSink {
public:
    ChromeTraceSink();

    bool enabled() const override { return true; }
    void record(TraceEvent event) override;

    /// Every recorded event, drained in deterministic order: global-scope
    /// events first (single-threaded pipeline phases, in recording order),
    /// then per-scenario scopes sorted by scope id, each in its worker's
    /// recording order.
    std::vector<TraceEvent> drain_ordered() const;

    /// Chrome trace-event JSON ({"traceEvents": [...]}) over drain_ordered().
    std::string export_json() const;

    Result<void> write_file(const std::string& path) const;

    std::size_t event_count() const;

private:
    mutable std::mutex mutex_;
    /// One buffer per recording thread, registered on first record. The
    /// buffer *index* is the exported tid.
    std::vector<std::pair<std::thread::id, std::vector<TraceEvent>>> buffers_;
    std::chrono::steady_clock::time_point epoch_;
};

/// RAII span guard. Construction against a null/disabled sink is inert (one
/// branch, no allocation); an active span records one TraceEvent on
/// destruction. Spans nest: an active span without an explicit scope
/// inherits the innermost enclosing span's scope on the same thread, so
/// low-level spans (grounder, solver) automatically land in the scenario
/// scope their caller opened.
class Span {
public:
    Span(TraceSink* sink, std::string_view name, std::string_view category,
         std::string_view scope = {});
    ~Span();

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    bool active() const { return sink_ != nullptr; }

    /// Attaches a key/value annotation (no-op when inactive).
    void arg(std::string_view key, std::string_view value);
    void arg(std::string_view key, long long value);

    /// Ends the span now (records the event); the destructor then does
    /// nothing. For spans whose lexical scope outlives the measured work.
    void close();

private:
    TraceSink* sink_ = nullptr;
    TraceEvent event_;
    std::chrono::steady_clock::time_point start_;
    bool pushed_scope_ = false;
};

}  // namespace cprisk::obs
