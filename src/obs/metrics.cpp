#include "obs/metrics.hpp"

#include <fstream>

#include "common/json.hpp"
#include "common/schema.hpp"

namespace cprisk::obs {

void MetricsRegistry::Histogram::observe(std::uint64_t sample) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    std::size_t bucket = 0;
    while (bucket + 1 < kBuckets && sample > (std::uint64_t{1} << bucket)) ++bucket;
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

MetricsRegistry::Counter& MetricsRegistry::counter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
    }
    return *it->second;
}

MetricsRegistry::Histogram& MetricsRegistry::histogram(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
    }
    return *it->second;
}

void MetricsRegistry::set_gauge(std::string_view name, long long value) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        gauges_.emplace(std::string(name), value);
    } else {
        it->second = value;
    }
}

std::string MetricsRegistry::export_json() const {
    std::lock_guard<std::mutex> lock(mutex_);
    json::Object counters;
    for (const auto& [name, counter] : counters_) {
        json::set(counters, name, static_cast<long long>(counter->value()));
    }
    json::Object gauges;
    for (const auto& [name, value] : gauges_) json::set(gauges, name, value);
    json::Object histograms;
    for (const auto& [name, histogram] : histograms_) {
        json::Object entry;
        json::set(entry, "count", static_cast<long long>(histogram->count()));
        json::set(entry, "sum", static_cast<long long>(histogram->sum()));
        json::Object buckets;
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
            const std::uint64_t n = histogram->bucket(i);
            if (n == 0) continue;  // sparse: empty buckets are omitted
            json::set(buckets, "le_2^" + std::to_string(i), static_cast<long long>(n));
        }
        json::set(entry, "buckets", std::move(buckets));
        json::set(histograms, name, std::move(entry));
    }
    json::Object root;
    json::set(root, "schema_version", kSchemaVersion);
    json::set(root, "counters", std::move(counters));
    json::set(root, "gauges", std::move(gauges));
    json::set(root, "histograms", std::move(histograms));
    return json::Value(std::move(root)).serialize() + "\n";
}

Result<void> MetricsRegistry::write_file(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return Result<void>::failure("metrics: cannot write '" + path + "'");
    out << export_json();
    if (!out) return Result<void>::failure("metrics: write to '" + path + "' failed");
    return {};
}

}  // namespace cprisk::obs
