#include "obs/run_context.hpp"

namespace cprisk {

ThreadPool& RunContext::pool() {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (pool_ == nullptr) {
        pool_ = std::make_unique<ThreadPool>(ThreadPool::resolve(jobs));
    }
    return *pool_;
}

}  // namespace cprisk
