// cprisk/obs/run_context.hpp
//
// RunContext: the one bundle of cross-cutting run state threaded by
// reference through the whole assessment pipeline — resource budget,
// fault-injection registry, worker pool, trace sink, and metrics registry.
// It replaces the previous ad-hoc plumbing where `jobs` and `Budget*` were
// duplicated across AssessmentConfig, EpaOptions, and CegarOptions and each
// layer re-threaded them by hand (those fields survive as deprecated shims
// for one release; see CHANGES.md).
//
// Layers receive a `RunContext*` inside their options struct and read
// everything run-scoped from it:
//
//   RunContext ctx;
//   ctx.jobs = 8;
//   ctx.budget.set_deadline_after(std::chrono::seconds(30));
//   ctx.trace = &my_chrome_sink;     // optional; nullptr = tracing off
//   ctx.metrics = &my_registry;      // optional; nullptr = metrics off
//   report = assessment.run(config, ctx);
//
// A default-constructed RunContext reproduces the old defaults exactly:
// unlimited budget, sequential execution, no observability. The context is
// borrowed by every layer and must outlive the run; it is non-copyable
// (the budget's trip state and the lazily-built pool are identity).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>

#include "common/budget.hpp"
#include "common/fault_injection.hpp"
#include "common/retry.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cprisk {

namespace epa {
class GroundedBaseCache;  // epa/epa.hpp; held by pointer only, no obs->epa dependency
}  // namespace epa

class RunContext {
public:
    RunContext() = default;
    RunContext(const RunContext&) = delete;
    RunContext& operator=(const RunContext&) = delete;

    /// Resource governor shared by every solve of the run (owned; configure
    /// limits before handing the context to the pipeline).
    Budget budget;

    /// Trace sink; nullptr (or a disabled sink) turns every Span into a
    /// single-branch no-op. Borrowed.
    obs::TraceSink* trace = nullptr;

    /// Metrics registry; nullptr disables all metric recording. Borrowed.
    obs::MetricsRegistry* metrics = nullptr;

    /// Fault-injection registry for harness code that arms or inspects
    /// sites through the context. Defaults to the process-wide registry the
    /// seams consult. Borrowed, never null.
    fault::FaultInjectionRegistry* faults = &fault::global_registry();

    /// Worker lanes for parallel sweeps (0 = hardware concurrency, 1 = the
    /// exact sequential engine). Never changes results, reports, or journal
    /// bytes (docs/performance.md).
    std::size_t jobs = 1;

    /// Bounded retry with jittered backoff for transient
    /// Undetermined{solver_error} verdicts (common/retry.hpp,
    /// docs/serve.md). Disabled by default; budget trips never retry.
    RetryPolicy retry;

    /// Warm ground-once base cache shared across runs over the SAME model,
    /// requirements, and mitigation map (epa/epa.hpp; the daemon wires one
    /// per served model). nullptr — the default — grounds per analysis as
    /// before. Borrowed.
    epa::GroundedBaseCache* base_cache = nullptr;

    /// The run's shared worker pool, built on first use with
    /// ThreadPool::resolve(jobs) lanes. One batch at a time (the pipeline's
    /// sweeps never nest). Jobs changes after the first call have no effect.
    ThreadPool& pool();

private:
    std::mutex pool_mutex_;
    std::unique_ptr<ThreadPool> pool_;
};

}  // namespace cprisk
