#include "analysis/dependency_graph.hpp"

#include <algorithm>

namespace cprisk::analysis {

namespace {

using asp::Head;
using asp::Literal;
using asp::Program;
using asp::Rule;
using asp::Signature;
using asp::WeakConstraint;

constexpr const char kPrevPrefix[] = "prev_";
constexpr std::size_t kPrevPrefixLen = 5;
constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// One body input of a rule: the predicate plus how it is consumed.
struct Input {
    Signature sig;
    bool negative = false;
};

void collect_literal_inputs(const Literal& lit, std::vector<Input>& out) {
    switch (lit.kind) {
        case Literal::Kind::Atom:
            out.push_back(Input{Signature{lit.atom.predicate, lit.atom.arity()}, lit.negated});
            break;
        case Literal::Kind::Comparison: break;
        case Literal::Kind::Aggregate:
            // Aggregates are non-monotone: treat their condition atoms as
            // negative dependencies (the standard stratification convention).
            for (const auto& element : lit.elements) {
                for (const Literal& cond : element.condition) {
                    std::vector<Input> inner;
                    collect_literal_inputs(cond, inner);
                    for (Input& input : inner) {
                        input.negative = true;
                        out.push_back(std::move(input));
                    }
                }
            }
            break;
    }
}

}  // namespace

bool has_temporal_prefix(const std::string& predicate) {
    return predicate.size() > kPrevPrefixLen &&
           predicate.compare(0, kPrevPrefixLen, kPrevPrefix) == 0;
}

std::string temporal_base(const std::string& predicate) {
    return predicate.substr(kPrevPrefixLen);
}

std::optional<std::size_t> DependencyGraph::node_of(const Signature& sig) const {
    auto it = node_index_.find(sig);
    if (it == node_index_.end()) return std::nullopt;
    return it->second;
}

std::size_t DependencyGraph::intern(const Signature& sig) {
    auto [it, inserted] = node_index_.emplace(sig, nodes_.size());
    if (inserted) nodes_.push_back(sig);
    return it->second;
}

void DependencyGraph::add_edge(std::size_t from, std::size_t to, bool negative, bool temporal) {
    if (edge_seen_.emplace(from, to, negative, temporal).second) {
        edges_.push_back(DependencyEdge{from, to, negative, temporal});
    }
}

void DependencyGraph::add_root(const Signature& sig) {
    roots_.insert(intern(sig));
    // A root read through the frame idiom also roots the base predicate: a
    // constraint over prev_p consumes p from the previous step.
    if (has_temporal_prefix(sig.predicate)) {
        roots_.insert(intern(Signature{temporal_base(sig.predicate), sig.arity}));
    }
}

void DependencyGraph::add_rule(const Rule& rule) {
    std::vector<std::size_t> heads;
    std::vector<Input> inputs;

    switch (rule.head.kind) {
        case Head::Kind::Atom:
            heads.push_back(intern(Signature{rule.head.atom.predicate, rule.head.atom.arity()}));
            break;
        case Head::Kind::Constraint: break;
        case Head::Kind::Choice:
            for (const auto& element : rule.head.elements) {
                heads.push_back(intern(Signature{element.atom.predicate, element.atom.arity()}));
                for (const Literal& cond : element.condition) {
                    collect_literal_inputs(cond, inputs);
                }
            }
            break;
    }
    for (const Literal& lit : rule.body) collect_literal_inputs(lit, inputs);

    if (heads.empty()) {
        // Constraint: its body predicates are outputs (they decide model
        // admissibility), not dependencies of anything.
        for (const Input& input : inputs) add_root(input.sig);
        return;
    }
    for (const Input& input : inputs) {
        const std::size_t from = intern(input.sig);
        for (std::size_t head : heads) add_edge(from, head, input.negative, /*temporal=*/false);
        if (has_temporal_prefix(input.sig.predicate)) {
            const std::size_t base =
                intern(Signature{temporal_base(input.sig.predicate), input.sig.arity});
            for (std::size_t head : heads) {
                add_edge(base, head, input.negative, /*temporal=*/true);
            }
        }
    }
}

void DependencyGraph::add_weak(const WeakConstraint& weak) {
    std::vector<Input> inputs;
    for (const Literal& lit : weak.body) collect_literal_inputs(lit, inputs);
    for (const Input& input : inputs) add_root(input.sig);
}

DependencyGraph DependencyGraph::build(const Program& program) {
    return build(std::vector<const Program*>{&program});
}

DependencyGraph DependencyGraph::build(const std::vector<const Program*>& programs) {
    DependencyGraph graph;
    for (const Program* program : programs) {
        if (program == nullptr) continue;
        for (const auto& sectioned : program->rules()) graph.add_rule(sectioned.rule);
        for (const auto& sectioned : program->weaks()) graph.add_weak(sectioned.weak);
        for (const Signature& sig : program->shows()) {
            graph.add_root(sig);
            graph.has_show_roots_ = true;
        }
    }
    graph.finalize();
    return graph;
}

DependencyGraph DependencyGraph::from_rules(const std::vector<Rule>& rules) {
    DependencyGraph graph;
    for (const Rule& rule : rules) graph.add_rule(rule);
    graph.finalize();
    return graph;
}

void DependencyGraph::finalize() {
    compute_components();
    compute_strata();
}

void DependencyGraph::compute_components() {
    const std::size_t n = nodes_.size();
    std::vector<std::vector<std::size_t>> adjacency(n);
    for (const DependencyEdge& edge : edges_) {
        if (!edge.temporal) adjacency[edge.from].push_back(edge.to);
    }

    // Iterative Tarjan; components come out in reverse topological order
    // (sinks first) and are reversed below.
    std::vector<std::size_t> index(n, kNone);
    std::vector<std::size_t> low(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<std::size_t> stack;
    std::size_t counter = 0;

    struct Frame {
        std::size_t node;
        std::size_t next_edge;
    };
    std::vector<Frame> frames;

    for (std::size_t start = 0; start < n; ++start) {
        if (index[start] != kNone) continue;
        index[start] = low[start] = counter++;
        stack.push_back(start);
        on_stack[start] = true;
        frames.push_back(Frame{start, 0});
        while (!frames.empty()) {
            Frame& frame = frames.back();
            const std::size_t v = frame.node;
            if (frame.next_edge < adjacency[v].size()) {
                const std::size_t w = adjacency[v][frame.next_edge++];
                if (index[w] == kNone) {
                    index[w] = low[w] = counter++;
                    stack.push_back(w);
                    on_stack[w] = true;
                    frames.push_back(Frame{w, 0});
                } else if (on_stack[w]) {
                    low[v] = std::min(low[v], index[w]);
                }
            } else {
                if (low[v] == index[v]) {
                    std::vector<std::size_t> component;
                    while (true) {
                        const std::size_t w = stack.back();
                        stack.pop_back();
                        on_stack[w] = false;
                        component.push_back(w);
                        if (w == v) break;
                    }
                    components_.push_back(std::move(component));
                }
                frames.pop_back();
                if (!frames.empty()) {
                    low[frames.back().node] = std::min(low[frames.back().node], low[v]);
                }
            }
        }
    }

    std::reverse(components_.begin(), components_.end());
    component_of_.assign(n, 0);
    for (std::size_t c = 0; c < components_.size(); ++c) {
        std::sort(components_[c].begin(), components_[c].end());
        for (std::size_t node : components_[c]) component_of_[node] = c;
    }
}

void DependencyGraph::compute_strata() {
    strata_.assign(components_.size(), 0);
    std::set<std::size_t> unstratified;
    std::set<std::size_t> positive_loops;
    std::vector<std::vector<std::pair<std::size_t, bool>>> incoming(components_.size());
    for (const DependencyEdge& edge : edges_) {
        if (edge.temporal) continue;
        const std::size_t from = component_of_[edge.from];
        const std::size_t to = component_of_[edge.to];
        if (from == to) {
            // Any internal edge of an SCC lies on a cycle (for singleton
            // components the edge is a self-loop).
            (edge.negative ? unstratified : positive_loops).insert(to);
        } else {
            incoming[to].emplace_back(from, edge.negative);
        }
    }
    // Components are in topological order, so every source stratum is final
    // when its consumers are visited.
    for (std::size_t c = 0; c < components_.size(); ++c) {
        for (const auto& [from, negative] : incoming[c]) {
            strata_[c] = std::max(strata_[c], strata_[from] + (negative ? 1 : 0));
        }
    }
    unstratified_.assign(unstratified.begin(), unstratified.end());
    positive_loops_.assign(positive_loops.begin(), positive_loops.end());
}

int DependencyGraph::stratum_count() const {
    int count = 0;
    for (int stratum : strata_) count = std::max(count, stratum + 1);
    return count;
}

std::vector<Signature> DependencyGraph::component_signatures(std::size_t component) const {
    std::vector<Signature> signatures;
    signatures.reserve(components_[component].size());
    for (std::size_t node : components_[component]) signatures.push_back(nodes_[node]);
    std::sort(signatures.begin(), signatures.end());
    return signatures;
}

std::vector<bool> DependencyGraph::reachable_from_outputs(
    const std::set<Signature>& extra_roots) const {
    std::vector<std::vector<std::size_t>> reverse(nodes_.size());
    for (const DependencyEdge& edge : edges_) reverse[edge.to].push_back(edge.from);

    std::vector<bool> reached(nodes_.size(), false);
    std::vector<std::size_t> stack;
    auto push = [&](std::size_t node) {
        if (!reached[node]) {
            reached[node] = true;
            stack.push_back(node);
        }
    };
    for (std::size_t root : roots_) push(root);
    for (const Signature& sig : extra_roots) {
        if (auto node = node_of(sig)) push(*node);
    }
    while (!stack.empty()) {
        const std::size_t v = stack.back();
        stack.pop_back();
        for (std::size_t w : reverse[v]) push(w);
        // Reaching prev_p means p at the previous step matters too, even
        // when no rule mentions both (e.g. p only appears as prev_p).
        const Signature& sig = nodes_[v];
        if (has_temporal_prefix(sig.predicate)) {
            if (auto base = node_of(Signature{temporal_base(sig.predicate), sig.arity})) {
                push(*base);
            }
        }
    }
    return reached;
}

}  // namespace cprisk::analysis
