#include "analysis/reachability.hpp"

namespace cprisk::analysis {

using model::ComponentId;

ReachabilityClosure::ReachabilityClosure(const model::SystemModel& model) {
    for (const model::Component& component : model.components()) {
        successors_[component.id] = model.propagation_successors(component.id);
    }
    for (const model::Component& component : model.components()) {
        std::set<ComponentId>& visited = closure_[component.id];
        std::vector<ComponentId> stack = successors_[component.id];
        while (!stack.empty()) {
            ComponentId current = std::move(stack.back());
            stack.pop_back();
            if (!visited.insert(current).second) continue;
            auto it = successors_.find(current);
            if (it == successors_.end()) continue;
            for (const ComponentId& next : it->second) {
                if (visited.count(next) == 0) stack.push_back(next);
            }
        }
    }
}

const std::vector<ComponentId>& ReachabilityClosure::successors(const ComponentId& id) const {
    static const std::vector<ComponentId> kEmpty;
    auto it = successors_.find(id);
    return it == successors_.end() ? kEmpty : it->second;
}

const std::set<ComponentId>& ReachabilityClosure::reachable_from(const ComponentId& id) const {
    static const std::set<ComponentId> kEmpty;
    auto it = closure_.find(id);
    return it == closure_.end() ? kEmpty : it->second;
}

bool ReachabilityClosure::reaches(const ComponentId& source, const ComponentId& target) const {
    return reachable_from(source).count(target) > 0;
}

}  // namespace cprisk::analysis
