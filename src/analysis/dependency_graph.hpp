// cprisk/analysis/dependency_graph.hpp
//
// Predicate dependency graph over asp::Program: one node per predicate
// signature, one edge per body->head dependency (negative when the body
// literal is under `not` or inside an aggregate). The graph is condensed
// into strongly connected components (Tarjan), ordered topologically, and
// assigned strata; this drives
//
//   - the asp-unstratified-negation / asp-positive-loop /
//     asp-unreachable-from-show lint rules (lint/asp_lint.cpp),
//   - SCC-ordered bottom-up grounding (asp/grounder.cpp), and
//   - the `cprisk graph` CLI subcommand (tools/cprisk_main.cpp).
//
// Temporal programs use the `prev_p` frame idiom: `prev_p` stays a node of
// its own (so per-step recursion remains stratified), and an extra edge
// base-predicate -> head marked `temporal` records the cross-step feed.
// Temporal edges are excluded from SCC/stratification but followed by the
// backward output-reachability walk.
//
// For choice rules, every body and condition predicate is made a dependency
// of every choice element. That slightly over-approximates the semantic
// dependencies (a condition of one element does not really feed a sibling
// element) but guarantees the ordering invariant the grounder relies on:
// all inputs of a rule converge no later than the earliest component any
// of its heads belongs to.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "asp/syntax.hpp"
#include "asp/term.hpp"

namespace cprisk::analysis {

/// One dependency: head predicate `to` depends on body predicate `from`.
struct DependencyEdge {
    std::size_t from = 0;
    std::size_t to = 0;
    bool negative = false;  ///< through `not` or a body aggregate
    bool temporal = false;  ///< prev_ alias: base predicate feeds the head at t+1
};

class DependencyGraph {
public:
    /// Builds the graph of one program (rules, weak constraints, #show).
    static DependencyGraph build(const asp::Program& program);

    /// Builds the union graph of several programs (e.g. every behaviour
    /// fragment of a bundle), so cross-fragment dependencies resolve.
    static DependencyGraph build(const std::vector<const asp::Program*>& programs);

    /// Builds from bare rules (no weaks/shows); used by the grounder after
    /// #const substitution.
    static DependencyGraph from_rules(const std::vector<asp::Rule>& rules);

    // --- nodes and edges ---------------------------------------------------

    std::size_t node_count() const { return nodes_.size(); }
    const std::vector<asp::Signature>& nodes() const { return nodes_; }
    const asp::Signature& node(std::size_t index) const { return nodes_[index]; }
    const std::vector<DependencyEdge>& edges() const { return edges_; }
    std::optional<std::size_t> node_of(const asp::Signature& sig) const;

    // --- SCC condensation --------------------------------------------------

    /// Components in topological order: every non-temporal edge runs from an
    /// earlier (or the same) component to a later one. Members are sorted.
    const std::vector<std::vector<std::size_t>>& components() const { return components_; }
    std::size_t component_count() const { return components_.size(); }
    std::size_t component_of(std::size_t node) const { return component_of_[node]; }
    std::vector<asp::Signature> component_signatures(std::size_t component) const;

    // --- stratification ----------------------------------------------------

    /// Stratum of a node's component: 0 for components with no incoming
    /// cross-component edges, otherwise the max over incoming edges of the
    /// source stratum plus one for each negative edge crossed.
    int stratum_of(std::size_t node) const { return strata_[component_of_[node]]; }
    int stratum_count() const;

    /// True if no component contains an internal negative edge.
    bool is_stratified() const { return unstratified_.empty(); }

    /// Components with recursion through negation (an internal negative
    /// edge), in topological order.
    const std::vector<std::size_t>& unstratified_components() const { return unstratified_; }

    /// Components with positive recursion (an internal positive edge: a
    /// positive self-loop or a larger positive cycle), in topological order.
    const std::vector<std::size_t>& positive_loop_components() const { return positive_loops_; }

    // --- output reachability -----------------------------------------------

    /// True if any source program declared a #show directive.
    bool has_show_roots() const { return has_show_roots_; }

    /// Nodes that can influence an output, walking edges backwards
    /// (head -> body, temporal edges included) from the roots: #show
    /// signatures, constraint and weak-constraint bodies, plus
    /// `extra_roots` (e.g. requirement atoms consumed outside the program).
    std::vector<bool> reachable_from_outputs(
        const std::set<asp::Signature>& extra_roots = {}) const;

private:
    std::size_t intern(const asp::Signature& sig);
    void add_edge(std::size_t from, std::size_t to, bool negative, bool temporal);
    void add_root(const asp::Signature& sig);
    void add_rule(const asp::Rule& rule);
    void add_weak(const asp::WeakConstraint& weak);
    void finalize();
    void compute_components();
    void compute_strata();

    std::vector<asp::Signature> nodes_;
    std::map<asp::Signature, std::size_t> node_index_;
    std::vector<DependencyEdge> edges_;
    std::set<std::tuple<std::size_t, std::size_t, bool, bool>> edge_seen_;
    std::set<std::size_t> roots_;
    bool has_show_roots_ = false;

    std::vector<std::vector<std::size_t>> components_;
    std::vector<std::size_t> component_of_;
    std::vector<int> strata_;
    std::vector<std::size_t> unstratified_;
    std::vector<std::size_t> positive_loops_;
};

/// True for `prev_`-prefixed predicate names (the temporal frame idiom).
bool has_temporal_prefix(const std::string& predicate);

/// Strips the `prev_` prefix; requires has_temporal_prefix(predicate).
std::string temporal_base(const std::string& predicate);

}  // namespace cprisk::analysis
