#include "analysis/taint.hpp"

#include <deque>

namespace cprisk::analysis {

using model::ComponentId;

int TaintResult::depth_of(const ComponentId& id) const {
    auto it = compromise_depth.find(id);
    return it == compromise_depth.end() ? -1 : it->second;
}

TaintResult analyze_attack_reachability(const model::SystemModel& model,
                                        const security::AttackMatrix& matrix,
                                        const ReachabilityClosure& closure) {
    TaintResult result;

    for (const model::Component& component : model.components()) {
        if (model.is_refined(component.id)) continue;
        if (component.exposure == model::Exposure::None) continue;
        const auto techniques = matrix.techniques_for(component);
        if (techniques.empty()) continue;

        AttackEntryPoint entry;
        entry.component = component.id;
        entry.technique_id = techniques.front()->id;
        entry.technique_count = techniques.size();
        entry.depth = component.exposure == model::Exposure::Public ? 0 : 1;
        for (const security::Technique* technique : techniques) {
            for (const model::FaultMode& mode : component.fault_modes) {
                if (technique->caused_fault == mode.id) {
                    entry.activated_fault = mode.id;
                    entry.activating_technique = technique->id;
                    break;
                }
            }
            if (!entry.activated_fault.empty()) break;
        }
        result.entry_points.push_back(std::move(entry));
    }

    // Multi-source BFS: seeds sorted by depth (0 before 1) keep the queue
    // monotone, so the first visit of a component is at its minimal depth.
    std::deque<ComponentId> queue;
    for (int seed_depth : {0, 1}) {
        for (const AttackEntryPoint& entry : result.entry_points) {
            if (entry.depth != seed_depth) continue;
            if (result.compromise_depth.emplace(entry.component, entry.depth).second) {
                queue.push_back(entry.component);
            }
        }
    }
    while (!queue.empty()) {
        const ComponentId current = std::move(queue.front());
        queue.pop_front();
        const int depth = result.compromise_depth.at(current);
        for (const ComponentId& next : closure.successors(current)) {
            if (result.compromise_depth.emplace(next, depth + 1).second) {
                queue.push_back(next);
            }
        }
    }

    for (const model::Component& component : model.components()) {
        if (model.is_refined(component.id)) continue;
        if (!result.reached(component.id)) result.unreached.push_back(component.id);
    }
    return result;
}

TaintResult analyze_attack_reachability(const model::SystemModel& model,
                                        const security::AttackMatrix& matrix) {
    return analyze_attack_reachability(model, matrix, ReachabilityClosure(model));
}

}  // namespace cprisk::analysis
