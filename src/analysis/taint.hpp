// cprisk/analysis/taint.hpp
//
// Attacker-reachability taint analysis over a SystemModel and an attack
// matrix (paper SS IV-A/IV-B: exposed components are where the adversary
// enters; spurious scenarios involve components no attack can reach).
//
// Seeding: a non-refined component is an *entry point* when its exposure is
// not `none` AND at least one attack-matrix technique applies to its element
// type. Public entry points start at compromise depth 0; internal ones at
// depth 1 (the assumed-breach foothold: reachable once the adversary is
// inside the perimeter). Taint then propagates along fault-propagation
// relations (ReachabilityClosure semantics) at +1 depth per hop.
//
// Consumers: the model-trivially-compromised / model-unreachable-asset lint
// rules (lint/model_lint.cpp) and the `cprisk graph` taint summary.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/reachability.hpp"
#include "model/system_model.hpp"
#include "security/attack_matrix.hpp"

namespace cprisk::analysis {

/// A component where the adversary can gain an initial foothold.
struct AttackEntryPoint {
    model::ComponentId component;
    std::string technique_id;         ///< first applicable technique
    std::size_t technique_count = 0;  ///< applicable techniques in total
    int depth = 0;                    ///< 0 = public, 1 = internal (assumed breach)
    /// Declared fault mode a technique activates directly on this component
    /// (empty if none): the component is compromised with no lateral steps.
    std::string activated_fault;
    std::string activating_technique;
};

struct TaintResult {
    std::vector<AttackEntryPoint> entry_points;          ///< model declaration order
    std::map<model::ComponentId, int> compromise_depth;  ///< reached component -> min depth
    std::vector<model::ComponentId> unreached;           ///< non-refined, never reached

    bool reached(const model::ComponentId& id) const { return compromise_depth.count(id) > 0; }
    /// Minimal compromise depth, or -1 if unreached.
    int depth_of(const model::ComponentId& id) const;
};

/// Runs the taint pass. The closure must be built over `model`.
TaintResult analyze_attack_reachability(const model::SystemModel& model,
                                        const security::AttackMatrix& matrix,
                                        const ReachabilityClosure& closure);

/// Convenience overload building the closure internally.
TaintResult analyze_attack_reachability(const model::SystemModel& model,
                                        const security::AttackMatrix& matrix);

}  // namespace cprisk::analysis
