// cprisk/analysis/reachability.hpp
//
// Precomputed fault-propagation reachability over a SystemModel. The model's
// own SystemModel::reachable_from re-scans the relation list on every hop,
// which turns nested asset x source loops (hierarchy/threat_refinement.cpp)
// into an O(n^2 * R) scan; this closure walks the relation list once per
// component and memoizes the full reachable set, so repeated queries are a
// set lookup. Semantics match SystemModel::propagation_successors /
// reachable_from exactly: propagating relation types only, bidirectional
// types traversed both ways, refined composites skipped, and a component
// reaches itself only via a cycle.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "model/system_model.hpp"

namespace cprisk::analysis {

class ReachabilityClosure {
public:
    explicit ReachabilityClosure(const model::SystemModel& model);

    /// Propagation successors of `id` (one hop), precomputed.
    const std::vector<model::ComponentId>& successors(const model::ComponentId& id) const;

    /// Reachable set of `id` along >= 1 propagation hop; contains `id`
    /// itself only when it sits on a cycle.
    const std::set<model::ComponentId>& reachable_from(const model::ComponentId& id) const;

    /// True if `target` is reachable from `source` (>= 1 hop).
    bool reaches(const model::ComponentId& source, const model::ComponentId& target) const;

private:
    std::map<model::ComponentId, std::vector<model::ComponentId>> successors_;
    std::map<model::ComponentId, std::set<model::ComponentId>> closure_;
};

}  // namespace cprisk::analysis
