#include "risk/matrix.hpp"

#include "common/error.hpp"

namespace cprisk::risk {

using qual::index_of;
using qual::kAllLevels;
using qual::kLevelCount;
using qual::Level;

RiskMatrix::RiskMatrix(std::string row_name, std::string col_name,
                       std::vector<std::vector<Level>> cells)
    : row_name_(std::move(row_name)), col_name_(std::move(col_name)), cells_(std::move(cells)) {
    require(cells_.size() == kLevelCount, "RiskMatrix: need 5 rows");
    for (const auto& row : cells_) {
        require(row.size() == kLevelCount, "RiskMatrix: need 5 columns per row");
    }
}

Level RiskMatrix::lookup(Level row, Level col) const {
    return cells_[static_cast<std::size_t>(index_of(row))]
                 [static_cast<std::size_t>(index_of(col))];
}

bool RiskMatrix::is_monotone() const {
    for (std::size_t r = 0; r < kLevelCount; ++r) {
        for (std::size_t c = 0; c < kLevelCount; ++c) {
            if (r + 1 < kLevelCount && cells_[r + 1][c] < cells_[r][c]) return false;
            if (c + 1 < kLevelCount && cells_[r][c + 1] < cells_[r][c]) return false;
        }
    }
    return true;
}

TextTable RiskMatrix::render() const {
    std::vector<std::string> header = {row_name_ + " \\ " + col_name_};
    for (Level col : kAllLevels) header.emplace_back(qual::to_short_string(col));
    TextTable table(std::move(header));
    // Paper layout: rows descending VH..VL.
    for (int r = static_cast<int>(kLevelCount) - 1; r >= 0; --r) {
        std::vector<std::string> row = {
            std::string(qual::to_short_string(static_cast<Level>(r)))};
        for (std::size_t c = 0; c < kLevelCount; ++c) {
            row.emplace_back(qual::to_short_string(cells_[static_cast<std::size_t>(r)][c]));
        }
        table.add_row(std::move(row));
    }
    return table;
}

}  // namespace cprisk::risk
