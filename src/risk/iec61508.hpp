// cprisk/risk/iec61508.hpp
//
// IEC 61508 qualitative hazard analysis (paper §IV-B): "six categories of
// the likelihood of occurrence and 4 of consequence that are combined in a
// risk class matrix". The class matrix follows IEC 61508-5 (example risk
// graph calibration).
#pragma once

#include <string_view>

#include "common/result.hpp"
#include "common/table.hpp"
#include "qualitative/level.hpp"

namespace cprisk::risk {

/// Six likelihood-of-occurrence categories, ascending frequency.
enum class Likelihood : std::uint8_t {
    Incredible = 0,
    Improbable = 1,
    Remote = 2,
    Occasional = 3,
    Probable = 4,
    Frequent = 5,
};

/// Four consequence categories, ascending severity.
enum class Consequence : std::uint8_t {
    Negligible = 0,
    Marginal = 1,
    Critical = 2,
    Catastrophic = 3,
};

/// Risk classes: I (intolerable) .. IV (negligible).
enum class RiskClass : std::uint8_t {
    I = 0,    ///< intolerable risk
    II = 1,   ///< undesirable; tolerable only if reduction impracticable
    III = 2,  ///< tolerable if cost of reduction exceeds improvement (ALARP)
    IV = 3,   ///< negligible risk
};

std::string_view to_string(Likelihood likelihood);
std::string_view to_string(Consequence consequence);
std::string_view to_string(RiskClass risk_class);

Result<Likelihood> parse_likelihood(std::string_view text);
Result<Consequence> parse_consequence(std::string_view text);

/// The IEC 61508 risk class for a likelihood/consequence pair.
RiskClass iec61508_class(Likelihood likelihood, Consequence consequence);

/// Renders the full 6x4 matrix (rows descending frequency, as the standard
/// prints it).
TextTable iec61508_matrix_table();

/// Bridges the five-point qualitative scale to the 6/4-category scheme so
/// EPA severity/likelihood estimates can be classified under IEC 61508.
Likelihood likelihood_from_level(qual::Level level);
Consequence consequence_from_level(qual::Level level);

}  // namespace cprisk::risk
