// cprisk/risk/ora.hpp
//
// Open FAIR / O-RA qualitative risk calculus (paper §IV-B, Fig. 2, Table I).
//
// The attribute taxonomy (Fig. 2):
//
//   Risk
//   ├── Loss Event Frequency (LEF)
//   │   ├── Threat Event Frequency (TEF)
//   │   │   ├── Contact Frequency (CF)
//   │   │   └── Probability of Action (PoA)
//   │   └── Vulnerability (Vuln)
//   │       ├── Threat Capability (TCap)
//   │       └── Resistance Strength (RS)
//   └── Loss Magnitude (LM)
//       ├── Primary Loss (PL)
//       └── Secondary Loss (SL)
//
// Risk(LM, LEF) uses the O-RA risk matrix exactly as printed in Table I.
// The intermediate combination operators are not tabulated in the paper;
// the defaults below follow the O-RA guidance (conservative t-norms) and
// are replaceable via RiskCalculus for domain calibration ("parameters may
// need to be adjusted based on the nature of the industry", §IV-B).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "qualitative/algebra.hpp"
#include "qualitative/level.hpp"
#include "risk/matrix.hpp"

namespace cprisk::risk {

/// The O-RA 5x5 risk matrix, cell-for-cell Table I of the paper.
const RiskMatrix& ora_risk_matrix();

/// Leaf (and optionally intermediate) attribute estimates for one scenario.
/// Intermediates, when provided, override derivation from leaves.
struct RiskInputs {
    // LEF branch leaves
    std::optional<qual::Level> contact_frequency;
    std::optional<qual::Level> probability_of_action;
    std::optional<qual::Level> threat_capability;
    std::optional<qual::Level> resistance_strength;
    // LM branch leaves
    std::optional<qual::Level> primary_loss;
    std::optional<qual::Level> secondary_loss;
    // Intermediate overrides
    std::optional<qual::Level> threat_event_frequency;
    std::optional<qual::Level> vulnerability;
    std::optional<qual::Level> loss_event_frequency;
    std::optional<qual::Level> loss_magnitude;
};

/// Fully derived attribute values, recorded for explainability ("the
/// interpretability of each step ... of priority concern", §II-A).
struct RiskDerivation {
    qual::Level threat_event_frequency = qual::Level::Medium;
    qual::Level vulnerability = qual::Level::Medium;
    qual::Level loss_event_frequency = qual::Level::Medium;
    qual::Level loss_magnitude = qual::Level::Medium;
    qual::Level risk = qual::Level::Medium;
    /// Human-readable step-by-step explanation of the derivation.
    std::vector<std::string> explanation;
};

/// The pluggable qualitative combination operators.
class RiskCalculus {
public:
    /// O-RA-flavoured defaults (see the .cpp for each operator's rationale).
    static RiskCalculus standard();

    /// TEF from contact frequency and probability of action.
    qual::Level tef(qual::Level contact_frequency, qual::Level probability_of_action) const;

    /// Vulnerability from threat capability vs resistance strength.
    qual::Level vulnerability(qual::Level threat_capability,
                              qual::Level resistance_strength) const;

    /// LEF from TEF and vulnerability.
    qual::Level lef(qual::Level tef, qual::Level vulnerability) const;

    /// LM from primary and secondary loss.
    qual::Level lm(qual::Level primary, qual::Level secondary) const;

    /// Risk from LM and LEF via the O-RA matrix (Table I).
    qual::Level risk(qual::Level lm, qual::Level lef) const;

    /// Full Fig. 2 derivation. Missing leaves default to Medium (recorded in
    /// the explanation); provided intermediates short-circuit their branch.
    RiskDerivation derive(const RiskInputs& inputs) const;

private:
    RiskCalculus() = default;
};

/// Convenience: Risk(LM, LEF) from Table I.
qual::Level ora_risk(qual::Level loss_magnitude, qual::Level loss_event_frequency);

}  // namespace cprisk::risk
