#include "risk/iec61508.hpp"

#include <array>

#include "common/strings.hpp"

namespace cprisk::risk {

std::string_view to_string(Likelihood likelihood) {
    switch (likelihood) {
        case Likelihood::Incredible: return "incredible";
        case Likelihood::Improbable: return "improbable";
        case Likelihood::Remote: return "remote";
        case Likelihood::Occasional: return "occasional";
        case Likelihood::Probable: return "probable";
        case Likelihood::Frequent: return "frequent";
    }
    return "?";
}

std::string_view to_string(Consequence consequence) {
    switch (consequence) {
        case Consequence::Negligible: return "negligible";
        case Consequence::Marginal: return "marginal";
        case Consequence::Critical: return "critical";
        case Consequence::Catastrophic: return "catastrophic";
    }
    return "?";
}

std::string_view to_string(RiskClass risk_class) {
    switch (risk_class) {
        case RiskClass::I: return "I";
        case RiskClass::II: return "II";
        case RiskClass::III: return "III";
        case RiskClass::IV: return "IV";
    }
    return "?";
}

Result<Likelihood> parse_likelihood(std::string_view text) {
    const std::string t = to_lower(trim(text));
    for (int i = 0; i <= static_cast<int>(Likelihood::Frequent); ++i) {
        if (t == to_string(static_cast<Likelihood>(i))) return static_cast<Likelihood>(i);
    }
    return Result<Likelihood>::failure("unknown likelihood '" + std::string(text) + "'");
}

Result<Consequence> parse_consequence(std::string_view text) {
    const std::string t = to_lower(trim(text));
    for (int i = 0; i <= static_cast<int>(Consequence::Catastrophic); ++i) {
        if (t == to_string(static_cast<Consequence>(i))) return static_cast<Consequence>(i);
    }
    return Result<Consequence>::failure("unknown consequence '" + std::string(text) + "'");
}

RiskClass iec61508_class(Likelihood likelihood, Consequence consequence) {
    // IEC 61508-5 example calibration. Rows ascending frequency
    // (incredible..frequent); columns ascending severity
    // (negligible..catastrophic).
    static constexpr std::array<std::array<RiskClass, 4>, 6> kTable = {{
        /* incredible */ {RiskClass::IV, RiskClass::IV, RiskClass::IV, RiskClass::IV},
        /* improbable */ {RiskClass::IV, RiskClass::IV, RiskClass::III, RiskClass::III},
        /* remote     */ {RiskClass::IV, RiskClass::III, RiskClass::III, RiskClass::II},
        /* occasional */ {RiskClass::III, RiskClass::III, RiskClass::II, RiskClass::I},
        /* probable   */ {RiskClass::III, RiskClass::II, RiskClass::I, RiskClass::I},
        /* frequent   */ {RiskClass::II, RiskClass::I, RiskClass::I, RiskClass::I},
    }};
    return kTable[static_cast<std::size_t>(likelihood)][static_cast<std::size_t>(consequence)];
}

TextTable iec61508_matrix_table() {
    TextTable table({"Likelihood \\ Consequence", "negligible", "marginal", "critical",
                     "catastrophic"});
    for (int l = static_cast<int>(Likelihood::Frequent); l >= 0; --l) {
        std::vector<std::string> row = {std::string(to_string(static_cast<Likelihood>(l)))};
        for (int c = 0; c <= static_cast<int>(Consequence::Catastrophic); ++c) {
            row.emplace_back(
                to_string(iec61508_class(static_cast<Likelihood>(l), static_cast<Consequence>(c))));
        }
        table.add_row(std::move(row));
    }
    return table;
}

Likelihood likelihood_from_level(qual::Level level) {
    // VL..VH -> improbable..frequent (incredible is reserved for events the
    // qualitative model rules out entirely).
    switch (level) {
        case qual::Level::VeryLow: return Likelihood::Improbable;
        case qual::Level::Low: return Likelihood::Remote;
        case qual::Level::Medium: return Likelihood::Occasional;
        case qual::Level::High: return Likelihood::Probable;
        case qual::Level::VeryHigh: return Likelihood::Frequent;
    }
    return Likelihood::Occasional;
}

Consequence consequence_from_level(qual::Level level) {
    switch (level) {
        case qual::Level::VeryLow:
        case qual::Level::Low: return Consequence::Negligible;
        case qual::Level::Medium: return Consequence::Marginal;
        case qual::Level::High: return Consequence::Critical;
        case qual::Level::VeryHigh: return Consequence::Catastrophic;
    }
    return Consequence::Marginal;
}

}  // namespace cprisk::risk
