#include "risk/ora.hpp"

namespace cprisk::risk {

using qual::index_of;
using qual::Level;
using qual::level_from_index;

const RiskMatrix& ora_risk_matrix() {
    // Table I of the paper (O-RA standard), rows = LM ascending VL..VH,
    // columns = LEF ascending VL..VH.
    static const RiskMatrix kMatrix(
        "LM", "LEF",
        {
            /* LM=VL */ {Level::VeryLow, Level::VeryLow, Level::VeryLow, Level::Low,
                         Level::Medium},
            /* LM=L  */ {Level::VeryLow, Level::VeryLow, Level::Low, Level::Medium, Level::High},
            /* LM=M  */ {Level::VeryLow, Level::Low, Level::Medium, Level::High, Level::VeryHigh},
            /* LM=H  */ {Level::Low, Level::Medium, Level::High, Level::VeryHigh, Level::VeryHigh},
            /* LM=VH */ {Level::Medium, Level::High, Level::VeryHigh, Level::VeryHigh,
                         Level::VeryHigh},
        });
    return kMatrix;
}

qual::Level ora_risk(qual::Level loss_magnitude, qual::Level loss_event_frequency) {
    return ora_risk_matrix().lookup(loss_magnitude, loss_event_frequency);
}

RiskCalculus RiskCalculus::standard() { return RiskCalculus{}; }

Level RiskCalculus::tef(Level contact_frequency, Level probability_of_action) const {
    // A threat event needs contact AND action: Łukasiewicz t-norm
    // (index(a) + index(b) - 4, saturating at VL) — both factors must be
    // high for TEF to be high, matching O-RA's multiplicative intuition.
    return level_from_index(index_of(contact_frequency) + index_of(probability_of_action) - 4);
}

Level RiskCalculus::vulnerability(Level threat_capability, Level resistance_strength) const {
    // Vulnerability is the margin of attacker capability over resistance,
    // centred at Medium: equal strengths -> M; TCap two steps above RS -> VH.
    return level_from_index(2 + index_of(threat_capability) - index_of(resistance_strength));
}

Level RiskCalculus::lef(Level tef, Level vulnerability) const {
    // Loss events are the subset of threat events that succeed: LEF can
    // never exceed TEF, and a low vulnerability suppresses it further.
    return qual::qmin(tef, level_from_index(index_of(tef) + index_of(vulnerability) - 2));
}

Level RiskCalculus::lm(Level primary, Level secondary) const {
    // Conservative: the larger of primary and secondary loss dominates.
    return qual::qmax(primary, secondary);
}

Level RiskCalculus::risk(Level lm, Level lef) const { return ora_risk(lm, lef); }

namespace {

Level value_or_medium(const std::optional<Level>& value, const char* name,
                      std::vector<std::string>& explanation) {
    if (value) return *value;
    explanation.push_back(std::string(name) + " not estimated; defaulting to M");
    return Level::Medium;
}

std::string step(const char* name, Level value) {
    return std::string(name) + " = " + std::string(qual::to_short_string(value));
}

}  // namespace

RiskDerivation RiskCalculus::derive(const RiskInputs& inputs) const {
    RiskDerivation d;

    if (inputs.threat_event_frequency) {
        d.threat_event_frequency = *inputs.threat_event_frequency;
        d.explanation.push_back(step("TEF (given)", d.threat_event_frequency));
    } else {
        const Level cf = value_or_medium(inputs.contact_frequency, "CF", d.explanation);
        const Level poa = value_or_medium(inputs.probability_of_action, "PoA", d.explanation);
        d.threat_event_frequency = tef(cf, poa);
        d.explanation.push_back(step("TEF(CF,PoA)", d.threat_event_frequency));
    }

    if (inputs.vulnerability) {
        d.vulnerability = *inputs.vulnerability;
        d.explanation.push_back(step("Vuln (given)", d.vulnerability));
    } else {
        const Level tcap = value_or_medium(inputs.threat_capability, "TCap", d.explanation);
        const Level rs = value_or_medium(inputs.resistance_strength, "RS", d.explanation);
        d.vulnerability = vulnerability(tcap, rs);
        d.explanation.push_back(step("Vuln(TCap,RS)", d.vulnerability));
    }

    if (inputs.loss_event_frequency) {
        d.loss_event_frequency = *inputs.loss_event_frequency;
        d.explanation.push_back(step("LEF (given)", d.loss_event_frequency));
    } else {
        d.loss_event_frequency = lef(d.threat_event_frequency, d.vulnerability);
        d.explanation.push_back(step("LEF(TEF,Vuln)", d.loss_event_frequency));
    }

    if (inputs.loss_magnitude) {
        d.loss_magnitude = *inputs.loss_magnitude;
        d.explanation.push_back(step("LM (given)", d.loss_magnitude));
    } else {
        const Level pl = value_or_medium(inputs.primary_loss, "PL", d.explanation);
        const Level sl = value_or_medium(inputs.secondary_loss, "SL", d.explanation);
        d.loss_magnitude = lm(pl, sl);
        d.explanation.push_back(step("LM(PL,SL)", d.loss_magnitude));
    }

    d.risk = risk(d.loss_magnitude, d.loss_event_frequency);
    d.explanation.push_back(step("Risk(LM,LEF)", d.risk));
    return d;
}

}  // namespace cprisk::risk
