// cprisk/risk/prior.hpp
//
// Bayesian likelihood priors and the anytime priority policy (ROADMAP item
// 4, following Huang et al., arXiv:2509.00770). Each catalog fault mode
// carries a Beta prior over its activation probability — explicit
// `prior=A/B` or `prior=logodds:X` parameters from the model bundle, or a
// deterministic default derived from the qualitative likelihood level.
// Priors propagate through the dependency graph to a per-scenario
// *expected-risk score*: the joint activation probability of the scenario's
// mutations times an impact weight taken from the worst asset reachable
// from the faulted components.
//
// Scores are fixed to integer micro-units so they can ride in JSON journals
// (common/json.hpp is float-free) and order scenarios deterministically:
// descending expected risk, ties broken by ascending scenario id. A
// `--deadline-ms` interruption under PriorityPolicy::ExpectedRisk therefore
// reports the highest-risk coverage first, with a posterior confidence
// bound on the covered risk mass in the Completeness section.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "model/system_model.hpp"
#include "qualitative/level.hpp"
#include "security/scenario.hpp"

namespace cprisk::risk {

/// Order in which sweeps evaluate the scenario space.
enum class PriorityPolicy : std::uint8_t {
    Enumeration,   ///< generation order (pre-PR-10 behaviour)
    ExpectedRisk,  ///< descending expected risk, ties by ascending id
};

std::string_view to_string(PriorityPolicy policy);
std::optional<PriorityPolicy> parse_priority_policy(std::string_view text);

/// Beta(alpha, beta) prior over a fault mode's activation probability.
struct BetaPrior {
    double alpha = 1.0;
    double beta = 1.0;
    bool explicit_spec = false;  ///< came from a `prior=` model option

    double mean() const { return alpha / (alpha + beta); }
    double variance() const {
        const double n = alpha + beta;
        return alpha * beta / (n * n * (n + 1.0));
    }

    /// Deterministic default for a fault without explicit parameters: the
    /// five-point likelihood scale mapped to pseudo-count strength 10.
    static BetaPrior from_likelihood(qual::Level likelihood);
    /// Explicit parameters when present, `from_likelihood` otherwise.
    static BetaPrior from_fault(const model::FaultMode& fault);
};

/// All fault-mode priors of one model, keyed by (component, fault id).
class PriorSet {
public:
    static PriorSet from_model(const model::SystemModel& model);

    /// Null when the component/fault pair is unknown to the model.
    const BetaPrior* find(const model::ComponentId& component, const std::string& fault_id) const;
    /// True when any entry carries explicit `prior=` parameters.
    bool any_explicit() const { return any_explicit_; }
    std::size_t size() const { return priors_.size(); }

private:
    std::map<std::pair<model::ComponentId, std::string>, BetaPrior> priors_;
    bool any_explicit_ = false;
};

/// Point and interval estimate of the covered share of expected risk.
struct CoverageEstimate {
    long long covered_micros = 0;  ///< summed score of decided scenarios
    long long total_micros = 0;    ///< summed score of the whole space
    /// Posterior 5th-percentile lower bound on the covered fraction, in
    /// micro-units of probability (0..1000000); -1 when total risk is zero.
    long long lower_bound_micros = -1;
};

/// Scores and orders scenarios for one model under one policy. Construction
/// precomputes the reachability-based impact weights; scoring is pure.
class ScenarioPriority {
public:
    ScenarioPriority(const model::SystemModel& model, PriorityPolicy policy);

    PriorityPolicy policy() const { return policy_; }
    const PriorSet& priors() const { return priors_; }

    /// Expected-risk score in micro-units: joint prior mean of the
    /// scenario's mutations times 2^(impact level index). Zero for the
    /// empty (no-mutation) scenario.
    long long score_micros(const security::AttackScenario& scenario) const;

    /// Same score for a raw mutation set (frontier candidates that have no
    /// scenario id yet).
    long long score_micros(const std::vector<security::Mutation>& mutations) const;

    /// Stable in-place reorder: descending score, ties by ascending id.
    /// No-op under PriorityPolicy::Enumeration.
    void order(std::vector<security::AttackScenario>& scenarios) const;

    /// Sensitivity band half-width (in qualitative levels, 0..2) for the
    /// scenario's likelihood, derived from the widest prior standard
    /// deviation among its mutations. 1 reproduces the pre-prior +/-1
    /// sweep; sharp explicit priors narrow it to 0, weak ones widen to 2.
    int likelihood_band_radius(const security::AttackScenario& scenario) const;

    /// Covered-risk estimate over `scenarios` where `decided[i]` marks the
    /// scenarios with a definitive verdict. The lower bound is the 5th
    /// percentile of the coverage fraction over 64 posterior draws from the
    /// fault priors, generated by a seeded deterministic LCG.
    CoverageEstimate coverage(const std::vector<security::AttackScenario>& scenarios,
                              const std::vector<bool>& decided,
                              unsigned long long seed) const;

private:
    double joint_mean(const std::vector<security::Mutation>& mutations, int* weight_index) const;

    const model::SystemModel* model_;
    PriorityPolicy policy_;
    PriorSet priors_;
    /// Per-component impact level index: max asset value over the forward
    /// closure of the dependency relations (the faulted component itself
    /// included).
    std::map<model::ComponentId, int> reach_impact_;
};

}  // namespace cprisk::risk
