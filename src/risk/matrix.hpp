// cprisk/risk/matrix.hpp
//
// Generic qualitative risk matrix: a rectangular lookup table mapping two
// ordinal attributes to an output category. Instances: the O-RA 5x5 risk
// matrix (Table I of the paper) and the IEC 61508 risk-class matrix.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "qualitative/level.hpp"

namespace cprisk::risk {

/// A rows x cols lookup matrix over the five-point scale. Rows index the
/// first attribute *descending* in rendered output (as printed in the
/// paper's Table I) but are accessed by Level ascending here.
class RiskMatrix {
public:
    /// `cells[row][col]` with row = index_of(row_level), col =
    /// index_of(col_level); both ascending VL..VH.
    RiskMatrix(std::string row_name, std::string col_name,
               std::vector<std::vector<qual::Level>> cells);

    qual::Level lookup(qual::Level row, qual::Level col) const;

    const std::string& row_name() const { return row_name_; }
    const std::string& col_name() const { return col_name_; }

    /// Monotonicity sanity: output never decreases when either input
    /// increases (a well-formed risk matrix must satisfy this).
    bool is_monotone() const;

    /// Renders in the paper's layout: rows descending VH..VL, columns
    /// ascending VL..VH.
    TextTable render() const;

private:
    std::string row_name_;
    std::string col_name_;
    std::vector<std::vector<qual::Level>> cells_;
};

}  // namespace cprisk::risk
