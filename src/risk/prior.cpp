#include "risk/prior.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <set>

namespace cprisk::risk {

std::string_view to_string(PriorityPolicy policy) {
    switch (policy) {
        case PriorityPolicy::Enumeration: return "enumeration";
        case PriorityPolicy::ExpectedRisk: return "expected_risk";
    }
    return "enumeration";
}

std::optional<PriorityPolicy> parse_priority_policy(std::string_view text) {
    if (text == "enumeration") return PriorityPolicy::Enumeration;
    // The journal echo spells it "expected_risk"; the CLI flag prefers the
    // hyphenated form. Accept both so echoes parse back.
    if (text == "expected_risk" || text == "expected-risk") return PriorityPolicy::ExpectedRisk;
    return std::nullopt;
}

BetaPrior BetaPrior::from_likelihood(qual::Level likelihood) {
    // Five-point scale anchored to occurrence-probability means; pseudo-count
    // strength 10 keeps the defaults deliberately vague (sd ~ 0.1) so that
    // explicit `prior=` parameters visibly sharpen or widen the bands.
    static constexpr double kMeans[] = {0.02, 0.08, 0.2, 0.45, 0.8};
    const double mean = kMeans[qual::index_of(likelihood)];
    constexpr double kStrength = 10.0;
    BetaPrior prior;
    prior.alpha = mean * kStrength;
    prior.beta = kStrength - prior.alpha;
    prior.explicit_spec = false;
    return prior;
}

BetaPrior BetaPrior::from_fault(const model::FaultMode& fault) {
    if (fault.prior.present) {
        BetaPrior prior;
        prior.alpha = fault.prior.alpha;
        prior.beta = fault.prior.beta;
        prior.explicit_spec = true;
        return prior;
    }
    return from_likelihood(fault.likelihood);
}

PriorSet PriorSet::from_model(const model::SystemModel& model) {
    PriorSet set;
    for (const model::Component& component : model.components()) {
        for (const model::FaultMode& mode : component.fault_modes) {
            BetaPrior prior = BetaPrior::from_fault(mode);
            set.any_explicit_ = set.any_explicit_ || prior.explicit_spec;
            set.priors_.emplace(std::make_pair(component.id, mode.id), prior);
        }
    }
    return set;
}

const BetaPrior* PriorSet::find(const model::ComponentId& component,
                                const std::string& fault_id) const {
    auto it = priors_.find(std::make_pair(component, fault_id));
    return it == priors_.end() ? nullptr : &it->second;
}

namespace {

/// Forward closure of the dependency relations from `root`; impact is the
/// worst asset value an activated fault can propagate to.
int reach_impact_index(const model::SystemModel& model, const model::ComponentId& root) {
    std::set<model::ComponentId> visited{root};
    std::deque<model::ComponentId> frontier{root};
    int impact = qual::index_of(model.component(root).asset_value);
    while (!frontier.empty()) {
        model::ComponentId current = frontier.front();
        frontier.pop_front();
        for (const model::Relation& relation : model.relations()) {
            if (relation.source != current) continue;
            if (!visited.insert(relation.target).second) continue;
            if (model.has_component(relation.target)) {
                impact = std::max(impact,
                                  qual::index_of(model.component(relation.target).asset_value));
            }
            frontier.push_back(relation.target);
        }
    }
    return impact;
}

}  // namespace

ScenarioPriority::ScenarioPriority(const model::SystemModel& model, PriorityPolicy policy)
    : model_(&model), policy_(policy), priors_(PriorSet::from_model(model)) {
    for (const model::Component& component : model.components()) {
        reach_impact_.emplace(component.id, reach_impact_index(model, component.id));
    }
}

double ScenarioPriority::joint_mean(const std::vector<security::Mutation>& mutations,
                                    int* weight_index) const {
    double joint = 1.0;
    int weight = 0;
    for (const security::Mutation& mutation : mutations) {
        const BetaPrior* prior = priors_.find(mutation.component, mutation.fault_id);
        const double mean =
            prior != nullptr ? prior->mean()
                             : BetaPrior::from_likelihood(qual::Level::Medium).mean();
        joint *= mean;
        int impact = 0;
        auto reach = reach_impact_.find(mutation.component);
        if (reach != reach_impact_.end()) impact = reach->second;
        if (model_->has_component(mutation.component)) {
            const model::FaultMode* mode =
                model_->component(mutation.component).find_fault_mode(mutation.fault_id);
            if (mode != nullptr) impact = std::max(impact, qual::index_of(mode->severity));
        }
        weight = std::max(weight, impact);
    }
    if (weight_index != nullptr) *weight_index = weight;
    return joint;
}

long long ScenarioPriority::score_micros(const std::vector<security::Mutation>& mutations) const {
    if (mutations.empty()) return 0;
    int weight_index = 0;
    const double joint = joint_mean(mutations, &weight_index);
    return std::llround(joint * static_cast<double>(1LL << weight_index) * 1e6);
}

long long ScenarioPriority::score_micros(const security::AttackScenario& scenario) const {
    return score_micros(scenario.mutations);
}

void ScenarioPriority::order(std::vector<security::AttackScenario>& scenarios) const {
    if (policy_ != PriorityPolicy::ExpectedRisk) return;
    std::vector<std::pair<long long, std::size_t>> keyed;
    keyed.reserve(scenarios.size());
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        keyed.emplace_back(score_micros(scenarios[i]), i);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&scenarios](const auto& a, const auto& b) {
                         if (a.first != b.first) return a.first > b.first;
                         return scenarios[a.second].id < scenarios[b.second].id;
                     });
    std::vector<security::AttackScenario> ordered;
    ordered.reserve(scenarios.size());
    for (const auto& [score, index] : keyed) ordered.push_back(std::move(scenarios[index]));
    scenarios = std::move(ordered);
}

int ScenarioPriority::likelihood_band_radius(const security::AttackScenario& scenario) const {
    bool any_explicit = false;
    double max_sd = 0.0;
    for (const security::Mutation& mutation : scenario.mutations) {
        const BetaPrior* prior = priors_.find(mutation.component, mutation.fault_id);
        if (prior == nullptr) continue;
        any_explicit = any_explicit || prior->explicit_spec;
        max_sd = std::max(max_sd, std::sqrt(prior->variance()));
    }
    if (!any_explicit) return 1;  // pre-prior +/-1 sweep
    if (max_sd <= 0.05) return 0;
    if (max_sd <= 0.15) return 1;
    return 2;
}

CoverageEstimate ScenarioPriority::coverage(const std::vector<security::AttackScenario>& scenarios,
                                            const std::vector<bool>& decided,
                                            unsigned long long seed) const {
    CoverageEstimate estimate;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const long long score = score_micros(scenarios[i]);
        estimate.total_micros += score;
        if (i < decided.size() && decided[i]) estimate.covered_micros += score;
    }
    if (estimate.total_micros <= 0) return estimate;

    // 64 posterior draws: every fault prior is sampled once per draw (normal
    // approximation of the Beta posterior), scenario scores recomputed with
    // the sampled activation probabilities, and the covered fraction
    // collected. The LCG makes the bound a pure function of (model, seed).
    constexpr int kDraws = 64;
    unsigned long long state = seed * 0x9E3779B97F4A7C15ull + 0x2545F4914F6CDD1Dull;
    auto next_uniform = [&state]() {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<double>(state >> 11) / 9007199254740992.0;
    };
    std::vector<double> fractions;
    fractions.reserve(kDraws);
    for (int draw = 0; draw < kDraws; ++draw) {
        std::map<std::pair<model::ComponentId, std::string>, double> sampled;
        for (const model::Component& component : model_->components()) {
            for (const model::FaultMode& mode : component.fault_modes) {
                const BetaPrior prior = BetaPrior::from_fault(mode);
                const double u1 = std::max(next_uniform(), 1e-12);
                const double u2 = next_uniform();
                const double z =
                    std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.141592653589793 * u2);
                const double p = std::clamp(prior.mean() + z * std::sqrt(prior.variance()),
                                            1e-9, 1.0);
                sampled.emplace(std::make_pair(component.id, mode.id), p);
            }
        }
        double covered = 0.0;
        double total = 0.0;
        for (std::size_t i = 0; i < scenarios.size(); ++i) {
            if (scenarios[i].mutations.empty()) continue;
            double joint = 1.0;
            int weight_index = 0;
            joint_mean(scenarios[i].mutations, &weight_index);  // reuse weight derivation
            for (const security::Mutation& mutation : scenarios[i].mutations) {
                auto it = sampled.find(std::make_pair(mutation.component, mutation.fault_id));
                joint *= it != sampled.end()
                             ? it->second
                             : BetaPrior::from_likelihood(qual::Level::Medium).mean();
            }
            const double score = joint * static_cast<double>(1LL << weight_index);
            total += score;
            if (i < decided.size() && decided[i]) covered += score;
        }
        fractions.push_back(total > 0.0 ? covered / total : 1.0);
    }
    std::sort(fractions.begin(), fractions.end());
    const std::size_t index = (fractions.size() * 5) / 100;  // 5th percentile
    estimate.lower_bound_micros = std::llround(fractions[index] * 1e6);
    return estimate;
}

}  // namespace cprisk::risk
