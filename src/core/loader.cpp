#include "core/loader.hpp"

#include <fstream>
#include <sstream>

#include "asp/parser.hpp"
#include "common/strings.hpp"
#include "model/dsl.hpp"

namespace cprisk::core {

const std::vector<epa::Requirement>& Bundle::effective_behavioral() const {
    return behavioral_requirements.empty() ? topology_requirements : behavioral_requirements;
}

const std::vector<epa::Requirement>& Bundle::effective_topology() const {
    return topology_requirements.empty() ? behavioral_requirements : topology_requirements;
}

namespace {

/// Splits a requirement line into fields honouring double quotes (same
/// convention as the model DSL).
std::vector<std::string> split_quoted(const std::string& line) {
    std::vector<std::string> fields;
    std::string current;
    bool in_quotes = false;
    for (char c : line) {
        if (in_quotes) {
            if (c == '"') {
                in_quotes = false;
            } else {
                current += c;
            }
            continue;
        }
        if (c == '"') {
            in_quotes = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!current.empty()) {
                fields.push_back(std::move(current));
                current.clear();
            }
            continue;
        }
        current += c;
    }
    if (!current.empty()) fields.push_back(std::move(current));
    return fields;
}

}  // namespace

Result<Bundle> load_bundle(std::string_view text) {
    Bundle bundle;
    std::string model_text;
    std::istringstream stream{std::string(text)};
    std::string raw;
    int line_no = 0;
    bool in_behavior_block = false;

    auto fail = [](int line, const std::string& message) {
        return Result<Bundle>::failure("line " + std::to_string(line) + ": " + message);
    };

    while (std::getline(stream, raw)) {
        ++line_no;
        const std::string line{trim(raw)};
        // Requirement lines inside behaviour blocks belong to the ASP text.
        if (in_behavior_block) {
            model_text += raw + "\n";
            if (line == ">>>") in_behavior_block = false;
            continue;
        }
        if (starts_with(line, "behavior ")) in_behavior_block = line.find("<<<") != std::string::npos;
        if (!starts_with(line, "requirement ")) {
            model_text += raw + "\n";
            continue;
        }

        const auto fields = split_quoted(line);
        if (fields.size() < 4) {
            return fail(line_no, "requirement needs: id kind args...");
        }
        const std::string& id = fields[1];
        const std::string& kind = fields[2];
        if (kind == "never") {
            auto atom = asp::parse_atom(fields[3]);
            if (!atom.ok()) return fail(line_no, atom.error());
            bundle.behavioral_requirements.push_back(
                epa::Requirement::never(id, line, std::move(atom).value()));
        } else if (kind == "responds") {
            if (fields.size() < 5) {
                return fail(line_no, "responds needs: trigger response");
            }
            auto trigger = asp::parse_atom(fields[3]);
            if (!trigger.ok()) return fail(line_no, trigger.error());
            auto response = asp::parse_atom(fields[4]);
            if (!response.ok()) return fail(line_no, response.error());
            bundle.behavioral_requirements.push_back(epa::Requirement::responds(
                id, line, std::move(trigger).value(), std::move(response).value()));
        } else if (kind == "protects") {
            epa::Requirement requirement = epa::Requirement::no_error_reaches(fields[3]);
            requirement.id = id;
            bundle.topology_requirements.push_back(std::move(requirement));
        } else {
            return fail(line_no, "unknown requirement kind '" + kind +
                                     "' (expected never/responds/protects)");
        }
    }

    auto model = model::parse_model(model_text);
    if (!model.ok()) return Result<Bundle>::failure(model.error());
    bundle.model = std::move(model).value();

    // `protects` requirements must reference existing components.
    for (const epa::Requirement& requirement : bundle.topology_requirements) {
        const asp::Atom& atom = requirement.formula.left().left().atom_value();
        if (atom.args.size() == 1 && atom.args[0].is_symbol() &&
            !bundle.model.has_component(atom.args[0].name())) {
            return Result<Bundle>::failure("requirement '" + requirement.id +
                                           "' protects unknown component '" +
                                           atom.args[0].name() + "'");
        }
    }
    return bundle;
}

Result<Bundle> load_bundle_file(const std::string& path) {
    std::ifstream file(path);
    if (!file) return Result<Bundle>::failure("cannot open '" + path + "'");
    std::ostringstream content;
    content << file.rdbuf();
    return load_bundle(content.str());
}

}  // namespace cprisk::core
