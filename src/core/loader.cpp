#include "core/loader.hpp"

#include <fstream>
#include <sstream>

#include "asp/parser.hpp"
#include "common/strings.hpp"
#include "model/dsl.hpp"

namespace cprisk::core {

const std::vector<epa::Requirement>& Bundle::effective_behavioral() const {
    return behavioral_requirements.empty() ? topology_requirements : behavioral_requirements;
}

const std::vector<epa::Requirement>& Bundle::effective_topology() const {
    return topology_requirements.empty() ? behavioral_requirements : topology_requirements;
}

namespace {

/// Splits a requirement line into fields honouring double quotes (same
/// convention as the model DSL).
std::vector<std::string> split_quoted(const std::string& line) {
    std::vector<std::string> fields;
    std::string current;
    bool in_quotes = false;
    for (char c : line) {
        if (in_quotes) {
            if (c == '"') {
                in_quotes = false;
            } else {
                current += c;
            }
            continue;
        }
        if (c == '"') {
            in_quotes = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!current.empty()) {
                fields.push_back(std::move(current));
                current.clear();
            }
            continue;
        }
        current += c;
    }
    if (!current.empty()) fields.push_back(std::move(current));
    return fields;
}

}  // namespace

Bundle load_bundle_lenient(std::string_view text, DiagnosticSink& sink,
                           BundleSourceMap* source_map) {
    Bundle bundle;
    std::string model_text;
    std::istringstream stream{std::string(text)};
    std::string raw;
    int line_no = 0;
    bool in_behavior_block = false;
    std::vector<RequirementRef> topo_refs;

    auto report = [&](int line, const std::string& message) {
        sink.error("cpm-syntax", message, SourceLoc{line, 1});
    };

    while (std::getline(stream, raw)) {
        ++line_no;
        const std::string line{trim(raw)};
        // Requirement lines inside behaviour blocks belong to the ASP text.
        if (in_behavior_block) {
            model_text += raw + "\n";
            if (line == ">>>") in_behavior_block = false;
            continue;
        }
        if (starts_with(line, "behavior ")) {
            in_behavior_block = line.find("<<<") != std::string::npos;
        }
        if (!starts_with(line, "requirement ")) {
            model_text += raw + "\n";
            continue;
        }
        // Keep a blank placeholder so model DSL diagnostics keep file-absolute
        // line numbers past this point.
        model_text += "\n";

        const auto fields = split_quoted(line);
        if (fields.size() < 4) {
            report(line_no, "requirement needs: id kind args...");
            continue;
        }
        const std::string& id = fields[1];
        const std::string& kind = fields[2];
        if (source_map != nullptr) {
            source_map->requirements.push_back(RequirementRef{id, line_no});
        }
        if (kind == "never") {
            auto atom = asp::parse_atom(fields[3]);
            if (!atom.ok()) {
                report(line_no, atom.error());
                continue;
            }
            bundle.behavioral_requirements.push_back(
                epa::Requirement::never(id, line, std::move(atom).value()));
        } else if (kind == "responds") {
            if (fields.size() < 5) {
                report(line_no, "responds needs: trigger response");
                continue;
            }
            auto trigger = asp::parse_atom(fields[3]);
            if (!trigger.ok()) {
                report(line_no, trigger.error());
                continue;
            }
            auto response = asp::parse_atom(fields[4]);
            if (!response.ok()) {
                report(line_no, response.error());
                continue;
            }
            bundle.behavioral_requirements.push_back(epa::Requirement::responds(
                id, line, std::move(trigger).value(), std::move(response).value()));
        } else if (kind == "protects") {
            epa::Requirement requirement = epa::Requirement::no_error_reaches(fields[3]);
            requirement.id = id;
            topo_refs.push_back(RequirementRef{id, line_no});
            bundle.topology_requirements.push_back(std::move(requirement));
        } else {
            report(line_no, "unknown requirement kind '" + kind +
                                "' (expected never/responds/protects)");
        }
    }

    bundle.model = model::parse_model_lenient(
        model_text, sink, source_map != nullptr ? &source_map->model : nullptr);

    // `protects` requirements must reference existing components.
    std::vector<epa::Requirement> kept;
    for (std::size_t i = 0; i < bundle.topology_requirements.size(); ++i) {
        epa::Requirement& requirement = bundle.topology_requirements[i];
        const asp::Atom& atom = requirement.formula.left().left().atom_value();
        if (atom.args.size() == 1 && atom.args[0].is_symbol() &&
            !bundle.model.has_component(atom.args[0].name())) {
            sink.error("model-unknown-component-ref",
                       "requirement '" + requirement.id + "' protects unknown component '" +
                           atom.args[0].name() + "'",
                       SourceLoc{i < topo_refs.size() ? topo_refs[i].line : 0, 1});
            continue;
        }
        kept.push_back(std::move(requirement));
    }
    bundle.topology_requirements = std::move(kept);
    return bundle;
}

Result<Bundle> load_bundle(std::string_view text) {
    DiagnosticSink sink;
    Bundle bundle = load_bundle_lenient(text, sink);
    for (const Diagnostic& d : sink.diagnostics()) {
        if (d.severity != Severity::Error) continue;
        // The component-reference check historically reported without a line
        // prefix; everything else as "line N: message".
        if (d.rule == "model-unknown-component-ref" || !d.loc.valid()) {
            return Result<Bundle>::failure(d.message);
        }
        return Result<Bundle>::failure("line " + std::to_string(d.loc.line) + ": " + d.message);
    }
    return bundle;
}

Result<Bundle> load_bundle_file(const std::string& path) {
    std::ifstream file(path);
    if (!file) return Result<Bundle>::failure("cannot open '" + path + "'");
    std::ostringstream content;
    content << file.rdbuf();
    return load_bundle(content.str());
}

}  // namespace cprisk::core
