// cprisk/core/loader.hpp
//
// Loads a complete assessment bundle from one text file: the model DSL
// (model/dsl.hpp) extended with requirement declarations, so an analyst can
// keep the whole assessment input in version control:
//
//   requirement <id> never <atom>                 # G !atom
//   requirement <id> responds <trigger> <response>  # G(trigger -> F response)
//   requirement <id> protects <component>         # topology: G !error(c)
//
// Atoms containing spaces/commas are quoted: never "level(tank, overflow)".
// Requirements declared `protects` are used at the topology focus; `never`
// and `responds` requirements at the behavioural focus. A bundle without
// behavioural requirements falls back to its topology requirements for both.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/diagnostics.hpp"
#include "epa/requirement.hpp"
#include "model/dsl.hpp"
#include "model/system_model.hpp"

namespace cprisk::core {

struct Bundle {
    model::SystemModel model;
    std::vector<epa::Requirement> behavioral_requirements;
    std::vector<epa::Requirement> topology_requirements;

    /// Behavioural requirements, or the topology ones when none exist.
    const std::vector<epa::Requirement>& effective_behavioral() const;
    /// Topology requirements, or the behavioural ones when none exist.
    const std::vector<epa::Requirement>& effective_topology() const;
};

/// Where each requirement was declared, for diagnostics.
struct RequirementRef {
    std::string id;
    int line = 0;
};

/// Source-line side table for a parsed bundle.
struct BundleSourceMap {
    model::ModelSourceMap model;
    std::vector<RequirementRef> requirements;
};

/// Parses the extended format.
Result<Bundle> load_bundle(std::string_view text);

/// Batch-diagnostics variant: reports every recoverable problem to `sink`
/// (rule ids "cpm-syntax", "model-*" from model/dsl.hpp, plus
/// "model-unknown-component-ref" for `protects` requirements naming unknown
/// components), skips the offending statements, and returns the best-effort
/// bundle built from the rest.
Bundle load_bundle_lenient(std::string_view text, DiagnosticSink& sink,
                           BundleSourceMap* source_map = nullptr);

/// Reads and parses a bundle file from disk.
Result<Bundle> load_bundle_file(const std::string& path);

}  // namespace cprisk::core
