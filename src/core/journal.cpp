#include "core/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/fault_injection.hpp"

namespace cprisk::core {

namespace {

using hierarchy::ScenarioRecord;
using hierarchy::StageOutcome;

json::Value stats_to_json(const asp::SolveStats& stats) {
    json::Object o;
    json::set(o, "decisions", stats.decisions);
    json::set(o, "propagations", stats.propagations);
    json::set(o, "conflicts", stats.conflicts);
    json::set(o, "stability_rejects", stats.stability_rejects);
    json::set(o, "models_enumerated", stats.models_enumerated);
    return o;
}

asp::SolveStats stats_from_json(const json::Value& value) {
    asp::SolveStats stats;
    stats.decisions = static_cast<std::size_t>(value.get_int("decisions"));
    stats.propagations = static_cast<std::size_t>(value.get_int("propagations"));
    stats.conflicts = static_cast<std::size_t>(value.get_int("conflicts"));
    stats.stability_rejects = static_cast<std::size_t>(value.get_int("stability_rejects"));
    stats.models_enumerated = static_cast<std::size_t>(value.get_int("models_enumerated"));
    return stats;
}

json::Value mutations_to_json(const std::vector<security::Mutation>& mutations) {
    json::Array out;
    for (const security::Mutation& mutation : mutations) {
        json::Object o;
        json::set(o, "component", mutation.component);
        json::set(o, "fault", mutation.fault_id);
        out.push_back(std::move(o));
    }
    return out;
}

std::vector<security::Mutation> mutations_from_json(const json::Value& value) {
    std::vector<security::Mutation> out;
    if (!value.is_array()) return out;
    for (const json::Value& item : value.as_array()) {
        out.push_back(security::Mutation{item.get_string("component"), item.get_string("fault")});
    }
    return out;
}

json::Value strings_to_json(const std::vector<std::string>& items) {
    json::Array out;
    for (const std::string& item : items) out.push_back(item);
    return out;
}

std::vector<std::string> strings_from_json(const json::Value& value) {
    std::vector<std::string> out;
    if (!value.is_array()) return out;
    for (const json::Value& item : value.as_array()) {
        if (item.is_string()) out.push_back(item.as_string());
    }
    return out;
}

qual::Level level_from_int(long long value) {
    if (value < 0) value = 0;
    if (value > 4) value = 4;
    return static_cast<qual::Level>(value);
}

json::Value verdict_to_json(const epa::ScenarioVerdict& verdict) {
    json::Object o;
    json::set(o, "scenario_id", verdict.scenario_id);
    json::set(o, "status", std::string(epa::to_string(verdict.status)));
    if (verdict.undetermined_reason) {
        json::set(o, "reason", std::string(epa::to_string(*verdict.undetermined_reason)));
    }
    if (!verdict.undetermined_detail.empty()) {
        json::set(o, "detail", verdict.undetermined_detail);
    }
    json::set(o, "mutations", mutations_to_json(verdict.mutations));
    json::set(o, "active_mitigations", strings_to_json(verdict.active_mitigations));
    json::set(o, "violated", strings_to_json(verdict.violated_requirements));
    json::set(o, "injected", mutations_to_json(verdict.injected));
    json::Array propagation;
    for (const epa::PropagationStep& step : verdict.propagation) {
        json::Object s;
        json::set(s, "time", step.time);
        json::set(s, "component", step.component);
        propagation.push_back(std::move(s));
    }
    json::set(o, "propagation", std::move(propagation));
    json::set(o, "severity", static_cast<int>(verdict.severity));
    json::set(o, "likelihood", static_cast<int>(verdict.likelihood));
    json::set(o, "stats", stats_to_json(verdict.solver_stats));
    json::set(o, "provenance", std::string(epa::to_string(verdict.provenance)));
    return o;
}

Result<epa::ScenarioVerdict> verdict_from_json(const json::Value& value) {
    if (!value.is_object()) {
        return Result<epa::ScenarioVerdict>::failure("journal: verdict is not an object");
    }
    epa::ScenarioVerdict verdict;
    verdict.scenario_id = value.get_string("scenario_id");
    auto status = epa::parse_verdict_status(value.get_string("status"));
    if (!status) {
        return Result<epa::ScenarioVerdict>::failure("journal: bad verdict status '" +
                                                     value.get_string("status") + "'");
    }
    verdict.status = *status;
    if (const json::Value* reason = value.get("reason")) {
        verdict.undetermined_reason = epa::parse_undetermined_reason(reason->as_string());
    }
    verdict.undetermined_detail = value.get_string("detail");
    if (const json::Value* mutations = value.get("mutations")) {
        verdict.mutations = mutations_from_json(*mutations);
    }
    if (const json::Value* active = value.get("active_mitigations")) {
        verdict.active_mitigations = strings_from_json(*active);
    }
    if (const json::Value* violated = value.get("violated")) {
        verdict.violated_requirements = strings_from_json(*violated);
    }
    if (const json::Value* injected = value.get("injected")) {
        verdict.injected = mutations_from_json(*injected);
    }
    if (const json::Value* propagation = value.get("propagation")) {
        if (propagation->is_array()) {
            for (const json::Value& step : propagation->as_array()) {
                verdict.propagation.push_back(epa::PropagationStep{
                    static_cast<int>(step.get_int("time")), step.get_string("component")});
            }
        }
    }
    verdict.severity = level_from_int(value.get_int("severity"));
    verdict.likelihood = level_from_int(value.get_int("likelihood"));
    if (const json::Value* stats = value.get("stats")) {
        verdict.solver_stats = stats_from_json(*stats);
    }
    // Absent in pre-absint journals: those verdicts all came from the solver.
    if (const json::Value* provenance = value.get("provenance")) {
        if (auto parsed = epa::parse_verdict_provenance(provenance->as_string())) {
            verdict.provenance = *parsed;
        }
    }
    return verdict;
}

}  // namespace

json::Value journal_header(const AssessmentConfig& config) {
    json::Object echo;
    json::set(echo, "horizon", config.horizon);
    json::set(echo, "max_simultaneous_faults", config.max_simultaneous_faults);
    json::set(echo, "include_attack_scenarios", config.include_attack_scenarios);
    json::set(echo, "use_cegar", config.use_cegar);
    json::set(echo, "active_mitigations", strings_to_json(config.active_mitigations));
    json::set(echo, "max_decisions", config.max_decisions);
    // Exhaustive-frontier knobs change the candidate universe, so a journal
    // from one mode must not resume under another. `jobs` and
    // `static_prefilter` stay excluded: neither changes verdicts or bytes.
    json::set(echo, "exhaustive", config.exhaustive);
    json::set(echo, "max_card", config.max_card);
    json::set(echo, "attack_reachable_only", config.attack_reachable_only);
    // The priority policy fixes the order records are appended in, so a
    // journal must not resume under a different one (the compacted journal
    // would interleave two orders and break byte-identical resume).
    // `prior_seed` stays excluded: it only shapes the rendered confidence
    // bound, never a verdict or a journal byte.
    json::set(echo, "priority_policy", std::string(risk::to_string(config.priority_policy)));
    json::Object header;
    json::set(header, "kind", "cprisk-journal");
    json::set(header, "version", 1);
    json::set(header, "config", std::move(echo));
    return header;
}

json::Value record_to_json(const ScenarioRecord& record) {
    json::Object o;
    json::set(o, "kind", "scenario");
    json::set(o, "id", record.scenario_id);
    json::set(o, "outcome", std::string(hierarchy::to_string(record.outcome)));
    json::Array stages;
    for (const StageOutcome& stage : record.stages) {
        json::Object s;
        json::set(s, "stage", stage.stage);
        json::set(s, "status", std::string(epa::to_string(stage.status)));
        if (stage.undetermined_reason) {
            json::set(s, "reason", std::string(epa::to_string(*stage.undetermined_reason)));
        }
        json::set(s, "degraded", stage.degraded);
        stages.push_back(std::move(s));
    }
    json::set(o, "stages", std::move(stages));
    json::set(o, "verdict", verdict_to_json(record.verdict));
    // Only stamped under a scoring priority policy; omitted (not zero) when
    // absent so enumeration-policy journals keep their pre-prior bytes.
    if (record.expected_risk_micros >= 0) {
        json::set(o, "expected_risk", record.expected_risk_micros);
    }
    return o;
}

Result<ScenarioRecord> record_from_json(const json::Value& value) {
    if (!value.is_object() || value.get_string("kind") != "scenario") {
        return Result<ScenarioRecord>::failure("journal: not a scenario record");
    }
    ScenarioRecord record;
    record.scenario_id = value.get_string("id");
    if (record.scenario_id.empty()) {
        return Result<ScenarioRecord>::failure("journal: scenario record without id");
    }
    auto outcome = hierarchy::parse_scenario_outcome(value.get_string("outcome"));
    if (!outcome) {
        return Result<ScenarioRecord>::failure("journal: bad outcome '" +
                                               value.get_string("outcome") + "' for scenario " +
                                               record.scenario_id);
    }
    record.outcome = *outcome;
    if (const json::Value* stages = value.get("stages")) {
        if (stages->is_array()) {
            for (const json::Value& stage : stages->as_array()) {
                StageOutcome out;
                out.stage = stage.get_string("stage");
                auto status = epa::parse_verdict_status(stage.get_string("status"));
                if (!status) {
                    return Result<ScenarioRecord>::failure(
                        "journal: bad stage status for scenario " + record.scenario_id);
                }
                out.status = *status;
                if (const json::Value* reason = stage.get("reason")) {
                    out.undetermined_reason = epa::parse_undetermined_reason(reason->as_string());
                }
                out.degraded = stage.get_bool("degraded");
                record.stages.push_back(std::move(out));
            }
        }
    }
    const json::Value* verdict = value.get("verdict");
    if (verdict == nullptr) {
        return Result<ScenarioRecord>::failure("journal: scenario " + record.scenario_id +
                                               " has no verdict");
    }
    auto parsed = verdict_from_json(*verdict);
    if (!parsed.ok()) return Result<ScenarioRecord>::failure(parsed.error());
    record.verdict = std::move(parsed).value();
    if (const json::Value* score = value.get("expected_risk")) {
        record.expected_risk_micros = score->as_int();
    }
    return record;
}

Result<JournalContents> load_journal(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        return Result<JournalContents>::failure("journal: cannot read " + path);
    }
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty()) lines.push_back(line);
    }
    if (lines.empty()) {
        return Result<JournalContents>::failure("journal: " + path + " is empty");
    }

    JournalContents contents;
    auto header = json::parse(lines.front());
    if (!header.ok() || header.value().get_string("kind") != "cprisk-journal") {
        return Result<JournalContents>::failure("journal: " + path +
                                                " has a missing or corrupt header");
    }
    contents.header = std::move(header).value();

    for (std::size_t i = 1; i < lines.size(); ++i) {
        const bool last = i + 1 == lines.size();
        auto parsed = json::parse(lines[i]);
        if (!parsed.ok()) {
            // The line in flight when the writer died; anything earlier must
            // be intact.
            if (last) {
                contents.torn_tail = true;
                break;
            }
            return Result<JournalContents>::failure("journal: " + path + " line " +
                                                    std::to_string(i + 1) + ": " +
                                                    parsed.error());
        }
        auto record = record_from_json(parsed.value());
        if (!record.ok()) {
            if (last) {
                contents.torn_tail = true;
                break;
            }
            return Result<JournalContents>::failure("journal: " + path + " line " +
                                                    std::to_string(i + 1) + ": " +
                                                    record.error());
        }
        contents.records.push_back(std::move(record).value());
    }
    return contents;
}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : path_(std::move(other.path_)), fd_(other.fd_), sync_(other.sync_) {
    other.fd_ = -1;
}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) ::close(fd_);
        path_ = std::move(other.path_);
        fd_ = other.fd_;
        sync_ = other.sync_;
        other.fd_ = -1;
    }
    return *this;
}

JournalWriter::~JournalWriter() {
    if (fd_ >= 0) ::close(fd_);
}

Result<void> JournalWriter::write_all(const char* data, std::size_t size) {
    while (size > 0) {
        const ::ssize_t wrote = ::write(fd_, data, size);
        if (wrote < 0) {
            if (errno == EINTR) continue;
            return Result<void>::failure("journal: write failed: " + path_ + ": " +
                                         std::strerror(errno));
        }
        data += wrote;
        size -= static_cast<std::size_t>(wrote);
    }
    if (sync_ && ::fsync(fd_) != 0) {
        return Result<void>::failure("journal: fsync failed: " + path_ + ": " +
                                     std::strerror(errno));
    }
    return {};
}

Result<JournalWriter> JournalWriter::open(const std::string& path, const json::Value& header,
                                          JournalOptions options) {
    if (fault::should_fail("core.journal.open")) {
        return Result<JournalWriter>::failure("journal: injected I/O fault (site "
                                              "core.journal.open)");
    }
    JournalWriter writer(path);
    writer.sync_ = options.sync;
    writer.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (writer.fd_ < 0) {
        return Result<JournalWriter>::failure("journal: cannot open " + path + " for writing: " +
                                              std::strerror(errno));
    }
    const std::string line = header.serialize() + '\n';
    if (auto written = writer.write_all(line.data(), line.size()); !written.ok()) {
        return Result<JournalWriter>::failure(written.error());
    }
    return writer;
}

Result<void> JournalWriter::append(const hierarchy::ScenarioRecord& record) {
    const std::string line = record_to_json(record).serialize();
    if (fault::should_fail("core.journal.append")) {
        // Simulate a torn write: half the line, no newline, then the
        // "crash". Resume must discard exactly this line. The torn bytes go
        // through the same write (and fsync) path a real crash would race.
        (void)write_all(line.data(), line.size() / 2);
        return Result<void>::failure("journal: injected I/O fault (site core.journal.append)");
    }
    const std::string full = line + '\n';
    return write_all(full.data(), full.size());
}

}  // namespace cprisk::core
