// cprisk/core/report.hpp
//
// Analyst-facing report rendering — the role of the Jupyter notebook in the
// paper's toolchain ("the results of the evaluation can be examined in a
// form of a Jupyter Notebook", §VII). Emits Markdown (for humans / version
// control) and CSV (for spreadsheets) from an AssessmentReport, including
// the §II-A sensitivity support: which per-scenario parameter estimates the
// final risk rating is sensitive to, so the analyst knows which modeling
// decisions are critical.
#pragma once

#include <string>
#include <vector>

#include "core/assessment.hpp"

namespace cprisk::core {

/// §II-A modeling support: per confirmed hazard, whether a one-step
/// mis-estimation of the impact severity (LM) or the likelihood (LEF) would
/// change the O-RA risk rating — the "critical decisions" the analyst must
/// double-check.
struct ParameterCriticality {
    std::string scenario_id;
    qual::Level rating = qual::Level::VeryLow;
    bool sensitive_to_severity = false;
    bool sensitive_to_likelihood = false;
    qual::LevelRange rating_range_severity;    ///< rating across severity +/-1
    qual::LevelRange rating_range_likelihood;  ///< rating across the likelihood band
    /// Half-width of the likelihood band swept: the scenario's prior-derived
    /// radius (ScenarioRisk::likelihood_band_radius) — 1 unless the model
    /// bundle carries explicit `prior=` parameters for its mutations.
    int likelihood_band_radius = 1;
};

/// Analyzes every rated hazard of the report.
std::vector<ParameterCriticality> analyze_parameter_criticality(const AssessmentReport& report);

struct ReportOptions {
    bool include_sensitivity = true;
    bool include_cegar_trace = true;
    /// Append the per-phase wall-clock timing section. Default off: timings
    /// are machine-dependent, and the rendered markdown must stay
    /// byte-identical across --jobs settings and resumed runs (the CI
    /// byte-compares reports). The CLI enables this only when observability
    /// was explicitly requested (--trace/--metrics).
    bool include_timings = false;
    std::string title = "Preliminary risk assessment";
};

/// Renders the full report as Markdown. Always contains a Completeness
/// section: a partial (budget-limited) run is flagged prominently with the
/// undetermined scenarios and their reasons.
std::string render_markdown(const AssessmentReport& report, const ReportOptions& options = {});

/// Renders the risk table as CSV (header + one row per hazard). Partial
/// runs append one row per undetermined scenario, marked "undetermined".
std::string render_risk_csv(const AssessmentReport& report);

/// Renders the report as a deterministic single-document JSON (system
/// counts, CEGAR trace, risks, completeness, mitigation plan, and — when
/// engaged — the priority/coverage block and the mitigation Pareto front).
/// The root object leads with `schema_version` (common/schema.hpp).
std::string render_report_json(const AssessmentReport& report);

/// Renders the mitigation Pareto front as CSV (one row per nondominated
/// point, the knee marked). Empty string when the report carries no front
/// (AssessmentConfig::pareto was off).
std::string render_pareto_csv(const AssessmentReport& report);

}  // namespace cprisk::core
