#include "core/report.hpp"

#include "common/json.hpp"
#include "common/schema.hpp"
#include "risk/ora.hpp"
#include "uncertainty/sensitivity.hpp"

namespace cprisk::core {

namespace {

std::string level_str(qual::Level level) { return std::string(qual::to_short_string(level)); }

std::string join_list(const std::vector<std::string>& items) {
    std::string out;
    for (const auto& item : items) {
        if (!out.empty()) out += ", ";
        out += item;
    }
    return out;
}

/// Probability expressed in micro-units (0..1000000) as a fixed "0.dddddd"
/// decimal, without touching floating point (the renderings must be
/// byte-stable).
std::string prob_str(long long micros) {
    std::string frac = std::to_string(micros % 1000000);
    return std::to_string(micros / 1000000) + "." + std::string(6 - frac.size(), '0') + frac;
}

/// Markdown table from a TextTable.
std::string markdown_table(const TextTable& table) {
    auto row_line = [&](const std::vector<std::string>& cells) {
        std::string line = "|";
        for (const auto& cell : cells) line += " " + cell + " |";
        return line + "\n";
    };
    std::string out = row_line(table.header());
    out += "|";
    for (std::size_t i = 0; i < table.columns(); ++i) out += "---|";
    out += "\n";
    for (std::size_t r = 0; r < table.rows(); ++r) out += row_line(table.row(r));
    return out;
}

}  // namespace

std::vector<ParameterCriticality> analyze_parameter_criticality(const AssessmentReport& report) {
    std::vector<ParameterCriticality> out;
    out.reserve(report.risks.size());
    for (const ScenarioRisk& risk : report.risks) {
        ParameterCriticality c;
        c.scenario_id = risk.scenario_id;
        c.rating = risk.risk;
        const qual::LevelRange severity_band(qual::shift(risk.loss_magnitude, -1),
                                             qual::shift(risk.loss_magnitude, 1));
        // Likelihood band width follows the prior evidence: explicit sharp
        // priors narrow the sweep to the point estimate, weak ones widen it;
        // without explicit priors the radius is 1, the pre-prior behaviour.
        const int radius = risk.likelihood_band_radius;
        c.likelihood_band_radius = radius;
        const qual::LevelRange likelihood_band(qual::shift(risk.loss_event_frequency, -radius),
                                               qual::shift(risk.loss_event_frequency, radius));
        c.rating_range_severity = uncertainty::sweep(
            [&](qual::Level lm) { return risk::ora_risk(lm, risk.loss_event_frequency); },
            severity_band);
        c.rating_range_likelihood = uncertainty::sweep(
            [&](qual::Level lef) { return risk::ora_risk(risk.loss_magnitude, lef); },
            likelihood_band);
        c.sensitive_to_severity = !c.rating_range_severity.is_exact();
        c.sensitive_to_likelihood = !c.rating_range_likelihood.is_exact();
        out.push_back(std::move(c));
    }
    return out;
}

std::string render_markdown(const AssessmentReport& report, const ReportOptions& options) {
    std::string md = "# " + options.title + "\n\n";

    md += "## System\n\n";
    md += "- components: " + std::to_string(report.component_count) + "\n";
    md += "- relations: " + std::to_string(report.relation_count) + "\n";
    md += "- scenario space: " + std::to_string(report.scenario_count) + " scenarios\n";
    md += "- confirmed hazards: " + std::to_string(report.hazards.size()) + " (spurious "
          "eliminated: " + std::to_string(report.spurious_eliminated) + ")\n\n";

    if (report.exhaustive.enabled) {
        const ExhaustiveStats& ex = report.exhaustive;
        md += "## Exhaustive frontier\n\n";
        md += "- universe: " + std::to_string(ex.universe_size) + " fault modes";
        if (ex.skipped_faults > 0) {
            md += " (" + std::to_string(ex.skipped_faults) + " skipped as attack-unreachable)";
        }
        md += "\n";
        md += "- layers: cardinality 0.." + std::to_string(ex.max_card) + "\n";
        md += "- monotonicity certificate: " + ex.certificate +
              (ex.pruning ? " (superset pruning active)" : " (no pruning)") + "\n";
        md += "- candidates: " + std::to_string(ex.candidates) + " (evaluated " +
              std::to_string(ex.evaluated) + ", pruned " + std::to_string(ex.pruned) + ")\n";
        md += "- minimal hazardous scenarios: " + std::to_string(ex.minimal_hazards) + "\n";
        for (const std::string& offender : ex.offenders) {
            md += "  - offender: " + offender + "\n";
        }
        md += "\n";
    }

    if (options.include_cegar_trace && !report.cegar_iterations.empty()) {
        md += "## Refinement trace (CEGAR)\n\n";
        md += "| stage | candidates in | hazards out | spurious eliminated |\n";
        md += "|---|---|---|---|\n";
        for (const auto& iteration : report.cegar_iterations) {
            md += "| " + iteration.stage_name + " | " +
                  std::to_string(iteration.candidates_in) + " | " +
                  std::to_string(iteration.hazards_out) + " | " +
                  std::to_string(iteration.spurious_eliminated) + " |\n";
        }
        md += "\n";
    }

    md += "## Hazards and qualitative risk (O-RA / IEC 61508)\n\n";
    md += markdown_table(report.risk_table());
    md += "\n";

    md += "## Completeness\n\n";
    if (report.complete()) {
        md += "- exhaustive: all " + std::to_string(report.scenario_count) +
              " scenarios decided\n";
    } else {
        md += "- **PARTIAL RESULT**: " + std::to_string(report.undetermined.size()) + " of " +
              std::to_string(report.scenario_count) +
              " scenarios undetermined — hazard identification is NOT exhaustive\n\n";
        md += markdown_table(report.completeness_table());
    }
    if (report.exhaustive.enabled && !report.exhaustive.pruning) {
        md += "- degraded sweep: monotonicity not certified (" + report.exhaustive.certificate +
              "); superset pruning disabled, every candidate up to cardinality " +
              std::to_string(report.exhaustive.max_card) +
              " was enumerated individually (sound, slower)\n";
    }
    if (report.priority.enabled) {
        const PriorityStats& priority = report.priority;
        md += "- priority policy: " + priority.policy + " (" +
              std::to_string(priority.prior_count) + " fault priors, " +
              (priority.explicit_priors ? "explicit parameters present" : "likelihood defaults") +
              ")\n";
        md += "- expected-risk coverage: " + std::to_string(priority.covered_risk_micros) + "/" +
              std::to_string(priority.total_risk_micros) + " micro-units\n";
        if (priority.coverage_lower_bound_micros >= 0) {
            md += "- posterior coverage lower bound (p5, seed " +
                  std::to_string(priority.prior_seed) +
                  "): " + prob_str(priority.coverage_lower_bound_micros) + "\n";
        }
    }
    md += "- solver effort: decisions=" + std::to_string(report.total_decisions) +
          ", conflicts=" + std::to_string(report.total_conflicts) + "\n";
    md += "- statically resolved: " + std::to_string(report.statically_resolved) +
          " scenario evaluations decided without a solver call\n\n";

    if (options.include_sensitivity) {
        md += "## Critical parameter estimates (sensitivity support)\n\n";
        md += "| scenario | rating | severity +/-1 | likelihood band | review |\n";
        md += "|---|---|---|---|---|\n";
        for (const auto& c : analyze_parameter_criticality(report)) {
            const bool review = c.sensitive_to_severity || c.sensitive_to_likelihood;
            md += "| " + c.scenario_id + " | " + level_str(c.rating) + " | " +
                  level_str(c.rating_range_severity.lo) + ".." +
                  level_str(c.rating_range_severity.hi) + " | " +
                  level_str(c.rating_range_likelihood.lo) + ".." +
                  level_str(c.rating_range_likelihood.hi) + " (+/-" +
                  std::to_string(c.likelihood_band_radius) + ") | " +
                  (review ? "**yes**" : "no") + " |\n";
        }
        md += "\n";
    }

    md += "## Mitigation strategy\n\n";
    md += "- optimal set: {" + join_list(report.selection.chosen) + "}\n";
    md += "- mitigation cost: " + std::to_string(report.selection.mitigation_cost) + "\n";
    md += "- residual loss: " + std::to_string(report.selection.residual_loss) + "\n";
    if (!report.selection.unblocked.empty()) {
        md += "- unblocked scenarios: " + join_list(report.selection.unblocked) + "\n";
    }
    md += "\n";
    if (report.pareto.has_value()) {
        md += "### Pareto front (cost / residual risk / coverage)\n\n";
        if (report.pareto->empty()) {
            md += "- no nondominated portfolio (no mitigation candidates)\n\n";
        } else {
            md += markdown_table(report.pareto_table());
            md += "\n";
            md += "The knee (*) is the minimum-total-cost portfolio — the single plan the "
                  "deprecated single-result API reports.\n\n";
        }
    }
    if (!report.phases.empty()) {
        md += "### Phased roll-out\n\n";
        md += markdown_table(report.mitigation_table());
        md += "\n";
    }

    if (options.include_timings && !report.phase_timings.empty()) {
        md += "## Phase timings (wall clock)\n\n";
        md += markdown_table(report.timing_table());
        md += "\n";
    }
    return md;
}

std::string render_risk_csv(const AssessmentReport& report) {
    TextTable table = report.risk_table();
    for (const epa::ScenarioVerdict& verdict : report.undetermined) {
        const std::string reason = verdict.undetermined_reason
                                       ? std::string(epa::to_string(*verdict.undetermined_reason))
                                       : "unknown";
        table.add_row({verdict.scenario_id, "?", "?", "undetermined:" + reason, "-", ""});
    }
    return table.render_csv();
}

std::string render_report_json(const AssessmentReport& report) {
    json::Object root;
    json::set(root, "schema_version", kSchemaVersion);

    json::Object system;
    json::set(system, "components", report.component_count);
    json::set(system, "relations", report.relation_count);
    json::set(system, "scenarios", report.scenario_count);
    json::set(root, "system", std::move(system));

    json::Array cegar;
    for (const auto& iteration : report.cegar_iterations) {
        json::Object stage;
        json::set(stage, "stage", iteration.stage_name);
        json::set(stage, "candidates_in", iteration.candidates_in);
        json::set(stage, "hazards_out", iteration.hazards_out);
        json::set(stage, "spurious_eliminated", iteration.spurious_eliminated);
        cegar.push_back(std::move(stage));
    }
    json::set(root, "cegar", std::move(cegar));

    json::Array risks;
    for (const ScenarioRisk& risk : report.risks) {
        json::Object entry;
        json::set(entry, "scenario_id", risk.scenario_id);
        json::set(entry, "loss_magnitude", level_str(risk.loss_magnitude));
        json::set(entry, "loss_event_frequency", level_str(risk.loss_event_frequency));
        json::set(entry, "risk", level_str(risk.risk));
        json::set(entry, "iec61508", std::string(risk::to_string(risk.iec_class)));
        json::Array violated;
        for (const std::string& requirement : risk.violated_requirements) {
            violated.push_back(requirement);
        }
        json::set(entry, "violated", std::move(violated));
        risks.push_back(std::move(entry));
    }
    json::set(root, "risks", std::move(risks));

    json::Object completeness;
    json::set(completeness, "complete", report.complete());
    json::Array undetermined;
    for (const epa::ScenarioVerdict& verdict : report.undetermined) {
        json::Object entry;
        json::set(entry, "scenario_id", verdict.scenario_id);
        json::set(entry, "reason",
                  verdict.undetermined_reason
                      ? std::string(epa::to_string(*verdict.undetermined_reason))
                      : "unknown");
        if (!verdict.undetermined_detail.empty()) {
            json::set(entry, "detail", verdict.undetermined_detail);
        }
        json::set(entry, "decisions", verdict.solver_stats.decisions);
        json::set(entry, "conflicts", verdict.solver_stats.conflicts);
        undetermined.push_back(std::move(entry));
    }
    json::set(completeness, "undetermined", std::move(undetermined));
    json::set(completeness, "total_decisions", report.total_decisions);
    json::set(completeness, "total_conflicts", report.total_conflicts);
    json::set(completeness, "statically_resolved", report.statically_resolved);
    if (report.priority.enabled) {
        json::Object priority;
        json::set(priority, "policy", report.priority.policy);
        json::set(priority, "explicit_priors", report.priority.explicit_priors);
        json::set(priority, "prior_count", report.priority.prior_count);
        json::set(priority, "covered_risk_micros", report.priority.covered_risk_micros);
        json::set(priority, "total_risk_micros", report.priority.total_risk_micros);
        json::set(priority, "coverage_lower_bound_micros",
                  report.priority.coverage_lower_bound_micros);
        json::set(priority, "prior_seed", static_cast<long long>(report.priority.prior_seed));
        json::set(completeness, "priority", std::move(priority));
    }
    json::set(root, "completeness", std::move(completeness));

    if (report.exhaustive.enabled) {
        const ExhaustiveStats& stats = report.exhaustive;
        json::Object ex;
        json::set(ex, "certificate", stats.certificate);
        json::set(ex, "pruning", stats.pruning);
        json::set(ex, "universe", stats.universe_size);
        json::set(ex, "skipped_faults", stats.skipped_faults);
        json::set(ex, "max_card", stats.max_card);
        json::set(ex, "candidates", stats.candidates);
        json::set(ex, "evaluated", stats.evaluated);
        json::set(ex, "pruned", stats.pruned);
        json::set(ex, "minimal_hazards", stats.minimal_hazards);
        json::Array offenders;
        for (const std::string& offender : stats.offenders) offenders.push_back(offender);
        json::set(ex, "offenders", std::move(offenders));
        json::set(root, "exhaustive", std::move(ex));
    }

    json::Object plan;
    json::Array chosen;
    for (const std::string& id : report.selection.chosen) chosen.push_back(id);
    json::set(plan, "chosen", std::move(chosen));
    json::set(plan, "mitigation_cost", report.selection.mitigation_cost);
    json::set(plan, "residual_loss", report.selection.residual_loss);
    json::set(root, "mitigation", std::move(plan));

    if (report.pareto.has_value()) {
        const mitigation::ParetoFront& front = *report.pareto;
        json::Object pareto;
        json::Array points;
        long long knee_index = -1;
        const mitigation::ParetoPoint* knee = front.empty() ? nullptr : &front.knee();
        for (std::size_t i = 0; i < front.points().size(); ++i) {
            const mitigation::ParetoPoint& point = front.points()[i];
            if (&point == knee) knee_index = static_cast<long long>(i);
            json::Object entry;
            json::Array chosen_ids;
            for (const std::string& id : point.selection.chosen) chosen_ids.push_back(id);
            json::set(entry, "chosen", std::move(chosen_ids));
            json::set(entry, "mitigation_cost", point.cost());
            json::set(entry, "residual_loss", point.residual());
            json::set(entry, "coverage", point.coverage);
            points.push_back(std::move(entry));
        }
        json::set(pareto, "points", std::move(points));
        json::set(pareto, "knee", knee_index);
        json::set(root, "pareto", std::move(pareto));
    }

    return json::Value(std::move(root)).serialize() + "\n";
}

std::string render_pareto_csv(const AssessmentReport& report) {
    if (!report.pareto.has_value()) return "";
    return report.pareto_table().render_csv();
}

}  // namespace cprisk::core
