// cprisk/core/watertank.hpp
//
// The paper's §VII case study: a water-tank system (TEP-inspired) with input
// and output valve actuators and their controllers, a water-level sensor, a
// tank controller, an HMI, and an Engineering Workstation through which the
// actuators can be manually reconfigured.
//
// Safety requirements:  R1 — the tank must not overflow (G !overflow);
//                       R2 — the operator must be alerted on overflow
//                            (G(overflow -> F alert)).
// Fault modes:          F1 — input valve stuck-at-open;
//                       F2 — output valve stuck-at-closed;
//                       F3 — HMI no-signal;
//                       F4 — infected workstation (causes F1, F2 and F3).
// Mitigations:          M1 — User Training; M2 — Endpoint Security.
//
// Qualitative dynamics (behaviour fragments attached to the components):
// the input valve is the production feed (normally open); the tank
// controller regulates the level through the output valve (open at
// high/overflow); the level rises while filling, falls whenever the output
// valve is open (its drain rate exceeds the feed), and the HMI raises a
// persistent alert on overflow unless its signal is suppressed.
#pragma once

#include <utility>
#include <vector>

#include "epa/epa.hpp"
#include "model/component_library.hpp"
#include "model/system_model.hpp"
#include "security/attack_matrix.hpp"
#include "security/catalog.hpp"
#include "security/scenario.hpp"

namespace cprisk::core {

/// Component ids used by the case-study model.
namespace watertank_ids {
inline constexpr const char* kTank = "tank";
inline constexpr const char* kInputValve = "input_valve";
inline constexpr const char* kOutputValve = "output_valve";
inline constexpr const char* kInValveCtrl = "in_valve_ctrl";
inline constexpr const char* kOutValveCtrl = "out_valve_ctrl";
inline constexpr const char* kLevelSensor = "level_sensor";
inline constexpr const char* kTankCtrl = "tank_ctrl";
inline constexpr const char* kHmi = "hmi";
inline constexpr const char* kWorkstation = "workstation";
}  // namespace watertank_ids

/// A Table-II row request: the scenario plus the mitigations active for it.
struct Table2Row {
    security::AttackScenario scenario;
    std::vector<std::string> active_mitigations;
};

struct WaterTankCaseStudy {
    model::SystemModel system;
    std::vector<epa::Requirement> requirements;           ///< behavioural R1, R2
    std::vector<epa::Requirement> topology_requirements;  ///< abstract stand-ins
    security::AttackMatrix matrix;
    security::SecurityCatalog catalog;
    epa::MitigationMap mitigations;
    int horizon = 6;

    /// Builds the complete case study (model + behaviours + requirements +
    /// catalogs + mitigation map).
    static Result<WaterTankCaseStudy> build();

    /// The Fig. 4 asset refinement of the Engineering Workstation:
    /// E-mail Client -> Browser -> Infected Computer.
    static model::RefinementSpec workstation_refinement();

    /// The exact S1-S7 rows of Table II (fault-mode combinations with their
    /// mitigation settings as printed in the paper).
    std::vector<Table2Row> table2_rows() const;
};

}  // namespace cprisk::core
