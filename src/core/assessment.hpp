// cprisk/core/assessment.hpp
//
// The top-level façade running the paper's seven-step pipeline (Fig. 1):
//
//   1. system model          — supplied merged SystemModel;
//   2. candidate mutations   — ScenarioSpace from fault modes + attack paths;
//   3. reasoning             — model + requirements compiled to ASP;
//   4. hazard identification — exhaustive evaluation of every scenario;
//   5. model refinement      — CEGAR: topology-level candidates re-checked
//                              behaviourally, spurious solutions eliminated;
//   6. quantitative risk     — O-RA risk per hazard (LM x LEF -> Table I)
//                              plus IEC 61508 classification;
//   7. mitigation strategy   — cost-benefit optimization and multi-phase
//                              planning under budget constraints.
#pragma once

#include <optional>

#include "common/budget.hpp"
#include "common/table.hpp"
#include "hierarchy/evaluation_matrix.hpp"
#include "mitigation/optimizer.hpp"
#include "obs/run_context.hpp"
#include "risk/iec61508.hpp"
#include "risk/ora.hpp"
#include "risk/prior.hpp"

namespace cprisk::core {

/// RunContext lives in the base `cprisk` namespace (obs/run_context.hpp) so
/// the lower pipeline layers can use it without depending on core; this
/// alias makes the documented `core::RunContext` spelling work too.
using ::cprisk::RunContext;

/// Step-6 output for one confirmed hazard.
struct ScenarioRisk {
    std::string scenario_id;
    qual::Level loss_magnitude = qual::Level::VeryLow;       ///< from impact severity
    qual::Level loss_event_frequency = qual::Level::VeryLow; ///< from scenario likelihood
    qual::Level risk = qual::Level::VeryLow;                 ///< O-RA Table I
    risk::RiskClass iec_class = risk::RiskClass::IV;
    std::vector<std::string> violated_requirements;
    /// Half-width (in qualitative levels) of the likelihood band the
    /// sensitivity analysis sweeps: derived from the widest Beta-prior
    /// standard deviation among the scenario's mutations when the bundle
    /// carries explicit `prior=` parameters, 1 (the pre-prior +/-1 sweep)
    /// otherwise. See risk::ScenarioPriority::likelihood_band_radius.
    int likelihood_band_radius = 1;
};

struct AssessmentConfig {
    int horizon = 6;
    std::size_t max_simultaneous_faults = 2;
    bool include_attack_scenarios = true;
    /// Run the two-stage CEGAR (topology then behavioural); false runs the
    /// behavioural analysis directly on every scenario.
    bool use_cegar = true;
    std::optional<long long> budget;            ///< step-7 budget constraint
    long long phase_budget = 0;                 ///< >0 enables multi-phase planning
    long long loss_scale = 10;                  ///< severity -> cost conversion
    std::vector<std::string> active_mitigations;  ///< already-deployed controls

    // Resource governance (see docs/robustness.md). Exhausted budgets do
    // not fail the run: affected scenarios are reported Undetermined.
    // deadline_ms and cancel are applied to the RunContext's budget at the
    // start of run(); with the two-argument run() overload they may instead
    // be configured directly on ctx.budget and left zero here.
    long long deadline_ms = 0;       ///< wall-clock deadline for steps 3-5 (0 = none)
    std::size_t max_decisions = 0;   ///< per-solve decision cap (0 = solver default)
    /// Static ternary prefilter over the EPA ground-once cache
    /// (docs/static-analysis.md). Never changes verdicts — only whether the
    /// DPLL solver runs for statically decidable scenarios — so, like
    /// `jobs`, it is excluded from the journal's config echo.
    bool static_prefilter = true;
    /// Scenario-solve search engine (`--solver`, docs/solver.md). Both
    /// engines produce identical verdicts, reports, and journal bytes —
    /// differential-tested — so, like `static_prefilter`, the choice is
    /// excluded from the journal's config echo and a journal written under
    /// one engine resumes under the other.
    asp::SolverEngine solver = asp::SolverEngine::Cdcl;
    std::optional<CancelToken> cancel;  ///< external cancellation
    /// Bounded retry for transient Undetermined{solver_error} verdicts
    /// (docs/serve.md): applied to ctx.retry.max_retries at the start of
    /// run(). 0 (the default) disables retry and preserves byte-identity
    /// with earlier releases. Like `jobs`, a robustness knob that never
    /// changes successful verdicts, so excluded from the journal echo.
    std::size_t retries = 0;

    // Exhaustive hazard frontier (epa/frontier.hpp, docs/exhaustive-search.md).
    /// Replace the enumerated scenario space + CEGAR with a cardinality-
    /// layered sweep over the fault-subset lattice, reporting the antichain
    /// of minimal hazardous scenarios. Superset pruning is enabled when the
    /// polarity certifier proves the model monotone; otherwise the sweep
    /// degrades to sound per-layer enumeration (same verdicts, no pruning).
    bool exhaustive = false;
    /// Largest fault-subset cardinality swept in exhaustive mode (0 = the
    /// full lattice up to the universe size).
    std::size_t max_card = 0;
    /// Exhaustive mode: drop fault modes on components the attack
    /// reachability taint pass (analysis/taint.hpp) proves unreachable.
    /// Changes the enumerated universe, so it is part of the journal echo.
    bool attack_reachable_only = false;

    // Anytime Bayesian prioritization (risk/prior.hpp, ROADMAP item 4).
    /// Order scenarios are evaluated in: ExpectedRisk (the default) sweeps
    /// by descending expected-risk score (Beta priors from the model bundle
    /// times dependency-reach impact; ties by ascending scenario id) so a
    /// --deadline-ms interruption decides the highest-risk scenarios first.
    /// Enumeration restores generation order. The choice fixes the journal
    /// record order, so it is part of the journal echo; either way reports
    /// and journals stay byte-identical at any --jobs and across resume.
    risk::PriorityPolicy priority_policy = risk::PriorityPolicy::ExpectedRisk;
    /// Seed for the posterior coverage bound rendered in the Completeness
    /// section (`--prior-seed`). Render-only — never changes a verdict or a
    /// journal byte — so excluded from the journal echo like `jobs`.
    unsigned long long prior_seed = 1;
    /// Step 7: additionally compute the mitigation Pareto front over
    /// (cost, residual risk, coverage) — mitigation::ParetoFront, rendered
    /// in all report formats and selectable via `cprisk mitigate --pareto`.
    /// Off by default: the front costs extra solves and the single
    /// cost-optimal selection stays the primary plan either way.
    bool pareto = false;

    // Checkpoint/resume.
    std::string journal_path;  ///< non-empty: append one JSONL verdict per scenario
    bool resume = false;       ///< replay the journal, skipping finished scenarios
    /// fsync the journal after every record (`--journal-sync`,
    /// core::JournalOptions::sync). Durability only — journal bytes are
    /// identical either way — so excluded from the journal echo.
    bool journal_sync = false;

    /// DEPRECATED — pre-RunContext shim, read only by the one-argument
    /// run(config) overload to seed the context it builds; the two-argument
    /// overload uses ctx.jobs. Worker lanes for the scenario sweep (0 =
    /// hardware concurrency). The value never changes results, reports, or
    /// journal bytes — verdicts are merged in scenario order — so it is
    /// deliberately NOT part of the journal's config echo and a journal can
    /// be resumed under a different job count. See docs/performance.md.
    std::size_t jobs = 1;
};

/// Wall-clock duration of one pipeline phase (steps 2, 3-5, 6, 7). Timings
/// are observability data: schedule- and machine-dependent, so report
/// renderings include them only on request (ReportOptions::include_timings)
/// and never in the byte-stable JSON export.
struct PhaseTiming {
    std::string phase;  ///< "scenario_space", "cegar", "risk", "mitigation"
    long long ms = 0;
};

/// Summary of an exhaustive frontier run (AssessmentConfig::exhaustive);
/// mirrors epa::FrontierResult minus the per-candidate records.
struct ExhaustiveStats {
    bool enabled = false;
    /// Certificate outcome: "monotone" (pruning licensed), "mixed"
    /// (offenders found, degraded sweep), or "unavailable" (no claim —
    /// ground-once cache or seeding analysis missing, degraded sweep).
    std::string certificate = "unavailable";
    bool pruning = false;
    std::size_t universe_size = 0;
    std::size_t skipped_faults = 0;  ///< dropped by --attack-reachable-only
    std::size_t max_card = 0;        ///< effective layer bound
    std::size_t candidates = 0;
    std::size_t evaluated = 0;
    std::size_t pruned = 0;
    std::size_t minimal_hazards = 0;
    /// First few certificate offender diagnostics (mixed polarity only).
    std::vector<std::string> offenders;
};

/// Anytime-coverage summary under a scoring priority policy: how much of
/// the scenario space's expected-risk mass the decided scenarios cover
/// (risk/prior.hpp). Rendered in the Completeness section so an
/// interrupted run quantifies what its partial answer is worth.
struct PriorityStats {
    bool enabled = false;  ///< policy scored the space (ExpectedRisk)
    std::string policy = "enumeration";
    bool explicit_priors = false;  ///< any `prior=` option in the bundle
    std::size_t prior_count = 0;   ///< fault modes carrying a prior
    long long total_risk_micros = 0;    ///< summed score of the space
    long long covered_risk_micros = 0;  ///< summed score of decided scenarios
    /// Posterior 5th-percentile lower bound on the covered fraction
    /// (micro-units of probability; -1 when the space carries no risk).
    long long coverage_lower_bound_micros = -1;
    unsigned long long prior_seed = 1;  ///< seed behind the bound
};

struct AssessmentReport {
    // Step 1-2.
    std::size_t component_count = 0;
    std::size_t relation_count = 0;
    std::size_t scenario_count = 0;
    // Step 4-5.
    std::vector<epa::ScenarioVerdict> hazards;  ///< confirmed violating scenarios
    std::vector<hierarchy::CegarIterationStats> cegar_iterations;
    std::size_t spurious_eliminated = 0;
    // Completeness: scenarios the engine could not decide within its
    // resource budget, with the reason on each verdict. A non-empty list
    // means the hazard identification was NOT exhaustive, and every report
    // rendering says so.
    std::vector<epa::ScenarioVerdict> undetermined;
    std::size_t resumed_scenarios = 0;  ///< verdicts replayed from the journal
    std::size_t total_decisions = 0;    ///< solver effort across all scenarios
    std::size_t total_conflicts = 0;
    /// Scenarios whose final verdict came from the static ternary prefilter
    /// instead of a DPLL solve (docs/static-analysis.md).
    std::size_t statically_resolved = 0;
    // Step 6.
    std::vector<ScenarioRisk> risks;  ///< sorted by descending risk
    /// Anytime-coverage summary (Completeness section).
    PriorityStats priority;
    // Step 7.
    mitigation::Selection selection;
    std::vector<mitigation::Phase> phases;
    /// Pareto front over (cost, residual risk, coverage); engaged only when
    /// AssessmentConfig::pareto is set (`cprisk mitigate --pareto`).
    std::optional<mitigation::ParetoFront> pareto;
    /// Per-phase wall-clock timings, in pipeline order (see PhaseTiming).
    std::vector<PhaseTiming> phase_timings;
    /// Exhaustive-frontier summary; `enabled` iff the run used --exhaustive.
    ExhaustiveStats exhaustive;

    /// True when every scenario was decided (the run is exhaustive).
    bool complete() const { return undetermined.empty(); }

    TextTable hazard_table() const;
    TextTable risk_table() const;
    TextTable mitigation_table() const;
    /// Pareto front, one row per nondominated point, the knee marked "*"
    /// (empty table when no front was computed).
    TextTable pareto_table() const;
    /// Undetermined scenarios with their reasons and solver stats.
    TextTable completeness_table() const;
    /// Per-phase wall-clock timings (empty table when none were recorded).
    TextTable timing_table() const;
};

class RiskAssessment {
public:
    /// All inputs are borrowed; they must outlive the assessment object.
    /// `catalog` (optional) enables vulnerability-driven scenarios in step 2.
    RiskAssessment(const model::SystemModel& system,
                   std::vector<epa::Requirement> behavioral_requirements,
                   std::vector<epa::Requirement> topology_requirements,
                   const security::AttackMatrix& matrix, const epa::MitigationMap& mitigations,
                   const security::SecurityCatalog* catalog = nullptr);

    /// Runs the full pipeline under `ctx`: ctx carries the budget, worker
    /// pool, trace sink, and metrics registry for the whole run
    /// (docs/observability.md). config.deadline_ms / config.cancel, when
    /// set, are applied to ctx.budget before the pipeline starts. The
    /// context must outlive the call.
    Result<AssessmentReport> run(const AssessmentConfig& config, RunContext& ctx) const;

    /// Compatibility overload: builds a RunContext from the config's
    /// deprecated `jobs` shim (no tracing, no metrics) and delegates.
    Result<AssessmentReport> run(const AssessmentConfig& config = {}) const;

    /// Steps 4-6 for a fixed scenario list (used by the Table II bench).
    /// Verdict order is always the scenario order.
    Result<std::vector<epa::ScenarioVerdict>> evaluate_scenarios(
        const std::vector<security::AttackScenario>& scenarios,
        const std::vector<std::string>& active_mitigations, int horizon,
        RunContext& ctx) const;

    /// Compatibility overload; `jobs` as the deprecated AssessmentConfig
    /// shim.
    Result<std::vector<epa::ScenarioVerdict>> evaluate_scenarios(
        const std::vector<security::AttackScenario>& scenarios,
        const std::vector<std::string>& active_mitigations, int horizon,
        std::size_t jobs = 1) const;

private:
    const model::SystemModel* system_;
    std::vector<epa::Requirement> behavioral_requirements_;
    std::vector<epa::Requirement> topology_requirements_;
    const security::AttackMatrix* matrix_;
    const epa::MitigationMap* mitigations_;
    const security::SecurityCatalog* catalog_;
};

}  // namespace cprisk::core
