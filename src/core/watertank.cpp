#include "core/watertank.hpp"

#include "asp/parser.hpp"

namespace cprisk::core {

namespace ids = watertank_ids;
using model::Relation;
using model::RelationType;
using security::AttackScenario;
using security::Mutation;
using security::ScenarioOrigin;

namespace {

/// Level quantity-space transitions shared by the tank dynamics.
constexpr const char* kTankBehavior = R"(
#program base.
level_value(low). level_value(normal). level_value(high). level_value(overflow).
next_up(low, normal). next_up(normal, high). next_up(high, overflow).
next_up(overflow, overflow).
next_down(overflow, high). next_down(high, normal). next_down(normal, low).
next_down(low, low).

#program initial.
level(tank, normal).

#program dynamic.
% Filling: feed open, drain closed.
level(tank, L2) :- prev_level(tank, L), vpos(input_valve, open),
                   vpos(output_valve, closed), next_up(L, L2).
% Draining: the drain rate exceeds the feed, so an open output valve lowers
% the level regardless of the input valve.
level(tank, L2) :- prev_level(tank, L), vpos(output_valve, open), next_down(L, L2).
% Holding: both valves closed.
level(tank, L) :- prev_level(tank, L), vpos(input_valve, closed),
                  vpos(output_valve, closed).
)";

/// Tank controller: regulates the level through the output valve; the input
/// valve is the production feed and stays commanded open.
constexpr const char* kControllerBehavior = R"(
#program dynamic.
cmd(output_valve, open) :- prev_level(tank, high).
cmd(output_valve, open) :- prev_level(tank, overflow).
cmd(output_valve, closed) :- prev_level(tank, normal).
cmd(output_valve, closed) :- prev_level(tank, low).
cmd(input_valve, open) :- prev_level(tank, _).
)";

/// Valve actuators: stuck-at faults override commands (paper Listing 2).
constexpr const char* kValveBehavior = R"(
#program base.
valve(input_valve). valve(output_valve).
#program dynamic.
vpos(V, open) :- cmd(V, open), not eff_fault(V, stuck_at_closed).
vpos(V, closed) :- cmd(V, closed), not eff_fault(V, stuck_at_open).
vpos(V, open) :- valve(V), eff_fault(V, stuck_at_open), not eff_fault(V, stuck_at_closed).
vpos(V, closed) :- valve(V), eff_fault(V, stuck_at_closed), not eff_fault(V, stuck_at_open).
)";

/// HMI: raises a persistent alert on overflow unless suppressed.
constexpr const char* kHmiBehavior = R"(
#program always.
alert :- level(tank, overflow), not eff_fault(hmi, no_signal).
#program dynamic.
alert :- prev_alert.
)";

/// Workstation compromise (F4) induces F1, F2 and F3: the attacker
/// reconfigures both actuators through the engineering interface and
/// suppresses the operator alarm.
constexpr const char* kWorkstationBehavior = R"(
#program always.
eff_fault(C, F) :- active_fault(C, F).
eff_fault(input_valve, stuck_at_open) :- active_fault(workstation, infected).
eff_fault(output_valve, stuck_at_closed) :- active_fault(workstation, infected).
eff_fault(hmi, no_signal) :- active_fault(workstation, infected).
)";

}  // namespace

Result<WaterTankCaseStudy> WaterTankCaseStudy::build() {
    WaterTankCaseStudy cs;
    const model::ComponentLibrary library = model::ComponentLibrary::standard_cps();

    struct Spec {
        const char* type;
        const char* id;
        const char* name;
    };
    const std::vector<Spec> specs = {
        {"water_tank", ids::kTank, "Water Tank"},
        {"valve_actuator", ids::kInputValve, "Input Valve"},
        {"valve_actuator", ids::kOutputValve, "Output Valve"},
        {"valve_controller", ids::kInValveCtrl, "Input Valve Controller"},
        {"valve_controller", ids::kOutValveCtrl, "Output Valve Controller"},
        {"level_sensor", ids::kLevelSensor, "Water Level Sensor"},
        {"plant_controller", ids::kTankCtrl, "Water Tank Controller"},
        {"hmi", ids::kHmi, "Human-Machine Interface"},
        {"engineering_workstation", ids::kWorkstation, "Engineering Workstation"},
    };
    for (const Spec& spec : specs) {
        auto added = library.instantiate(spec.type, spec.id, spec.name, cs.system);
        if (!added.ok()) return Result<WaterTankCaseStudy>::failure(added.error());
    }

    const std::vector<Relation> relations = {
        // Physical water path.
        {ids::kInputValve, ids::kTank, RelationType::QuantityFlow, "water"},
        {ids::kTank, ids::kOutputValve, RelationType::QuantityFlow, "water"},
        // Measurement and control loop.
        {ids::kTank, ids::kLevelSensor, RelationType::SignalFlow, "level"},
        {ids::kLevelSensor, ids::kTankCtrl, RelationType::SignalFlow, "measurement"},
        {ids::kTankCtrl, ids::kInValveCtrl, RelationType::SignalFlow, "control_msg"},
        {ids::kTankCtrl, ids::kOutValveCtrl, RelationType::SignalFlow, "control_msg"},
        {ids::kInValveCtrl, ids::kInputValve, RelationType::Triggering, "actuate"},
        {ids::kOutValveCtrl, ids::kOutputValve, RelationType::Triggering, "actuate"},
        // Operator view.
        {ids::kTankCtrl, ids::kHmi, RelationType::SignalFlow, "status"},
        // Engineering workstation: manual reconfiguration paths (the IT/OT
        // bridge that lets F4 cause F1, F2, F3).
        {ids::kWorkstation, ids::kInValveCtrl, RelationType::SignalFlow, "reconfigure"},
        {ids::kWorkstation, ids::kOutValveCtrl, RelationType::SignalFlow, "reconfigure"},
        {ids::kWorkstation, ids::kHmi, RelationType::SignalFlow, "admin"},
    };
    for (const Relation& relation : relations) {
        auto added = cs.system.add_relation(relation);
        if (!added.ok()) return Result<WaterTankCaseStudy>::failure(added.error());
    }

    // Behaviour fragments (qualitative dynamics).
    struct Behavior {
        const char* component;
        const char* fragment;
    };
    const std::vector<Behavior> behaviors = {
        {ids::kTank, kTankBehavior},
        {ids::kTankCtrl, kControllerBehavior},
        {ids::kInputValve, kValveBehavior},
        {ids::kHmi, kHmiBehavior},
        {ids::kWorkstation, kWorkstationBehavior},
    };
    for (const Behavior& behavior : behaviors) {
        auto added = cs.system.add_behavior(behavior.component, behavior.fragment);
        if (!added.ok()) return Result<WaterTankCaseStudy>::failure(added.error());
    }

    // Requirements.
    cs.requirements = {
        epa::Requirement::never(
            "r1", "the water tank must not overflow",
            asp::parse_atom("level(tank, overflow)").value()),
        epa::Requirement::responds(
            "r2", "an alert must reach the operator in case of overflow",
            asp::parse_atom("level(tank, overflow)").value(),
            asp::parse_atom("alert").value()),
    };
    // Abstract (topology-focus) stand-ins: an error reaching the tank
    // endangers R1; an error reaching the HMI endangers R2.
    cs.topology_requirements = {
        epa::Requirement::never("r1", "no error may reach the water tank",
                                asp::parse_atom("error(tank)").value()),
        epa::Requirement::never("r2", "no error may reach the HMI",
                                asp::parse_atom("error(hmi)").value()),
    };

    cs.matrix = security::AttackMatrix::standard_ics();
    cs.catalog = security::SecurityCatalog::standard_ics();

    // Mitigation map: technique-derived suppressions plus the paper's
    // explicit M1/M2 -> F4 mapping (user training and endpoint security
    // both break the infection chain).
    cs.mitigations = epa::MitigationMap::from_attack_matrix(cs.system, cs.matrix);
    cs.mitigations.add("M-TRAIN", ids::kWorkstation, "infected");
    cs.mitigations.add("M-ENDPOINT", ids::kWorkstation, "infected");

    cs.horizon = 6;
    return cs;
}

model::RefinementSpec WaterTankCaseStudy::workstation_refinement() {
    model::RefinementSpec spec;
    spec.parent = ids::kWorkstation;

    model::Component email;
    email.id = "email_client";
    email.name = "E-mail Client";
    email.type = model::ElementType::ApplicationComponent;
    email.exposure = model::Exposure::Public;
    email.asset_value = qual::Level::Low;
    email.fault_modes = {model::FaultMode{"phishing_link_opened", model::FaultEffect::Compromise,
                                          "", qual::Level::Medium, qual::Level::High}};
    email.properties["template"] = "email_client";

    model::Component browser;
    browser.id = "browser";
    browser.name = "Browser";
    browser.type = model::ElementType::ApplicationComponent;
    browser.exposure = model::Exposure::Public;
    browser.asset_value = qual::Level::Low;
    browser.version = "98.0";
    browser.fault_modes = {model::FaultMode{"malware_download", model::FaultEffect::Compromise,
                                            "", qual::Level::High, qual::Level::Medium}};
    browser.properties["template"] = "web_browser";

    model::Component infected;
    infected.id = "infected_computer";
    infected.name = "Infected Computer";
    infected.type = model::ElementType::Node;
    infected.exposure = model::Exposure::Internal;
    infected.asset_value = qual::Level::High;
    infected.fault_modes = {model::FaultMode{"infected", model::FaultEffect::Compromise, "",
                                             qual::Level::VeryHigh, qual::Level::Medium}};
    infected.properties["template"] = "engineering_workstation";

    spec.parts = {email, browser, infected};
    spec.internal_relations = {
        {"email_client", "browser", RelationType::SignalFlow, "opened_link"},
        {"browser", "infected_computer", RelationType::SignalFlow, "downloaded_malware"},
    };
    spec.entry = "email_client";
    spec.exit = "infected_computer";
    return spec;
}

std::vector<Table2Row> WaterTankCaseStudy::table2_rows() const {
    const std::vector<std::string> both = {"M-TRAIN", "M-ENDPOINT"};
    const Mutation f1{ids::kInputValve, "stuck_at_open"};
    const Mutation f2{ids::kOutputValve, "stuck_at_closed"};
    const Mutation f3{ids::kHmi, "no_signal"};
    const Mutation f4{ids::kWorkstation, "infected"};

    auto scenario = [](std::string id, std::vector<Mutation> mutations,
                       qual::Level likelihood) {
        AttackScenario s;
        s.id = std::move(id);
        s.origin = ScenarioOrigin::FaultCombination;
        s.mutations = std::move(mutations);
        s.likelihood = likelihood;
        return s;
    };

    return {
        // S1: no faults, mitigations active.
        {scenario("s1", {}, qual::Level::VeryLow), both},
        // S2: compromised workstation, no mitigations.
        {scenario("s2", {f4}, qual::Level::Medium), {}},
        // S3: F1 only.
        {scenario("s3", {f1}, qual::Level::Low), both},
        // S4: F2 only.
        {scenario("s4", {f2}, qual::Level::Low), both},
        // S5: F2 + F3 (the most severe two-fault combination). Two-fault
        // rows sit one step below the single faults; the triple-fault S7 is
        // "much lower" still (paper §VII closing discussion).
        {scenario("s5", {f2, f3}, qual::Level::Low), both},
        // S6: F1 + F3.
        {scenario("s6", {f1, f3}, qual::Level::Low), both},
        // S7: F1 + F2 + F3.
        {scenario("s7", {f1, f2, f3}, qual::Level::VeryLow), both},
    };
}

}  // namespace cprisk::core
