// cprisk/core/reactor.hpp
//
// A second IT/OT case study exercising the framework on a different physical
// domain: a chemical batch reactor with a heater, a cooling valve, a
// pressure-relief valve, temperature/pressure instrumentation, an alarm
// unit, and a SCADA node through which an attacker can reconfigure the
// actuators (the same IT->OT pathology as the paper's §VII study, but with a
// two-variable physics: temperature drives pressure).
//
// Safety requirements:
//   R1 (never)    — the reactor must not rupture;
//   R2 (responds) — critical pressure must raise an operator alert.
//
// Fault modes:
//   heater.stuck_on, cooling_valve.stuck_closed, relief_valve.stuck_closed,
//   temp_sensor.frozen_reading, alarm_unit.no_signal, scada.compromised
//   (the compromise forces the heater on, blocks cooling and relief, and
//   silences the alarm — a full process-sabotage pattern).
//
// Designed outcomes (verified in tests/core/reactor_test.cpp):
//   any single actuator/sensor fault is compensated (defence in depth);
//   heater-on + cooling-blocked reaches critical pressure but the healthy
//   relief valve prevents rupture; adding the relief failure ruptures
//   (R1); the SCADA compromise ruptures silently (R1 + R2).
#pragma once

#include <vector>

#include "epa/epa.hpp"
#include "model/system_model.hpp"
#include "security/attack_matrix.hpp"

namespace cprisk::core {

namespace reactor_ids {
inline constexpr const char* kReactor = "reactor";
inline constexpr const char* kHeater = "heater";
inline constexpr const char* kCoolingValve = "cooling_valve";
inline constexpr const char* kReliefValve = "relief_valve";
inline constexpr const char* kTempSensor = "temp_sensor";
inline constexpr const char* kPressureSensor = "pressure_sensor";
inline constexpr const char* kController = "reactor_ctrl";
inline constexpr const char* kAlarmUnit = "alarm_unit";
inline constexpr const char* kScada = "scada";
}  // namespace reactor_ids

struct ReactorCaseStudy {
    model::SystemModel system;
    std::vector<epa::Requirement> requirements;           ///< behavioural R1, R2
    std::vector<epa::Requirement> topology_requirements;  ///< abstract stand-ins
    security::AttackMatrix matrix;
    epa::MitigationMap mitigations;
    int horizon = 7;

    static Result<ReactorCaseStudy> build();
};

}  // namespace cprisk::core
