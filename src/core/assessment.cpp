#include "core/assessment.hpp"

#include <algorithm>
#include <map>

#include <set>

#include "analysis/taint.hpp"
#include "core/journal.hpp"
#include "epa/frontier.hpp"
#include "security/threat_actor.hpp"

namespace cprisk::core {

namespace {

std::string level_str(qual::Level level) { return std::string(qual::to_short_string(level)); }

}  // namespace

TextTable AssessmentReport::hazard_table() const {
    TextTable table({"Scenario", "Mutations", "Violated", "Severity", "Likelihood"});
    for (const epa::ScenarioVerdict& hazard : hazards) {
        std::string mutations;
        for (const auto& mutation : hazard.mutations) {
            if (!mutations.empty()) mutations += ", ";
            mutations += mutation.to_string();
        }
        std::string violated;
        for (const auto& requirement : hazard.violated_requirements) {
            if (!violated.empty()) violated += ", ";
            violated += requirement;
        }
        table.add_row({hazard.scenario_id, mutations, violated, level_str(hazard.severity),
                       level_str(hazard.likelihood)});
    }
    return table;
}

TextTable AssessmentReport::risk_table() const {
    TextTable table({"Scenario", "LM", "LEF", "Risk", "IEC 61508", "Violated"});
    for (const ScenarioRisk& risk : risks) {
        std::string violated;
        for (const auto& requirement : risk.violated_requirements) {
            if (!violated.empty()) violated += ", ";
            violated += requirement;
        }
        table.add_row({risk.scenario_id, level_str(risk.loss_magnitude),
                       level_str(risk.loss_event_frequency), level_str(risk.risk),
                       std::string(risk::to_string(risk.iec_class)), violated});
    }
    return table;
}

TextTable AssessmentReport::mitigation_table() const {
    TextTable table({"Phase", "Chosen mitigations", "Cost", "Residual loss"});
    if (phases.empty()) {
        std::string chosen;
        for (const auto& id : selection.chosen) {
            if (!chosen.empty()) chosen += ", ";
            chosen += id;
        }
        table.add_row({"-", chosen, std::to_string(selection.mitigation_cost),
                       std::to_string(selection.residual_loss)});
        return table;
    }
    for (const mitigation::Phase& phase : phases) {
        std::string chosen;
        for (const auto& id : phase.selection.chosen) {
            if (!chosen.empty()) chosen += ", ";
            chosen += id;
        }
        table.add_row({std::to_string(phase.number), chosen,
                       std::to_string(phase.selection.mitigation_cost),
                       std::to_string(phase.selection.residual_loss)});
    }
    return table;
}

TextTable AssessmentReport::pareto_table() const {
    TextTable table({"option", "chosen", "mitigation cost", "residual loss", "coverage", "knee"});
    if (!pareto.has_value()) return table;
    const mitigation::ParetoPoint* knee = pareto->empty() ? nullptr : &pareto->knee();
    for (std::size_t i = 0; i < pareto->points().size(); ++i) {
        const mitigation::ParetoPoint& point = pareto->points()[i];
        std::string chosen;
        for (const auto& id : point.selection.chosen) {
            if (!chosen.empty()) chosen += ", ";
            chosen += id;
        }
        table.add_row({std::to_string(i + 1), "{" + chosen + "}", std::to_string(point.cost()),
                       std::to_string(point.residual()), std::to_string(point.coverage),
                       &point == knee ? "*" : ""});
    }
    return table;
}

TextTable AssessmentReport::timing_table() const {
    TextTable table({"Phase", "Wall ms"});
    for (const PhaseTiming& timing : phase_timings) {
        table.add_row({timing.phase, std::to_string(timing.ms)});
    }
    return table;
}

TextTable AssessmentReport::completeness_table() const {
    TextTable table({"Scenario", "Reason", "Decisions", "Conflicts", "Detail"});
    for (const epa::ScenarioVerdict& verdict : undetermined) {
        table.add_row({verdict.scenario_id,
                       std::string(verdict.undetermined_reason
                                       ? epa::to_string(*verdict.undetermined_reason)
                                       : "unknown"),
                       std::to_string(verdict.solver_stats.decisions),
                       std::to_string(verdict.solver_stats.conflicts),
                       verdict.undetermined_detail});
    }
    return table;
}

RiskAssessment::RiskAssessment(const model::SystemModel& system,
                               std::vector<epa::Requirement> behavioral_requirements,
                               std::vector<epa::Requirement> topology_requirements,
                               const security::AttackMatrix& matrix,
                               const epa::MitigationMap& mitigations,
                               const security::SecurityCatalog* catalog)
    : system_(&system),
      behavioral_requirements_(std::move(behavioral_requirements)),
      topology_requirements_(std::move(topology_requirements)),
      matrix_(&matrix),
      mitigations_(&mitigations),
      catalog_(catalog) {}

Result<AssessmentReport> RiskAssessment::run(const AssessmentConfig& config) const {
    // Compatibility shim: pre-RunContext callers configure everything on the
    // config; reproduce that exactly (no tracing, no metrics, own pool).
    RunContext ctx;
    ctx.jobs = config.jobs;
    return run(config, ctx);
}

Result<AssessmentReport> RiskAssessment::run(const AssessmentConfig& config,
                                             RunContext& ctx) const {
    AssessmentReport report;
    report.component_count = system_->component_count();
    report.relation_count = system_->relation_count();

    using Clock = std::chrono::steady_clock;
    const auto record_phase = [&](const char* phase, Clock::time_point since) {
        const long long ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                 Clock::now() - since)
                                 .count();
        report.phase_timings.push_back(PhaseTiming{phase, ms});
        obs::set_gauge(ctx.metrics, "assess.phase_ms." + std::string(phase), ms);
    };

    // Anytime prioritization (risk/prior.hpp): fault-mode Beta priors from
    // the model bundle score every scenario; under the default ExpectedRisk
    // policy the sweeps below evaluate high scores first, so a deadline
    // interruption decides the riskiest scenarios before the long tail.
    const risk::ScenarioPriority priority(*system_, config.priority_policy);
    const bool scoring = config.priority_policy == risk::PriorityPolicy::ExpectedRisk;

    // Step 2: candidate mutations / scenario space. Exhaustive mode skips
    // the enumerated space — the frontier sweeps the fault-subset lattice
    // directly and the step-7 space is rebuilt from the minimal hazards.
    auto phase_start = Clock::now();
    std::optional<security::ScenarioSpace> built_space;
    if (!config.exhaustive) {
        security::ScenarioSpaceOptions space_options;
        space_options.max_simultaneous_faults = config.max_simultaneous_faults;
        space_options.include_attack_scenarios = config.include_attack_scenarios;
        {
            obs::Span span(ctx.trace, "assess.scenario_space", "phase");
            built_space.emplace(security::ScenarioSpace::build(
                *system_, *matrix_, security::standard_threat_actors(), space_options, catalog_));
            span.arg("scenarios", static_cast<long long>(built_space->size()));
        }
        if (scoring) {
            // Reordering the space is the whole prioritization lever: the
            // CEGAR sweep, the journal, and the drain order all follow
            // space order, so everything downstream stays byte-identical
            // at any --jobs and across kill/resume.
            std::vector<security::AttackScenario> ordered = built_space->scenarios();
            priority.order(ordered);
            built_space.emplace(std::move(ordered));
        }
        record_phase("scenario_space", phase_start);
        report.scenario_count = built_space->size();
        obs::add_counter(ctx.metrics, "assess.scenarios", built_space->size());
    }

    if (config.deadline_ms > 0) {
        ctx.budget.set_deadline_after(std::chrono::milliseconds(config.deadline_ms));
    }
    if (config.cancel) ctx.budget.set_cancel_token(*config.cancel);
    if (config.retries > 0) ctx.retry.max_retries = config.retries;

    // Checkpoint/resume: previously journaled verdicts are replayed instead
    // of re-evaluated; fresh verdicts are appended as they complete. The
    // hooks serve both the CEGAR and the exhaustive-frontier paths.
    hierarchy::CegarHooks hooks;
    std::optional<JournalWriter> journal;
    std::map<std::string, hierarchy::ScenarioRecord> replay;
    std::vector<hierarchy::ScenarioRecord> replayed_records;  // in journal order
    if (!config.journal_path.empty()) {
        const json::Value header = journal_header(config);
        if (config.resume) {
            auto loaded = load_journal(config.journal_path);
            if (!loaded.ok()) return Result<AssessmentReport>::failure(loaded.error());
            const json::Value* echo = loaded.value().header.get("config");
            if (echo == nullptr || echo->serialize() != header.get("config")->serialize()) {
                return Result<AssessmentReport>::failure(
                    "journal: " + config.journal_path +
                    " was written under a different configuration; re-run without --resume");
            }
            replayed_records = std::move(loaded.value().records);
            // Cancellation interrupts the *run*, not the scenario: verdicts
            // recorded as Undetermined{cancelled} are dropped from the
            // replay (and the compacted journal below) so the resumed run
            // re-evaluates them and converges to the uninterrupted report.
            // Other Undetermined reasons replay as before — they document a
            // configured resource limit, not an outside interruption.
            replayed_records.erase(
                std::remove_if(replayed_records.begin(), replayed_records.end(),
                               [](const hierarchy::ScenarioRecord& record) {
                                   return record.verdict.undetermined() &&
                                          record.verdict.undetermined_reason ==
                                              epa::UndeterminedReason::Cancelled;
                               }),
                replayed_records.end());
            for (const hierarchy::ScenarioRecord& record : replayed_records) {
                replay[record.scenario_id] = record;
            }
        }
        // Rewriting the journal (header + intact replayed records) compacts
        // away any torn trailing line the killed run left behind; fresh
        // appends then always start on a line boundary.
        auto writer =
            JournalWriter::open(config.journal_path, header, JournalOptions{config.journal_sync});
        if (!writer.ok()) return Result<AssessmentReport>::failure(writer.error());
        journal = std::move(writer).value();
        // Journal records carry the expected-risk score under a scoring
        // policy, so an interrupted journal shows the risk mass already
        // covered. Stamping is idempotent: replayed records re-stamp to the
        // same value (the score is a pure function of model + mutations),
        // keeping compaction byte-identical.
        const auto stamped = [&](hierarchy::ScenarioRecord record) {
            if (scoring) {
                record.expected_risk_micros = priority.score_micros(record.verdict.mutations);
            }
            return record;
        };
        for (const hierarchy::ScenarioRecord& record : replayed_records) {
            auto appended = journal->append(stamped(record));
            if (!appended.ok()) return Result<AssessmentReport>::failure(appended.error());
        }
        hooks.lookup =
            [&](const std::string& scenario_id) -> std::optional<hierarchy::ScenarioRecord> {
            auto it = replay.find(scenario_id);
            if (it == replay.end()) return std::nullopt;
            ++report.resumed_scenarios;
            return it->second;
        };
        hooks.completed = [&, stamped](const hierarchy::ScenarioRecord& record) {
            return journal->append(stamped(record));
        };
    }

    // The evaluated universe and which of it was decided, for the anytime
    // coverage estimate below (exhaustive mode: pruned candidates never get
    // records — coverage is measured over the evaluated sweep).
    std::vector<security::AttackScenario> scored_universe;
    std::vector<bool> decided_flags;
    const auto collect_scored = [&](const std::vector<hierarchy::ScenarioRecord>& records) {
        for (const hierarchy::ScenarioRecord& record : records) {
            security::AttackScenario scenario;
            scenario.id = record.scenario_id;
            scenario.mutations = record.verdict.mutations;
            scored_universe.push_back(std::move(scenario));
            decided_flags.push_back(record.outcome != hierarchy::ScenarioOutcome::Undetermined);
        }
    };

    phase_start = Clock::now();
    if (config.exhaustive) {
        // Steps 3-5, exhaustive variant (docs/exhaustive-search.md): a
        // cardinality-layered sweep of the fault-subset lattice on the
        // behavioural EPA, pruning supersets of known hazards when the
        // polarity certifier proves the model monotone.
        epa::EpaOptions epa_options;
        epa_options.focus = epa::AnalysisFocus::Behavioral;
        epa_options.horizon = config.horizon;
        epa_options.max_decisions = config.max_decisions;
        epa_options.static_prefilter = config.static_prefilter;
        epa_options.solver = config.solver;
        epa_options.ctx = &ctx;
        auto frontier_epa = epa::ErrorPropagationAnalysis::create(
            *system_, behavioral_requirements_, *mitigations_, epa_options);
        if (!frontier_epa.ok()) return Result<AssessmentReport>::failure(frontier_epa.error());

        std::optional<std::set<model::ComponentId>> reachable;
        if (config.attack_reachable_only) {
            const analysis::TaintResult taint =
                analysis::analyze_attack_reachability(*system_, *matrix_);
            reachable.emplace();
            for (const auto& [component, depth] : taint.compromise_depth) {
                reachable->insert(component);
            }
        }

        epa::FrontierOptions frontier_options;
        frontier_options.max_card = config.max_card;
        frontier_options.active_mitigations = config.active_mitigations;
        if (reachable) frontier_options.component_filter = &*reachable;
        frontier_options.priority = &priority;
        frontier_options.hooks = hooks;
        frontier_options.ctx = &ctx;
        std::optional<Result<epa::FrontierResult>> frontier_result;
        {
            obs::Span span(ctx.trace, "assess.frontier", "phase");
            frontier_result.emplace(epa::run_frontier(frontier_epa.value(), frontier_options));
        }
        record_phase("frontier", phase_start);
        if (!frontier_result->ok()) {
            return Result<AssessmentReport>::failure(frontier_result->error());
        }
        epa::FrontierResult& frontier = frontier_result->value();
        report.scenario_count = frontier.candidates;
        obs::add_counter(ctx.metrics, "assess.scenarios", frontier.candidates);
        report.hazards = std::move(frontier.minimal_hazards);
        report.undetermined = std::move(frontier.undetermined);
        for (const hierarchy::ScenarioRecord& record : frontier.records) {
            report.total_decisions += record.verdict.solver_stats.decisions;
            report.total_conflicts += record.verdict.solver_stats.conflicts;
            if (record.verdict.provenance == epa::VerdictProvenance::Static) {
                ++report.statically_resolved;
            }
        }
        collect_scored(frontier.records);
        report.exhaustive.enabled = true;
        report.exhaustive.pruning = frontier.pruning;
        report.exhaustive.certificate =
            !frontier.certificate.has_value()
                ? "unavailable"
                : (frontier.certificate->monotone ? "monotone" : "mixed");
        report.exhaustive.universe_size = frontier.universe_size;
        report.exhaustive.skipped_faults = frontier.skipped_faults;
        report.exhaustive.max_card = frontier.max_card;
        report.exhaustive.candidates = frontier.candidates;
        // Journal replays count as evaluations: a resumed run must render
        // byte-identically to the uninterrupted one.
        report.exhaustive.evaluated = frontier.evaluated + frontier.replayed;
        report.exhaustive.pruned = frontier.pruned;
        report.exhaustive.minimal_hazards = report.hazards.size();
        if (frontier.certificate.has_value()) {
            constexpr std::size_t kMaxOffenders = 3;
            for (const asp::polarity::Offender& offender : frontier.certificate->offenders) {
                if (report.exhaustive.offenders.size() >= kMaxOffenders) break;
                report.exhaustive.offenders.push_back(offender.detail);
            }
        }

        // Step 7 consumes a scenario space; rebuild the minimal hazards'
        // scenarios (ids match the frontier verdicts by construction).
        std::vector<security::AttackScenario> hazard_scenarios;
        hazard_scenarios.reserve(report.hazards.size());
        for (const epa::ScenarioVerdict& hazard : report.hazards) {
            hazard_scenarios.push_back(epa::frontier_scenario(*system_, hazard.mutations));
        }
        built_space.emplace(std::move(hazard_scenarios));
    } else {
        // Steps 3-5: reasoning, hazard identification, CEGAR refinement.
        std::vector<hierarchy::CegarStage> stages;
        if (config.use_cegar) {
            stages.push_back(hierarchy::CegarStage{
                "topology", system_, epa::AnalysisFocus::Topology, topology_requirements_,
                config.horizon});
        }
        stages.push_back(hierarchy::CegarStage{"behavioral", system_,
                                               epa::AnalysisFocus::Behavioral,
                                               behavioral_requirements_, config.horizon});

        hierarchy::CegarOptions cegar_options;
        cegar_options.max_decisions = config.max_decisions;
        cegar_options.static_prefilter = config.static_prefilter;
        cegar_options.solver = config.solver;
        cegar_options.ctx = &ctx;
        cegar_options.hooks = hooks;

        std::optional<Result<hierarchy::CegarResult>> cegar_result;
        {
            obs::Span span(ctx.trace, "assess.cegar", "phase");
            cegar_result.emplace(hierarchy::run_cegar(stages, *built_space, *mitigations_,
                                                      config.active_mitigations, cegar_options));
        }
        record_phase("cegar", phase_start);
        const Result<hierarchy::CegarResult>& cegar = *cegar_result;
        if (!cegar.ok()) return Result<AssessmentReport>::failure(cegar.error());
        report.hazards = cegar.value().confirmed;
        report.undetermined = cegar.value().undetermined;
        report.cegar_iterations = cegar.value().iterations;
        report.spurious_eliminated = cegar.value().total_spurious();
        for (const hierarchy::ScenarioRecord& record : cegar.value().records) {
            report.total_decisions += record.verdict.solver_stats.decisions;
            report.total_conflicts += record.verdict.solver_stats.conflicts;
            if (record.verdict.provenance == epa::VerdictProvenance::Static) {
                ++report.statically_resolved;
            }
        }
        collect_scored(cegar.value().records);
    }

    // Anytime coverage: how much of the space's expected-risk mass the
    // decided scenarios account for, with a posterior lower bound. Pure
    // function of (model, records, seed) — byte-identical at any --jobs.
    if (scoring) {
        report.priority.enabled = true;
        report.priority.policy = std::string(risk::to_string(config.priority_policy));
        report.priority.explicit_priors = priority.priors().any_explicit();
        report.priority.prior_count = priority.priors().size();
        report.priority.prior_seed = config.prior_seed;
        const risk::CoverageEstimate estimate =
            priority.coverage(scored_universe, decided_flags, config.prior_seed);
        report.priority.total_risk_micros = estimate.total_micros;
        report.priority.covered_risk_micros = estimate.covered_micros;
        report.priority.coverage_lower_bound_micros = estimate.lower_bound_micros;
    }

    // Step 6: quantitative (rough-granular) risk analysis.
    phase_start = Clock::now();
    obs::Span risk_span(ctx.trace, "assess.risk", "phase");
    for (const epa::ScenarioVerdict& hazard : report.hazards) {
        ScenarioRisk risk;
        risk.scenario_id = hazard.scenario_id;
        risk.loss_magnitude = hazard.severity;
        risk.loss_event_frequency = hazard.likelihood;
        risk.risk = risk::ora_risk(risk.loss_magnitude, risk.loss_event_frequency);
        risk.iec_class = risk::iec61508_class(risk::likelihood_from_level(hazard.likelihood),
                                              risk::consequence_from_level(hazard.severity));
        risk.violated_requirements = hazard.violated_requirements;
        security::AttackScenario shaped;
        shaped.id = hazard.scenario_id;
        shaped.mutations = hazard.mutations;
        risk.likelihood_band_radius = priority.likelihood_band_radius(shaped);
        report.risks.push_back(std::move(risk));
    }
    std::sort(report.risks.begin(), report.risks.end(),
              [](const ScenarioRisk& a, const ScenarioRisk& b) {
                  if (a.risk != b.risk) return b.risk < a.risk;
                  return a.scenario_id < b.scenario_id;
              });
    risk_span.close();
    record_phase("risk", phase_start);

    // Step 7: mitigation strategy.
    phase_start = Clock::now();
    {
        obs::Span span(ctx.trace, "assess.mitigation", "phase");
        const mitigation::MitigationProblem problem = mitigation::MitigationProblem::build(
            *built_space, report.hazards, *matrix_, *mitigations_, config.loss_scale);
        mitigation::OptimizerOptions optimizer_options;
        optimizer_options.budget = config.budget;
        optimizer_options.ctx = &ctx;
        report.selection = mitigation::optimize_exact(problem, optimizer_options);
        if (config.phase_budget > 0) {
            report.phases = mitigation::plan_phases(problem, config.phase_budget);
        }
        if (config.pareto) {
            auto front = mitigation::pareto_front(problem, optimizer_options);
            if (!front.ok()) return Result<AssessmentReport>::failure(front.error());
            report.pareto = std::move(front).value();
        }
    }
    record_phase("mitigation", phase_start);

    obs::add_counter(ctx.metrics, "assess.hazards", report.hazards.size());
    obs::add_counter(ctx.metrics, "assess.undetermined", report.undetermined.size());
    const BudgetStats budget_stats = ctx.budget.stats();
    obs::set_gauge(ctx.metrics, "budget.steps", static_cast<long long>(budget_stats.steps));
    obs::set_gauge(ctx.metrics, "budget.decisions",
                   static_cast<long long>(budget_stats.decisions));
    obs::set_gauge(ctx.metrics, "budget.elapsed_ms",
                   static_cast<long long>(budget_stats.elapsed.count()));
    return report;
}

Result<std::vector<epa::ScenarioVerdict>> RiskAssessment::evaluate_scenarios(
    const std::vector<security::AttackScenario>& scenarios,
    const std::vector<std::string>& active_mitigations, int horizon, RunContext& ctx) const {
    epa::EpaOptions options;
    options.focus = epa::AnalysisFocus::Behavioral;
    options.horizon = horizon;
    options.ctx = &ctx;
    auto epa = epa::ErrorPropagationAnalysis::create(*system_, behavioral_requirements_,
                                                     *mitigations_, options);
    if (!epa.ok()) return Result<std::vector<epa::ScenarioVerdict>>::failure(epa.error());

    security::ScenarioSpace space(scenarios);
    return epa.value().evaluate_all(space, active_mitigations);
}

Result<std::vector<epa::ScenarioVerdict>> RiskAssessment::evaluate_scenarios(
    const std::vector<security::AttackScenario>& scenarios,
    const std::vector<std::string>& active_mitigations, int horizon, std::size_t jobs) const {
    RunContext ctx;
    ctx.jobs = jobs;
    return evaluate_scenarios(scenarios, active_mitigations, horizon, ctx);
}

}  // namespace cprisk::core
