// cprisk/core/journal.hpp
//
// Assessment checkpoint journal: one JSONL line per finished scenario, so a
// long exhaustive run that is killed (or runs out of budget) can resume and
// still produce a report byte-identical to an uninterrupted run. Layout:
//
//   {"kind":"cprisk-journal","version":1,"config":{...}}   <- header
//   {"kind":"scenario","id":"s1","outcome":"confirmed",...}
//   ...
//
// The header echoes every configuration field that influences per-scenario
// verdicts (horizon, scenario-space knobs, active mitigations, decision
// cap); resume refuses a journal written under a different configuration.
// Records are flushed per line, and the loader tolerates exactly one torn
// trailing line — the line being written when the process died. Verdict
// traces (EpaOptions::collect_trace) are not journaled; the assessment
// pipeline never collects them.
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"
#include "core/assessment.hpp"
#include "hierarchy/cegar.hpp"

namespace cprisk::core {

/// Journal header for a run under `config`: echoes every configuration
/// field that influences per-scenario verdicts, so resume can refuse a
/// journal written under a different configuration.
json::Value journal_header(const AssessmentConfig& config);

/// Lossless round trip for one scenario record (object key order is fixed,
/// so serialize(record_to_json(r)) is deterministic).
json::Value record_to_json(const hierarchy::ScenarioRecord& record);
Result<hierarchy::ScenarioRecord> record_from_json(const json::Value& value);

struct JournalContents {
    json::Value header;  ///< the full header object
    std::vector<hierarchy::ScenarioRecord> records;
    bool torn_tail = false;  ///< an unparseable final line was discarded
};

/// Loads a journal. Tolerates an unparseable (torn) final line; corruption
/// anywhere else fails.
Result<JournalContents> load_journal(const std::string& path);

struct JournalOptions {
    /// fsync after the header and every appended record (`--journal-sync`):
    /// a power loss mid-run then loses at most the record in flight, not
    /// records the OS still held in its page cache. Off by default — the
    /// bytes written are identical either way, only durability changes.
    bool sync = false;
};

/// Appends one JSONL line per record, flushing after each so a killed run
/// loses at most the line in flight. Writes through a raw file descriptor
/// so the sync option can reach fsync(2); the emitted bytes are unchanged.
class JournalWriter {
public:
    /// Truncates and writes the header line. Resume compacts: the caller
    /// re-appends the replayed records, which also drops any torn trailing
    /// line left by a killed writer (serialization is deterministic, so the
    /// rewritten lines are byte-identical to the originals).
    static Result<JournalWriter> open(const std::string& path, const json::Value& header,
                                      JournalOptions options = {});

    Result<void> append(const hierarchy::ScenarioRecord& record);

    JournalWriter(JournalWriter&& other) noexcept;
    JournalWriter& operator=(JournalWriter&& other) noexcept;
    JournalWriter(const JournalWriter&) = delete;
    JournalWriter& operator=(const JournalWriter&) = delete;
    ~JournalWriter();

private:
    explicit JournalWriter(std::string path) : path_(std::move(path)) {}

    Result<void> write_all(const char* data, std::size_t size);

    std::string path_;
    int fd_ = -1;
    bool sync_ = false;
};

}  // namespace cprisk::core
