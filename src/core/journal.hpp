// cprisk/core/journal.hpp
//
// Assessment checkpoint journal: one JSONL line per finished scenario, so a
// long exhaustive run that is killed (or runs out of budget) can resume and
// still produce a report byte-identical to an uninterrupted run. Layout:
//
//   {"kind":"cprisk-journal","version":1,"config":{...}}   <- header
//   {"kind":"scenario","id":"s1","outcome":"confirmed",...}
//   ...
//
// The header echoes every configuration field that influences per-scenario
// verdicts (horizon, scenario-space knobs, active mitigations, decision
// cap); resume refuses a journal written under a different configuration.
// Records are flushed per line, and the loader tolerates exactly one torn
// trailing line — the line being written when the process died. Verdict
// traces (EpaOptions::collect_trace) are not journaled; the assessment
// pipeline never collects them.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"
#include "core/assessment.hpp"
#include "hierarchy/cegar.hpp"

namespace cprisk::core {

/// Journal header for a run under `config`: echoes every configuration
/// field that influences per-scenario verdicts, so resume can refuse a
/// journal written under a different configuration.
json::Value journal_header(const AssessmentConfig& config);

/// Lossless round trip for one scenario record (object key order is fixed,
/// so serialize(record_to_json(r)) is deterministic).
json::Value record_to_json(const hierarchy::ScenarioRecord& record);
Result<hierarchy::ScenarioRecord> record_from_json(const json::Value& value);

struct JournalContents {
    json::Value header;  ///< the full header object
    std::vector<hierarchy::ScenarioRecord> records;
    bool torn_tail = false;  ///< an unparseable final line was discarded
};

/// Loads a journal. Tolerates an unparseable (torn) final line; corruption
/// anywhere else fails.
Result<JournalContents> load_journal(const std::string& path);

/// Appends one JSONL line per record, flushing after each so a killed run
/// loses at most the line in flight.
class JournalWriter {
public:
    /// Truncates and writes the header line. Resume compacts: the caller
    /// re-appends the replayed records, which also drops any torn trailing
    /// line left by a killed writer (serialization is deterministic, so the
    /// rewritten lines are byte-identical to the originals).
    static Result<JournalWriter> open(const std::string& path, const json::Value& header);

    Result<void> append(const hierarchy::ScenarioRecord& record);

private:
    explicit JournalWriter(std::string path) : path_(std::move(path)) {}

    std::string path_;
    std::ofstream out_;
};

}  // namespace cprisk::core
