#include "core/reactor.hpp"

#include "asp/parser.hpp"

namespace cprisk::core {

namespace ids = reactor_ids;
using model::Component;
using model::ElementType;
using model::Exposure;
using model::FaultEffect;
using model::FaultMode;
using model::Relation;
using model::RelationType;

namespace {

/// Temperature ladder + evolution under heater/cooling positions.
constexpr const char* kThermalBehavior = R"(
#program base.
t_up(cold, normal). t_up(normal, hot). t_up(hot, critical). t_up(critical, critical).
t_down(critical, hot). t_down(hot, normal). t_down(normal, cold). t_down(cold, cold).

#program initial.
temp(reactor, normal).

#program dynamic.
% Heating: heater on, cooling closed.
temp(reactor, X2) :- prev_temp(reactor, X), hpos(on), cpos(closed), t_up(X, X2).
% The cooling circuit dominates the heater when open.
temp(reactor, X2) :- prev_temp(reactor, X), cpos(open), t_down(X, X2).
% Idle: heater off, cooling closed — the batch holds its temperature.
temp(reactor, X) :- prev_temp(reactor, X), hpos(off), cpos(closed).
)";

/// Controller acting on the *sensed* temperature of the previous step.
constexpr const char* kControllerBehavior = R"(
#program dynamic.
hcmd(on) :- prev_sensed(cold).
hcmd(on) :- prev_sensed(normal).
hcmd(off) :- prev_sensed(hot).
hcmd(off) :- prev_sensed(critical).
ccmd(open) :- prev_sensed(hot).
ccmd(open) :- prev_sensed(critical).
ccmd(closed) :- prev_sensed(cold).
ccmd(closed) :- prev_sensed(normal).
)";

/// Actuators with stuck-at overrides.
constexpr const char* kActuatorBehavior = R"(
#program dynamic.
hpos(on) :- hcmd(on).
hpos(on) :- eff_fault(heater, stuck_on).
hpos(off) :- hcmd(off), not eff_fault(heater, stuck_on).
cpos(open) :- ccmd(open), not eff_fault(cooling_valve, stuck_closed).
cpos(closed) :- ccmd(closed).
cpos(closed) :- eff_fault(cooling_valve, stuck_closed).
)";

/// Temperature sensor with a freezable reading.
constexpr const char* kSensorBehavior = R"(
#program initial.
sensed(normal).
#program dynamic.
sensed(X) :- temp(reactor, X), not eff_fault(temp_sensor, frozen_reading).
sensed(X) :- prev_sensed(X), eff_fault(temp_sensor, frozen_reading).
)";

/// Pressure physics, relief valve, rupture, and alerting.
constexpr const char* kPressureBehavior = R"(
#program always.
pressure(high) :- temp(reactor, hot).
pressure(critical) :- temp(reactor, critical).
rpos(open) :- pressure(critical), not eff_fault(relief_valve, stuck_closed).
rupture :- pressure(critical), not rpos(open).
alert :- pressure(critical), not eff_fault(alarm_unit, no_signal).
#program dynamic.
alert :- prev_alert.
rupture :- prev_rupture.
)";

/// SCADA compromise: full process-sabotage pattern.
constexpr const char* kScadaBehavior = R"(
#program always.
eff_fault(C, F) :- active_fault(C, F).
eff_fault(heater, stuck_on) :- active_fault(scada, compromised).
eff_fault(cooling_valve, stuck_closed) :- active_fault(scada, compromised).
eff_fault(relief_valve, stuck_closed) :- active_fault(scada, compromised).
eff_fault(alarm_unit, no_signal) :- active_fault(scada, compromised).
)";

Component make(const char* id, const char* name, ElementType type, qual::Level asset,
               Exposure exposure = Exposure::None) {
    Component c;
    c.id = id;
    c.name = name;
    c.type = type;
    c.asset_value = asset;
    c.exposure = exposure;
    return c;
}

}  // namespace

Result<ReactorCaseStudy> ReactorCaseStudy::build() {
    ReactorCaseStudy cs;

    Component reactor = make(ids::kReactor, "Batch Reactor", ElementType::Equipment,
                             qual::Level::VeryHigh);
    Component heater = make(ids::kHeater, "Heater", ElementType::Actuator, qual::Level::High);
    heater.fault_modes = {FaultMode{"stuck_on", FaultEffect::StuckAt, "on", qual::Level::High,
                                    qual::Level::Low}};
    Component cooling = make(ids::kCoolingValve, "Cooling Valve", ElementType::Actuator,
                             qual::Level::High);
    cooling.fault_modes = {FaultMode{"stuck_closed", FaultEffect::StuckAt, "closed",
                                     qual::Level::High, qual::Level::Low}};
    Component relief = make(ids::kReliefValve, "Pressure Relief Valve", ElementType::Actuator,
                            qual::Level::VeryHigh);
    relief.fault_modes = {FaultMode{"stuck_closed", FaultEffect::StuckAt, "closed",
                                    qual::Level::VeryHigh, qual::Level::VeryLow}};
    Component temp_sensor = make(ids::kTempSensor, "Temperature Sensor", ElementType::Sensor,
                                 qual::Level::Medium);
    temp_sensor.fault_modes = {FaultMode{"frozen_reading", FaultEffect::StuckAt, "",
                                         qual::Level::High, qual::Level::Low}};
    Component pressure_sensor = make(ids::kPressureSensor, "Pressure Sensor",
                                     ElementType::Sensor, qual::Level::Medium);
    Component controller = make(ids::kController, "Reactor Controller", ElementType::Controller,
                                qual::Level::High, Exposure::Internal);
    Component alarm = make(ids::kAlarmUnit, "Alarm Unit", ElementType::HumanMachineInterface,
                           qual::Level::Medium, Exposure::Internal);
    alarm.fault_modes = {FaultMode{"no_signal", FaultEffect::Omission, "", qual::Level::High,
                                   qual::Level::Low}};
    Component scada = make(ids::kScada, "SCADA Server", ElementType::Node, qual::Level::High,
                           Exposure::Internal);
    scada.fault_modes = {FaultMode{"compromised", FaultEffect::Compromise, "",
                                   qual::Level::VeryHigh, qual::Level::Medium}};

    for (Component* component : {&reactor, &heater, &cooling, &relief, &temp_sensor,
                                 &pressure_sensor, &controller, &alarm, &scada}) {
        auto added = cs.system.add_component(*component);
        if (!added.ok()) return Result<ReactorCaseStudy>::failure(added.error());
    }

    const std::vector<Relation> relations = {
        {ids::kHeater, ids::kReactor, RelationType::QuantityFlow, "heat"},
        {ids::kReactor, ids::kCoolingValve, RelationType::QuantityFlow, "coolant"},
        {ids::kReactor, ids::kReliefValve, RelationType::QuantityFlow, "vent"},
        {ids::kReactor, ids::kTempSensor, RelationType::SignalFlow, "temperature"},
        {ids::kReactor, ids::kPressureSensor, RelationType::SignalFlow, "pressure"},
        {ids::kTempSensor, ids::kController, RelationType::SignalFlow, "measurement"},
        {ids::kPressureSensor, ids::kController, RelationType::SignalFlow, "measurement"},
        {ids::kController, ids::kHeater, RelationType::Triggering, "actuate"},
        {ids::kController, ids::kCoolingValve, RelationType::Triggering, "actuate"},
        {ids::kController, ids::kAlarmUnit, RelationType::SignalFlow, "alarm"},
        {ids::kScada, ids::kController, RelationType::SignalFlow, "supervise"},
        {ids::kScada, ids::kAlarmUnit, RelationType::SignalFlow, "admin"},
        {ids::kScada, ids::kReliefValve, RelationType::SignalFlow, "reconfigure"},
    };
    for (const Relation& relation : relations) {
        auto added = cs.system.add_relation(relation);
        if (!added.ok()) return Result<ReactorCaseStudy>::failure(added.error());
    }

    struct Behavior {
        const char* component;
        const char* fragment;
    };
    const std::vector<Behavior> behaviors = {
        {ids::kReactor, kThermalBehavior},   {ids::kController, kControllerBehavior},
        {ids::kHeater, kActuatorBehavior},   {ids::kTempSensor, kSensorBehavior},
        {ids::kReliefValve, kPressureBehavior}, {ids::kScada, kScadaBehavior},
    };
    for (const Behavior& behavior : behaviors) {
        auto added = cs.system.add_behavior(behavior.component, behavior.fragment);
        if (!added.ok()) return Result<ReactorCaseStudy>::failure(added.error());
    }

    cs.requirements = {
        epa::Requirement::never("r1", "the reactor must not rupture",
                                asp::parse_atom("rupture").value()),
        epa::Requirement::responds("r2", "critical pressure must raise an alert",
                                   asp::parse_atom("pressure(critical)").value(),
                                   asp::parse_atom("alert").value()),
    };
    cs.topology_requirements = {
        epa::Requirement::never("r1", "no error may reach the reactor",
                                asp::parse_atom("error(reactor)").value()),
        epa::Requirement::never("r2", "no error may reach the alarm unit",
                                asp::parse_atom("error(alarm_unit)").value()),
    };

    cs.matrix = security::AttackMatrix::standard_ics();
    cs.mitigations = epa::MitigationMap::from_attack_matrix(cs.system, cs.matrix);
    // Hardening the SCADA breaks the sabotage pattern.
    cs.mitigations.add("M-ENDPOINT", ids::kScada, "compromised");
    cs.mitigations.add("M-SEGMENT", ids::kScada, "compromised");

    cs.horizon = 7;
    return cs;
}

}  // namespace cprisk::core
