#include "mitigation/optimizer.hpp"

#include <algorithm>
#include <functional>
#include <limits>

#include "asp/asp.hpp"
#include "common/strings.hpp"

namespace cprisk::mitigation {

namespace {

Selection finalize(const MitigationProblem& problem, std::vector<std::string> chosen) {
    std::sort(chosen.begin(), chosen.end());
    Selection selection;
    selection.chosen = std::move(chosen);
    for (const Candidate& candidate : problem.candidates) {
        if (std::find(selection.chosen.begin(), selection.chosen.end(), candidate.id) !=
            selection.chosen.end()) {
            selection.mitigation_cost += candidate.cost;
        }
    }
    for (const Threat& threat : problem.threats) {
        if (!MitigationProblem::blocks(threat, selection.chosen)) {
            selection.residual_loss += threat.loss;
            selection.unblocked.push_back(threat.scenario_id);
        }
    }
    return selection;
}

}  // namespace

Selection optimize_exact(const MitigationProblem& problem, const OptimizerOptions& options) {
    obs::Span span(options.trace_sink(), "mitigation.optimize", "mitigation");
    const std::size_t n = problem.candidates.size();
    std::vector<std::string> chosen;
    std::vector<std::string> best_chosen;
    long long best_total = std::numeric_limits<long long>::max();
    long long chosen_cost = 0;
    // Nodes are tallied locally and flushed once — the registry lookup is
    // far too expensive for the search's inner recursion.
    long long nodes = 0;

    // Unavoidable loss lower bound: threats no selection of the remaining
    // candidates (plus current choices) could block.
    std::function<long long(std::size_t)> unavoidable = [&](std::size_t next) {
        long long loss = 0;
        for (const Threat& threat : problem.threats) {
            bool might_block = true;
            for (const auto& covers : threat.mutation_covers) {
                bool coverable = false;
                for (const std::string& m : covers) {
                    // Already chosen, or still selectable?
                    if (std::find(chosen.begin(), chosen.end(), m) != chosen.end()) {
                        coverable = true;
                        break;
                    }
                    for (std::size_t j = next; j < n; ++j) {
                        if (problem.candidates[j].id == m) {
                            coverable = true;
                            break;
                        }
                    }
                    if (coverable) break;
                }
                if (!coverable) {
                    might_block = false;
                    break;
                }
            }
            if (!might_block) loss += threat.loss;
        }
        return loss;
    };

    std::function<void(std::size_t)> dfs = [&](std::size_t index) {
        ++nodes;
        if (chosen_cost + unavoidable(index) >= best_total) return;  // bound
        if (index == n) {
            const long long total = problem.total_cost(chosen);
            if (total < best_total) {
                best_total = total;
                best_chosen = chosen;
            }
            return;
        }
        const Candidate& candidate = problem.candidates[index];
        // Include (if within budget).
        if (!options.budget || chosen_cost + candidate.cost <= *options.budget) {
            chosen.push_back(candidate.id);
            chosen_cost += candidate.cost;
            dfs(index + 1);
            chosen_cost -= candidate.cost;
            chosen.pop_back();
        }
        // Exclude.
        dfs(index + 1);
    };
    dfs(0);
    Selection selection = finalize(problem, best_chosen);
    span.arg("nodes", nodes);
    obs::add_counter(options.metrics_sink(), "mitigation.optimize.calls");
    obs::add_counter(options.metrics_sink(), "mitigation.optimize.nodes",
                     static_cast<std::uint64_t>(nodes));
    obs::set_gauge(options.metrics_sink(), "mitigation.chosen",
                   static_cast<long long>(selection.chosen.size()));
    obs::set_gauge(options.metrics_sink(), "mitigation.cost", selection.mitigation_cost);
    obs::set_gauge(options.metrics_sink(), "mitigation.residual", selection.residual_loss);
    return selection;
}

std::string encode_asp(const MitigationProblem& problem) {
    std::string program;
    for (const Candidate& candidate : problem.candidates) {
        const std::string id = to_identifier(candidate.id);
        program += "cand(" + id + "). cost(" + id + ", " + std::to_string(candidate.cost) +
                   ").\n";
    }
    program += "{ active(M) : cand(M) }.\n";
    for (const Threat& threat : problem.threats) {
        const std::string sid = to_identifier(threat.scenario_id);
        program += "scen(" + sid + "). loss(" + sid + ", " + std::to_string(threat.loss) +
                   ").\n";
        for (std::size_t i = 0; i < threat.mutation_covers.size(); ++i) {
            program += "mut(" + sid + ", " + std::to_string(i) + ").\n";
            for (const std::string& mitigation : threat.mutation_covers[i]) {
                program += "covers(" + to_identifier(mitigation) + ", " + sid + ", " +
                           std::to_string(i) + ").\n";
            }
        }
    }
    program +=
        "blocked_mut(S, I) :- covers(M, S, I), active(M).\n"
        "unblocked(S) :- mut(S, I), not blocked_mut(S, I).\n"
        ":~ active(M), cost(M, C). [C@1, M]\n"
        ":~ unblocked(S), loss(S, L). [L@1, S]\n"
        "#show active/1.\n";
    return program;
}

Result<Selection> optimize_asp(const MitigationProblem& problem,
                               const OptimizerOptions& options) {
    // Map normalized ids back to original ids.
    std::map<std::string, std::string> id_map;
    for (const Candidate& candidate : problem.candidates) {
        id_map.emplace(to_identifier(candidate.id), candidate.id);
    }

    std::string program = encode_asp(problem);
    if (options.budget) {
        // Native budget constraint via a #sum body aggregate.
        program += ":- #sum { C, M : active(M), cost(M, C) } > " +
                   std::to_string(*options.budget) + ".\n";
    }
    auto solved = asp::solve_text(program);
    if (!solved.ok()) return Result<Selection>::failure(solved.error());
    if (!solved.value().satisfiable || solved.value().models.empty()) {
        return Result<Selection>::failure("mitigation optimization: no answer set");
    }
    const asp::AnswerSet& model = solved.value().models.front();
    std::vector<std::string> chosen;
    for (const asp::Atom& atom : model.with_predicate("active")) {
        if (atom.args.size() == 1 && atom.args[0].is_symbol()) {
            auto it = id_map.find(atom.args[0].name());
            if (it != id_map.end()) chosen.push_back(it->second);
        }
    }
    return finalize(problem, std::move(chosen));
}

ParetoFront::ParetoFront(std::vector<ParetoPoint> points) {
    // Canonical order first: (cost asc, residual asc, coverage desc, chosen
    // lex) — ties on the objective tuple then dedup toward the first, i.e.
    // lexicographically smallest, chosen set.
    std::sort(points.begin(), points.end(), [](const ParetoPoint& a, const ParetoPoint& b) {
        if (a.cost() != b.cost()) return a.cost() < b.cost();
        if (a.residual() != b.residual()) return a.residual() < b.residual();
        if (a.coverage != b.coverage) return a.coverage > b.coverage;
        return a.selection.chosen < b.selection.chosen;
    });
    points.erase(std::unique(points.begin(), points.end(),
                             [](const ParetoPoint& a, const ParetoPoint& b) {
                                 return a.cost() == b.cost() && a.residual() == b.residual() &&
                                        a.coverage == b.coverage;
                             }),
                 points.end());
    const auto dominates = [](const ParetoPoint& a, const ParetoPoint& b) {
        return a.cost() <= b.cost() && a.residual() <= b.residual() &&
               a.coverage >= b.coverage &&
               (a.cost() < b.cost() || a.residual() < b.residual() || a.coverage > b.coverage);
    };
    for (const ParetoPoint& point : points) {
        const bool dominated = std::any_of(
            points.begin(), points.end(),
            [&](const ParetoPoint& other) { return dominates(other, point); });
        if (!dominated) points_.push_back(point);
    }
}

const ParetoPoint& ParetoFront::knee() const {
    const ParetoPoint* best = &points_.front();
    for (const ParetoPoint& point : points_) {
        const long long point_total = point.selection.total_cost();
        const long long best_total = best->selection.total_cost();
        if (point_total != best_total) {
            if (point_total < best_total) best = &point;
        } else if (point.coverage != best->coverage) {
            if (point.coverage > best->coverage) best = &point;
        } else if (point.selection.chosen < best->selection.chosen) {
            best = &point;
        }
    }
    return *best;
}

std::string encode_pareto_asp(const MitigationProblem& problem) {
    // The shared base encoding with the objectives split across priority
    // levels (lexicographic, higher level first): minimize residual loss,
    // then mitigation cost, then the number of unblocked threats (i.e.
    // maximize coverage among cost/residual ties).
    std::string program = encode_asp(problem);
    const std::string base_objectives =
        ":~ active(M), cost(M, C). [C@1, M]\n"
        ":~ unblocked(S), loss(S, L). [L@1, S]\n";
    const auto at = program.find(base_objectives);
    program.replace(at, base_objectives.size(),
                    ":~ unblocked(S), loss(S, L). [L@3, S]\n"
                    ":~ active(M), cost(M, C). [C@2, M]\n"
                    ":~ unblocked(S). [1@1, S]\n");
    return program;
}

Result<ParetoFront> pareto_front(const MitigationProblem& problem,
                                 const OptimizerOptions& options) {
    obs::Span span(options.trace_sink(), "mitigation.pareto", "mitigation");
    std::map<std::string, std::string> id_map;
    for (const Candidate& candidate : problem.candidates) {
        id_map.emplace(to_identifier(candidate.id), candidate.id);
    }

    std::vector<ParetoPoint> points;
    const std::size_t threat_count = problem.threats.size();
    long long solves = 0;
    // Outer sweep over coverage floors recovers front points that trade
    // *more* cost for *more* coverage at equal residual — the staircase
    // alone (min residual, then cost) cannot see those.
    for (std::size_t floor = 0; floor <= threat_count; ++floor) {
        std::optional<long long> bound = options.budget;
        while (true) {
            std::string program = encode_pareto_asp(problem);
            if (floor > 0) {
                program += ":- #sum { 1, S : unblocked(S) } > " +
                           std::to_string(threat_count - floor) + ".\n";
            }
            if (bound) {
                program += ":- #sum { C, M : active(M), cost(M, C) } > " +
                           std::to_string(*bound) + ".\n";
            }
            auto solved = asp::solve_text(program);
            if (!solved.ok()) return Result<ParetoFront>::failure(solved.error());
            ++solves;
            if (!solved.value().satisfiable || solved.value().models.empty()) break;
            const asp::AnswerSet& model = solved.value().models.front();
            std::vector<std::string> chosen;
            for (const asp::Atom& atom : model.with_predicate("active")) {
                if (atom.args.size() == 1 && atom.args[0].is_symbol()) {
                    auto it = id_map.find(atom.args[0].name());
                    if (it != id_map.end()) chosen.push_back(it->second);
                }
            }
            ParetoPoint point;
            point.selection = finalize(problem, std::move(chosen));
            point.coverage = threat_count - point.selection.unblocked.size();
            const long long cost = point.selection.mitigation_cost;
            points.push_back(std::move(point));
            if (cost == 0) break;  // cheapest end of this floor's staircase
            bound = cost - 1;      // iterated bound cut
        }
    }
    ParetoFront front(std::move(points));
    span.arg("solves", solves);
    span.arg("points", static_cast<long long>(front.size()));
    obs::add_counter(options.metrics_sink(), "mitigation.pareto.calls");
    obs::add_counter(options.metrics_sink(), "mitigation.pareto.solves",
                     static_cast<std::uint64_t>(solves));
    obs::set_gauge(options.metrics_sink(), "mitigation.pareto.points",
                   static_cast<long long>(front.size()));
    return front;
}

ParetoFront pareto_front_exact(const MitigationProblem& problem,
                               const OptimizerOptions& options) {
    const std::size_t n = problem.candidates.size();
    std::vector<ParetoPoint> points;
    std::vector<std::string> chosen;
    long long chosen_cost = 0;
    std::function<void(std::size_t)> dfs = [&](std::size_t index) {
        if (index == n) {
            ParetoPoint point;
            point.selection = finalize(problem, chosen);
            point.coverage = problem.threats.size() - point.selection.unblocked.size();
            points.push_back(std::move(point));
            return;
        }
        const Candidate& candidate = problem.candidates[index];
        if (!options.budget || chosen_cost + candidate.cost <= *options.budget) {
            chosen.push_back(candidate.id);
            chosen_cost += candidate.cost;
            dfs(index + 1);
            chosen_cost -= candidate.cost;
            chosen.pop_back();
        }
        dfs(index + 1);
    };
    dfs(0);
    return ParetoFront(std::move(points));
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
HardeningResult harden(const MitigationProblem& problem, const OptimizerOptions& options) {
    const ParetoFront front = pareto_front_exact(problem, options);
    HardeningResult result;
    if (front.empty()) return result;
    result.selection = front.knee().selection;
    long long floor = std::numeric_limits<long long>::max();
    for (const Threat& threat : problem.threats) {
        if (MitigationProblem::blocks(threat, result.selection.chosen)) continue;
        if (threat.attack_cost > 0) floor = std::min(floor, threat.attack_cost);
    }
    if (floor != std::numeric_limits<long long>::max()) {
        result.cheapest_remaining_attack = floor;
    }
    return result;
}
#pragma GCC diagnostic pop

AttackFloorResult harden_attack_cost(const MitigationProblem& problem, long long budget) {
    const std::size_t n = problem.candidates.size();
    std::vector<std::string> chosen;
    long long chosen_cost = 0;

    // Objective of a full selection: (floor, residual, cost) with floor
    // maximized first (LLONG_MAX when no attacker threat survives).
    struct Score {
        long long floor = std::numeric_limits<long long>::min();
        long long residual = std::numeric_limits<long long>::max();
        long long cost = std::numeric_limits<long long>::max();

        bool better_than(const Score& other) const {
            if (floor != other.floor) return floor > other.floor;
            if (residual != other.residual) return residual < other.residual;
            return cost < other.cost;
        }
    };

    auto evaluate = [&](const std::vector<std::string>& selection,
                        long long selection_cost) {
        Score score;
        score.floor = std::numeric_limits<long long>::max();
        score.residual = 0;
        score.cost = selection_cost;
        for (const Threat& threat : problem.threats) {
            if (MitigationProblem::blocks(threat, selection)) continue;
            score.residual += threat.loss;
            if (threat.attack_cost > 0) {
                score.floor = std::min(score.floor, threat.attack_cost);
            }
        }
        return score;
    };

    Score best;
    std::vector<std::string> best_chosen;
    bool have_best = false;

    std::function<void(std::size_t)> dfs = [&](std::size_t index) {
        if (index == n) {
            const Score score = evaluate(chosen, chosen_cost);
            if (!have_best || score.better_than(best)) {
                best = score;
                best_chosen = chosen;
                have_best = true;
            }
            return;
        }
        const Candidate& candidate = problem.candidates[index];
        if (chosen_cost + candidate.cost <= budget) {
            chosen.push_back(candidate.id);
            chosen_cost += candidate.cost;
            dfs(index + 1);
            chosen_cost -= candidate.cost;
            chosen.pop_back();
        }
        dfs(index + 1);
    };
    dfs(0);

    AttackFloorResult result;
    result.selection = finalize(problem, best_chosen);
    if (best.floor != std::numeric_limits<long long>::max()) {
        result.cheapest_remaining_attack = best.floor;
    }
    return result;
}

std::vector<Phase> plan_phases(const MitigationProblem& problem, long long budget_per_phase,
                               std::size_t max_phases) {
    std::vector<Phase> phases;
    MitigationProblem residual = problem;

    for (std::size_t phase_number = 1; phase_number <= max_phases; ++phase_number) {
        OptimizerOptions options;
        options.budget = budget_per_phase;
        Selection selection = optimize_exact(residual, options);
        if (selection.chosen.empty()) break;

        Phase phase;
        phase.number = static_cast<int>(phase_number);
        phase.selection = selection;
        phases.push_back(phase);

        // Commit: drop blocked threats and consumed candidates.
        std::vector<Threat> remaining;
        for (const Threat& threat : residual.threats) {
            if (!MitigationProblem::blocks(threat, selection.chosen)) {
                remaining.push_back(threat);
            }
        }
        // Mitigations committed in this phase stay active for free later:
        // drop mutations they already suppress from the residual threats.
        for (Threat& threat : remaining) {
            std::vector<std::vector<std::string>> open_covers;
            for (const auto& covers : threat.mutation_covers) {
                const bool already_covered = std::any_of(
                    covers.begin(), covers.end(), [&](const std::string& m) {
                        return std::find(selection.chosen.begin(), selection.chosen.end(), m) !=
                               selection.chosen.end();
                    });
                if (!already_covered) open_covers.push_back(covers);
            }
            threat.mutation_covers = std::move(open_covers);
        }
        residual.threats = std::move(remaining);
        std::vector<Candidate> leftover;
        for (const Candidate& candidate : residual.candidates) {
            if (std::find(selection.chosen.begin(), selection.chosen.end(), candidate.id) ==
                selection.chosen.end()) {
                leftover.push_back(candidate);
            }
        }
        residual.candidates = std::move(leftover);
        if (residual.threats.empty()) break;
    }
    return phases;
}

}  // namespace cprisk::mitigation
