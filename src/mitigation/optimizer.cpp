#include "mitigation/optimizer.hpp"

#include <algorithm>
#include <functional>
#include <limits>

#include "asp/asp.hpp"
#include "common/strings.hpp"

namespace cprisk::mitigation {

namespace {

Selection finalize(const MitigationProblem& problem, std::vector<std::string> chosen) {
    std::sort(chosen.begin(), chosen.end());
    Selection selection;
    selection.chosen = std::move(chosen);
    for (const Candidate& candidate : problem.candidates) {
        if (std::find(selection.chosen.begin(), selection.chosen.end(), candidate.id) !=
            selection.chosen.end()) {
            selection.mitigation_cost += candidate.cost;
        }
    }
    for (const Threat& threat : problem.threats) {
        if (!MitigationProblem::blocks(threat, selection.chosen)) {
            selection.residual_loss += threat.loss;
            selection.unblocked.push_back(threat.scenario_id);
        }
    }
    return selection;
}

}  // namespace

Selection optimize_exact(const MitigationProblem& problem, const OptimizerOptions& options) {
    obs::Span span(options.trace_sink(), "mitigation.optimize", "mitigation");
    const std::size_t n = problem.candidates.size();
    std::vector<std::string> chosen;
    std::vector<std::string> best_chosen;
    long long best_total = std::numeric_limits<long long>::max();
    long long chosen_cost = 0;
    // Nodes are tallied locally and flushed once — the registry lookup is
    // far too expensive for the search's inner recursion.
    long long nodes = 0;

    // Unavoidable loss lower bound: threats no selection of the remaining
    // candidates (plus current choices) could block.
    std::function<long long(std::size_t)> unavoidable = [&](std::size_t next) {
        long long loss = 0;
        for (const Threat& threat : problem.threats) {
            bool might_block = true;
            for (const auto& covers : threat.mutation_covers) {
                bool coverable = false;
                for (const std::string& m : covers) {
                    // Already chosen, or still selectable?
                    if (std::find(chosen.begin(), chosen.end(), m) != chosen.end()) {
                        coverable = true;
                        break;
                    }
                    for (std::size_t j = next; j < n; ++j) {
                        if (problem.candidates[j].id == m) {
                            coverable = true;
                            break;
                        }
                    }
                    if (coverable) break;
                }
                if (!coverable) {
                    might_block = false;
                    break;
                }
            }
            if (!might_block) loss += threat.loss;
        }
        return loss;
    };

    std::function<void(std::size_t)> dfs = [&](std::size_t index) {
        ++nodes;
        if (chosen_cost + unavoidable(index) >= best_total) return;  // bound
        if (index == n) {
            const long long total = problem.total_cost(chosen);
            if (total < best_total) {
                best_total = total;
                best_chosen = chosen;
            }
            return;
        }
        const Candidate& candidate = problem.candidates[index];
        // Include (if within budget).
        if (!options.budget || chosen_cost + candidate.cost <= *options.budget) {
            chosen.push_back(candidate.id);
            chosen_cost += candidate.cost;
            dfs(index + 1);
            chosen_cost -= candidate.cost;
            chosen.pop_back();
        }
        // Exclude.
        dfs(index + 1);
    };
    dfs(0);
    Selection selection = finalize(problem, best_chosen);
    span.arg("nodes", nodes);
    obs::add_counter(options.metrics_sink(), "mitigation.optimize.calls");
    obs::add_counter(options.metrics_sink(), "mitigation.optimize.nodes",
                     static_cast<std::uint64_t>(nodes));
    obs::set_gauge(options.metrics_sink(), "mitigation.chosen",
                   static_cast<long long>(selection.chosen.size()));
    obs::set_gauge(options.metrics_sink(), "mitigation.cost", selection.mitigation_cost);
    obs::set_gauge(options.metrics_sink(), "mitigation.residual", selection.residual_loss);
    return selection;
}

std::string encode_asp(const MitigationProblem& problem) {
    std::string program;
    for (const Candidate& candidate : problem.candidates) {
        const std::string id = to_identifier(candidate.id);
        program += "cand(" + id + "). cost(" + id + ", " + std::to_string(candidate.cost) +
                   ").\n";
    }
    program += "{ active(M) : cand(M) }.\n";
    for (const Threat& threat : problem.threats) {
        const std::string sid = to_identifier(threat.scenario_id);
        program += "scen(" + sid + "). loss(" + sid + ", " + std::to_string(threat.loss) +
                   ").\n";
        for (std::size_t i = 0; i < threat.mutation_covers.size(); ++i) {
            program += "mut(" + sid + ", " + std::to_string(i) + ").\n";
            for (const std::string& mitigation : threat.mutation_covers[i]) {
                program += "covers(" + to_identifier(mitigation) + ", " + sid + ", " +
                           std::to_string(i) + ").\n";
            }
        }
    }
    program +=
        "blocked_mut(S, I) :- covers(M, S, I), active(M).\n"
        "unblocked(S) :- mut(S, I), not blocked_mut(S, I).\n"
        ":~ active(M), cost(M, C). [C@1, M]\n"
        ":~ unblocked(S), loss(S, L). [L@1, S]\n"
        "#show active/1.\n";
    return program;
}

Result<Selection> optimize_asp(const MitigationProblem& problem,
                               const OptimizerOptions& options) {
    // Map normalized ids back to original ids.
    std::map<std::string, std::string> id_map;
    for (const Candidate& candidate : problem.candidates) {
        id_map.emplace(to_identifier(candidate.id), candidate.id);
    }

    std::string program = encode_asp(problem);
    if (options.budget) {
        // Native budget constraint via a #sum body aggregate.
        program += ":- #sum { C, M : active(M), cost(M, C) } > " +
                   std::to_string(*options.budget) + ".\n";
    }
    auto solved = asp::solve_text(program);
    if (!solved.ok()) return Result<Selection>::failure(solved.error());
    if (!solved.value().satisfiable || solved.value().models.empty()) {
        return Result<Selection>::failure("mitigation optimization: no answer set");
    }
    const asp::AnswerSet& model = solved.value().models.front();
    std::vector<std::string> chosen;
    for (const asp::Atom& atom : model.with_predicate("active")) {
        if (atom.args.size() == 1 && atom.args[0].is_symbol()) {
            auto it = id_map.find(atom.args[0].name());
            if (it != id_map.end()) chosen.push_back(it->second);
        }
    }
    return finalize(problem, std::move(chosen));
}

HardeningResult harden_attack_cost(const MitigationProblem& problem, long long budget) {
    const std::size_t n = problem.candidates.size();
    std::vector<std::string> chosen;
    long long chosen_cost = 0;

    // Objective of a full selection: (floor, residual, cost) with floor
    // maximized first (LLONG_MAX when no attacker threat survives).
    struct Score {
        long long floor = std::numeric_limits<long long>::min();
        long long residual = std::numeric_limits<long long>::max();
        long long cost = std::numeric_limits<long long>::max();

        bool better_than(const Score& other) const {
            if (floor != other.floor) return floor > other.floor;
            if (residual != other.residual) return residual < other.residual;
            return cost < other.cost;
        }
    };

    auto evaluate = [&](const std::vector<std::string>& selection,
                        long long selection_cost) {
        Score score;
        score.floor = std::numeric_limits<long long>::max();
        score.residual = 0;
        score.cost = selection_cost;
        for (const Threat& threat : problem.threats) {
            if (MitigationProblem::blocks(threat, selection)) continue;
            score.residual += threat.loss;
            if (threat.attack_cost > 0) {
                score.floor = std::min(score.floor, threat.attack_cost);
            }
        }
        return score;
    };

    Score best;
    std::vector<std::string> best_chosen;
    bool have_best = false;

    std::function<void(std::size_t)> dfs = [&](std::size_t index) {
        if (index == n) {
            const Score score = evaluate(chosen, chosen_cost);
            if (!have_best || score.better_than(best)) {
                best = score;
                best_chosen = chosen;
                have_best = true;
            }
            return;
        }
        const Candidate& candidate = problem.candidates[index];
        if (chosen_cost + candidate.cost <= budget) {
            chosen.push_back(candidate.id);
            chosen_cost += candidate.cost;
            dfs(index + 1);
            chosen_cost -= candidate.cost;
            chosen.pop_back();
        }
        dfs(index + 1);
    };
    dfs(0);

    HardeningResult result;
    result.selection = finalize(problem, best_chosen);
    if (best.floor != std::numeric_limits<long long>::max()) {
        result.cheapest_remaining_attack = best.floor;
    }
    return result;
}

std::vector<Phase> plan_phases(const MitigationProblem& problem, long long budget_per_phase,
                               std::size_t max_phases) {
    std::vector<Phase> phases;
    MitigationProblem residual = problem;

    for (std::size_t phase_number = 1; phase_number <= max_phases; ++phase_number) {
        OptimizerOptions options;
        options.budget = budget_per_phase;
        Selection selection = optimize_exact(residual, options);
        if (selection.chosen.empty()) break;

        Phase phase;
        phase.number = static_cast<int>(phase_number);
        phase.selection = selection;
        phases.push_back(phase);

        // Commit: drop blocked threats and consumed candidates.
        std::vector<Threat> remaining;
        for (const Threat& threat : residual.threats) {
            if (!MitigationProblem::blocks(threat, selection.chosen)) {
                remaining.push_back(threat);
            }
        }
        // Mitigations committed in this phase stay active for free later:
        // drop mutations they already suppress from the residual threats.
        for (Threat& threat : remaining) {
            std::vector<std::vector<std::string>> open_covers;
            for (const auto& covers : threat.mutation_covers) {
                const bool already_covered = std::any_of(
                    covers.begin(), covers.end(), [&](const std::string& m) {
                        return std::find(selection.chosen.begin(), selection.chosen.end(), m) !=
                               selection.chosen.end();
                    });
                if (!already_covered) open_covers.push_back(covers);
            }
            threat.mutation_covers = std::move(open_covers);
        }
        residual.threats = std::move(remaining);
        std::vector<Candidate> leftover;
        for (const Candidate& candidate : residual.candidates) {
            if (std::find(selection.chosen.begin(), selection.chosen.end(), candidate.id) ==
                selection.chosen.end()) {
                leftover.push_back(candidate);
            }
        }
        residual.candidates = std::move(leftover);
        if (residual.threats.empty()) break;
    }
    return phases;
}

}  // namespace cprisk::mitigation
