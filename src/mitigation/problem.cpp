#include "mitigation/problem.hpp"

#include <algorithm>
#include <set>

namespace cprisk::mitigation {

bool Threat::blockable() const {
    return std::all_of(mutation_covers.begin(), mutation_covers.end(),
                       [](const std::vector<std::string>& covers) { return !covers.empty(); });
}

MitigationProblem MitigationProblem::build(const security::ScenarioSpace& space,
                                           const std::vector<epa::ScenarioVerdict>& verdicts,
                                           const security::AttackMatrix& matrix,
                                           const epa::MitigationMap& map, long long loss_scale) {
    MitigationProblem problem;
    for (const security::Mitigation& m : matrix.mitigations()) {
        problem.candidates.push_back(Candidate{m.id, m.name, m.cost});
    }

    // Index verdicts by scenario id.
    std::map<std::string, const epa::ScenarioVerdict*> by_id;
    for (const epa::ScenarioVerdict& verdict : verdicts) {
        by_id.emplace(verdict.scenario_id, &verdict);
    }

    for (const security::AttackScenario& scenario : space.scenarios()) {
        auto it = by_id.find(scenario.id);
        if (it == by_id.end() || !it->second->any_violation()) continue;

        Threat threat;
        threat.scenario_id = scenario.id;
        // Exponential loss ladder: each severity level doubles the loss.
        threat.loss = loss_scale * (1LL << qual::index_of(it->second->severity));
        // Attacker expenditure for attack-path scenarios (sum of technique
        // costs), feeding the raise-the-bar objective.
        if (scenario.origin == security::ScenarioOrigin::AttackPath) {
            for (const std::string& technique_id : scenario.technique_ids) {
                const security::Technique* technique = matrix.find_technique(technique_id);
                threat.attack_cost += technique != nullptr ? technique->attack_cost : 1;
            }
        }
        for (const security::Mutation& mutation : scenario.mutations) {
            std::vector<std::string> covers;
            for (const epa::MitigationMap::Entry& entry : map.entries()) {
                if (entry.component == mutation.component && entry.fault_id == mutation.fault_id) {
                    if (std::find(covers.begin(), covers.end(), entry.mitigation_id) ==
                        covers.end()) {
                        covers.push_back(entry.mitigation_id);
                    }
                }
            }
            threat.mutation_covers.push_back(std::move(covers));
        }
        problem.threats.push_back(std::move(threat));
    }
    return problem;
}

bool MitigationProblem::blocks(const Threat& threat, const std::vector<std::string>& chosen) {
    for (const std::vector<std::string>& covers : threat.mutation_covers) {
        const bool suppressed = std::any_of(
            covers.begin(), covers.end(), [&](const std::string& mitigation) {
                return std::find(chosen.begin(), chosen.end(), mitigation) != chosen.end();
            });
        if (!suppressed) return false;
    }
    return true;
}

long long MitigationProblem::total_cost(const std::vector<std::string>& chosen) const {
    long long cost = 0;
    for (const Candidate& candidate : candidates) {
        if (std::find(chosen.begin(), chosen.end(), candidate.id) != chosen.end()) {
            cost += candidate.cost;
        }
    }
    for (const Threat& threat : threats) {
        if (!blocks(threat, chosen)) cost += threat.loss;
    }
    return cost;
}

}  // namespace cprisk::mitigation
