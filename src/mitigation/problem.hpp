// cprisk/mitigation/problem.hpp
//
// The mitigation selection problem (paper §IV-C/§IV-D): choose a set of
// mitigations that blocks attack scenarios at minimal total cost, under
// optional budget constraints.
//
// Blocking semantics (matching the EPA's Listing-1 fault activation): a
// scenario is blocked when *every* one of its mutations is suppressed by at
// least one chosen mitigation. Each mutation therefore contributes a
// "cover option" set; scenarios whose mutations have no cover options are
// unblockable and always contribute their residual loss.
#pragma once

#include <string>
#include <vector>

#include "epa/epa.hpp"
#include "security/attack_matrix.hpp"
#include "security/scenario.hpp"

namespace cprisk::mitigation {

/// A candidate mitigation with its implementation cost.
struct Candidate {
    std::string id;
    std::string name;
    long long cost = 1;
};

/// One scenario to defend against.
struct Threat {
    std::string scenario_id;
    long long loss = 0;  ///< expected loss if the scenario goes unblocked
    /// Resources the attacker must expend to realize the scenario (paper
    /// §IV-D "Attack Cost"); used by the raise-the-bar objective. 0 for
    /// spontaneous faults (no attacker).
    long long attack_cost = 0;
    /// Per mutation: ids of mitigations any one of which suppresses it.
    std::vector<std::vector<std::string>> mutation_covers;

    /// True if every mutation has at least one cover option.
    bool blockable() const;
};

struct MitigationProblem {
    std::vector<Candidate> candidates;
    std::vector<Threat> threats;

    /// Builds the problem from a scenario space: candidate set = the
    /// matrix's mitigations; covers derived from `map`; per-scenario loss =
    /// severity-weighted cost from `verdicts` (only violating scenarios
    /// become threats). `loss_scale` converts the ordinal severity level
    /// (0..4) into cost units via loss = loss_scale * 2^severity.
    static MitigationProblem build(const security::ScenarioSpace& space,
                                   const std::vector<epa::ScenarioVerdict>& verdicts,
                                   const security::AttackMatrix& matrix,
                                   const epa::MitigationMap& map, long long loss_scale = 10);

    /// True when the chosen set blocks the threat.
    static bool blocks(const Threat& threat, const std::vector<std::string>& chosen);

    /// Total cost of a selection: chosen mitigation costs + residual losses.
    long long total_cost(const std::vector<std::string>& chosen) const;
};

}  // namespace cprisk::mitigation
