// cprisk/mitigation/optimizer.hpp
//
// Cost-benefit optimization engines (paper §IV-D): select the mitigation
// set minimizing mitigation cost + residual loss, optionally under a
// mitigation budget. Two interchangeable engines are provided — an exact
// branch-and-bound and an ASP encoding solved by the embedded reasoner —
// and benchmarked against each other (DESIGN.md ablation 1).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "mitigation/problem.hpp"
#include "obs/run_context.hpp"

namespace cprisk::mitigation {

struct Selection {
    std::vector<std::string> chosen;      ///< mitigation ids, sorted
    long long mitigation_cost = 0;
    long long residual_loss = 0;          ///< losses of unblocked threats
    std::vector<std::string> unblocked;   ///< scenario ids left unblocked

    long long total_cost() const { return mitigation_cost + residual_loss; }
};

struct OptimizerOptions {
    /// Cap on the sum of chosen mitigation costs; nullopt = unconstrained
    /// ("constraint on the mitigation budgets", §IV-D). Distinct from the
    /// run's resource Budget, which lives on `ctx`.
    std::optional<long long> budget;
    /// Unified run state for observability (obs/run_context.hpp): one
    /// "mitigation.optimize" span plus mitigation.* instruments per call.
    /// Borrowed; nullptr disables.
    RunContext* ctx = nullptr;

    obs::TraceSink* trace_sink() const { return ctx != nullptr ? ctx->trace : nullptr; }
    obs::MetricsRegistry* metrics_sink() const { return ctx != nullptr ? ctx->metrics : nullptr; }
};

/// Exact branch & bound over mitigation subsets.
Selection optimize_exact(const MitigationProblem& problem, const OptimizerOptions& options = {});

/// The same problem encoded as an ASP program with choice rules and weak
/// constraints, solved by the embedded engine. Budget is handled by
/// iterative tightening (the core language has no sum aggregates).
Result<Selection> optimize_asp(const MitigationProblem& problem,
                               const OptimizerOptions& options = {});

/// Renders the ASP encoding of `problem` (for inspection and tests).
std::string encode_asp(const MitigationProblem& problem);

/// One nondominated mitigation portfolio on the (cost, residual risk,
/// coverage) trade-off surface. Coverage counts the threats the selection
/// blocks.
struct ParetoPoint {
    Selection selection;
    std::size_t coverage = 0;

    long long cost() const { return selection.mitigation_cost; }
    long long residual() const { return selection.residual_loss; }
};

/// The nondominated set over (mitigation cost asc, residual loss asc,
/// coverage desc). Construction filters dominated points, deduplicates
/// equal objective tuples toward the lexicographically smallest chosen
/// set, and sorts by ascending cost — the front is a pure function of the
/// input points, so reports render it deterministically.
class ParetoFront {
public:
    ParetoFront() = default;
    explicit ParetoFront(std::vector<ParetoPoint> points);

    const std::vector<ParetoPoint>& points() const { return points_; }
    bool empty() const { return points_.empty(); }
    std::size_t size() const { return points_.size(); }

    /// The recommended single plan: minimum total cost (mitigation +
    /// residual), ties toward higher coverage, then the lexicographically
    /// smallest chosen set. The deprecated HardeningResult shim reports
    /// exactly this point. Requires a non-empty front.
    const ParetoPoint& knee() const;

private:
    std::vector<ParetoPoint> points_;
};

/// Primary Pareto engine: the solver's weak-constraint optimization —
/// residual@3, cost@2, uncovered count@1 — swept under iterated bound
/// cuts. For each coverage floor the encoding is re-solved with the
/// mitigation budget cut below the last optimum until unsatisfiable; the
/// union of optima, filtered by ParetoFront, is the exact nondominated
/// set (property-tested against pareto_front_exact).
/// `options.budget`, when set, caps the mitigation cost of every point.
Result<ParetoFront> pareto_front(const MitigationProblem& problem,
                                 const OptimizerOptions& options = {});

/// Exhaustive subset-enumeration reference engine (exponential in the
/// candidate count; for tests and small problems).
ParetoFront pareto_front_exact(const MitigationProblem& problem,
                               const OptimizerOptions& options = {});

/// Renders the Pareto ASP encoding of `problem` (inspection and tests).
std::string encode_pareto_asp(const MitigationProblem& problem);

/// "Raise the bar" hardening (paper §IV-D "most efficient attack"): choose
/// mitigations, within `budget`, that maximize the attacker's cheapest
/// remaining option — the minimum `attack_cost` over unblocked attacker
/// threats (threats with attack_cost 0 are spontaneous faults and are
/// ignored by this objective). Ties break toward lower residual loss, then
/// lower mitigation cost. When every attacker threat can be blocked within
/// budget, the result reports `hardened_floor == nullopt` (no attack left).
struct AttackFloorResult {
    Selection selection;
    /// Cheapest attack still available, if any.
    std::optional<long long> cheapest_remaining_attack;
};

AttackFloorResult harden_attack_cost(const MitigationProblem& problem, long long budget);

/// DEPRECATED one-release shim (the PR 6 deprecation pattern; removal next
/// release — see docs/quantitative-risk.md for the migration note). The
/// pre-Pareto single-plan surface: `selection` is exactly
/// `pareto_front_exact(problem).knee().selection`, and
/// `cheapest_remaining_attack` is the attack-cost floor that plan leaves
/// open. New code should consume mitigation::ParetoFront directly.
struct [[deprecated(
    "single-plan hardening is superseded by mitigation::ParetoFront; "
    "use pareto_front(problem) and take front.knee()")]] HardeningResult {
    Selection selection;
    std::optional<long long> cheapest_remaining_attack;
};

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
[[deprecated("use pareto_front(problem) and take front.knee()")]] HardeningResult harden(
    const MitigationProblem& problem, const OptimizerOptions& options = {});
#pragma GCC diagnostic pop

/// Multi-phase security consolidation (paper §IV-D: "a multi-phase strategy
/// where the actions can be prioritized"): repeatedly solve under the
/// per-phase budget, commit the chosen mitigations, and continue on the
/// residual threats until nothing more can be blocked.
struct Phase {
    int number = 1;
    Selection selection;
};

std::vector<Phase> plan_phases(const MitigationProblem& problem, long long budget_per_phase,
                               std::size_t max_phases = 8);

}  // namespace cprisk::mitigation
