// cprisk/mitigation/optimizer.hpp
//
// Cost-benefit optimization engines (paper §IV-D): select the mitigation
// set minimizing mitigation cost + residual loss, optionally under a
// mitigation budget. Two interchangeable engines are provided — an exact
// branch-and-bound and an ASP encoding solved by the embedded reasoner —
// and benchmarked against each other (DESIGN.md ablation 1).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "mitigation/problem.hpp"
#include "obs/run_context.hpp"

namespace cprisk::mitigation {

struct Selection {
    std::vector<std::string> chosen;      ///< mitigation ids, sorted
    long long mitigation_cost = 0;
    long long residual_loss = 0;          ///< losses of unblocked threats
    std::vector<std::string> unblocked;   ///< scenario ids left unblocked

    long long total_cost() const { return mitigation_cost + residual_loss; }
};

struct OptimizerOptions {
    /// Cap on the sum of chosen mitigation costs; nullopt = unconstrained
    /// ("constraint on the mitigation budgets", §IV-D). Distinct from the
    /// run's resource Budget, which lives on `ctx`.
    std::optional<long long> budget;
    /// Unified run state for observability (obs/run_context.hpp): one
    /// "mitigation.optimize" span plus mitigation.* instruments per call.
    /// Borrowed; nullptr disables.
    RunContext* ctx = nullptr;

    obs::TraceSink* trace_sink() const { return ctx != nullptr ? ctx->trace : nullptr; }
    obs::MetricsRegistry* metrics_sink() const { return ctx != nullptr ? ctx->metrics : nullptr; }
};

/// Exact branch & bound over mitigation subsets.
Selection optimize_exact(const MitigationProblem& problem, const OptimizerOptions& options = {});

/// The same problem encoded as an ASP program with choice rules and weak
/// constraints, solved by the embedded engine. Budget is handled by
/// iterative tightening (the core language has no sum aggregates).
Result<Selection> optimize_asp(const MitigationProblem& problem,
                               const OptimizerOptions& options = {});

/// Renders the ASP encoding of `problem` (for inspection and tests).
std::string encode_asp(const MitigationProblem& problem);

/// "Raise the bar" hardening (paper §IV-D "most efficient attack"): choose
/// mitigations, within `budget`, that maximize the attacker's cheapest
/// remaining option — the minimum `attack_cost` over unblocked attacker
/// threats (threats with attack_cost 0 are spontaneous faults and are
/// ignored by this objective). Ties break toward lower residual loss, then
/// lower mitigation cost. When every attacker threat can be blocked within
/// budget, the result reports `hardened_floor == nullopt` (no attack left).
struct HardeningResult {
    Selection selection;
    /// Cheapest attack still available, if any.
    std::optional<long long> cheapest_remaining_attack;
};

HardeningResult harden_attack_cost(const MitigationProblem& problem, long long budget);

/// Multi-phase security consolidation (paper §IV-D: "a multi-phase strategy
/// where the actions can be prioritized"): repeatedly solve under the
/// per-phase budget, commit the chosen mitigations, and continue on the
/// residual threats until nothing more can be blocked.
struct Phase {
    int number = 1;
    Selection selection;
};

std::vector<Phase> plan_phases(const MitigationProblem& problem, long long budget_per_phase,
                               std::size_t max_phases = 8);

}  // namespace cprisk::mitigation
