// cprisk/serve/server.hpp
//
// The fault-tolerant multi-tenant assessment daemon behind `cprisk serve`
// (docs/serve.md). Transport: newline-delimited JSON over a Unix-domain
// stream socket. Threading model:
//
//   accept thread  — poll()s the listen socket plus a wake pipe; spawns one
//                    reader thread per connection.
//   reader threads — split the byte stream into request lines; cheap ops
//                    (ping/metrics/fault/shutdown) answer inline, assess
//                    requests pass admission control and are submitted to
//                    the executor pool. A client disconnect cancels the
//                    connection's in-flight requests cooperatively.
//   executor pool  — a service-mode ThreadPool running one assessment per
//                    task under its own RunContext (request Budget +
//                    CancelToken, shared MetricsRegistry, per-model warm
//                    GroundedBaseCache).
//
// Robustness invariants, chaos-tested (tests/serve/chaos_test.cpp): the
// daemon never crashes or deadlocks under any registered serve.* fault
// site; every accepted request gets exactly one well-formed JSON reply or
// its connection closes cleanly; past the admission high-water mark
// requests shed immediately with a structured `overloaded` error; drain
// (SIGTERM / `shutdown` op) stops admissions, finishes in-flight work
// within the drain deadline, then hard-cancels whatever is left.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "serve/model_cache.hpp"
#include "serve/protocol.hpp"

namespace cprisk::serve {

struct ServeOptions {
    std::string socket_path;      ///< Unix-domain socket path (required)
    std::size_t executors = 2;    ///< worker threads running assessments
    std::size_t max_inflight = 8; ///< admission high-water mark (queued + running)
    std::size_t request_jobs = 1; ///< RunContext::jobs per request
    std::size_t hot_models = 4;   ///< model-cache entry cap (0 = unbounded)
    std::size_t cache_bytes = 64ULL * 1024 * 1024;  ///< approximate memory cap (0 = unbounded)
    long long drain_ms = 5000;    ///< graceful-drain deadline before hard cancel
    std::size_t retries = 0;      ///< RetryPolicy::max_retries per request
    /// Enable the `fault` op so chaos harnesses can arm fault-injection
    /// sites over the wire (`--chaos`). Never enable outside testing.
    bool allow_fault_injection = false;
    /// Metrics registry served by the `metrics` op. Borrowed; nullptr makes
    /// the server own a private registry.
    obs::MetricsRegistry* metrics = nullptr;
};

class Server {
public:
    /// Binds the socket and starts the accept thread. On failure nothing is
    /// left running and the error names the cause.
    static Result<std::unique_ptr<Server>> start(ServeOptions options);
    ~Server();
    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Stops admissions and wakes every thread. `hard` additionally cancels
    /// all in-flight requests through their CancelTokens (second signal).
    /// Idempotent; callable from any thread, including reader threads.
    void begin_drain(bool hard);

    /// Blocks until a drain begins, then until the daemon is fully drained:
    /// waits out the drain deadline, escalates to a hard cancel when it
    /// expires (or when the serve.drain fault fires), joins every thread,
    /// stops the pool, and removes the socket. Call exactly once, from the
    /// thread that owns the server.
    void wait();

    bool draining() const { return draining_.load(std::memory_order_acquire); }
    const std::string& socket_path() const { return options_.socket_path; }
    obs::MetricsRegistry& metrics() { return *metrics_; }

    /// Admitted-but-unfinished assess requests (queued + executing).
    std::size_t inflight() const { return inflight_.load(std::memory_order_relaxed); }

private:
    struct Connection {
        int fd = -1;
        std::mutex write_mutex;
        bool write_closed = false;  ///< guarded by write_mutex
        std::atomic<std::size_t> inflight{0};
        std::mutex token_mutex;
        /// CancelTokens of this connection's in-flight requests, keyed by a
        /// server-wide request serial (CancelToken has no identity of its
        /// own). Guarded by token_mutex.
        std::vector<std::pair<std::uint64_t, CancelToken>> tokens;
    };

    explicit Server(ServeOptions options);

    void accept_loop();
    void reader_loop(const std::shared_ptr<Connection>& connection);
    void handle_line(const std::shared_ptr<Connection>& connection, const std::string& line);
    void admit_assess(const std::shared_ptr<Connection>& connection, Request request);
    void execute_assess(const std::shared_ptr<Connection>& connection, const Request& request,
                        const CancelToken& token);
    void finish_request(Connection& connection, std::uint64_t serial);
    void write_reply(Connection& connection, const json::Value& reply);
    void refresh_gauges();

    ServeOptions options_;
    obs::MetricsRegistry owned_metrics_;  ///< used when options.metrics == nullptr
    obs::MetricsRegistry* metrics_ = nullptr;
    ModelCache cache_;
    ThreadPool pool_;

    int listen_fd_ = -1;
    int wake_read_fd_ = -1;   ///< level-triggered drain signal: written once,
    int wake_write_fd_ = -1;  ///< never drained, so every poll() sees it
    std::thread accept_thread_;

    std::atomic<bool> draining_{false};
    std::atomic<bool> hard_cancelled_{false};
    std::atomic<std::size_t> inflight_{0};
    std::atomic<std::size_t> queued_{0};
    std::atomic<std::size_t> live_{0};
    std::atomic<std::uint64_t> next_serial_{0};

    mutable std::mutex state_mutex_;
    std::condition_variable state_cv_;
    std::vector<std::shared_ptr<Connection>> connections_;  ///< guarded by state_mutex_
    std::vector<std::thread> readers_;  ///< appended by accept thread under state_mutex_
    bool accept_exited_ = false;        ///< guarded by state_mutex_
    bool waited_ = false;               ///< wait() already completed
};

}  // namespace cprisk::serve
