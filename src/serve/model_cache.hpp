// cprisk/serve/model_cache.hpp
//
// Hot-cache governance for the assessment daemon (docs/serve.md): the
// daemon keeps the last N served models resident — bundle, assessment
// façade, and the warm ground-once base cache — and evicts least-recently
// used entries once the entry count or the approximate memory cap is
// exceeded. Eviction is whole-model: a ServedModel and its GroundedBase
// caches leave together (in-flight requests holding the shared_ptr finish
// unaffected; the memory is reclaimed when the last holder drops it).
// Hits, misses, and evictions are reported through the daemon's
// MetricsRegistry (serve.cache.*).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/assessment.hpp"
#include "core/loader.hpp"
#include "epa/epa.hpp"
#include "obs/metrics.hpp"
#include "security/attack_matrix.hpp"
#include "security/catalog.hpp"

namespace cprisk::serve {

/// One resident model: everything a request needs, loaded once. The object
/// is heap-allocated and never moved — RiskAssessment borrows the bundle's
/// model and the matrix/mitigations members by address.
struct ServedModel {
    std::string path;
    core::Bundle bundle;
    security::AttackMatrix matrix = security::AttackMatrix::standard_ics();
    security::SecurityCatalog catalog = security::SecurityCatalog::standard_ics();
    epa::MitigationMap mitigations;
    std::unique_ptr<core::RiskAssessment> assessment;
    /// Warm ground-once bases, shared by every request for this model via
    /// RunContext::base_cache.
    epa::GroundedBaseCache bases;
    std::size_t bundle_bytes = 0;  ///< source text size, part of the cost estimate

    /// Approximate resident cost, for the memory cap.
    std::size_t cost_bytes() const;
};

class ModelCache {
public:
    /// `max_models` / `max_bytes` of 0 mean "unbounded" on that axis.
    /// `metrics` is borrowed and may be nullptr.
    ModelCache(std::size_t max_models, std::size_t max_bytes, obs::MetricsRegistry* metrics);

    /// Returns the resident entry for `path`, loading (and possibly
    /// evicting) on miss. Load failures are returned verbatim — the daemon
    /// maps them to `bad_request`. The returned model is alive for as long
    /// as the caller holds the pointer, even if evicted meanwhile.
    Result<std::shared_ptr<ServedModel>> acquire(const std::string& path);

    /// Re-applies the caps: the ground-once caches grow as requests run, so
    /// the daemon calls this after each assessment completes.
    void enforce_caps();

    std::size_t resident() const;
    std::size_t resident_bytes() const;

private:
    /// Drops LRU entries while over either cap, keeping at least the MRU
    /// entry. The serve.evict fault seam makes an eviction round fail
    /// gracefully (counted, cache unchanged).
    void evict_locked();
    std::size_t resident_bytes_locked() const;

    const std::size_t max_models_;
    const std::size_t max_bytes_;
    obs::MetricsRegistry* metrics_;

    mutable std::mutex mutex_;
    /// LRU order: front = coldest, back = most recently used.
    std::vector<std::shared_ptr<ServedModel>> entries_;
};

}  // namespace cprisk::serve
