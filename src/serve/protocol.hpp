// cprisk/serve/protocol.hpp
//
// Wire protocol of the assessment daemon (docs/serve.md): newline-delimited
// JSON over a Unix-domain stream socket. One request object per line, one
// reply object per request. Every reply carries the echoed request `id` and
// an `ok` flag; failures add {"error":{"code","message"}} with a stable
// machine-readable code. Parsing is tolerant of unknown keys (they are
// ignored) but strict about types and ranges, so a malformed request is a
// structured `bad_request` instead of undefined daemon behaviour.
#pragma once

#include <cstdint>
#include <string>

#include "common/json.hpp"
#include "common/result.hpp"
#include "core/assessment.hpp"

namespace cprisk::serve {

/// Stable error codes of the wire protocol.
namespace error_code {
inline constexpr const char* kBadRequest = "bad_request";      ///< malformed request
inline constexpr const char* kOverloaded = "overloaded";       ///< admission control shed it
inline constexpr const char* kShuttingDown = "shutting_down";  ///< daemon is draining
inline constexpr const char* kInternal = "internal";           ///< daemon-side failure
}  // namespace error_code

enum class Op : std::uint8_t {
    Ping,      ///< liveness probe
    Assess,    ///< run a full assessment of a model bundle
    Metrics,   ///< dump the daemon's metrics registry
    Shutdown,  ///< begin a graceful drain (same path as SIGTERM)
    Fault,     ///< arm a fault-injection site (only with ServeOptions::allow_fault_injection)
};

struct Request {
    std::string id;  ///< client-chosen correlation id, echoed verbatim (may be empty)
    Op op = Op::Ping;

    // op == Assess.
    std::string model;  ///< bundle path, resolved by the daemon process
    /// Request-scoped subset of the assessment configuration; fields absent
    /// on the wire keep their AssessmentConfig defaults. Journals and resume
    /// are batch-mode features and deliberately not exposed.
    core::AssessmentConfig config;

    // op == Fault.
    std::string site;   ///< fault-injection site name
    long long countdown = 1;  ///< fires on the countdown-th hit
};

/// Parses one request line. `id_out` receives the best-effort request id
/// even when parsing fails, so the error reply can still correlate.
Result<Request> parse_request(const std::string& line, std::string* id_out);

/// Reply skeleton: {"id": id, "ok": true, "op": op}. Callers append
/// op-specific fields before serializing.
json::Object ok_reply(const std::string& id, const char* op);

/// {"id": id, "ok": false, "error": {"code": code, "message": message}}.
json::Value error_reply(const std::string& id, const char* code, const std::string& message);

}  // namespace cprisk::serve
