#include "serve/protocol.hpp"

#include "common/schema.hpp"

namespace cprisk::serve {

namespace {

using R = Result<Request>;

/// Reads a non-negative integer field, rejecting negatives and non-integers.
Result<long long> read_count(const json::Value& object, const char* key, long long fallback) {
    const json::Value* field = object.get(key);
    if (field == nullptr) return fallback;
    if (!field->is_int() || field->as_int() < 0) {
        return Result<long long>::failure(std::string(key) +
                                          " must be a non-negative integer");
    }
    return field->as_int();
}

Result<void> parse_config(const json::Value& value, core::AssessmentConfig& config) {
    if (!value.is_object()) return Result<void>::failure("config must be an object");

    auto horizon = read_count(value, "horizon", config.horizon);
    if (!horizon.ok()) return Result<void>::failure(horizon.error());
    config.horizon = static_cast<int>(horizon.value());

    auto max_faults = read_count(value, "max_faults",
                                 static_cast<long long>(config.max_simultaneous_faults));
    if (!max_faults.ok()) return Result<void>::failure(max_faults.error());
    config.max_simultaneous_faults = static_cast<std::size_t>(max_faults.value());

    config.include_attack_scenarios =
        value.get_bool("attack_scenarios", config.include_attack_scenarios);
    config.use_cegar = value.get_bool("use_cegar", config.use_cegar);
    config.static_prefilter = value.get_bool("static_prefilter", config.static_prefilter);

    auto deadline = read_count(value, "deadline_ms", config.deadline_ms);
    if (!deadline.ok()) return Result<void>::failure(deadline.error());
    config.deadline_ms = deadline.value();

    auto decisions = read_count(value, "max_decisions",
                                static_cast<long long>(config.max_decisions));
    if (!decisions.ok()) return Result<void>::failure(decisions.error());
    config.max_decisions = static_cast<std::size_t>(decisions.value());

    config.exhaustive = value.get_bool("exhaustive", config.exhaustive);
    auto max_card = read_count(value, "max_card", static_cast<long long>(config.max_card));
    if (!max_card.ok()) return Result<void>::failure(max_card.error());
    config.max_card = static_cast<std::size_t>(max_card.value());
    config.attack_reachable_only =
        value.get_bool("attack_reachable_only", config.attack_reachable_only);

    if (const json::Value* active = value.get("active_mitigations")) {
        if (!active->is_array()) {
            return Result<void>::failure("config.active_mitigations must be an array of strings");
        }
        for (const json::Value& item : active->as_array()) {
            if (!item.is_string()) {
                return Result<void>::failure(
                    "config.active_mitigations must be an array of strings");
            }
            config.active_mitigations.push_back(item.as_string());
        }
    }
    return {};
}

}  // namespace

Result<Request> parse_request(const std::string& line, std::string* id_out) {
    if (id_out != nullptr) id_out->clear();
    auto parsed = json::parse(line);
    if (!parsed.ok()) return R::failure("request is not valid JSON: " + parsed.error());
    const json::Value& value = parsed.value();
    if (!value.is_object()) return R::failure("request must be a JSON object");

    Request request;
    if (const json::Value* id = value.get("id")) {
        if (!id->is_string()) return R::failure("id must be a string");
        request.id = id->as_string();
        if (id_out != nullptr) *id_out = request.id;
    }

    const std::string op = value.get_string("op");
    if (op == "ping") {
        request.op = Op::Ping;
    } else if (op == "assess") {
        request.op = Op::Assess;
    } else if (op == "metrics") {
        request.op = Op::Metrics;
    } else if (op == "shutdown") {
        request.op = Op::Shutdown;
    } else if (op == "fault") {
        request.op = Op::Fault;
    } else if (op.empty()) {
        return R::failure("request has no op");
    } else {
        return R::failure("unknown op '" + op + "'");
    }

    if (request.op == Op::Assess) {
        request.model = value.get_string("model");
        if (request.model.empty()) return R::failure("assess requires a non-empty model path");
        if (const json::Value* config = value.get("config")) {
            auto ok = parse_config(*config, request.config);
            if (!ok.ok()) return R::failure(ok.error());
        }
    }
    if (request.op == Op::Fault) {
        request.site = value.get_string("site");
        if (request.site.empty()) return R::failure("fault requires a site name");
        auto countdown = read_count(value, "countdown", 1);
        if (!countdown.ok() || countdown.value() == 0) {
            return R::failure("countdown must be a positive integer");
        }
        request.countdown = countdown.value();
    }
    return request;
}

json::Object ok_reply(const std::string& id, const char* op) {
    json::Object reply;
    json::set(reply, "schema_version", kSchemaVersion);
    json::set(reply, "id", id);
    json::set(reply, "ok", true);
    json::set(reply, "op", op);
    return reply;
}

json::Value error_reply(const std::string& id, const char* code, const std::string& message) {
    json::Object error;
    json::set(error, "code", code);
    json::set(error, "message", message);
    json::Object reply;
    json::set(reply, "schema_version", kSchemaVersion);
    json::set(reply, "id", id);
    json::set(reply, "ok", false);
    json::set(reply, "error", std::move(error));
    return reply;
}

}  // namespace cprisk::serve
