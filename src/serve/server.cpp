#include "serve/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/fault_injection.hpp"
#include "core/report.hpp"
#include "obs/run_context.hpp"

namespace cprisk::serve {

namespace {

/// A request line may not exceed this without a newline; past it the daemon
/// answers bad_request and closes the connection instead of buffering an
/// unbounded stream.
constexpr std::size_t kMaxLineBytes = 1024 * 1024;

/// Per-connection send timeout: a client that stops reading its replies is
/// treated as gone instead of wedging an executor.
constexpr long kSendTimeoutSeconds = 5;

std::string errno_message(const char* what) {
    return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      metrics_(options_.metrics != nullptr ? options_.metrics : &owned_metrics_),
      cache_(options_.hot_models, options_.cache_bytes, metrics_),
      pool_(options_.executors, ThreadPool::PoolMode::Service) {}

Result<std::unique_ptr<Server>> Server::start(ServeOptions options) {
    using R = Result<std::unique_ptr<Server>>;
    if (options.socket_path.empty()) return R::failure("serve: socket path is required");
    sockaddr_un addr{};
    if (options.socket_path.size() >= sizeof(addr.sun_path)) {
        return R::failure("serve: socket path exceeds the AF_UNIX limit of " +
                          std::to_string(sizeof(addr.sun_path) - 1) + " bytes");
    }
    if (options.executors == 0) options.executors = 1;
    if (options.max_inflight == 0) options.max_inflight = 1;

    const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd < 0) return R::failure(errno_message("serve: socket"));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, options.socket_path.c_str(), options.socket_path.size() + 1);
    ::unlink(options.socket_path.c_str());  // a stale socket from a dead daemon
    if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        const std::string message = errno_message("serve: bind");
        ::close(listen_fd);
        return R::failure(message);
    }
    if (::listen(listen_fd, 64) != 0) {
        const std::string message = errno_message("serve: listen");
        ::close(listen_fd);
        ::unlink(options.socket_path.c_str());
        return R::failure(message);
    }
    int wake[2] = {-1, -1};
    if (::pipe2(wake, O_CLOEXEC) != 0) {
        const std::string message = errno_message("serve: pipe");
        ::close(listen_fd);
        ::unlink(options.socket_path.c_str());
        return R::failure(message);
    }

    std::unique_ptr<Server> server(new Server(std::move(options)));
    server->listen_fd_ = listen_fd;
    server->wake_read_fd_ = wake[0];
    server->wake_write_fd_ = wake[1];
    server->refresh_gauges();
    server->accept_thread_ = std::thread([raw = server.get()] { raw->accept_loop(); });
    return server;
}

Server::~Server() {
    if (!waited_) {
        begin_drain(true);
        wait();
    }
}

void Server::accept_loop() {
    for (;;) {
        pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_read_fd_, POLLIN, 0}};
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR) continue;
            break;  // unrecoverable poll failure: stop accepting, daemon drains
        }
        if ((fds[1].revents & POLLIN) != 0) break;  // drain broadcast
        if ((fds[0].revents & POLLIN) == 0) continue;

        const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd < 0) continue;  // EINTR / ECONNABORTED / transient — keep serving
        if (fault::should_fail("serve.accept")) {
            // Injected accept failure: the connection closes cleanly before a
            // single byte is exchanged — an allowed outcome for the client.
            obs::add_counter(metrics_, "serve.accept.faults");
            ::close(fd);
            continue;
        }
        timeval send_timeout{};
        send_timeout.tv_sec = kSendTimeoutSeconds;
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout, sizeof(send_timeout));

        auto connection = std::make_shared<Connection>();
        connection->fd = fd;
        {
            std::lock_guard<std::mutex> lock(state_mutex_);
            if (draining_.load(std::memory_order_acquire)) {
                ::close(fd);
                continue;
            }
            connections_.push_back(connection);
            readers_.emplace_back([this, connection] { reader_loop(connection); });
        }
        obs::add_counter(metrics_, "serve.connections.accepted");
    }
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        accept_exited_ = true;
    }
    state_cv_.notify_all();
}

void Server::reader_loop(const std::shared_ptr<Connection>& connection) {
    std::string buffer;
    bool client_gone = false;
    for (;;) {
        pollfd fds[2] = {{connection->fd, POLLIN, 0}, {wake_read_fd_, POLLIN, 0}};
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR) continue;
            client_gone = true;
            break;
        }
        if ((fds[1].revents & POLLIN) != 0) break;  // drain: stop reading, finish in-flight
        if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;

        char chunk[4096];
        const ssize_t n = ::recv(connection->fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            client_gone = true;
            break;
        }
        if (n == 0 || fault::should_fail("serve.read")) {
            // EOF, or an injected read failure: both mean the client is gone
            // from the daemon's point of view.
            client_gone = true;
            break;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));

        std::size_t start = 0;
        for (std::size_t newline = buffer.find('\n', start); newline != std::string::npos;
             newline = buffer.find('\n', start)) {
            std::string line = buffer.substr(start, newline - start);
            start = newline + 1;
            if (!line.empty()) handle_line(connection, line);
        }
        buffer.erase(0, start);
        if (buffer.size() > kMaxLineBytes) {
            write_reply(*connection, error_reply("", error_code::kBadRequest,
                                                 "request line exceeds 1 MiB"));
            client_gone = true;
            break;
        }
    }

    if (client_gone) {
        // The client cannot receive replies any more: cancel its in-flight
        // requests cooperatively and drop future writes.
        {
            std::lock_guard<std::mutex> lock(connection->token_mutex);
            for (auto& entry : connection->tokens) entry.second.request_cancel();
        }
        std::lock_guard<std::mutex> lock(connection->write_mutex);
        connection->write_closed = true;
        obs::add_counter(metrics_, "serve.connections.dropped");
    }
    {
        // Executors may still hold this connection; close only once the last
        // in-flight request has written (or skipped) its reply.
        std::unique_lock<std::mutex> lock(state_mutex_);
        state_cv_.wait(lock, [&] { return connection->inflight.load() == 0; });
    }
    {
        std::lock_guard<std::mutex> lock(connection->write_mutex);
        ::close(connection->fd);
        connection->fd = -1;
    }
}

void Server::handle_line(const std::shared_ptr<Connection>& connection, const std::string& line) {
    std::string id;
    auto parsed = parse_request(line, &id);
    if (!parsed.ok()) {
        obs::add_counter(metrics_, "serve.requests.bad");
        write_reply(*connection, error_reply(id, error_code::kBadRequest, parsed.error()));
        return;
    }
    Request request = std::move(parsed).value();
    switch (request.op) {
        case Op::Ping: {
            write_reply(*connection, json::Value(ok_reply(request.id, "ping")));
            return;
        }
        case Op::Metrics: {
            refresh_gauges();
            json::Object reply = ok_reply(request.id, "metrics");
            auto exported = json::parse(metrics_->export_json());
            json::set(reply, "metrics",
                      exported.ok() ? std::move(exported).value() : json::Value());
            write_reply(*connection, json::Value(std::move(reply)));
            return;
        }
        case Op::Shutdown: {
            json::Object reply = ok_reply(request.id, "shutdown");
            json::set(reply, "draining", true);
            write_reply(*connection, json::Value(std::move(reply)));
            begin_drain(false);
            return;
        }
        case Op::Fault: {
            if (!options_.allow_fault_injection) {
                write_reply(*connection,
                            error_reply(request.id, error_code::kBadRequest,
                                        "fault injection disabled; start the daemon with --chaos"));
                return;
            }
            fault::arm(request.site, static_cast<int>(request.countdown));
            json::Object reply = ok_reply(request.id, "fault");
            json::set(reply, "site", request.site);
            write_reply(*connection, json::Value(std::move(reply)));
            return;
        }
        case Op::Assess:
            admit_assess(connection, std::move(request));
            return;
    }
}

void Server::admit_assess(const std::shared_ptr<Connection>& connection, Request request) {
    if (draining_.load(std::memory_order_acquire)) {
        obs::add_counter(metrics_, "serve.requests.rejected_draining");
        write_reply(*connection, error_reply(request.id, error_code::kShuttingDown,
                                             "daemon is draining; no new work accepted"));
        return;
    }
    // Admission control: shed immediately past the high-water mark instead of
    // queueing without bound.
    if (inflight_.fetch_add(1, std::memory_order_acq_rel) + 1 > options_.max_inflight) {
        inflight_.fetch_sub(1, std::memory_order_acq_rel);
        obs::add_counter(metrics_, "serve.requests.overloaded");
        write_reply(*connection,
                    error_reply(request.id, error_code::kOverloaded,
                                "daemon at capacity (" + std::to_string(options_.max_inflight) +
                                    " in flight); retry later"));
        return;
    }

    const std::uint64_t serial = next_serial_.fetch_add(1, std::memory_order_relaxed);
    CancelToken token;
    {
        std::lock_guard<std::mutex> lock(connection->token_mutex);
        connection->tokens.emplace_back(serial, token);
    }
    // A hard drain that raced this admission must not strand the token.
    if (hard_cancelled_.load(std::memory_order_acquire)) token.request_cancel();
    connection->inflight.fetch_add(1);
    queued_.fetch_add(1, std::memory_order_relaxed);
    obs::add_counter(metrics_, "serve.requests.accepted");
    refresh_gauges();

    auto submitted = pool_.submit(
        [this, connection, request = std::move(request), token, serial]() mutable {
            queued_.fetch_sub(1, std::memory_order_relaxed);
            if (fault::should_fail("serve.dispatch")) {
                write_reply(*connection, error_reply(request.id, error_code::kInternal,
                                                     "injected dispatch fault"));
            } else {
                execute_assess(connection, request, token);
            }
            obs::add_counter(metrics_, "serve.requests.completed");
            finish_request(*connection, serial);
        });
    if (!submitted.ok()) {
        // The pool stopped between the draining check and the submit: undo the
        // admission and report the drain.
        queued_.fetch_sub(1, std::memory_order_relaxed);
        obs::add_counter(metrics_, "serve.requests.rejected_draining");
        write_reply(*connection, error_reply(request.id, error_code::kShuttingDown,
                                             "daemon is draining; no new work accepted"));
        finish_request(*connection, serial);
    }
}

void Server::execute_assess(const std::shared_ptr<Connection>& connection, const Request& request,
                            const CancelToken& token) {
    live_.fetch_add(1, std::memory_order_relaxed);
    refresh_gauges();
    json::Value reply;
    try {
        auto model = cache_.acquire(request.model);
        if (!model.ok()) {
            reply = error_reply(request.id, error_code::kBadRequest, model.error());
        } else {
            RunContext ctx;
            ctx.jobs = options_.request_jobs;
            ctx.metrics = metrics_;
            ctx.retry.max_retries = options_.retries;
            ctx.base_cache = &model.value()->bases;
            core::AssessmentConfig config = request.config;
            config.cancel = token;
            auto report = model.value()->assessment->run(config, ctx);
            if (!report.ok()) {
                reply = error_reply(request.id, error_code::kInternal, report.error());
            } else {
                json::Object body = ok_reply(request.id, "assess");
                json::set(body, "partial", !report.value().complete());
                auto rendered = json::parse(core::render_report_json(report.value()));
                json::set(body, "report",
                          rendered.ok() ? std::move(rendered).value() : json::Value());
                reply = json::Value(std::move(body));
            }
        }
    } catch (const std::exception& e) {
        // A throwing assessment must not take the executor down: the client
        // still gets exactly one well-formed reply.
        reply = error_reply(request.id, error_code::kInternal,
                            std::string("assessment failed: ") + e.what());
    }
    cache_.enforce_caps();
    write_reply(*connection, reply);
    live_.fetch_sub(1, std::memory_order_relaxed);
}

void Server::finish_request(Connection& connection, std::uint64_t serial) {
    {
        std::lock_guard<std::mutex> lock(connection.token_mutex);
        for (auto it = connection.tokens.begin(); it != connection.tokens.end(); ++it) {
            if (it->first == serial) {
                connection.tokens.erase(it);
                break;
            }
        }
    }
    connection.inflight.fetch_sub(1);
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    refresh_gauges();
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
    }
    state_cv_.notify_all();
}

void Server::write_reply(Connection& connection, const json::Value& reply) {
    std::string line = reply.serialize();
    line += '\n';
    std::lock_guard<std::mutex> lock(connection.write_mutex);
    if (connection.write_closed || connection.fd < 0) return;
    const char* data = line.data();
    std::size_t remaining = line.size();
    while (remaining > 0) {
        const ssize_t n = ::send(connection.fd, data, remaining, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            // Timeout or broken pipe: the client stopped reading; every
            // further reply on this connection is dropped.
            connection.write_closed = true;
            return;
        }
        data += n;
        remaining -= static_cast<std::size_t>(n);
    }
}

void Server::refresh_gauges() {
    obs::set_gauge(metrics_, "serve.queue.depth",
                   static_cast<long long>(queued_.load(std::memory_order_relaxed)));
    obs::set_gauge(metrics_, "serve.requests.live",
                   static_cast<long long>(live_.load(std::memory_order_relaxed)));
    obs::set_gauge(metrics_, "serve.cache.resident", static_cast<long long>(cache_.resident()));
    obs::set_gauge(metrics_, "serve.cache.resident_bytes",
                   static_cast<long long>(cache_.resident_bytes()));
}

void Server::begin_drain(bool hard) {
    const bool first = !draining_.exchange(true, std::memory_order_acq_rel);
    if (hard && !hard_cancelled_.exchange(true, std::memory_order_acq_rel)) {
        std::lock_guard<std::mutex> lock(state_mutex_);
        for (const auto& connection : connections_) {
            std::lock_guard<std::mutex> tokens(connection->token_mutex);
            for (auto& entry : connection->tokens) entry.second.request_cancel();
        }
    }
    if (first) {
        // One byte, never consumed: the wake pipe stays level-triggered so
        // every poll() — accept loop and all readers — sees the drain.
        const char byte = 1;
        while (::write(wake_write_fd_, &byte, 1) < 0 && errno == EINTR) {
        }
    }
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
    }
    state_cv_.notify_all();
}

void Server::wait() {
    if (waited_) return;
    {
        std::unique_lock<std::mutex> lock(state_mutex_);
        state_cv_.wait(lock, [&] { return draining_.load(std::memory_order_acquire); });
    }

    auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(options_.drain_ms);
    if (fault::should_fail("serve.drain")) {
        // Injected drain stall: skip the graceful window and escalate now.
        obs::add_counter(metrics_, "serve.drain.faults");
        deadline = std::chrono::steady_clock::now();
    }
    bool drained = false;
    {
        std::unique_lock<std::mutex> lock(state_mutex_);
        drained = state_cv_.wait_until(lock, deadline, [&] { return inflight_.load() == 0; });
    }
    if (!drained) {
        // Graceful window expired: cancel everything still in flight, then
        // give the cancellations one more bounded window to propagate.
        begin_drain(true);
        obs::add_counter(metrics_, "serve.drain.escalations");
        std::unique_lock<std::mutex> lock(state_mutex_);
        drained = state_cv_.wait_for(lock, std::chrono::milliseconds(options_.drain_ms),
                                     [&] { return inflight_.load() == 0; });
        if (!drained) {
            // Last resort: sever the sockets so no reply can block a writer,
            // and wait out the cooperative cancellation (budgets trip within
            // one clock stride).
            for (const auto& connection : connections_) {
                std::lock_guard<std::mutex> writes(connection->write_mutex);
                connection->write_closed = true;
                if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RDWR);
            }
            state_cv_.wait(lock, [&] { return inflight_.load() == 0; });
        }
    }

    {
        std::unique_lock<std::mutex> lock(state_mutex_);
        state_cv_.wait(lock, [&] { return accept_exited_; });
    }
    accept_thread_.join();
    for (auto& reader : readers_) reader.join();  // stable: the accept thread has exited
    pool_.stop();

    ::close(listen_fd_);
    ::close(wake_read_fd_);
    ::close(wake_write_fd_);
    listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
    connections_.clear();
    readers_.clear();
    refresh_gauges();
    waited_ = true;
}

}  // namespace cprisk::serve
