#include "serve/model_cache.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <utility>

#include "common/fault_injection.hpp"

namespace cprisk::serve {

namespace {

/// Fixed per-entry overhead: matrices, catalog, requirement vectors and the
/// assessment façade are small and roughly constant per model.
constexpr std::size_t kEntryOverheadBytes = 64 * 1024;

std::size_t file_size_bytes(const std::string& path) {
    struct ::stat info {};
    if (::stat(path.c_str(), &info) != 0 || info.st_size < 0) return 0;
    return static_cast<std::size_t>(info.st_size);
}

}  // namespace

std::size_t ServedModel::cost_bytes() const {
    return kEntryOverheadBytes + bundle_bytes + bases.approx_bytes();
}

ModelCache::ModelCache(std::size_t max_models, std::size_t max_bytes,
                       obs::MetricsRegistry* metrics)
    : max_models_(max_models), max_bytes_(max_bytes), metrics_(metrics) {}

Result<std::shared_ptr<ServedModel>> ModelCache::acquire(const std::string& path) {
    using R = Result<std::shared_ptr<ServedModel>>;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = std::find_if(entries_.begin(), entries_.end(),
                                 [&](const auto& entry) { return entry->path == path; });
    if (it != entries_.end()) {
        std::shared_ptr<ServedModel> model = *it;
        entries_.erase(it);
        entries_.push_back(model);  // most recently used
        obs::add_counter(metrics_, "serve.cache.hits");
        return model;
    }
    obs::add_counter(metrics_, "serve.cache.misses");

    // Load under the lock: concurrent requests for the same cold model would
    // otherwise duplicate the (expensive) load; serializing cold loads is
    // the simpler trade and warm hits dominate in steady state.
    auto bundle = core::load_bundle_file(path);
    if (!bundle.ok()) return R::failure(bundle.error());

    auto model = std::make_shared<ServedModel>();
    model->path = path;
    model->bundle = std::move(bundle).value();
    model->bundle_bytes = file_size_bytes(path);
    model->mitigations = epa::MitigationMap::from_attack_matrix(model->bundle.model,
                                                                model->matrix);
    // Constructed last: RiskAssessment borrows the bundle's model and the
    // matrix/mitigations members by address, which are final by now (the
    // ServedModel itself lives behind the shared_ptr and never moves).
    model->assessment = std::make_unique<core::RiskAssessment>(
        model->bundle.model, model->bundle.effective_behavioral(),
        model->bundle.effective_topology(), model->matrix, model->mitigations, &model->catalog);

    entries_.push_back(model);
    evict_locked();
    return model;
}

void ModelCache::enforce_caps() {
    std::lock_guard<std::mutex> lock(mutex_);
    evict_locked();
}

std::size_t ModelCache::resident() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::size_t ModelCache::resident_bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return resident_bytes_locked();
}

std::size_t ModelCache::resident_bytes_locked() const {
    std::size_t total = 0;
    for (const auto& entry : entries_) total += entry->cost_bytes();
    return total;
}

void ModelCache::evict_locked() {
    while (entries_.size() > 1 &&
           ((max_models_ != 0 && entries_.size() > max_models_) ||
            (max_bytes_ != 0 && resident_bytes_locked() > max_bytes_))) {
        if (fault::should_fail("serve.evict")) {
            // Injected eviction failure: degrade gracefully — keep the entry
            // resident (over the cap) and make the miss observable instead
            // of corrupting the LRU order.
            obs::add_counter(metrics_, "serve.cache.evict_failed");
            return;
        }
        entries_.erase(entries_.begin());  // front = least recently used
        obs::add_counter(metrics_, "serve.cache.evictions");
    }
}

}  // namespace cprisk::serve
