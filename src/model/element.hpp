// cprisk/model/element.hpp
//
// Element and relation taxonomy for the system model. The vocabulary mirrors
// the TOGAF/Archimate layers the paper uses for "lightweight modeling of
// IT/OT systems" (§II-C): business, application and technology layers for
// the IT side, and a physical layer for the OT side. The taxonomy also
// captures the paper's central modeling distinction (§II-B): *signal flows*
// are directional IT connections, while physical components share
// *quantities under conservation laws* (undirected in-out variables).
#pragma once

#include <cstdint>
#include <string_view>

namespace cprisk::model {

/// Archimate-style layer.
enum class Layer : std::uint8_t {
    Business,     ///< actors, processes
    Application,  ///< software components and services
    Technology,   ///< nodes, networks, system software
    Physical,     ///< OT equipment, material flows
};

std::string_view to_string(Layer layer);

/// Element types, a pragmatic Archimate subset extended with the CPS roles
/// (sensor/actuator/controller) the case study needs.
enum class ElementType : std::uint8_t {
    // Business layer
    Actor,
    BusinessProcess,
    // Application layer
    ApplicationComponent,
    ApplicationService,
    DataObject,
    // Technology layer
    Node,
    Device,
    SystemSoftware,
    CommunicationNetwork,
    // Physical / OT layer
    Equipment,
    Sensor,
    Actuator,
    Controller,
    HumanMachineInterface,
    Material,
};

std::string_view to_string(ElementType type);

/// Layer an element type belongs to.
Layer layer_of(ElementType type);

/// True for element types living on the OT (physical / control) side. The
/// security-dependability interdependence of the paper flows from IT
/// elements into these.
bool is_ot(ElementType type);

/// Relation types. `SignalFlow` is directional (IT data); `QuantityFlow` is
/// the physical shared-quantity connection (modeled directed source->sink
/// for propagation purposes but flagged undirected).
enum class RelationType : std::uint8_t {
    Composition,   ///< whole -> part (used by hierarchical refinement)
    Assignment,    ///< deployment: behaviour element -> node
    Serving,       ///< service provider -> consumer
    Access,        ///< component -> data object
    Triggering,    ///< control/causal trigger
    SignalFlow,    ///< directional IT data flow
    QuantityFlow,  ///< physical conserved-quantity coupling
    Association,   ///< untyped association
};

std::string_view to_string(RelationType type);

/// True if error propagation follows this relation from source to target.
bool propagates(RelationType type);

/// True if the relation also propagates target -> source (conservation-law
/// couplings are bidirectional).
bool is_bidirectional(RelationType type);

}  // namespace cprisk::model
