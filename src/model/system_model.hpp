// cprisk/model/system_model.hpp
//
// The merged system model: a typed component/relation graph with optional
// per-component qualitative behaviour rules. This is the "single model
// sharing a uniform mathematical paradigm" of the paper's step 1 — aspect
// models (architecture / dynamics / deployment, see aspects.hpp) merge into
// one SystemModel, which the EPA then translates to ASP.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "model/component.hpp"

namespace cprisk::model {

/// Hierarchical refinement of one component into an internal sub-model
/// (paper §VI, Fig. 4): the parent stays in the model as a composite; its
/// propagating relations are rewired to the sub-model's entry/exit
/// components.
struct RefinementSpec {
    ComponentId parent;                 ///< component to refine
    std::vector<Component> parts;       ///< internal components
    std::vector<Relation> internal_relations;
    ComponentId entry;                  ///< receives the parent's inbound flows
    ComponentId exit;                   ///< sources the parent's outbound flows
};

class SystemModel {
public:
    // --- construction -------------------------------------------------------

    /// Adds a component; fails on duplicate id or empty id.
    Result<void> add_component(Component component);

    /// Adds a relation; fails if either endpoint is unknown.
    Result<void> add_relation(Relation relation);

    /// Attaches a qualitative behaviour fragment (ASP text, dynamic-section
    /// rules) to a component; appended to earlier fragments.
    Result<void> add_behavior(const ComponentId& id, std::string asp_fragment);

    /// Merges `other` into this model. Identical duplicate components are
    /// tolerated; conflicting duplicates fail. Relations are unioned.
    Result<void> merge(const SystemModel& other);

    /// Applies a hierarchical refinement (see RefinementSpec).
    Result<void> refine(const RefinementSpec& spec);

    // --- queries ------------------------------------------------------------

    bool has_component(const ComponentId& id) const;
    const Component& component(const ComponentId& id) const;
    Component& component_mutable(const ComponentId& id);
    const std::vector<Component>& components() const { return components_; }
    const std::vector<Relation>& relations() const { return relations_; }

    /// True if `id` was refined into a sub-model (it no longer propagates).
    bool is_refined(const ComponentId& id) const;

    /// Parts of a refined composite (direct children via Composition).
    std::vector<ComponentId> parts_of(const ComponentId& id) const;

    const std::vector<std::string>& behaviors(const ComponentId& id) const;

    /// Components an error in `id` can propagate to in one step: targets of
    /// propagating relations from `id`, plus sources of bidirectional
    /// relations into `id`. Refined composites propagate nothing.
    std::vector<ComponentId> propagation_successors(const ComponentId& id) const;

    std::vector<Relation> relations_from(const ComponentId& id) const;
    std::vector<Relation> relations_to(const ComponentId& id) const;

    /// All components reachable from `id` along propagating relations
    /// (excluding `id` itself unless it lies on a cycle).
    std::set<ComponentId> reachable_from(const ComponentId& id) const;

    /// All simple propagation paths from `from` to `to`, up to `max_length`
    /// components per path.
    std::vector<std::vector<ComponentId>> find_paths(const ComponentId& from,
                                                     const ComponentId& to,
                                                     std::size_t max_length = 16) const;

    /// Structural sanity: every relation endpoint resolves; every refined
    /// composite has parts.
    Result<void> validate() const;

    std::size_t component_count() const { return components_.size(); }
    std::size_t relation_count() const { return relations_.size(); }

private:
    std::vector<Component> components_;
    std::map<ComponentId, std::size_t> index_;
    std::vector<Relation> relations_;
    std::set<ComponentId> refined_;
    std::map<ComponentId, std::vector<std::string>> behaviors_;
};

}  // namespace cprisk::model
