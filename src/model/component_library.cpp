#include "model/component_library.hpp"

namespace cprisk::model {

void ComponentLibrary::register_template(ComponentTemplate tmpl) {
    templates_.insert_or_assign(tmpl.type_name, std::move(tmpl));
}

bool ComponentLibrary::has(const std::string& type_name) const {
    return templates_.count(type_name) > 0;
}

Result<ComponentTemplate> ComponentLibrary::get(const std::string& type_name) const {
    auto it = templates_.find(type_name);
    if (it == templates_.end()) {
        return Result<ComponentTemplate>::failure("unknown component template '" + type_name +
                                                  "'");
    }
    return it->second;
}

std::vector<std::string> ComponentLibrary::type_names() const {
    std::vector<std::string> names;
    names.reserve(templates_.size());
    for (const auto& [name, tmpl] : templates_) names.push_back(name);
    return names;
}

namespace {

std::string replace_self(std::string text, const std::string& id) {
    const std::string placeholder = "$self";
    std::size_t pos = 0;
    while ((pos = text.find(placeholder, pos)) != std::string::npos) {
        text.replace(pos, placeholder.size(), id);
        pos += id.size();
    }
    return text;
}

}  // namespace

Result<void> ComponentLibrary::instantiate(const std::string& type_name, const ComponentId& id,
                                           const std::string& display_name,
                                           SystemModel& model) const {
    auto tmpl = get(type_name);
    if (!tmpl.ok()) return Result<void>::failure(tmpl.error());
    const ComponentTemplate& t = tmpl.value();

    Component component;
    component.id = id;
    component.name = display_name;
    component.type = t.element_type;
    component.exposure = t.default_exposure;
    component.asset_value = t.default_asset_value;
    component.fault_modes = t.fault_modes;
    component.properties = t.properties;
    component.properties["template"] = type_name;

    auto added = model.add_component(std::move(component));
    if (!added.ok()) return added;
    for (const std::string& fragment : t.behavior_fragments) {
        auto behavior = model.add_behavior(id, replace_self(fragment, id));
        if (!behavior.ok()) return behavior;
    }
    return {};
}

ComponentLibrary ComponentLibrary::standard_cps() {
    ComponentLibrary library;

    library.register_template(ComponentTemplate{
        "water_tank",
        ElementType::Equipment,
        Exposure::None,
        qual::Level::VeryHigh,
        {},  // the tank itself fails only through its valves/sensor
        {},
        {{"medium", "water"}}});

    library.register_template(ComponentTemplate{
        "valve_actuator",
        ElementType::Actuator,
        Exposure::None,
        qual::Level::High,
        {FaultMode{"stuck_at_open", FaultEffect::StuckAt, "open", qual::Level::High,
                   qual::Level::Low},
         FaultMode{"stuck_at_closed", FaultEffect::StuckAt, "closed", qual::Level::High,
                   qual::Level::Low}},
        {},
        {}});

    library.register_template(ComponentTemplate{
        "valve_controller",
        ElementType::Controller,
        Exposure::Internal,
        qual::Level::Medium,
        {FaultMode{"no_command", FaultEffect::Omission, "", qual::Level::Medium,
                   qual::Level::Low},
         FaultMode{"wrong_command", FaultEffect::Corruption, "", qual::Level::High,
                   qual::Level::VeryLow}},
        {},
        {}});

    library.register_template(ComponentTemplate{
        "level_sensor",
        ElementType::Sensor,
        Exposure::None,
        qual::Level::Medium,
        {FaultMode{"frozen_reading", FaultEffect::StuckAt, "", qual::Level::High,
                   qual::Level::Low},
         FaultMode{"no_reading", FaultEffect::Omission, "", qual::Level::Medium,
                   qual::Level::Low}},
        {},
        {}});

    library.register_template(ComponentTemplate{
        "plant_controller",
        ElementType::Controller,
        Exposure::Internal,
        qual::Level::High,
        {FaultMode{"no_control", FaultEffect::Omission, "", qual::Level::High,
                   qual::Level::VeryLow},
         FaultMode{"compromised", FaultEffect::Compromise, "", qual::Level::VeryHigh,
                   qual::Level::VeryLow}},
        {},
        {}});

    library.register_template(ComponentTemplate{
        "hmi",
        ElementType::HumanMachineInterface,
        Exposure::Internal,
        qual::Level::Medium,
        {FaultMode{"no_signal", FaultEffect::Omission, "", qual::Level::High,
                   qual::Level::Low}},
        {},
        {}});

    library.register_template(ComponentTemplate{
        "engineering_workstation",
        ElementType::Node,
        Exposure::Internal,
        qual::Level::High,
        {FaultMode{"infected", FaultEffect::Compromise, "", qual::Level::VeryHigh,
                   qual::Level::Medium}},
        {},
        {{"os", "windows"}}});

    library.register_template(ComponentTemplate{
        "office_network",
        ElementType::CommunicationNetwork,
        Exposure::Public,
        qual::Level::Medium,
        {FaultMode{"intrusion", FaultEffect::Compromise, "", qual::Level::High,
                   qual::Level::Medium}},
        {},
        {}});

    library.register_template(ComponentTemplate{
        "control_network",
        ElementType::CommunicationNetwork,
        Exposure::Internal,
        qual::Level::High,
        {FaultMode{"intrusion", FaultEffect::Compromise, "", qual::Level::VeryHigh,
                   qual::Level::Low}},
        {},
        {}});

    library.register_template(ComponentTemplate{
        "email_client",
        ElementType::ApplicationComponent,
        Exposure::Public,
        qual::Level::Low,
        {FaultMode{"phishing_link_opened", FaultEffect::Compromise, "", qual::Level::Medium,
                   qual::Level::High}},
        {},
        {}});

    library.register_template(ComponentTemplate{
        "web_browser",
        ElementType::ApplicationComponent,
        Exposure::Public,
        qual::Level::Low,
        {FaultMode{"malware_download", FaultEffect::Compromise, "", qual::Level::High,
                   qual::Level::Medium}},
        {},
        {}});

    library.register_template(ComponentTemplate{
        "plc",
        ElementType::Controller,
        Exposure::Internal,
        qual::Level::VeryHigh,
        {FaultMode{"logic_tampered", FaultEffect::Compromise, "", qual::Level::VeryHigh,
                   qual::Level::VeryLow},
         FaultMode{"halt", FaultEffect::Omission, "", qual::Level::High, qual::Level::Low}},
        {},
        {}});

    return library;
}

}  // namespace cprisk::model
