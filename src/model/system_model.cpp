#include "model/system_model.hpp"

#include <algorithm>
#include <functional>

#include "common/error.hpp"

namespace cprisk::model {

Result<void> SystemModel::add_component(Component component) {
    if (component.id.empty()) return Result<void>::failure("component id must be non-empty");
    if (index_.count(component.id) > 0) {
        return Result<void>::failure("duplicate component id '" + component.id + "'");
    }
    index_.emplace(component.id, components_.size());
    components_.push_back(std::move(component));
    return {};
}

Result<void> SystemModel::add_relation(Relation relation) {
    if (index_.count(relation.source) == 0) {
        return Result<void>::failure("relation source '" + relation.source + "' unknown");
    }
    if (index_.count(relation.target) == 0) {
        return Result<void>::failure("relation target '" + relation.target + "' unknown");
    }
    relations_.push_back(std::move(relation));
    return {};
}

Result<void> SystemModel::add_behavior(const ComponentId& id, std::string asp_fragment) {
    if (index_.count(id) == 0) {
        return Result<void>::failure("behavior target '" + id + "' unknown");
    }
    behaviors_[id].push_back(std::move(asp_fragment));
    return {};
}

namespace {

bool same_component(const Component& a, const Component& b) {
    return a.id == b.id && a.name == b.name && a.type == b.type && a.exposure == b.exposure &&
           a.version == b.version && a.asset_value == b.asset_value &&
           a.fault_modes.size() == b.fault_modes.size() && a.properties == b.properties;
}

bool same_relation(const Relation& a, const Relation& b) {
    return a.source == b.source && a.target == b.target && a.type == b.type && a.label == b.label;
}

}  // namespace

Result<void> SystemModel::merge(const SystemModel& other) {
    for (const Component& component : other.components_) {
        if (has_component(component.id)) {
            if (!same_component(this->component(component.id), component)) {
                return Result<void>::failure("merge conflict on component '" + component.id +
                                             "'");
            }
            continue;
        }
        auto added = add_component(component);
        if (!added.ok()) return added;
    }
    for (const Relation& relation : other.relations_) {
        const bool duplicate = std::any_of(
            relations_.begin(), relations_.end(),
            [&](const Relation& existing) { return same_relation(existing, relation); });
        if (duplicate) continue;
        auto added = add_relation(relation);
        if (!added.ok()) return added;
    }
    for (const auto& [id, fragments] : other.behaviors_) {
        for (const std::string& fragment : fragments) {
            auto& mine = behaviors_[id];
            if (std::find(mine.begin(), mine.end(), fragment) == mine.end()) {
                mine.push_back(fragment);
            }
        }
    }
    for (const ComponentId& id : other.refined_) refined_.insert(id);
    return {};
}

Result<void> SystemModel::refine(const RefinementSpec& spec) {
    if (!has_component(spec.parent)) {
        return Result<void>::failure("refine: unknown parent '" + spec.parent + "'");
    }
    if (is_refined(spec.parent)) {
        return Result<void>::failure("refine: '" + spec.parent + "' already refined");
    }
    if (spec.parts.empty()) return Result<void>::failure("refine: no parts given");

    auto part_exists = [&](const ComponentId& id) {
        return std::any_of(spec.parts.begin(), spec.parts.end(),
                           [&](const Component& c) { return c.id == id; });
    };
    if (!part_exists(spec.entry)) {
        return Result<void>::failure("refine: entry '" + spec.entry + "' is not a part");
    }
    if (!part_exists(spec.exit)) {
        return Result<void>::failure("refine: exit '" + spec.exit + "' is not a part");
    }

    for (const Component& part : spec.parts) {
        auto added = add_component(part);
        if (!added.ok()) return added;
    }
    for (const Relation& relation : spec.internal_relations) {
        auto added = add_relation(relation);
        if (!added.ok()) return added;
    }
    // Composition links parent -> parts.
    for (const Component& part : spec.parts) {
        auto added = add_relation(Relation{spec.parent, part.id, RelationType::Composition, ""});
        if (!added.ok()) return added;
    }
    // Rewire propagating relations: inbound to parent -> entry part,
    // outbound from parent -> exit part.
    for (Relation& relation : relations_) {
        if (!propagates(relation.type)) continue;
        if (relation.target == spec.parent) relation.target = spec.entry;
        if (relation.source == spec.parent) relation.source = spec.exit;
    }
    refined_.insert(spec.parent);
    return {};
}

bool SystemModel::has_component(const ComponentId& id) const { return index_.count(id) > 0; }

const Component& SystemModel::component(const ComponentId& id) const {
    auto it = index_.find(id);
    require(it != index_.end(), "SystemModel: unknown component '" + id + "'");
    return components_[it->second];
}

Component& SystemModel::component_mutable(const ComponentId& id) {
    auto it = index_.find(id);
    require(it != index_.end(), "SystemModel: unknown component '" + id + "'");
    return components_[it->second];
}

bool SystemModel::is_refined(const ComponentId& id) const { return refined_.count(id) > 0; }

std::vector<ComponentId> SystemModel::parts_of(const ComponentId& id) const {
    std::vector<ComponentId> parts;
    for (const Relation& relation : relations_) {
        if (relation.type == RelationType::Composition && relation.source == id) {
            parts.push_back(relation.target);
        }
    }
    return parts;
}

const std::vector<std::string>& SystemModel::behaviors(const ComponentId& id) const {
    static const std::vector<std::string> kEmpty;
    auto it = behaviors_.find(id);
    return it == behaviors_.end() ? kEmpty : it->second;
}

std::vector<ComponentId> SystemModel::propagation_successors(const ComponentId& id) const {
    std::vector<ComponentId> successors;
    if (is_refined(id)) return successors;
    auto push_unique = [&](const ComponentId& c) {
        if (c != id && !is_refined(c) &&
            std::find(successors.begin(), successors.end(), c) == successors.end()) {
            successors.push_back(c);
        }
    };
    for (const Relation& relation : relations_) {
        if (!propagates(relation.type)) continue;
        if (relation.source == id) push_unique(relation.target);
        if (is_bidirectional(relation.type) && relation.target == id) push_unique(relation.source);
    }
    return successors;
}

std::vector<Relation> SystemModel::relations_from(const ComponentId& id) const {
    std::vector<Relation> out;
    for (const Relation& relation : relations_) {
        if (relation.source == id) out.push_back(relation);
    }
    return out;
}

std::vector<Relation> SystemModel::relations_to(const ComponentId& id) const {
    std::vector<Relation> out;
    for (const Relation& relation : relations_) {
        if (relation.target == id) out.push_back(relation);
    }
    return out;
}

std::set<ComponentId> SystemModel::reachable_from(const ComponentId& id) const {
    std::set<ComponentId> visited;
    std::vector<ComponentId> stack = propagation_successors(id);
    while (!stack.empty()) {
        ComponentId current = stack.back();
        stack.pop_back();
        if (!visited.insert(current).second) continue;
        for (const ComponentId& next : propagation_successors(current)) {
            if (visited.count(next) == 0) stack.push_back(next);
        }
    }
    return visited;
}

std::vector<std::vector<ComponentId>> SystemModel::find_paths(const ComponentId& from,
                                                              const ComponentId& to,
                                                              std::size_t max_length) const {
    std::vector<std::vector<ComponentId>> paths;
    if (from == to) {
        paths.push_back({from});
        return paths;
    }
    std::vector<ComponentId> current = {from};
    std::set<ComponentId> on_path = {from};

    // Depth-first enumeration of simple paths.
    std::function<void()> dfs = [&]() {
        if (current.back() == to) {
            paths.push_back(current);
            return;
        }
        if (current.size() >= max_length) return;
        for (const ComponentId& next : propagation_successors(current.back())) {
            if (on_path.count(next) > 0) continue;
            current.push_back(next);
            on_path.insert(next);
            dfs();
            on_path.erase(next);
            current.pop_back();
        }
    };
    dfs();
    return paths;
}

Result<void> SystemModel::validate() const {
    for (const Relation& relation : relations_) {
        if (!has_component(relation.source)) {
            return Result<void>::failure("dangling relation source '" + relation.source + "'");
        }
        if (!has_component(relation.target)) {
            return Result<void>::failure("dangling relation target '" + relation.target + "'");
        }
    }
    for (const ComponentId& id : refined_) {
        if (parts_of(id).empty()) {
            return Result<void>::failure("refined composite '" + id + "' has no parts");
        }
    }
    for (const auto& [id, fragments] : behaviors_) {
        (void)fragments;
        if (!has_component(id)) {
            return Result<void>::failure("behavior attached to unknown component '" + id + "'");
        }
    }
    return {};
}

}  // namespace cprisk::model
