#include "model/element.hpp"

namespace cprisk::model {

std::string_view to_string(Layer layer) {
    switch (layer) {
        case Layer::Business: return "business";
        case Layer::Application: return "application";
        case Layer::Technology: return "technology";
        case Layer::Physical: return "physical";
    }
    return "?";
}

std::string_view to_string(ElementType type) {
    switch (type) {
        case ElementType::Actor: return "actor";
        case ElementType::BusinessProcess: return "business_process";
        case ElementType::ApplicationComponent: return "application_component";
        case ElementType::ApplicationService: return "application_service";
        case ElementType::DataObject: return "data_object";
        case ElementType::Node: return "node";
        case ElementType::Device: return "device";
        case ElementType::SystemSoftware: return "system_software";
        case ElementType::CommunicationNetwork: return "communication_network";
        case ElementType::Equipment: return "equipment";
        case ElementType::Sensor: return "sensor";
        case ElementType::Actuator: return "actuator";
        case ElementType::Controller: return "controller";
        case ElementType::HumanMachineInterface: return "hmi";
        case ElementType::Material: return "material";
    }
    return "?";
}

Layer layer_of(ElementType type) {
    switch (type) {
        case ElementType::Actor:
        case ElementType::BusinessProcess: return Layer::Business;
        case ElementType::ApplicationComponent:
        case ElementType::ApplicationService:
        case ElementType::DataObject: return Layer::Application;
        case ElementType::Node:
        case ElementType::Device:
        case ElementType::SystemSoftware:
        case ElementType::CommunicationNetwork: return Layer::Technology;
        case ElementType::Equipment:
        case ElementType::Sensor:
        case ElementType::Actuator:
        case ElementType::Controller:
        case ElementType::HumanMachineInterface:
        case ElementType::Material: return Layer::Physical;
    }
    return Layer::Technology;
}

bool is_ot(ElementType type) {
    switch (type) {
        case ElementType::Equipment:
        case ElementType::Sensor:
        case ElementType::Actuator:
        case ElementType::Controller:
        case ElementType::Material: return true;
        default: return false;
    }
}

std::string_view to_string(RelationType type) {
    switch (type) {
        case RelationType::Composition: return "composition";
        case RelationType::Assignment: return "assignment";
        case RelationType::Serving: return "serving";
        case RelationType::Access: return "access";
        case RelationType::Triggering: return "triggering";
        case RelationType::SignalFlow: return "signal_flow";
        case RelationType::QuantityFlow: return "quantity_flow";
        case RelationType::Association: return "association";
    }
    return "?";
}

bool propagates(RelationType type) {
    switch (type) {
        case RelationType::Serving:
        case RelationType::Access:
        case RelationType::Triggering:
        case RelationType::SignalFlow:
        case RelationType::QuantityFlow:
        case RelationType::Assignment: return true;
        case RelationType::Composition:
        case RelationType::Association: return false;
    }
    return false;
}

bool is_bidirectional(RelationType type) { return type == RelationType::QuantityFlow; }

}  // namespace cprisk::model
