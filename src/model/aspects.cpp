#include "model/aspects.hpp"

namespace cprisk::model {

std::string_view to_string(Aspect aspect) {
    switch (aspect) {
        case Aspect::Architecture: return "architecture";
        case Aspect::Dynamics: return "dynamics";
        case Aspect::Deployment: return "deployment";
    }
    return "?";
}

Result<SystemModel> merge_aspects(const std::vector<AspectModel>& aspects) {
    SystemModel merged;
    for (const AspectModel& aspect : aspects) {
        auto result = merged.merge(aspect.model);
        if (!result.ok()) {
            return Result<SystemModel>::failure("merging " + std::string(to_string(aspect.aspect)) +
                                                " aspect: " + result.error());
        }
    }
    auto valid = merged.validate();
    if (!valid.ok()) return Result<SystemModel>::failure(valid.error());
    return merged;
}

}  // namespace cprisk::model
