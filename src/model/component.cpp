#include "model/component.hpp"

namespace cprisk::model {

std::string_view to_string(Exposure exposure) {
    switch (exposure) {
        case Exposure::None: return "none";
        case Exposure::Internal: return "internal";
        case Exposure::Public: return "public";
    }
    return "?";
}

std::string_view to_string(FaultEffect effect) {
    switch (effect) {
        case FaultEffect::StuckAt: return "stuck_at";
        case FaultEffect::Omission: return "omission";
        case FaultEffect::Corruption: return "corruption";
        case FaultEffect::Delay: return "delay";
        case FaultEffect::Compromise: return "compromise";
    }
    return "?";
}

bool Component::has_fault_mode(std::string_view fault_id) const {
    return find_fault_mode(fault_id) != nullptr;
}

const FaultMode* Component::find_fault_mode(std::string_view fault_id) const {
    for (const FaultMode& mode : fault_modes) {
        if (mode.id == fault_id) return &mode;
    }
    return nullptr;
}

}  // namespace cprisk::model
