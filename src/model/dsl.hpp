// cprisk/model/dsl.hpp
//
// A lightweight textual model format — the role Archimate files play in the
// paper's toolchain ("a common language and toolkit between the analyst and
// the engineers", §II-C). Line-oriented, '#' comments:
//
//   component <id> <element_type> [name="..."] [exposure=none|internal|public]
//             [version=...] [asset=VL|L|M|H|VH]
//   fault <component_id> <fault_id> <effect>
//             [severity=VL..VH] [likelihood=VL..VH] [forced=<value>]
//   relation <source> <relation_type> <target> [label="..."]
//   behavior <component_id> <<<
//     ... embedded ASP fragment ...
//   >>>
//
// `parse_model` and `serialize_model` round-trip (modulo comments and
// ordering), so models can be stored in version control next to the code.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/diagnostics.hpp"
#include "common/result.hpp"
#include "model/system_model.hpp"

namespace cprisk::model {

/// One `behavior <id> <<< ... >>>` block as it appeared in the source text,
/// captured for tooling (src/lint) that needs to map fragment-relative ASP
/// source locations back to file-absolute lines.
struct BehaviorFragment {
    ComponentId component;
    int header_line = 0;  ///< 1-based line of the `behavior ... <<<` header;
                          ///< fragment line k is file line header_line + k
    std::string text;
    bool component_known = false;  ///< attachment target existed at parse time
};

/// Side table mapping model entities back to source lines.
struct ModelSourceMap {
    std::vector<BehaviorFragment> fragments;
    std::map<ComponentId, int> component_lines;  ///< first declaration line
};

/// Parses the textual format into a validated SystemModel.
Result<SystemModel> parse_model(std::string_view text);

/// Batch-diagnostics variant: instead of stopping at the first problem,
/// reports every recoverable error to `sink` (rule ids "cpm-syntax",
/// "model-dangling-relation", "model-unknown-fault-target",
/// "model-unknown-behavior-component", "model-bad-component",
/// "model-invalid"), skips the offending statements and returns the
/// best-effort model built from the rest. `source_map`, when non-null,
/// receives behaviour fragments and component declaration lines.
SystemModel parse_model_lenient(std::string_view text, DiagnosticSink& sink,
                                ModelSourceMap* source_map = nullptr);

/// Serializes a model into the textual format (components, faults,
/// relations, behaviours; refinement state is structural and re-emerges from
/// the Composition relations).
std::string serialize_model(const SystemModel& model);

/// Element/relation type lookups by their `to_string` names.
Result<ElementType> parse_element_type(std::string_view name);
Result<RelationType> parse_relation_type(std::string_view name);
Result<FaultEffect> parse_fault_effect(std::string_view name);
Result<Exposure> parse_exposure(std::string_view name);

}  // namespace cprisk::model
