// cprisk/model/dsl.hpp
//
// A lightweight textual model format — the role Archimate files play in the
// paper's toolchain ("a common language and toolkit between the analyst and
// the engineers", §II-C). Line-oriented, '#' comments:
//
//   component <id> <element_type> [name="..."] [exposure=none|internal|public]
//             [version=...] [asset=VL|L|M|H|VH]
//   fault <component_id> <fault_id> <effect>
//             [severity=VL..VH] [likelihood=VL..VH] [forced=<value>]
//   relation <source> <relation_type> <target> [label="..."]
//   behavior <component_id> <<<
//     ... embedded ASP fragment ...
//   >>>
//
// `parse_model` and `serialize_model` round-trip (modulo comments and
// ordering), so models can be stored in version control next to the code.
#pragma once

#include <string>
#include <string_view>

#include "common/result.hpp"
#include "model/system_model.hpp"

namespace cprisk::model {

/// Parses the textual format into a validated SystemModel.
Result<SystemModel> parse_model(std::string_view text);

/// Serializes a model into the textual format (components, faults,
/// relations, behaviours; refinement state is structural and re-emerges from
/// the Composition relations).
std::string serialize_model(const SystemModel& model);

/// Element/relation type lookups by their `to_string` names.
Result<ElementType> parse_element_type(std::string_view name);
Result<RelationType> parse_relation_type(std::string_view name);
Result<FaultEffect> parse_fault_effect(std::string_view name);
Result<Exposure> parse_exposure(std::string_view name);

}  // namespace cprisk::model
