// cprisk/model/component_library.hpp
//
// Component-type library (paper step 1: "component-type libraries support
// reusing already existing sub-models"). A ComponentTemplate bundles the
// element type, its default fault modes, default behaviour fragments and
// default security metadata; instantiating it stamps a Component plus its
// behaviour into a model. A standard CPS library (tanks, valves, sensors,
// controllers, HMIs, workstations, networks) ships built in.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "model/system_model.hpp"

namespace cprisk::model {

/// A reusable component type with its validated sub-model defaults.
struct ComponentTemplate {
    std::string type_name;  ///< library key, e.g. "valve_actuator"
    ElementType element_type = ElementType::Node;
    Exposure default_exposure = Exposure::None;
    qual::Level default_asset_value = qual::Level::Medium;
    std::vector<FaultMode> fault_modes;
    /// ASP behaviour fragments; occurrences of "$self" are replaced with the
    /// instance id at instantiation time.
    std::vector<std::string> behavior_fragments;
    std::map<std::string, std::string> properties;
};

class ComponentLibrary {
public:
    /// Registers (or replaces) a template.
    void register_template(ComponentTemplate tmpl);

    bool has(const std::string& type_name) const;
    Result<ComponentTemplate> get(const std::string& type_name) const;
    std::vector<std::string> type_names() const;
    std::size_t size() const { return templates_.size(); }

    /// Creates a component from a template and inserts it (with its
    /// behaviour fragments) into `model`.
    Result<void> instantiate(const std::string& type_name, const ComponentId& id,
                             const std::string& display_name, SystemModel& model) const;

    /// The built-in CPS library used by the case study and examples:
    /// water_tank, valve_actuator, valve_controller, level_sensor,
    /// plant_controller, hmi, engineering_workstation, office_network,
    /// control_network, email_client, web_browser, plc.
    static ComponentLibrary standard_cps();

private:
    std::map<std::string, ComponentTemplate> templates_;
};

}  // namespace cprisk::model
