#include "model/dsl.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <sstream>

#include "common/strings.hpp"

namespace cprisk::model {

namespace {

template <typename Enum>
Result<Enum> parse_by_name(std::string_view name, Enum last, const char* what) {
    for (int i = 0; i <= static_cast<int>(last); ++i) {
        const auto candidate = static_cast<Enum>(i);
        if (to_string(candidate) == name) return candidate;
    }
    return Result<Enum>::failure(std::string("unknown ") + what + " '" + std::string(name) +
                                 "'");
}

/// Splits one DSL line into whitespace-separated fields, honouring
/// double-quoted strings ("multi word") as single fields.
Result<std::vector<std::string>> split_fields(const std::string& line) {
    std::vector<std::string> fields;
    std::string current;
    bool in_quotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (in_quotes) {
            if (c == '"') {
                in_quotes = false;
            } else {
                current += c;
            }
            continue;
        }
        if (c == '"') {
            in_quotes = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!current.empty()) {
                fields.push_back(std::move(current));
                current.clear();
            }
            continue;
        }
        current += c;
    }
    if (in_quotes) {
        return Result<std::vector<std::string>>::failure("unterminated string");
    }
    if (!current.empty()) fields.push_back(std::move(current));
    return fields;
}

/// Parses trailing key=value options from `fields[start..]`.
Result<std::map<std::string, std::string>> parse_options(
    const std::vector<std::string>& fields, std::size_t start) {
    std::map<std::string, std::string> options;
    for (std::size_t i = start; i < fields.size(); ++i) {
        const auto eq = fields[i].find('=');
        if (eq == std::string::npos || eq == 0) {
            return Result<std::map<std::string, std::string>>::failure(
                "expected key=value, found '" + fields[i] + "'");
        }
        options[fields[i].substr(0, eq)] = fields[i].substr(eq + 1);
    }
    return options;
}

/// Parses a `prior=` fault option: "A/B" Beta pseudo-counts (both positive)
/// or "logodds:X" (converted to a strength-10 Beta around mean
/// 1/(1+e^-X)). Returns (alpha, beta), or nullopt on malformed input.
std::optional<std::pair<double, double>> parse_prior_spec(const std::string& spec) {
    auto parse_double = [](const std::string& text, double* out) {
        if (text.empty()) return false;
        errno = 0;
        char* end = nullptr;
        const double value = std::strtod(text.c_str(), &end);
        if (errno != 0 || end != text.c_str() + text.size() || !std::isfinite(value)) {
            return false;
        }
        *out = value;
        return true;
    };
    if (spec.rfind("logodds:", 0) == 0) {
        double log_odds = 0.0;
        if (!parse_double(spec.substr(8), &log_odds)) return std::nullopt;
        const double mean = 1.0 / (1.0 + std::exp(-log_odds));
        constexpr double kStrength = 10.0;
        return std::make_pair(mean * kStrength, kStrength - mean * kStrength);
    }
    const auto slash = spec.find('/');
    if (slash == std::string::npos || slash == 0 || slash + 1 >= spec.size()) {
        return std::nullopt;
    }
    double alpha = 0.0;
    double beta = 0.0;
    if (!parse_double(spec.substr(0, slash), &alpha)) return std::nullopt;
    if (!parse_double(spec.substr(slash + 1), &beta)) return std::nullopt;
    if (!(alpha > 0.0) || !(beta > 0.0)) return std::nullopt;
    return std::make_pair(alpha, beta);
}

}  // namespace

Result<ElementType> parse_element_type(std::string_view name) {
    return parse_by_name(name, ElementType::Material, "element type");
}

Result<RelationType> parse_relation_type(std::string_view name) {
    return parse_by_name(name, RelationType::Association, "relation type");
}

Result<FaultEffect> parse_fault_effect(std::string_view name) {
    return parse_by_name(name, FaultEffect::Compromise, "fault effect");
}

Result<Exposure> parse_exposure(std::string_view name) {
    return parse_by_name(name, Exposure::Public, "exposure");
}

SystemModel parse_model_lenient(std::string_view text, DiagnosticSink& sink,
                                ModelSourceMap* source_map) {
    SystemModel model;
    std::istringstream stream{std::string(text)};
    std::string raw;
    int line_no = 0;

    auto report = [&](const char* rule, int line, const std::string& message) {
        sink.error(rule, message, SourceLoc{line, 1});
    };

    while (std::getline(stream, raw)) {
        ++line_no;
        const std::string line{trim(raw)};
        if (line.empty() || line[0] == '#') continue;

        auto fields_result = split_fields(line);
        if (!fields_result.ok()) {
            report("cpm-syntax", line_no, fields_result.error());
            continue;
        }
        const auto& fields = fields_result.value();
        const std::string& keyword = fields[0];

        if (keyword == "component") {
            if (fields.size() < 3) {
                report("cpm-syntax", line_no, "component needs: id element_type");
                continue;
            }
            auto type = parse_element_type(fields[2]);
            if (!type.ok()) {
                report("cpm-syntax", line_no, type.error());
                continue;
            }
            auto options = parse_options(fields, 3);
            if (!options.ok()) {
                report("cpm-syntax", line_no, options.error());
                continue;
            }

            Component component;
            component.id = fields[1];
            component.name = fields[1];
            component.type = type.value();
            bool options_ok = true;
            for (const auto& [key, value] : options.value()) {
                if (key == "name") {
                    component.name = value;
                } else if (key == "exposure") {
                    auto exposure = parse_exposure(value);
                    if (!exposure.ok()) {
                        report("cpm-syntax", line_no, exposure.error());
                        options_ok = false;
                        break;
                    }
                    component.exposure = exposure.value();
                } else if (key == "version") {
                    component.version = value;
                } else if (key == "asset") {
                    auto level = qual::parse_level(value);
                    if (!level.ok()) {
                        report("cpm-syntax", line_no, level.error());
                        options_ok = false;
                        break;
                    }
                    component.asset_value = level.value();
                } else {
                    component.properties[key] = value;
                }
            }
            if (!options_ok) continue;
            const ComponentId id = component.id;
            auto added = model.add_component(std::move(component));
            if (!added.ok()) {
                report("model-bad-component", line_no, added.error());
                continue;
            }
            if (source_map != nullptr) source_map->component_lines.emplace(id, line_no);
        } else if (keyword == "fault") {
            if (fields.size() < 4) {
                report("cpm-syntax", line_no, "fault needs: component fault_id effect");
                continue;
            }
            if (!model.has_component(fields[1])) {
                report("model-unknown-fault-target", line_no,
                       "unknown component '" + fields[1] + "'");
                continue;
            }
            auto effect = parse_fault_effect(fields[3]);
            if (!effect.ok()) {
                report("cpm-syntax", line_no, effect.error());
                continue;
            }
            auto options = parse_options(fields, 4);
            if (!options.ok()) {
                report("cpm-syntax", line_no, options.error());
                continue;
            }

            FaultMode mode;
            mode.id = fields[2];
            mode.effect = effect.value();
            bool options_ok = true;
            for (const auto& [key, value] : options.value()) {
                if (key == "severity") {
                    auto level = qual::parse_level(value);
                    if (!level.ok()) {
                        report("cpm-syntax", line_no, level.error());
                        options_ok = false;
                        break;
                    }
                    mode.severity = level.value();
                } else if (key == "likelihood") {
                    auto level = qual::parse_level(value);
                    if (!level.ok()) {
                        report("cpm-syntax", line_no, level.error());
                        options_ok = false;
                        break;
                    }
                    mode.likelihood = level.value();
                } else if (key == "forced") {
                    mode.forced_value = value;
                } else if (key == "prior") {
                    // Lenient: a malformed prior degrades to the likelihood
                    // default with a warning instead of rejecting the fault.
                    auto parsed = parse_prior_spec(value);
                    if (!parsed.has_value()) {
                        sink.warning("model-bad-prior",
                                     "malformed prior '" + value +
                                         "' (expected A/B pseudo-counts or logodds:X); "
                                         "falling back to the likelihood default",
                                     SourceLoc{line_no, 1});
                    } else {
                        mode.prior.present = true;
                        mode.prior.alpha = parsed->first;
                        mode.prior.beta = parsed->second;
                        mode.prior.spec = value;
                    }
                } else {
                    report("cpm-syntax", line_no, "unknown fault option '" + key + "'");
                    options_ok = false;
                    break;
                }
            }
            if (!options_ok) continue;
            model.component_mutable(fields[1]).fault_modes.push_back(std::move(mode));
        } else if (keyword == "relation") {
            if (fields.size() < 4) {
                report("cpm-syntax", line_no, "relation needs: source relation_type target");
                continue;
            }
            auto type = parse_relation_type(fields[2]);
            if (!type.ok()) {
                report("cpm-syntax", line_no, type.error());
                continue;
            }
            auto options = parse_options(fields, 4);
            if (!options.ok()) {
                report("cpm-syntax", line_no, options.error());
                continue;
            }
            Relation relation{fields[1], fields[3], type.value(), ""};
            auto label = options.value().find("label");
            if (label != options.value().end()) relation.label = label->second;
            auto added = model.add_relation(std::move(relation));
            if (!added.ok()) {
                report("model-dangling-relation", line_no, added.error());
                continue;
            }
        } else if (keyword == "behavior") {
            if (fields.size() < 3 || fields[2] != "<<<") {
                report("cpm-syntax", line_no, "behavior needs: component <<<");
                continue;
            }
            const int header_line = line_no;
            std::string fragment;
            bool closed = false;
            while (std::getline(stream, raw)) {
                ++line_no;
                if (std::string(trim(raw)) == ">>>") {
                    closed = true;
                    break;
                }
                fragment += raw;
                fragment += '\n';
            }
            if (!closed) {
                report("cpm-syntax", line_no, "behavior block not closed with >>>");
                continue;
            }
            const bool known = model.has_component(fields[1]);
            if (source_map != nullptr) {
                source_map->fragments.push_back(
                    BehaviorFragment{fields[1], header_line, fragment, known});
            }
            if (!known) {
                report("model-unknown-behavior-component", header_line,
                       "unknown component '" + fields[1] + "'");
                continue;
            }
            auto added = model.add_behavior(fields[1], std::move(fragment));
            if (!added.ok()) report("model-unknown-behavior-component", header_line, added.error());
        } else {
            report("cpm-syntax", line_no, "unknown keyword '" + keyword + "'");
        }
    }

    auto valid = model.validate();
    if (!valid.ok()) sink.error("model-invalid", valid.error());
    return model;
}

Result<SystemModel> parse_model(std::string_view text) {
    DiagnosticSink sink;
    SystemModel model = parse_model_lenient(text, sink);
    for (const Diagnostic& d : sink.diagnostics()) {
        if (d.severity != Severity::Error) continue;
        if (d.loc.valid()) {
            return Result<SystemModel>::failure("line " + std::to_string(d.loc.line) + ": " +
                                                d.message);
        }
        return Result<SystemModel>::failure(d.message);
    }
    return model;
}

std::string serialize_model(const SystemModel& model) {
    std::string out = "# cprisk model\n";
    for (const Component& component : model.components()) {
        out += "component " + component.id + " " + std::string(to_string(component.type));
        if (component.name != component.id) out += " name=\"" + component.name + "\"";
        if (component.exposure != Exposure::None) {
            out += " exposure=" + std::string(to_string(component.exposure));
        }
        if (!component.version.empty()) out += " version=" + component.version;
        if (component.asset_value != qual::Level::Medium) {
            out += " asset=" + std::string(qual::to_short_string(component.asset_value));
        }
        for (const auto& [key, value] : component.properties) {
            out += " " + key + "=" + value;
        }
        out += "\n";
        for (const FaultMode& mode : component.fault_modes) {
            out += "fault " + component.id + " " + mode.id + " " +
                   std::string(to_string(mode.effect));
            if (mode.severity != qual::Level::Medium) {
                out += " severity=" + std::string(qual::to_short_string(mode.severity));
            }
            if (mode.likelihood != qual::Level::Medium) {
                out += " likelihood=" + std::string(qual::to_short_string(mode.likelihood));
            }
            if (!mode.forced_value.empty()) out += " forced=" + mode.forced_value;
            if (mode.prior.present) out += " prior=" + mode.prior.spec;
            out += "\n";
        }
    }
    for (const Relation& relation : model.relations()) {
        out += "relation " + relation.source + " " + std::string(to_string(relation.type)) +
               " " + relation.target;
        if (!relation.label.empty()) out += " label=\"" + relation.label + "\"";
        out += "\n";
    }
    for (const Component& component : model.components()) {
        for (const std::string& fragment : model.behaviors(component.id)) {
            out += "behavior " + component.id + " <<<\n" + fragment;
            if (!fragment.empty() && fragment.back() != '\n') out += "\n";
            out += ">>>\n";
        }
    }
    return out;
}

}  // namespace cprisk::model
