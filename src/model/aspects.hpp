// cprisk/model/aspects.hpp
//
// Aspect models (paper step 1): "the system model results from merging the
// different aspect models (like architecture, dynamics, and deployment) of
// the complete IT/OT system into a single model". Each aspect is itself a
// SystemModel fragment; `merge_aspects` folds them into the analysis model.
//
//  * Architecture — components + structural relations.
//  * Dynamics     — per-component qualitative behaviour rules (ASP dynamic
//                   fragments) and signal/quantity flows.
//  * Deployment   — Assignment relations from application components to the
//                   nodes hosting them.
#pragma once

#include <string_view>
#include <vector>

#include "model/system_model.hpp"

namespace cprisk::model {

enum class Aspect : std::uint8_t { Architecture, Dynamics, Deployment };

std::string_view to_string(Aspect aspect);

struct AspectModel {
    Aspect aspect = Aspect::Architecture;
    SystemModel model;
};

/// Merges aspect models into a single analysis model. Components may appear
/// in several aspects (identically); relations and behaviours are unioned.
/// The merged model is validated before being returned.
Result<SystemModel> merge_aspects(const std::vector<AspectModel>& aspects);

}  // namespace cprisk::model
