#include "model/to_asp.hpp"

#include "asp/parser.hpp"
#include "qualitative/level.hpp"

namespace cprisk::model {

namespace {

using asp::Atom;
using asp::Head;
using asp::Program;
using asp::Rule;
using asp::Term;

void fact(Program& program, Atom atom) {
    Rule rule;
    rule.head = Head::make_atom(std::move(atom));
    program.add_rule(std::move(rule));
}

Term sym(std::string_view text) { return Term::symbol(std::string(text)); }

}  // namespace

Result<asp::Program> to_asp(const SystemModel& model, const ToAspOptions& options) {
    Program program;

    for (const Component& component : model.components()) {
        const Term id = sym(component.id);
        fact(program, Atom{"component", {id}});
        fact(program, Atom{"component_type", {id, sym(to_string(component.type))}});
        fact(program, Atom{"component_layer", {id, sym(to_string(layer_of(component.type)))}});
        fact(program, Atom{is_ot(component.type) ? "ot_component" : "it_component", {id}});
        fact(program, Atom{"exposure", {id, sym(to_string(component.exposure))}});
        fact(program,
             Atom{"asset_value", {id, Term::integer(qual::index_of(component.asset_value))}});
        if (model.is_refined(component.id)) fact(program, Atom{"refined", {id}});

        if (options.include_fault_facts) {
            for (const FaultMode& mode : component.fault_modes) {
                const Term fault_id = sym(mode.id);
                fact(program, Atom{"fault", {id, fault_id}});
                fact(program, Atom{"fault_effect", {id, fault_id, sym(to_string(mode.effect))}});
                fact(program, Atom{"fault_severity",
                                   {id, fault_id, Term::integer(qual::index_of(mode.severity))}});
                fact(program,
                     Atom{"fault_likelihood",
                          {id, fault_id, Term::integer(qual::index_of(mode.likelihood))}});
            }
        }
    }

    for (const Relation& relation : model.relations()) {
        const Term source = sym(relation.source);
        const Term target = sym(relation.target);
        fact(program, Atom{"relation", {source, target, sym(to_string(relation.type))}});
        if (relation.type == RelationType::Composition) {
            fact(program, Atom{"part_of", {source, target}});
        }
        if (propagates(relation.type) && !model.is_refined(relation.source) &&
            !model.is_refined(relation.target)) {
            fact(program, Atom{"connected", {source, target}});
            if (is_bidirectional(relation.type)) {
                fact(program, Atom{"connected", {target, source}});
            }
        }
    }

    if (options.include_behaviors) {
        for (const Component& component : model.components()) {
            for (const std::string& fragment : model.behaviors(component.id)) {
                auto parsed = asp::parse_program(fragment);
                if (!parsed.ok()) {
                    return Result<asp::Program>::failure("behavior of '" + component.id +
                                                         "': " + parsed.error());
                }
                program.append(parsed.value());
            }
        }
    }

    return program;
}

}  // namespace cprisk::model
