// cprisk/model/to_asp.hpp
//
// Translation of the merged system model into ASP facts — the bridge
// between the Archimate-style engineering model and the logic reasoner
// ("this system validation model can then be used as input to the logic
// reasoner engine", paper §II-C).
//
// Emitted predicates (base section):
//   component(C).                      component_type(C, Type).
//   component_layer(C, Layer).        ot_component(C). it_component(C).
//   exposure(C, none|internal|public).
//   asset_value(C, 0..4).             % VL..VH as integers for optimization
//   fault(C, F).                      fault_effect(C, F, Effect).
//   fault_severity(C, F, 0..4).       fault_likelihood(C, F, 0..4).
//   connected(Src, Dst).              % one fact per propagating direction
//   relation(Src, Dst, Type).
//   refined(C).                       part_of(Parent, Part).
//
// Behaviour fragments attached to components are parsed and appended with
// their own (possibly temporal) sections.
#pragma once

#include "asp/syntax.hpp"
#include "common/result.hpp"
#include "model/system_model.hpp"

namespace cprisk::model {

struct ToAspOptions {
    bool include_behaviors = true;
    bool include_fault_facts = true;
};

/// Translates `model` into an ASP program of facts (+ behaviour rules).
/// Fails if a behaviour fragment does not parse.
Result<asp::Program> to_asp(const SystemModel& model, const ToAspOptions& options = {});

}  // namespace cprisk::model
