// cprisk/model/component.hpp
//
// Component instances and typed relations of the system model. Components
// carry the security metadata the risk assessment consumes: network
// exposure, software version (for version-specific weakness matching, §VI),
// fault modes with local effects, and asset value.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "model/element.hpp"
#include "qualitative/level.hpp"

namespace cprisk::model {

/// Stable component identifier (lower_snake_case; doubles as the ASP
/// constant naming the component).
using ComponentId = std::string;

/// How a component can be reached by an attacker.
enum class Exposure : std::uint8_t {
    None,      ///< air-gapped / purely physical
    Internal,  ///< reachable from the internal network
    Public,    ///< reachable from a public network
};

std::string_view to_string(Exposure exposure);

/// The local effect class of a fault mode, following classic EPA error
/// taxonomies: how the component's output deviates when the fault is active.
enum class FaultEffect : std::uint8_t {
    StuckAt,    ///< output frozen at its current/forced value
    Omission,   ///< no output produced ("no signal")
    Corruption, ///< wrong value produced
    Delay,      ///< output late
    Compromise, ///< component under attacker control (can cause any effect)
};

std::string_view to_string(FaultEffect effect);

/// Optional explicit Beta prior over a fault mode's activation probability,
/// as written in the model bundle (`prior=A/B` pseudo-counts or
/// `prior=logodds:X`). Plain data here; the Bayesian semantics live in
/// risk/prior.hpp. `spec` keeps the verbatim source text so serialization
/// round-trips byte-identically.
struct FaultPrior {
    bool present = false;
    double alpha = 0.0;  ///< Beta pseudo-count of activation
    double beta = 0.0;   ///< Beta pseudo-count of non-activation
    std::string spec;    ///< source text after "prior=", verbatim
};

/// A fault mode attached to a component type or instance. `forced_value` is
/// meaningful for StuckAt faults (e.g. "open", "closed").
struct FaultMode {
    std::string id;            ///< e.g. "stuck_at_open"
    FaultEffect effect = FaultEffect::StuckAt;
    std::string forced_value;  ///< StuckAt target state, if any
    qual::Level severity = qual::Level::Medium;   ///< local severity estimate
    qual::Level likelihood = qual::Level::Medium; ///< occurrence likelihood
    FaultPrior prior{};        ///< optional explicit likelihood prior
};

/// A component instance in the system model.
struct Component {
    ComponentId id;
    std::string name;          ///< human-readable label
    ElementType type = ElementType::Node;
    Exposure exposure = Exposure::None;
    std::string version;       ///< software/firmware version, may be empty
    qual::Level asset_value = qual::Level::Medium;  ///< loss magnitude anchor
    std::vector<FaultMode> fault_modes;
    std::map<std::string, std::string> properties;  ///< free-form metadata

    bool has_fault_mode(std::string_view fault_id) const;
    const FaultMode* find_fault_mode(std::string_view fault_id) const;
};

/// A typed, directed relation between two components.
struct Relation {
    ComponentId source;
    ComponentId target;
    RelationType type = RelationType::Association;
    std::string label;  ///< optional flow label (e.g. "control_msg", "water")
};

}  // namespace cprisk::model
