#include "common/table.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cprisk {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
    require(!header_.empty(), "TextTable: header must be non-empty");
}

void TextTable::add_row(std::vector<std::string> row) {
    require(row.size() == header_.size(),
            "TextTable: row arity mismatch (" + std::to_string(row.size()) + " vs " +
                std::to_string(header_.size()) + ")");
    rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string>& row) {
        std::string line = "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += ' ';
            line += row[c];
            line.append(width[c] - row[c].size(), ' ');
            line += " |";
        }
        return line + "\n";
    };
    auto rule = [&]() {
        std::string line = "+";
        for (std::size_t c = 0; c < width.size(); ++c) {
            line.append(width[c] + 2, '-');
            line += '+';
        }
        return line + "\n";
    };

    std::string out = rule() + emit_row(header_) + rule();
    for (const auto& row : rows_) out += emit_row(row);
    out += rule();
    return out;
}

std::string TextTable::render_csv() const {
    auto quote = [](const std::string& field) {
        if (field.find_first_of(",\"\n") == std::string::npos) return field;
        std::string out = "\"";
        for (char c : field) {
            if (c == '"') out += '"';
            out += c;
        }
        out += '"';
        return out;
    };
    auto emit = [&](const std::vector<std::string>& row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0) line += ',';
            line += quote(row[c]);
        }
        return line + "\n";
    };
    std::string out = emit(header_);
    for (const auto& row : rows_) out += emit(row);
    return out;
}

}  // namespace cprisk
