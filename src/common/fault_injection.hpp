// cprisk/common/fault_injection.hpp
//
// Deterministic fault-injection harness for robustness testing. Failure
// seams (grounder entry, solver search, stability check, journal I/O, ...)
// call `should_fail("<site>")`; sites sit at coarse per-solve/per-scenario
// seams, never inside hot inner loops, so the uncontended lock taken per
// call is irrelevant to throughput. Tests arm a site with a count-down
// trigger — the site reports failure exactly once, on its N-th upcoming hit
// — and assert that the pipeline survives with a clean diagnostic and a
// sound partial report (tests/robustness/fault_sweep_test.cpp sweeps every
// registered site).
//
// Sites self-register on first hit, so a clean reference run discovers the
// complete site list for the sweep; nothing to keep in sync by hand.
//
// The process-wide registry is an ordinary FaultInjectionRegistry instance
// (global_registry()); RunContext carries a pointer to it so harness code
// can arm and inspect sites through the same context object that bundles
// the run's budget and observability sinks (obs/run_context.hpp). The
// free functions below remain the seam-facing API and always hit the
// global registry.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace cprisk::fault {

/// Count-down fault triggers keyed by site name. All methods are
/// thread-safe.
class FaultInjectionRegistry {
public:
    /// True when `site` is armed and its count-down reached zero on this
    /// hit. Fires at most once per arm() (the trigger disarms itself). Also
    /// registers the site and counts the hit.
    bool should_fail(const char* site);

    /// Arms `site` to fail on its `countdown`-th upcoming hit (1 = next hit).
    void arm(const std::string& site, int countdown = 1);

    /// Disarms every site and resets hit counters. Site registration
    /// survives.
    void reset();

    /// Every site encountered (or armed) so far, sorted.
    std::vector<std::string> registered_sites() const;

    /// Hits recorded for `site` since the last reset(); 0 when never hit.
    std::size_t hits(const std::string& site) const;

private:
    struct Site {
        std::size_t hits = 0;
        int countdown = 0;  ///< 0 = disarmed; fires when a hit decrements it to 0
    };

    mutable std::mutex mutex_;
    std::map<std::string, Site> sites_;
};

/// The process-wide registry every seam consults.
FaultInjectionRegistry& global_registry();

/// Seam-facing shorthands over global_registry().
bool should_fail(const char* site);
void arm(const std::string& site, int countdown = 1);
void reset();
std::vector<std::string> registered_sites();
std::size_t hits(const std::string& site);

}  // namespace cprisk::fault
