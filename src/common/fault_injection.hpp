// cprisk/common/fault_injection.hpp
//
// Deterministic fault-injection harness for robustness testing. Failure
// seams (grounder entry, solver search, stability check, journal I/O, ...)
// call `should_fail("<site>")`; sites sit at coarse per-solve/per-scenario
// seams, never inside hot inner loops, so the uncontended lock taken per
// call is irrelevant to throughput. Tests arm a site with a count-down
// trigger — the site reports failure exactly once, on its N-th upcoming hit
// — and assert that the pipeline survives with a clean diagnostic and a
// sound partial report (tests/robustness/fault_sweep_test.cpp sweeps every
// registered site).
//
// Sites self-register on first hit, so a clean reference run discovers the
// complete site list for the sweep; nothing to keep in sync by hand.
#pragma once

#include <string>
#include <vector>

namespace cprisk::fault {

/// True when `site` is armed and its count-down reached zero on this hit.
/// Fires at most once per arm() (the trigger disarms itself). Also registers
/// the site and counts the hit.
bool should_fail(const char* site);

/// Arms `site` to fail on its `countdown`-th upcoming hit (1 = next hit).
void arm(const std::string& site, int countdown = 1);

/// Disarms every site and resets hit counters. Site registration survives.
void reset();

/// Every site encountered (or armed) so far in this process, sorted.
std::vector<std::string> registered_sites();

/// Hits recorded for `site` since the last reset(); 0 when never hit.
std::size_t hits(const std::string& site);

}  // namespace cprisk::fault
