// cprisk/common/strings.hpp
//
// Small string utilities shared by the parser, report emitters and catalogs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cprisk {

/// Splits `text` on `sep`; keeps empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Joins `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Lower-cases ASCII letters.
std::string to_lower(std::string_view text);

/// Converts an arbitrary label to a lower_snake_case identifier usable as an
/// ASP constant (e.g. "Engineering Workstation" -> "engineering_workstation").
std::string to_identifier(std::string_view label);

}  // namespace cprisk
