#include "common/diagnostics.hpp"

#include <algorithm>

#include "common/schema.hpp"

namespace cprisk {

std::string SourceLoc::to_string() const {
    if (!valid()) return "unknown location";
    return "line " + std::to_string(line) + ", column " + std::to_string(column);
}

std::string_view to_string(Severity severity) {
    switch (severity) {
        case Severity::Note: return "note";
        case Severity::Warning: return "warning";
        case Severity::Error: return "error";
    }
    return "?";
}

std::string Diagnostic::to_string() const {
    std::string out;
    if (!file.empty()) out += file + ":";
    if (loc.valid()) {
        out += std::to_string(loc.line) + ":" + std::to_string(loc.column) + ":";
    }
    if (!out.empty()) out += " ";
    out += std::string(cprisk::to_string(severity)) + ": " + message;
    if (!rule.empty()) out += " [" + rule + "]";
    return out;
}

void DiagnosticSink::report(Diagnostic diagnostic) {
    if (diagnostic.file.empty()) diagnostic.file = file_;
    diagnostics_.push_back(std::move(diagnostic));
}

void DiagnosticSink::report(Severity severity, std::string rule, std::string message,
                            SourceLoc loc, std::string hint) {
    Diagnostic d;
    d.severity = severity;
    d.rule = std::move(rule);
    d.message = std::move(message);
    d.loc = loc;
    d.hint = std::move(hint);
    report(std::move(d));
}

void DiagnosticSink::error(std::string rule, std::string message, SourceLoc loc,
                           std::string hint) {
    report(Severity::Error, std::move(rule), std::move(message), loc, std::move(hint));
}

void DiagnosticSink::warning(std::string rule, std::string message, SourceLoc loc,
                             std::string hint) {
    report(Severity::Warning, std::move(rule), std::move(message), loc, std::move(hint));
}

void DiagnosticSink::note(std::string rule, std::string message, SourceLoc loc,
                          std::string hint) {
    report(Severity::Note, std::move(rule), std::move(message), loc, std::move(hint));
}

void DiagnosticSink::absorb(const DiagnosticSink& other, int line_offset,
                            const std::string& file) {
    for (Diagnostic d : other.diagnostics()) {
        if (d.loc.valid()) d.loc.line += line_offset;
        if (d.file.empty()) d.file = file;
        report(std::move(d));
    }
}

std::size_t DiagnosticSink::count(Severity severity) const {
    return static_cast<std::size_t>(
        std::count_if(diagnostics_.begin(), diagnostics_.end(),
                      [&](const Diagnostic& d) { return d.severity == severity; }));
}

void DiagnosticSink::sort_by_location() {
    std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                         if (a.file != b.file) return a.file < b.file;
                         if (a.loc.line != b.loc.line) return a.loc.line < b.loc.line;
                         return a.loc.column < b.loc.column;
                     });
}

namespace {

std::string summary_line(const std::vector<Diagnostic>& diagnostics) {
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::size_t notes = 0;
    for (const Diagnostic& d : diagnostics) {
        switch (d.severity) {
            case Severity::Error: ++errors; break;
            case Severity::Warning: ++warnings; break;
            case Severity::Note: ++notes; break;
        }
    }
    return std::to_string(errors) + " error(s), " + std::to_string(warnings) +
           " warning(s), " + std::to_string(notes) + " note(s)";
}

std::string json_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    constexpr const char* hex = "0123456789abcdef";
                    out += "\\u00";
                    out += hex[(c >> 4) & 0xf];
                    out += hex[c & 0xf];
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

std::string render_text(const std::vector<Diagnostic>& diagnostics) {
    std::string out;
    for (const Diagnostic& d : diagnostics) {
        out += d.to_string() + "\n";
        if (!d.hint.empty()) out += "  hint: " + d.hint + "\n";
    }
    if (!diagnostics.empty()) out += summary_line(diagnostics) + "\n";
    return out;
}

std::string render_json(const std::vector<Diagnostic>& diagnostics) {
    std::string out = "{\n  \"schema_version\": " + std::to_string(kSchemaVersion) +
                      ",\n  \"diagnostics\": [";
    for (std::size_t i = 0; i < diagnostics.size(); ++i) {
        const Diagnostic& d = diagnostics[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"severity\": \"" + std::string(to_string(d.severity)) + "\"";
        out += ", \"rule\": \"" + json_escape(d.rule) + "\"";
        if (!d.file.empty()) out += ", \"file\": \"" + json_escape(d.file) + "\"";
        if (d.loc.valid()) {
            out += ", \"line\": " + std::to_string(d.loc.line) +
                   ", \"column\": " + std::to_string(d.loc.column);
        }
        out += ", \"message\": \"" + json_escape(d.message) + "\"";
        if (!d.hint.empty()) out += ", \"hint\": \"" + json_escape(d.hint) + "\"";
        out += "}";
    }
    if (!diagnostics.empty()) out += "\n  ";
    out += "],\n";
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::size_t notes = 0;
    for (const Diagnostic& d : diagnostics) {
        switch (d.severity) {
            case Severity::Error: ++errors; break;
            case Severity::Warning: ++warnings; break;
            case Severity::Note: ++notes; break;
        }
    }
    out += "  \"errors\": " + std::to_string(errors) + ",\n";
    out += "  \"warnings\": " + std::to_string(warnings) + ",\n";
    out += "  \"notes\": " + std::to_string(notes) + "\n}\n";
    return out;
}

}  // namespace cprisk
