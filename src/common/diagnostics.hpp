// cprisk/common/diagnostics.hpp
//
// Batch diagnostics engine shared by the ASP front end, the model loader and
// the lint rule packs (src/lint). Unlike Result<T> — which carries exactly
// one failure and stops the pipeline — a DiagnosticSink collects *all*
// findings of a validation pass so an analyst fixes a broken model in one
// edit-run cycle instead of one error at a time. Renderers produce
// human-readable text and machine-readable JSON.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/source_loc.hpp"

namespace cprisk {

enum class Severity : std::uint8_t {
    Note,     ///< stylistic / informational; never affects exit codes
    Warning,  ///< suspicious but not definitely wrong; error under --werror
    Error,    ///< definitely broken input
};

std::string_view to_string(Severity severity);

/// One finding of a validation or lint pass.
struct Diagnostic {
    Severity severity = Severity::Error;
    std::string rule;     ///< stable rule id, e.g. "asp-unsafe-var"
    std::string message;  ///< human-readable, location-free description
    std::string file;     ///< originating file or source label; may be empty
    SourceLoc loc;        ///< position within `file`; may be unknown
    std::string hint;     ///< optional fix-it hint; may be empty

    /// "file:3:7: error: message [rule-id]" (omitting unknown parts).
    std::string to_string() const;
};

/// Collects diagnostics instead of stopping at the first problem.
class DiagnosticSink {
public:
    /// Default file label applied to subsequently reported diagnostics that
    /// do not set one themselves.
    void set_file(std::string file) { file_ = std::move(file); }
    const std::string& file() const { return file_; }

    void report(Diagnostic diagnostic);
    void report(Severity severity, std::string rule, std::string message, SourceLoc loc = {},
                std::string hint = {});

    void error(std::string rule, std::string message, SourceLoc loc = {}, std::string hint = {});
    void warning(std::string rule, std::string message, SourceLoc loc = {},
                 std::string hint = {});
    void note(std::string rule, std::string message, SourceLoc loc = {}, std::string hint = {});

    /// Re-reports every diagnostic of `other` into this sink, shifting line
    /// numbers by `line_offset` and labelling unlabelled entries with
    /// `file`. Used to map fragment-relative locations (e.g. a behaviour
    /// block inside a .cpm bundle) to file-absolute ones.
    void absorb(const DiagnosticSink& other, int line_offset = 0, const std::string& file = "");

    const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
    bool empty() const { return diagnostics_.empty(); }
    std::size_t count(Severity severity) const;
    bool has_errors() const { return count(Severity::Error) > 0; }
    bool has_warnings() const { return count(Severity::Warning) > 0; }

    /// Stable-sorts diagnostics by (file, line, column); ties keep report
    /// order, so per-line findings stay in rule-pack order.
    void sort_by_location();

private:
    std::string file_;
    std::vector<Diagnostic> diagnostics_;
};

/// Renders diagnostics one per line (plus indented hint lines), ending with
/// a "N error(s), M warning(s), K note(s)" summary when non-empty.
std::string render_text(const std::vector<Diagnostic>& diagnostics);

/// Renders a JSON document: {"schema_version": V, "diagnostics": [...],
/// "errors": N, "warnings": M, "notes": K}.
std::string render_json(const std::vector<Diagnostic>& diagnostics);

}  // namespace cprisk
