// cprisk/common/result.hpp
//
// Minimal expected-like result type (the toolchain targets C++20, so
// std::expected is unavailable). A `Result<T>` holds either a value or an
// error message describing a recoverable failure (e.g. a parse error in a
// user-supplied ASP program).
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "common/error.hpp"

namespace cprisk {

template <typename T>
class [[nodiscard]] Result {
public:
    /// Successful result.
    Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

    /// Failed result carrying a human-readable reason.
    static Result failure(std::string message) {
        Result r;
        r.error_ = std::move(message);
        return r;
    }

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    /// Error message; empty for successful results.
    const std::string& error() const { return error_; }

    /// Access the value; throws `Error` if the result failed.
    const T& value() const& {
        require(ok(), "Result::value() on failed result: " + error_);
        return *value_;
    }
    T& value() & {
        require(ok(), "Result::value() on failed result: " + error_);
        return *value_;
    }
    T&& value() && {
        require(ok(), "Result::value() on failed result: " + error_);
        return std::move(*value_);
    }

    const T& value_or(const T& fallback) const {
        return ok() ? *value_ : fallback;
    }

private:
    Result() = default;
    std::optional<T> value_;
    std::string error_;
};

/// Result specialization conveying success/failure only.
template <>
class [[nodiscard]] Result<void> {
public:
    Result() = default;
    static Result failure(std::string message) {
        Result r;
        r.ok_ = false;
        r.error_ = std::move(message);
        return r;
    }
    bool ok() const { return ok_; }
    explicit operator bool() const { return ok_; }
    const std::string& error() const { return error_; }

private:
    bool ok_ = true;
    std::string error_;
};

}  // namespace cprisk
