// cprisk/common/antichain.hpp
//
// Minimal-set antichain under subset inclusion. Two consumers share the
// absorption logic:
//  * fta::FaultTree::minimal_cut_sets — drops non-minimal cut sets after
//    the top-down gate expansion;
//  * epa::run_frontier — maintains the antichain of minimal hazardous
//    fault sets while sweeping the 2^n subset lattice in cardinality
//    order (docs/exhaustive-search.md).
//
// A set S is *dominated* when the antichain already holds a subset of S;
// dominated sets are absorbed (never stored). Inserting in
// size-then-lexicographic order keeps every stored set minimal without a
// second pass: a later set can never be a strict subset of an earlier one.
#pragma once

#include <algorithm>
#include <vector>

namespace cprisk {

/// An antichain of minimal sets. `Set` must be an ordered, sorted-unique
/// container with begin/end/size and lexicographic operator< —
/// std::set<T> and sorted std::vector<T> both qualify.
template <typename Set>
class Antichain {
public:
    /// True when `candidate` is a (non-strict) superset of a stored set.
    bool dominates(const Set& candidate) const {
        return std::any_of(sets_.begin(), sets_.end(), [&](const Set& kept) {
            return std::includes(candidate.begin(), candidate.end(), kept.begin(), kept.end());
        });
    }

    /// Inserts unless dominated. Callers feeding sets in non-decreasing
    /// size order get a true antichain; out-of-order feeds should use
    /// minimal_sets() instead. Returns false when absorbed.
    bool insert(Set candidate) {
        if (dominates(candidate)) return false;
        sets_.push_back(std::move(candidate));
        return true;
    }

    const std::vector<Set>& sets() const { return sets_; }
    std::size_t size() const { return sets_.size(); }
    bool empty() const { return sets_.empty(); }

private:
    std::vector<Set> sets_;
};

/// Batch absorption: the minimal sets of an arbitrary collection, sorted
/// smaller-first then lexicographically (duplicates collapse — a duplicate
/// is a non-strict superset of its twin).
template <typename Set>
std::vector<Set> minimal_sets(std::vector<Set> raw) {
    std::sort(raw.begin(), raw.end(), [](const Set& a, const Set& b) {
        if (a.size() != b.size()) return a.size() < b.size();
        return a < b;
    });
    Antichain<Set> antichain;
    for (Set& candidate : raw) antichain.insert(std::move(candidate));
    return antichain.sets();
}

}  // namespace cprisk
