// cprisk/common/error.hpp
//
// Error type used across the cprisk libraries. Unrecoverable usage errors
// (malformed programs, inconsistent models, out-of-range lookups) throw
// `cprisk::Error`; recoverable conditions travel through `cprisk::Result<T>`
// (see result.hpp).
#pragma once

#include <stdexcept>
#include <string>

namespace cprisk {

/// Exception thrown on unrecoverable API misuse or malformed input.
class Error : public std::runtime_error {
public:
    explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

/// Throws `Error` with `message` when `condition` is false.
inline void require(bool condition, const std::string& message) {
    if (!condition) throw Error(message);
}

}  // namespace cprisk
