// cprisk/common/schema.hpp
//
// Version stamp shared by every machine-readable output surface: report /
// metrics / trace / graph JSON and the serve protocol replies. Consumers
// key their parsers on the top-level "schema_version" field.
//
// Compatibility rule (documented in docs/quantitative-risk.md): within one
// major value the schemas are strictly additive — existing keys never change
// meaning or type and never disappear, new keys may appear anywhere. The
// value is bumped exactly when a key is removed or its meaning changes, and
// the release notes carry a migration note (the `HardeningResult` pattern:
// one release of deprecated coexistence, then removal).
#pragma once

namespace cprisk {

/// Current schema generation for all JSON emitters. History:
///   1 — implicit (pre-versioned outputs, no "schema_version" key)
///   2 — versioned outputs; adds priors/pareto blocks to the report
inline constexpr long long kSchemaVersion = 2;

}  // namespace cprisk
