#include "common/retry.hpp"

namespace cprisk {

std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t fnv1a64(std::string_view text) {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x00000100000001b3ULL;
    }
    return hash;
}

std::chrono::milliseconds RetryPolicy::backoff(std::size_t attempt, std::uint64_t salt) const {
    using std::chrono::milliseconds;
    milliseconds step = base_backoff;
    for (std::size_t i = 0; i < attempt && step < max_backoff; ++i) step *= 2;
    if (step > max_backoff) step = max_backoff;
    if (step <= milliseconds::zero()) return milliseconds::zero();
    // Jitter into [ceil(step/2), step] so concurrent retries decorrelate
    // while the floor keeps the schedule genuinely exponential.
    const auto span = static_cast<std::uint64_t>(step.count());
    const std::uint64_t half = (span + 1) / 2;
    const std::uint64_t jitter =
        mix64(jitter_seed ^ mix64(salt) ^ static_cast<std::uint64_t>(attempt)) %
        (span - half + 1);
    return milliseconds(static_cast<milliseconds::rep>(half + jitter));
}

}  // namespace cprisk
