// cprisk/common/table.hpp
//
// Plain-text table rendering used by the bench binaries to reprint the
// paper's tables (Table I, Table II) and by report emitters.
#pragma once

#include <string>
#include <vector>

namespace cprisk {

/// A rectangular text table with a header row, rendered with aligned
/// ASCII-art borders similar to the paper's tabular layout.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    /// Appends one row; must have the same arity as the header.
    void add_row(std::vector<std::string> row);

    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return header_.size(); }

    const std::vector<std::string>& header() const { return header_; }
    const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

    /// Renders with `|`-separated aligned columns and a header rule.
    std::string render() const;

    /// Renders as RFC-4180-ish CSV (quotes fields containing commas).
    std::string render_csv() const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace cprisk
