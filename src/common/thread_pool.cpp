#include "common/thread_pool.hpp"

#include <atomic>
#include <cstdint>

namespace cprisk {

// One in-flight batch. Tasks are identified by index; each lane owns a deque
// seeded with a contiguous slice of the index range. Owners pop from the
// front, thieves steal from the back, so steals take the work farthest from
// what the owner touches next. No work is ever added after construction:
// once a lane observes every queue empty, the batch has no unclaimed tasks.
struct ThreadPool::Batch {
    const std::function<void(std::size_t)>* task = nullptr;
    std::vector<std::deque<std::size_t>> queues;
    std::vector<std::mutex> queue_mutexes;
    std::size_t active_workers = 0;  ///< workers inside drain(); guarded by pool mutex_

    std::mutex error_mutex;
    std::exception_ptr error;
    std::size_t error_index = 0;

    Batch(std::size_t lanes, std::size_t count, const std::function<void(std::size_t)>& t)
        : task(&t), queues(lanes), queue_mutexes(lanes) {
        const std::size_t per_lane = count / lanes;
        const std::size_t extra = count % lanes;
        std::size_t next = 0;
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            const std::size_t take = per_lane + (lane < extra ? 1 : 0);
            for (std::size_t i = 0; i < take; ++i) queues[lane].push_back(next++);
        }
    }

    void record_error(std::size_t index) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error || index < error_index) {
            error = std::current_exception();
            error_index = index;
        }
    }
};

ThreadPool::ThreadPool(std::size_t jobs) : ThreadPool(jobs, PoolMode::Batch) {}

ThreadPool::ThreadPool(std::size_t jobs, PoolMode mode)
    : jobs_(jobs == 0 ? 1 : jobs), mode_(mode) {
    if (mode_ == PoolMode::Batch) {
        workers_.reserve(jobs_ - 1);
        for (std::size_t lane = 1; lane < jobs_; ++lane) {
            workers_.emplace_back([this, lane] { worker_loop(lane); });
        }
    } else {
        accepting_ = true;
        workers_.reserve(jobs_);
        for (std::size_t i = 0; i < jobs_; ++i) {
            workers_.emplace_back([this] { service_loop(); });
        }
    }
}

ThreadPool::~ThreadPool() {
    if (mode_ == PoolMode::Service) {
        stop();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

Result<void> ThreadPool::submit(std::function<void()> task) {
    if (mode_ != PoolMode::Service) {
        return Result<void>::failure("ThreadPool::submit: not a service-mode pool");
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!accepting_) {
            return Result<void>::failure("thread pool is stopped; task rejected");
        }
        service_queue_.push_back(std::move(task));
    }
    wake_.notify_one();
    return {};
}

void ThreadPool::stop() {
    if (mode_ != PoolMode::Service) return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        accepting_ = false;
        stop_ = true;
        if (joined_) return;  // a previous stop() already joined (or is joining)
        joined_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::service_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] { return stop_ || !service_queue_.empty(); });
            if (service_queue_.empty()) return;  // stop_ set and the queue drained
            task = std::move(service_queue_.front());
            service_queue_.pop_front();
        }
        // Service tasks own their error handling (the daemon replies
        // `internal` itself); this guard is a last resort so a stray
        // exception cannot take every connection down with the worker.
        try {
            task();
        } catch (...) {  // NOLINT(bugprone-empty-catch)
        }
    }
}

std::size_t ThreadPool::hardware_jobs() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void ThreadPool::run_batch(std::size_t count, const std::function<void(std::size_t)>& task) {
    require(mode_ == PoolMode::Batch, "ThreadPool::run_batch called on a service-mode pool");
    if (count == 0) return;
    if (jobs_ == 1 || count == 1) {
        // Inline path: same ordering as the pre-pool sequential engine. The
        // whole batch still runs even if a task throws, matching the
        // parallel path's "no task silently skipped" guarantee.
        std::exception_ptr error;
        for (std::size_t i = 0; i < count; ++i) {
            try {
                task(i);
            } catch (...) {
                if (!error) error = std::current_exception();
            }
        }
        if (error) std::rethrow_exception(error);
        return;
    }

    Batch batch(jobs_, count, task);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        batch_ = &batch;
        ++batch_seq_;
    }
    wake_.notify_all();

    drain(batch, 0);  // the caller participates as lane 0

    {
        // The batch lives on this stack frame: wait until every worker that
        // entered it has left before tearing it down.
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] { return batch.active_workers == 0; });
        batch_ = nullptr;
    }
    if (batch.error) std::rethrow_exception(batch.error);
}

void ThreadPool::worker_loop(std::size_t lane) {
    // The sequence number (not the Batch address, which a later batch on the
    // same caller stack frame could reuse) decides whether a published batch
    // is new to this worker.
    unsigned long long seen_seq = 0;
    for (;;) {
        Batch* batch = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [&] { return stop_ || (batch_ != nullptr && batch_seq_ != seen_seq); });
            if (stop_) return;
            batch = batch_;
            seen_seq = batch_seq_;
            ++batch->active_workers;
        }
        drain(*batch, lane);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --batch->active_workers;
            if (batch->active_workers == 0) done_.notify_all();
        }
    }
}

void ThreadPool::drain(Batch& batch, std::size_t lane) {
    const std::size_t lanes = batch.queues.size();
    for (;;) {
        std::size_t index = 0;
        bool found = false;
        {
            std::lock_guard<std::mutex> lock(batch.queue_mutexes[lane]);
            if (!batch.queues[lane].empty()) {
                index = batch.queues[lane].front();
                batch.queues[lane].pop_front();
                found = true;
            }
        }
        if (!found) {
            for (std::size_t offset = 1; offset < lanes && !found; ++offset) {
                const std::size_t victim = (lane + offset) % lanes;
                std::lock_guard<std::mutex> lock(batch.queue_mutexes[victim]);
                if (!batch.queues[victim].empty()) {
                    index = batch.queues[victim].back();
                    batch.queues[victim].pop_back();
                    found = true;
                }
            }
        }
        if (!found) return;
        try {
            (*batch.task)(index);
        } catch (...) {
            batch.record_error(index);
        }
    }
}

}  // namespace cprisk
