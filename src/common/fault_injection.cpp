#include "common/fault_injection.hpp"

#include <map>
#include <mutex>

namespace cprisk::fault {

namespace {

struct Site {
    std::size_t hits = 0;
    int countdown = 0;  ///< 0 = disarmed; fires when a hit decrements it to 0
};

struct Registry {
    std::mutex mutex;
    std::map<std::string, Site> sites;
};

Registry& registry() {
    static Registry instance;
    return instance;
}

}  // namespace

bool should_fail(const char* site) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    Site& s = r.sites[site];
    ++s.hits;
    return s.countdown > 0 && --s.countdown == 0;
}

void arm(const std::string& site, int countdown) {
    if (countdown <= 0) return;
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.sites[site].countdown = countdown;
}

void reset() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (auto& [name, site] : r.sites) {
        (void)name;
        site.countdown = 0;
        site.hits = 0;
    }
}

std::vector<std::string> registered_sites() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<std::string> names;
    names.reserve(r.sites.size());
    for (const auto& [name, site] : r.sites) {
        (void)site;
        names.push_back(name);
    }
    return names;  // std::map iterates sorted
}

std::size_t hits(const std::string& site) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.sites.find(site);
    return it == r.sites.end() ? 0 : it->second.hits;
}

}  // namespace cprisk::fault
