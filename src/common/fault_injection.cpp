#include "common/fault_injection.hpp"

namespace cprisk::fault {

bool FaultInjectionRegistry::should_fail(const char* site) {
    std::lock_guard<std::mutex> lock(mutex_);
    Site& s = sites_[site];
    ++s.hits;
    return s.countdown > 0 && --s.countdown == 0;
}

void FaultInjectionRegistry::arm(const std::string& site, int countdown) {
    if (countdown <= 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    sites_[site].countdown = countdown;
}

void FaultInjectionRegistry::reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, site] : sites_) {
        (void)name;
        site.countdown = 0;
        site.hits = 0;
    }
}

std::vector<std::string> FaultInjectionRegistry::registered_sites() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(sites_.size());
    for (const auto& [name, site] : sites_) {
        (void)site;
        names.push_back(name);
    }
    return names;  // std::map iterates sorted
}

std::size_t FaultInjectionRegistry::hits(const std::string& site) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.hits;
}

FaultInjectionRegistry& global_registry() {
    static FaultInjectionRegistry instance;
    return instance;
}

bool should_fail(const char* site) { return global_registry().should_fail(site); }
void arm(const std::string& site, int countdown) { global_registry().arm(site, countdown); }
void reset() { global_registry().reset(); }
std::vector<std::string> registered_sites() { return global_registry().registered_sites(); }
std::size_t hits(const std::string& site) { return global_registry().hits(site); }

}  // namespace cprisk::fault
