#include "common/json.hpp"

#include <cctype>

namespace cprisk::json {

const Value* Value::get(std::string_view key) const {
    if (kind_ != Kind::Object) return nullptr;
    for (const auto& [name, value] : object_) {
        if (name == key) return &value;
    }
    return nullptr;
}

long long Value::get_int(std::string_view key, long long fallback) const {
    const Value* v = get(key);
    return v != nullptr && v->is_int() ? v->as_int() : fallback;
}

std::string Value::get_string(std::string_view key, const std::string& fallback) const {
    const Value* v = get(key);
    return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

bool Value::get_bool(std::string_view key, bool fallback) const {
    const Value* v = get(key);
    return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

std::string escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static const char* hex = "0123456789abcdef";
                    out += "\\u00";
                    out += hex[(c >> 4) & 0xF];
                    out += hex[c & 0xF];
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string Value::serialize() const {
    switch (kind_) {
        case Kind::Null: return "null";
        case Kind::Bool: return bool_ ? "true" : "false";
        case Kind::Int: return std::to_string(int_);
        case Kind::String: return "\"" + escape(string_) + "\"";
        case Kind::Array: {
            std::string out = "[";
            for (std::size_t i = 0; i < array_.size(); ++i) {
                if (i > 0) out += ",";
                out += array_[i].serialize();
            }
            return out + "]";
        }
        case Kind::Object: {
            std::string out = "{";
            for (std::size_t i = 0; i < object_.size(); ++i) {
                if (i > 0) out += ",";
                out += "\"" + escape(object_[i].first) + "\":" + object_[i].second.serialize();
            }
            return out + "}";
        }
    }
    return "null";
}

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Result<Value> run() {
        auto value = parse_value();
        if (!value.ok()) return value;
        skip_ws();
        if (pos_ != text_.size()) {
            return fail("trailing characters after JSON value");
        }
        return value;
    }

private:
    Result<Value> fail(const std::string& message) const {
        return Result<Value>::failure("json: " + message + " at offset " + std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool consume(char c) {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool consume_keyword(std::string_view keyword) {
        if (text_.substr(pos_, keyword.size()) == keyword) {
            pos_ += keyword.size();
            return true;
        }
        return false;
    }

    Result<Value> parse_value() {
        skip_ws();
        if (pos_ >= text_.size()) return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{') return parse_object();
        if (c == '[') return parse_array();
        if (c == '"') {
            auto s = parse_string();
            if (!s.ok()) return Result<Value>::failure(s.error());
            return Value(std::move(s).value());
        }
        if (consume_keyword("true")) return Value(true);
        if (consume_keyword("false")) return Value(false);
        if (consume_keyword("null")) return Value();
        if (c == '-' || (c >= '0' && c <= '9')) return parse_int();
        return fail(std::string("unexpected character '") + c + "'");
    }

    Result<Value> parse_int() {
        const std::size_t start = pos_;
        if (consume('-') && pos_ >= text_.size()) return fail("bare '-'");
        while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
            return fail("floating-point numbers are not supported");
        }
        const std::string digits(text_.substr(start, pos_ - start));
        if (digits.empty() || digits == "-") return fail("malformed number");
        try {
            return Value(static_cast<long long>(std::stoll(digits)));
        } catch (const std::exception&) {
            return fail("integer out of range: " + digits);
        }
    }

    Result<std::string> parse_string() {
        if (!consume('"')) {
            return Result<std::string>::failure("json: expected '\"' at offset " +
                                                std::to_string(pos_));
        }
        std::string out;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) break;
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        return Result<std::string>::failure("json: truncated \\u escape");
                    }
                    int code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') {
                            code += h - '0';
                        } else if (h >= 'a' && h <= 'f') {
                            code += h - 'a' + 10;
                        } else if (h >= 'A' && h <= 'F') {
                            code += h - 'A' + 10;
                        } else {
                            return Result<std::string>::failure("json: bad \\u escape digit");
                        }
                    }
                    // The journal only ever escapes control characters; emit
                    // basic-plane code points as UTF-8.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default:
                    return Result<std::string>::failure(std::string("json: bad escape '\\") + esc +
                                                        "'");
            }
        }
        return Result<std::string>::failure("json: unterminated string");
    }

    Result<Value> parse_array() {
        consume('[');
        Array items;
        skip_ws();
        if (consume(']')) return Value(std::move(items));
        while (true) {
            auto item = parse_value();
            if (!item.ok()) return item;
            items.push_back(std::move(item).value());
            skip_ws();
            if (consume(']')) return Value(std::move(items));
            if (!consume(',')) return fail("expected ',' or ']' in array");
        }
    }

    Result<Value> parse_object() {
        consume('{');
        Object members;
        skip_ws();
        if (consume('}')) return Value(std::move(members));
        while (true) {
            skip_ws();
            auto key = parse_string();
            if (!key.ok()) return Result<Value>::failure(key.error());
            skip_ws();
            if (!consume(':')) return fail("expected ':' after object key");
            auto value = parse_value();
            if (!value.ok()) return value;
            members.emplace_back(std::move(key).value(), std::move(value).value());
            skip_ws();
            if (consume('}')) return Value(std::move(members));
            if (!consume(',')) return fail("expected ',' or '}' in object");
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

Result<Value> parse(std::string_view text) { return Parser(text).run(); }

}  // namespace cprisk::json
