// cprisk/common/thread_pool.hpp
//
// Small work-stealing pool for the parallel scenario sweep
// (docs/performance.md). Design constraints, in priority order:
//
//  1. Determinism of *results* is the caller's job: the pool only promises
//     that every task of a batch runs exactly once and that run_batch
//     returns after all of them finished. Callers index results by task id,
//     never by completion order.
//  2. jobs == 1 must be byte-for-byte the sequential code path: no worker
//     threads are created and the tasks run inline on the caller, in order.
//     `--jobs 1` therefore reproduces the pre-pool engine exactly.
//  3. Exceptions do not kill workers: the first throwing task (lowest task
//     index, so the choice is deterministic) is captured and rethrown from
//     run_batch after the batch drains.
//
// The caller participates: run_batch executes tasks on the calling thread
// alongside the workers, so a pool with N jobs uses N OS threads total
// (N - 1 workers + the caller), and nested pools degrade gracefully.
// A second construction mode (PoolMode::Service) turns the pool into a
// long-lived task executor for the assessment daemon (docs/serve.md):
// submit() enqueues detached tasks onto `jobs` dedicated workers and stop()
// drains everything already accepted before joining. The two modes never
// mix: a Batch pool has no queue and a Service pool rejects run_batch.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.hpp"

namespace cprisk {

class ThreadPool {
public:
    enum class PoolMode : std::uint8_t {
        Batch,    ///< run_batch() only; the caller participates as a lane
        Service,  ///< submit()/stop(); `jobs` dedicated workers, caller never runs tasks
    };

    /// A pool with `jobs` execution lanes (caller + jobs-1 workers).
    /// jobs == 0 is normalized to 1; jobs == 1 creates no threads.
    explicit ThreadPool(std::size_t jobs);
    /// Mode-selecting constructor. In Service mode the pool spawns `jobs`
    /// dedicated workers (jobs == 0 normalized to 1) that sleep until
    /// submit() hands them work.
    ThreadPool(std::size_t jobs, PoolMode mode);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t jobs() const { return jobs_; }

    /// Runs task(i) for every i in [0, count) across the pool's lanes and
    /// returns when all have finished. If any task throws, the exception of
    /// the lowest task index is rethrown (after the whole batch drained, so
    /// no task is silently skipped). Not reentrant: one batch at a time.
    void run_batch(std::size_t count, const std::function<void(std::size_t)>& task);

    /// Service mode only: enqueues a detached task for the workers. Fails —
    /// instead of silently dropping the task — once stop() has begun or on a
    /// Batch-mode pool; a rejected task never runs, so the caller must
    /// answer for it (the daemon replies `shutting_down`).
    Result<void> submit(std::function<void()> task);

    /// Service mode only: stops admissions (submit() fails from this point
    /// on), runs every task accepted before the call to completion, then
    /// joins the workers. Idempotent; safe to call from any non-worker
    /// thread. The destructor calls it implicitly so accepted tasks are
    /// never dropped.
    void stop();

    /// Number of hardware threads (never 0).
    static std::size_t hardware_jobs();

    /// Resolves a user-facing jobs value: 0 means "auto" (hardware_jobs()).
    static std::size_t resolve(std::size_t jobs) {
        return jobs == 0 ? hardware_jobs() : jobs;
    }

private:
    struct Batch;

    void worker_loop(std::size_t lane);
    void service_loop();
    /// Runs tasks from `lane`'s own queue, then steals; returns when the
    /// batch has no work left for this lane.
    void drain(Batch& batch, std::size_t lane);

    std::size_t jobs_ = 1;
    PoolMode mode_ = PoolMode::Batch;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;     ///< workers wait for a batch/task or stop
    std::condition_variable done_;     ///< caller waits for batch completion
    Batch* batch_ = nullptr;           ///< the in-flight batch, if any
    unsigned long long batch_seq_ = 0; ///< bumped per batch so a worker never re-enters one
    bool stop_ = false;

    std::deque<std::function<void()>> service_queue_;  ///< guarded by mutex_
    bool accepting_ = false;  ///< Service mode: submit() allowed; guarded by mutex_
    bool joined_ = false;     ///< Service mode: stop() already ran; guarded by mutex_
};

}  // namespace cprisk
