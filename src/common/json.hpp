// cprisk/common/json.hpp
//
// Minimal JSON value model, parser and serializer. Exists for the
// assessment journal (core/journal.hpp): checkpoint/resume needs a lossless
// machine-readable round trip of per-scenario verdicts, and the journal
// loader must parse lines written by an earlier (possibly killed) run.
// Deliberately small: objects, arrays, strings, 64-bit integers, booleans
// and null — no floats, comments or trailing commas. Object key order is
// preserved on parse and serialization is deterministic, so a re-serialized
// line is byte-identical to its source.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.hpp"

namespace cprisk::json {

class Value;

using Array = std::vector<Value>;
/// Insertion-ordered object representation.
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
public:
    enum class Kind : std::uint8_t { Null, Bool, Int, String, Array, Object };

    Value() : kind_(Kind::Null) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}                    // NOLINT
    Value(long long i) : kind_(Kind::Int), int_(i) {}                 // NOLINT
    Value(int i) : kind_(Kind::Int), int_(i) {}                       // NOLINT
    Value(std::size_t i) : kind_(Kind::Int), int_(static_cast<long long>(i)) {}  // NOLINT
    Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}         // NOLINT
    Value(const char* s) : kind_(Kind::String), string_(s) {}         // NOLINT
    Value(Array a) : kind_(Kind::Array), array_(std::move(a)) {}      // NOLINT
    Value(Object o) : kind_(Kind::Object), object_(std::move(o)) {}   // NOLINT

    Kind kind() const { return kind_; }
    bool is_null() const { return kind_ == Kind::Null; }
    bool is_bool() const { return kind_ == Kind::Bool; }
    bool is_int() const { return kind_ == Kind::Int; }
    bool is_string() const { return kind_ == Kind::String; }
    bool is_array() const { return kind_ == Kind::Array; }
    bool is_object() const { return kind_ == Kind::Object; }

    bool as_bool() const { return bool_; }
    long long as_int() const { return int_; }
    const std::string& as_string() const { return string_; }
    const Array& as_array() const { return array_; }
    const Object& as_object() const { return object_; }
    Array& as_array() { return array_; }
    Object& as_object() { return object_; }

    /// Object member lookup; nullptr when absent or not an object.
    const Value* get(std::string_view key) const;

    /// Convenience typed lookups with fallbacks (for tolerant readers).
    long long get_int(std::string_view key, long long fallback = 0) const;
    std::string get_string(std::string_view key, const std::string& fallback = {}) const;
    bool get_bool(std::string_view key, bool fallback = false) const;

    /// Compact single-line serialization (no whitespace).
    std::string serialize() const;

private:
    Kind kind_;
    bool bool_ = false;
    long long int_ = 0;
    std::string string_;
    Array array_;
    Object object_;
};

/// Appends `key: value` to an object under construction.
inline void set(Object& object, std::string key, Value value) {
    object.emplace_back(std::move(key), std::move(value));
}

/// Escapes a string for embedding in a JSON document (without quotes).
std::string escape(std::string_view text);

/// Parses a complete JSON document; trailing non-whitespace fails.
Result<Value> parse(std::string_view text);

}  // namespace cprisk::json
