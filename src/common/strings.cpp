#include "common/strings.hpp"

#include <cctype>

namespace cprisk {

std::vector<std::string> split(std::string_view text, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            return out;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += sep;
        out += parts[i];
    }
    return out;
}

std::string_view trim(std::string_view text) {
    while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
        text.remove_prefix(1);
    }
    while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
        text.remove_suffix(1);
    }
    return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
    return text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
    std::string out(text);
    for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string to_identifier(std::string_view label) {
    std::string out;
    out.reserve(label.size());
    bool last_underscore = false;
    for (char raw : label) {
        const auto c = static_cast<unsigned char>(raw);
        if (std::isalnum(c)) {
            out += static_cast<char>(std::tolower(c));
            last_underscore = false;
        } else if (!out.empty() && !last_underscore) {
            out += '_';
            last_underscore = true;
        }
    }
    while (!out.empty() && out.back() == '_') out.pop_back();
    if (out.empty() || std::isdigit(static_cast<unsigned char>(out.front()))) {
        out.insert(out.begin(), 'x');
    }
    return out;
}

}  // namespace cprisk
