// cprisk/common/source_loc.hpp
//
// A 1-based line/column position inside a source text. Lexers and parsers
// attach SourceLocs to the constructs they produce so downstream analyses
// (diagnostics.hpp, src/lint) can point at the offending input. A
// default-constructed SourceLoc (line 0) means "unknown".
#pragma once

#include <string>

namespace cprisk {

struct SourceLoc {
    int line = 0;    ///< 1-based; 0 = unknown
    int column = 0;  ///< 1-based; 0 = unknown

    bool valid() const { return line > 0; }

    bool operator==(const SourceLoc&) const = default;

    /// "line 3, column 7" (or "unknown location").
    std::string to_string() const;
};

}  // namespace cprisk
