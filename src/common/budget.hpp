// cprisk/common/budget.hpp
//
// Cooperative resource governance for the solve path. Exhaustive hazard
// identification (paper step 4) must be *bounded and interruptible* at
// production scale: a Budget carries a wall-clock deadline, a decision quota
// for the DPLL search and a step quota for fixpoint-style loops (grounding,
// stability checking), plus an externally triggerable CancelToken. The loops
// charge work units against the budget; once any limit trips, every further
// charge reports the same structured BudgetExceeded, so a deep call stack
// unwinds promptly and the caller can classify the partial result
// (Undetermined{timeout | decision_limit | ...}) instead of parsing a string
// error.
//
// The clock is sampled only every kClockStride charges — cancellation-check
// overhead on the hot search loop stays below the noise floor (see
// bench_perf_solver / EXPERIMENTS.md).
//
// Thread safety: one Budget may be shared by every worker of a parallel
// scenario sweep (docs/performance.md). Charging and polling are thread-safe
// (relaxed atomic counters; the sticky trip is published once through an
// acquire/release flag). The set_* configuration calls are NOT synchronized:
// configure the budget before handing it to concurrent workers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace cprisk {

/// Why a budget-governed computation stopped early.
enum class BudgetReason : std::uint8_t {
    Deadline,       ///< wall-clock deadline passed
    DecisionLimit,  ///< solver decision quota exhausted
    StepLimit,      ///< grounder/stability step quota exhausted
    Cancelled,      ///< external cancellation requested
};

std::string_view to_string(BudgetReason reason);

/// Work consumed at the moment a budget tripped (or so far).
struct BudgetStats {
    std::size_t steps = 0;      ///< fixpoint-style work units charged
    std::size_t decisions = 0;  ///< solver decisions charged
    std::chrono::milliseconds elapsed{0};
};

/// Structured description of an exceeded budget.
struct BudgetExceeded {
    BudgetReason reason = BudgetReason::Deadline;
    BudgetStats stats;

    /// e.g. "wall-clock deadline exceeded after 103ms (steps=12040,
    /// decisions=55000)".
    std::string to_string() const;
};

/// Shared cancellation handle: copies observe the same flag, so a controller
/// thread (or signal handler trampoline) can stop a long-running assessment
/// cooperatively.
class CancelToken {
public:
    CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

    void request_cancel() { flag_->store(true, std::memory_order_relaxed); }
    bool cancel_requested() const { return flag_->load(std::memory_order_relaxed); }

private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

/// Resource governor shared across one solve path (grounder + solver +
/// stability check), possibly across threads. Default-constructed budgets
/// are unlimited and the charge calls reduce to a relaxed counter increment.
class Budget {
public:
    Budget() : start_(std::chrono::steady_clock::now()) {}

    Budget(const Budget&) = delete;
    Budget& operator=(const Budget&) = delete;

    /// Wall-clock deadline `after` from now.
    void set_deadline_after(std::chrono::milliseconds after) {
        deadline_ = start_ + after;
        limited_ = true;
    }
    /// Total decision quota across every solve charged to this budget
    /// (0 = unlimited).
    void set_max_decisions(std::size_t max_decisions) {
        max_decisions_ = max_decisions;
        limited_ = limited_ || max_decisions != 0;
    }
    /// Total fixpoint-step quota (0 = unlimited).
    void set_max_steps(std::size_t max_steps) {
        max_steps_ = max_steps;
        limited_ = limited_ || max_steps != 0;
    }
    void set_cancel_token(CancelToken token) {
        cancel_ = std::move(token);
        has_cancel_ = true;
        limited_ = true;
    }

    /// True when any limit or cancellation source is configured.
    bool limited() const { return limited_; }

    /// Charges `n` fixpoint work units; returns the (sticky) trip once a
    /// limit is exceeded.
    std::optional<BudgetExceeded> charge_steps(std::size_t n = 1) {
        const std::size_t steps = steps_.fetch_add(n, std::memory_order_relaxed) + n;
        if (!limited_) return std::nullopt;
        if (!has_tripped() && max_steps_ != 0 && steps > max_steps_) {
            trip(BudgetReason::StepLimit);
        }
        return strided_check();
    }

    /// Charges `n` solver decisions.
    std::optional<BudgetExceeded> charge_decisions(std::size_t n = 1) {
        const std::size_t decisions = decisions_.fetch_add(n, std::memory_order_relaxed) + n;
        if (!limited_) return std::nullopt;
        if (!has_tripped() && max_decisions_ != 0 && decisions > max_decisions_) {
            trip(BudgetReason::DecisionLimit);
        }
        return strided_check();
    }

    /// Polls the deadline and cancellation without charging work. Always
    /// samples the clock.
    std::optional<BudgetExceeded> check() {
        if (!limited_) return std::nullopt;
        check_clock_and_cancel();
        return tripped();
    }

    /// The first trip, if any — sticky for the lifetime of the budget.
    /// Returned by value: a reference into the budget would race with a
    /// concurrent first trip.
    std::optional<BudgetExceeded> tripped() const {
        if (!has_tripped()) return std::nullopt;
        std::lock_guard<std::mutex> lock(trip_mutex_);
        return tripped_;
    }

    /// Work consumed so far.
    BudgetStats stats() const {
        BudgetStats s;
        s.steps = steps_.load(std::memory_order_relaxed);
        s.decisions = decisions_.load(std::memory_order_relaxed);
        s.elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start_);
        return s;
    }

private:
    /// Clock/cancellation are sampled every kClockStride charges only.
    static constexpr std::size_t kClockStride = 64;

    bool has_tripped() const { return tripped_flag_.load(std::memory_order_acquire); }

    std::optional<BudgetExceeded> strided_check() {
        if (!has_tripped()) {
            // The stride counter is contended under a parallel sweep; exact
            // periodicity does not matter, only that the clock is sampled
            // roughly every kClockStride charges per worker.
            if (since_clock_.fetch_add(1, std::memory_order_relaxed) + 1 >= kClockStride) {
                since_clock_.store(0, std::memory_order_relaxed);
                check_clock_and_cancel();
            }
        }
        return tripped();
    }

    void check_clock_and_cancel() {
        if (has_tripped()) return;
        if (has_cancel_ && cancel_.cancel_requested()) {
            trip(BudgetReason::Cancelled);
            return;
        }
        if (deadline_ && std::chrono::steady_clock::now() > *deadline_) {
            trip(BudgetReason::Deadline);
        }
    }

    /// First caller wins; later trips (possibly from other workers, possibly
    /// for a different reason) observe the original one.
    void trip(BudgetReason reason) {
        std::lock_guard<std::mutex> lock(trip_mutex_);
        if (tripped_) return;
        BudgetExceeded exceeded;
        exceeded.reason = reason;
        exceeded.stats = stats();
        tripped_ = std::move(exceeded);
        tripped_flag_.store(true, std::memory_order_release);
    }

    std::chrono::steady_clock::time_point start_;
    std::optional<std::chrono::steady_clock::time_point> deadline_;
    std::size_t max_decisions_ = 0;
    std::size_t max_steps_ = 0;
    CancelToken cancel_;
    bool has_cancel_ = false;
    bool limited_ = false;

    std::atomic<std::size_t> steps_{0};
    std::atomic<std::size_t> decisions_{0};
    std::atomic<std::size_t> since_clock_{0};
    std::atomic<bool> tripped_flag_{false};
    mutable std::mutex trip_mutex_;
    std::optional<BudgetExceeded> tripped_;
};

}  // namespace cprisk
