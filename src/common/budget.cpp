#include "common/budget.hpp"

namespace cprisk {

std::string_view to_string(BudgetReason reason) {
    switch (reason) {
        case BudgetReason::Deadline: return "deadline";
        case BudgetReason::DecisionLimit: return "decision_limit";
        case BudgetReason::StepLimit: return "step_limit";
        case BudgetReason::Cancelled: return "cancelled";
    }
    return "?";
}

std::string BudgetExceeded::to_string() const {
    std::string what;
    switch (reason) {
        case BudgetReason::Deadline: what = "wall-clock deadline exceeded"; break;
        case BudgetReason::DecisionLimit: what = "decision budget exceeded"; break;
        case BudgetReason::StepLimit: what = "step budget exceeded"; break;
        case BudgetReason::Cancelled: what = "cancelled"; break;
    }
    return what + " after " + std::to_string(stats.elapsed.count()) + "ms (steps=" +
           std::to_string(stats.steps) + ", decisions=" + std::to_string(stats.decisions) + ")";
}

}  // namespace cprisk
