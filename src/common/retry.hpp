// cprisk/common/retry.hpp
//
// Bounded retry with deterministic jittered exponential backoff
// (docs/serve.md). Scenarios that land in Undetermined{solver_error} from a
// *transient* fault (I/O hiccups, injected faults at the solver seams) are
// retried up to `max_retries` times before the degraded verdict is accepted;
// budget trips (deadline/decision/step/cancel) are permanent and never
// retried. The jitter stream is a pure function of (seed, salt, attempt) so
// backoff schedules — and therefore traces — are reproducible run to run.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cprisk {

/// splitmix64: tiny, well-mixed 64-bit permutation (public-domain algorithm
/// by Sebastiano Vigna). Used for deterministic backoff jitter only.
std::uint64_t mix64(std::uint64_t x);

/// FNV-1a 64-bit hash, used to derive a per-scenario jitter salt from its id.
std::uint64_t fnv1a64(std::string_view text);

struct RetryPolicy {
    /// Maximum number of *re*-attempts after the first try. 0 disables retry
    /// entirely (the default, preserving batch-mode byte-identity).
    std::size_t max_retries = 0;
    /// Backoff before the first retry; doubles per subsequent attempt.
    std::chrono::milliseconds base_backoff{10};
    /// Backoff ceiling after exponential growth.
    std::chrono::milliseconds max_backoff{1000};
    /// Seed of the deterministic jitter stream.
    std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ULL;

    bool enabled() const { return max_retries > 0; }

    /// Backoff before retry number `attempt` (0-based), jittered into
    /// [50%, 100%] of the exponential step. Deterministic in
    /// (jitter_seed, salt, attempt).
    std::chrono::milliseconds backoff(std::size_t attempt, std::uint64_t salt) const;
};

}  // namespace cprisk
