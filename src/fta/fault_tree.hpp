// cprisk/fta/fault_tree.hpp
//
// Classic Fault Tree Analysis — the industry baseline the paper contrasts
// with qualitative EPA (§III-A: "FTA is a top-down method ... however, FTA
// does not examine components' behavior and interactions", and "qualitative
// error propagation analysis can be incorporated into the FTA process").
//
// This module provides:
//  * a fault-tree model (basic events, AND/OR gates, one top event);
//  * minimal cut set computation (top-down expansion with absorption);
//  * qualitative top-event likelihood on the five-point scale;
//  * a bridge synthesizing a fault tree *from* EPA verdicts, realizing the
//    paper's suggested incorporation: the top event is a requirement
//    violation, each violating scenario becomes an AND over its mutations.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "epa/epa.hpp"
#include "qualitative/level.hpp"

namespace cprisk::fta {

struct BasicEvent {
    std::string id;
    std::string description;
    qual::Level likelihood = qual::Level::Medium;
};

enum class GateType : std::uint8_t { And, Or };

std::string_view to_string(GateType type);

struct Gate {
    std::string id;
    GateType type = GateType::Or;
    std::vector<std::string> inputs;  ///< basic event or gate ids
};

/// A cut set: a set of basic-event ids whose joint occurrence triggers the
/// top event.
using CutSet = std::set<std::string>;

class FaultTree {
public:
    Result<void> add_event(BasicEvent event);
    Result<void> add_gate(Gate gate);
    Result<void> set_top(const std::string& id);

    bool has_node(const std::string& id) const;
    const std::string& top() const { return top_; }
    std::size_t event_count() const { return events_.size(); }
    std::size_t gate_count() const { return gates_.size(); }

    /// Structural validation: top set, all inputs resolve, no cycles.
    Result<void> validate() const;

    /// Minimal cut sets of the top event (absorption applied: no returned
    /// set contains another).
    Result<std::vector<CutSet>> minimal_cut_sets() const;

    /// Qualitative likelihood of the top event: OR-gates take the maximum of
    /// their inputs; AND-gates take the minimum degraded by one step per
    /// additional input (simultaneity penalty, matching
    /// security::combined_likelihood).
    Result<qual::Level> top_likelihood() const;

    /// Qualitative importance of a basic event: the highest cut-set
    /// likelihood among cut sets containing it (events whose removal breaks
    /// the most likely cut sets matter most).
    Result<qual::Level> importance(const std::string& event_id) const;

    /// Renders an indented textual view of the tree.
    std::string to_string() const;

private:
    const Gate* find_gate(const std::string& id) const;
    const BasicEvent* find_event(const std::string& id) const;

    std::map<std::string, BasicEvent> events_;
    std::map<std::string, Gate> gates_;
    std::string top_;
};

/// Qualitative likelihood of one cut set (joint occurrence of its events).
qual::Level cut_set_likelihood(const CutSet& cut, const FaultTree& tree,
                               const std::map<std::string, qual::Level>& likelihoods);

/// Builds the fault tree of one requirement from EPA verdicts: the top OR
/// collects every scenario that violates `requirement_id`; each scenario
/// contributes an AND over its injected mutations, whose basic-event
/// likelihoods come from the model's fault modes.
Result<FaultTree> from_verdicts(const std::string& requirement_id,
                                const std::vector<epa::ScenarioVerdict>& verdicts,
                                const model::SystemModel& model);

}  // namespace cprisk::fta
