#include "fta/fault_tree.hpp"

#include <algorithm>
#include <functional>

#include "common/antichain.hpp"

namespace cprisk::fta {

std::string_view to_string(GateType type) {
    return type == GateType::And ? "AND" : "OR";
}

Result<void> FaultTree::add_event(BasicEvent event) {
    if (event.id.empty()) return Result<void>::failure("basic event id must be non-empty");
    if (has_node(event.id)) return Result<void>::failure("duplicate node id '" + event.id + "'");
    events_.emplace(event.id, std::move(event));
    return {};
}

Result<void> FaultTree::add_gate(Gate gate) {
    if (gate.id.empty()) return Result<void>::failure("gate id must be non-empty");
    if (has_node(gate.id)) return Result<void>::failure("duplicate node id '" + gate.id + "'");
    if (gate.inputs.empty()) return Result<void>::failure("gate '" + gate.id + "' has no inputs");
    gates_.emplace(gate.id, std::move(gate));
    return {};
}

Result<void> FaultTree::set_top(const std::string& id) {
    if (!has_node(id)) return Result<void>::failure("top node '" + id + "' unknown");
    top_ = id;
    return {};
}

bool FaultTree::has_node(const std::string& id) const {
    return events_.count(id) > 0 || gates_.count(id) > 0;
}

const Gate* FaultTree::find_gate(const std::string& id) const {
    auto it = gates_.find(id);
    return it == gates_.end() ? nullptr : &it->second;
}

const BasicEvent* FaultTree::find_event(const std::string& id) const {
    auto it = events_.find(id);
    return it == events_.end() ? nullptr : &it->second;
}

Result<void> FaultTree::validate() const {
    if (top_.empty()) return Result<void>::failure("fault tree has no top event");
    // All gate inputs resolve; DFS cycle check.
    for (const auto& [id, gate] : gates_) {
        for (const std::string& input : gate.inputs) {
            if (!has_node(input)) {
                return Result<void>::failure("gate '" + id + "' references unknown node '" +
                                             input + "'");
            }
        }
    }
    std::set<std::string> visiting;
    std::set<std::string> done;
    std::function<Result<void>(const std::string&)> visit =
        [&](const std::string& id) -> Result<void> {
        if (done.count(id) > 0) return {};
        if (!visiting.insert(id).second) {
            return Result<void>::failure("cycle through node '" + id + "'");
        }
        if (const Gate* gate = find_gate(id)) {
            for (const std::string& input : gate->inputs) {
                auto r = visit(input);
                if (!r.ok()) return r;
            }
        }
        visiting.erase(id);
        done.insert(id);
        return {};
    };
    return visit(top_);
}

Result<std::vector<CutSet>> FaultTree::minimal_cut_sets() const {
    auto valid = validate();
    if (!valid.ok()) return Result<std::vector<CutSet>>::failure(valid.error());

    // Top-down expansion: each node yields a list of cut sets.
    std::function<std::vector<CutSet>(const std::string&)> expand =
        [&](const std::string& id) -> std::vector<CutSet> {
        if (find_event(id) != nullptr) return {CutSet{id}};
        const Gate* gate = find_gate(id);
        std::vector<CutSet> result;
        if (gate->type == GateType::Or) {
            for (const std::string& input : gate->inputs) {
                auto sub = expand(input);
                result.insert(result.end(), sub.begin(), sub.end());
            }
        } else {  // And: cross product unions
            result = {CutSet{}};
            for (const std::string& input : gate->inputs) {
                auto sub = expand(input);
                std::vector<CutSet> next;
                for (const CutSet& left : result) {
                    for (const CutSet& right : sub) {
                        CutSet merged = left;
                        merged.insert(right.begin(), right.end());
                        next.push_back(std::move(merged));
                    }
                }
                result = std::move(next);
            }
        }
        return result;
    };

    // Absorption: drop supersets and duplicates (common/antichain.hpp).
    return minimal_sets(expand(top_));
}

qual::Level cut_set_likelihood(const CutSet& cut, const FaultTree& tree,
                               const std::map<std::string, qual::Level>& likelihoods) {
    (void)tree;
    if (cut.empty()) return qual::Level::VeryHigh;  // empty cut: always occurs
    qual::Level combined = qual::Level::VeryHigh;
    bool first = true;
    for (const std::string& id : cut) {
        auto it = likelihoods.find(id);
        const qual::Level l = it == likelihoods.end() ? qual::Level::Medium : it->second;
        if (first) {
            combined = l;
            first = false;
        } else {
            combined = qual::shift(qual::qmin(combined, l), -1);
        }
    }
    return combined;
}

Result<qual::Level> FaultTree::top_likelihood() const {
    auto cut_sets = minimal_cut_sets();
    if (!cut_sets.ok()) return Result<qual::Level>::failure(cut_sets.error());
    std::map<std::string, qual::Level> likelihoods;
    for (const auto& [id, event] : events_) likelihoods.emplace(id, event.likelihood);
    qual::Level top = qual::Level::VeryLow;
    for (const CutSet& cut : cut_sets.value()) {
        top = qual::qmax(top, cut_set_likelihood(cut, *this, likelihoods));
    }
    return top;
}

Result<qual::Level> FaultTree::importance(const std::string& event_id) const {
    if (find_event(event_id) == nullptr) {
        return Result<qual::Level>::failure("unknown basic event '" + event_id + "'");
    }
    auto cut_sets = minimal_cut_sets();
    if (!cut_sets.ok()) return Result<qual::Level>::failure(cut_sets.error());
    std::map<std::string, qual::Level> likelihoods;
    for (const auto& [id, event] : events_) likelihoods.emplace(id, event.likelihood);
    qual::Level best = qual::Level::VeryLow;
    bool member = false;
    for (const CutSet& cut : cut_sets.value()) {
        if (cut.count(event_id) == 0) continue;
        member = true;
        best = qual::qmax(best, cut_set_likelihood(cut, *this, likelihoods));
    }
    return member ? best : qual::Level::VeryLow;
}

std::string FaultTree::to_string() const {
    std::string out;
    std::function<void(const std::string&, int)> render = [&](const std::string& id, int depth) {
        out.append(static_cast<std::size_t>(depth) * 2, ' ');
        if (const BasicEvent* event = find_event(id)) {
            out += id + " [" + std::string(qual::to_short_string(event->likelihood)) + "]";
            if (!event->description.empty()) out += " — " + event->description;
            out += "\n";
            return;
        }
        const Gate* gate = find_gate(id);
        out += id + " (" + std::string(fta::to_string(gate->type)) + ")\n";
        for (const std::string& input : gate->inputs) render(input, depth + 1);
    };
    if (!top_.empty()) render(top_, 0);
    return out;
}

Result<FaultTree> from_verdicts(const std::string& requirement_id,
                                const std::vector<epa::ScenarioVerdict>& verdicts,
                                const model::SystemModel& model) {
    FaultTree tree;
    Gate top;
    top.id = "violation_" + requirement_id;
    top.type = GateType::Or;

    for (const epa::ScenarioVerdict& verdict : verdicts) {
        if (!verdict.violates(requirement_id)) continue;
        if (verdict.injected.empty()) continue;

        // Basic events: the injected mutations, with model likelihoods.
        std::vector<std::string> event_ids;
        for (const security::Mutation& mutation : verdict.injected) {
            const std::string event_id = mutation.component + "." + mutation.fault_id;
            if (!tree.has_node(event_id)) {
                BasicEvent event;
                event.id = event_id;
                event.description = mutation.fault_id + " on " + mutation.component;
                if (model.has_component(mutation.component)) {
                    const model::FaultMode* mode =
                        model.component(mutation.component).find_fault_mode(mutation.fault_id);
                    if (mode != nullptr) event.likelihood = mode->likelihood;
                }
                auto added = tree.add_event(std::move(event));
                if (!added.ok()) return Result<FaultTree>::failure(added.error());
            }
            event_ids.push_back(event_id);
        }

        if (event_ids.size() == 1) {
            top.inputs.push_back(event_ids[0]);
        } else {
            Gate scenario_gate;
            scenario_gate.id = "scenario_" + verdict.scenario_id + "_" + requirement_id;
            scenario_gate.type = GateType::And;
            scenario_gate.inputs = event_ids;
            auto added = tree.add_gate(std::move(scenario_gate));
            if (!added.ok()) return Result<FaultTree>::failure(added.error());
            top.inputs.push_back("scenario_" + verdict.scenario_id + "_" + requirement_id);
        }
    }
    if (top.inputs.empty()) {
        return Result<FaultTree>::failure("no scenario violates requirement '" + requirement_id +
                                          "'");
    }
    // Deduplicate direct inputs.
    std::sort(top.inputs.begin(), top.inputs.end());
    top.inputs.erase(std::unique(top.inputs.begin(), top.inputs.end()), top.inputs.end());
    auto added = tree.add_gate(std::move(top));
    if (!added.ok()) return Result<FaultTree>::failure(added.error());
    auto set = tree.set_top("violation_" + requirement_id);
    if (!set.ok()) return Result<FaultTree>::failure(set.error());
    return tree;
}

}  // namespace cprisk::fta
