#include "asp/asp.hpp"

namespace cprisk::asp {

Result<SolveResult> solve_program(const ProgramParts& parts, const PipelineOptions& options) {
    ProgramParts effective = parts;
    Program unrolled;
    bool temporal = false;
    for (const Program* part : parts) temporal = temporal || part->is_temporal();
    if (temporal) {
        UnrollOptions unroll_options;
        unroll_options.horizon = options.horizon;
        for (const Program* part : parts) {
            for (const auto& [name, value] : part->consts()) {
                if (name == "horizon" && value.is_integer()) {
                    unroll_options.horizon = static_cast<int>(value.as_int());
                }
            }
        }
        auto result = unroll(parts, unroll_options);
        if (!result.ok()) return Result<SolveResult>::failure(result.error());
        unrolled = std::move(result).value();
        effective = {&unrolled};
    }
    auto grounded = ground(effective, options.grounder);
    if (!grounded.ok()) {
        // A budget trip during grounding is an interrupt, not an error: the
        // caller gets a (model-free) partial result with the structured
        // reason, same as a search stopped mid-enumeration.
        if (options.grounder.budget != nullptr) {
            if (const auto exceeded = options.grounder.budget->tripped()) {
                SolveResult partial;
                SolveStats stats;
                stats.decisions = exceeded->stats.decisions;
                partial.interrupt = SolveInterrupt{exceeded->reason, stats};
                return partial;
            }
        }
        return Result<SolveResult>::failure(grounded.error());
    }
    return solve(grounded.value(), options.solve);
}

Result<SolveResult> solve_program(const Program& program, const PipelineOptions& options) {
    return solve_program(ProgramParts{&program}, options);
}

Result<SolveResult> solve_text(std::string_view source, const PipelineOptions& options) {
    auto program = parse_program(source);
    if (!program.ok()) return Result<SolveResult>::failure(program.error());
    return solve_program(program.value(), options);
}

ltl::Trace trace_from_answer(const AnswerSet& answer, int horizon) {
    ltl::Trace trace(static_cast<std::size_t>(horizon) + 1);
    for (const Atom& atom : answer.atoms) {
        if (atom.args.empty()) continue;
        const Term& last = atom.args.back();
        if (!last.is_integer()) continue;
        const long long t = last.as_int();
        if (t < 0 || t > horizon) continue;
        Atom stripped;
        stripped.predicate = atom.predicate;
        stripped.args.assign(atom.args.begin(), atom.args.end() - 1);
        trace[static_cast<std::size_t>(t)].insert(std::move(stripped));
    }
    return trace;
}

}  // namespace cprisk::asp
