// cprisk/asp/asp.hpp
//
// Convenience façade over the embedded ASP engine: parse -> (unroll) ->
// ground -> solve in one call. Most cprisk subsystems interact with the
// reasoner through these entry points.
#pragma once

#include <string_view>

#include "asp/ground_program.hpp"
#include "asp/grounder.hpp"
#include "asp/ltl.hpp"
#include "asp/parser.hpp"
#include "asp/solver.hpp"
#include "asp/syntax.hpp"
#include "asp/temporal.hpp"
#include "asp/term.hpp"
#include "common/result.hpp"

namespace cprisk::asp {

struct PipelineOptions {
    SolveOptions solve;
    GrounderOptions grounder;
    /// Horizon for temporal programs. Ignored when the program defines
    /// `#const horizon = N.`, which takes precedence.
    int horizon = 1;
};

/// Solves an already-parsed program, unrolling temporal sections if present.
Result<SolveResult> solve_program(const Program& program, const PipelineOptions& options = {});

/// Solves the concatenation of `parts` (shared immutable base + per-call
/// delta) without copying any part. A `#const horizon` in any part overrides
/// options.horizon, later parts taking precedence — same as if the parts had
/// been appended into one program.
Result<SolveResult> solve_program(const ProgramParts& parts, const PipelineOptions& options = {});

/// Parses and solves program text.
Result<SolveResult> solve_text(std::string_view source, const PipelineOptions& options = {});

/// Reconstructs the temporal trace encoded in an answer set: every shown
/// atom whose last argument is an integer in [0, horizon] is interpreted as
/// a time-stamped atom; the stamp is stripped and the atom recorded at that
/// step. Used to model-check LTL requirements against answer sets.
ltl::Trace trace_from_answer(const AnswerSet& answer, int horizon);

}  // namespace cprisk::asp
