#include "asp/ltl.hpp"

#include "common/error.hpp"

namespace cprisk::asp::ltl {

Formula Formula::make(Op op, Formula* l, Formula* r) {
    auto node = std::make_shared<Node>();
    node->op = op;
    if (l != nullptr) node->left = l->node_;
    if (r != nullptr) node->right = r->node_;
    return Formula(std::move(node));
}

Formula Formula::atom(Atom a) {
    auto node = std::make_shared<Node>();
    node->op = Op::Atom;
    node->atom = std::move(a);
    return Formula(std::move(node));
}

Formula Formula::truth() { return make(Op::True, nullptr, nullptr); }
Formula Formula::falsity() { return make(Op::False, nullptr, nullptr); }
Formula Formula::negate(Formula f) { return make(Op::Not, &f, nullptr); }
Formula Formula::conj(Formula l, Formula r) { return make(Op::And, &l, &r); }
Formula Formula::disj(Formula l, Formula r) { return make(Op::Or, &l, &r); }
Formula Formula::implies(Formula l, Formula r) { return make(Op::Implies, &l, &r); }
Formula Formula::next(Formula f) { return make(Op::Next, &f, nullptr); }
Formula Formula::weak_next(Formula f) { return make(Op::WeakNext, &f, nullptr); }
Formula Formula::always(Formula f) { return make(Op::Always, &f, nullptr); }
Formula Formula::eventually(Formula f) { return make(Op::Eventually, &f, nullptr); }
Formula Formula::until(Formula l, Formula r) { return make(Op::Until, &l, &r); }
Formula Formula::release(Formula l, Formula r) { return make(Op::Release, &l, &r); }

Formula Formula::left() const {
    require(node_->left != nullptr, "Formula: no left child");
    return Formula(node_->left);
}

Formula Formula::right() const {
    require(node_->right != nullptr, "Formula: no right child");
    return Formula(node_->right);
}

bool Formula::evaluate(const Trace& trace, std::size_t pos) const {
    if (trace.empty() || pos >= trace.size()) return node_->op == Op::True;
    return eval_node(*node_, trace, pos);
}

bool Formula::eval_node(const Node& node, const Trace& trace, std::size_t pos) {
    switch (node.op) {
        case Op::Atom: return trace[pos].count(node.atom) > 0;
        case Op::True: return true;
        case Op::False: return false;
        case Op::Not: return !eval_node(*node.left, trace, pos);
        case Op::And:
            return eval_node(*node.left, trace, pos) && eval_node(*node.right, trace, pos);
        case Op::Or:
            return eval_node(*node.left, trace, pos) || eval_node(*node.right, trace, pos);
        case Op::Implies:
            return !eval_node(*node.left, trace, pos) || eval_node(*node.right, trace, pos);
        case Op::Next:
            return pos + 1 < trace.size() && eval_node(*node.left, trace, pos + 1);
        case Op::WeakNext:
            return pos + 1 >= trace.size() || eval_node(*node.left, trace, pos + 1);
        case Op::Always:
            for (std::size_t q = pos; q < trace.size(); ++q) {
                if (!eval_node(*node.left, trace, q)) return false;
            }
            return true;
        case Op::Eventually:
            for (std::size_t q = pos; q < trace.size(); ++q) {
                if (eval_node(*node.left, trace, q)) return true;
            }
            return false;
        case Op::Until:
            for (std::size_t q = pos; q < trace.size(); ++q) {
                if (eval_node(*node.right, trace, q)) return true;
                if (!eval_node(*node.left, trace, q)) return false;
            }
            return false;
        case Op::Release:
            for (std::size_t q = pos; q < trace.size(); ++q) {
                if (!eval_node(*node.right, trace, q)) return false;
                if (eval_node(*node.left, trace, q)) return true;  // released at q
            }
            return true;  // right held to the end
    }
    return false;
}

std::string Formula::to_string() const {
    const Node& n = *node_;
    switch (n.op) {
        case Op::Atom: return n.atom.to_string();
        case Op::True: return "true";
        case Op::False: return "false";
        case Op::Not: return "!(" + Formula(n.left).to_string() + ")";
        case Op::And:
            return "(" + Formula(n.left).to_string() + " & " + Formula(n.right).to_string() + ")";
        case Op::Or:
            return "(" + Formula(n.left).to_string() + " | " + Formula(n.right).to_string() + ")";
        case Op::Implies:
            return "(" + Formula(n.left).to_string() + " -> " + Formula(n.right).to_string() + ")";
        case Op::Next: return "X(" + Formula(n.left).to_string() + ")";
        case Op::WeakNext: return "wX(" + Formula(n.left).to_string() + ")";
        case Op::Always: return "G(" + Formula(n.left).to_string() + ")";
        case Op::Eventually: return "F(" + Formula(n.left).to_string() + ")";
        case Op::Until:
            return "(" + Formula(n.left).to_string() + " U " + Formula(n.right).to_string() + ")";
        case Op::Release:
            return "(" + Formula(n.left).to_string() + " R " + Formula(n.right).to_string() + ")";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// LTLf -> ASP compiler
// ---------------------------------------------------------------------------

class Compiler {
public:
    Compiler(Program& program, std::string name, int horizon, std::string time_predicate)
        : program_(program),
          name_(std::move(name)),
          horizon_(horizon),
          time_predicate_(std::move(time_predicate)) {}

    /// Entry point: emits rules for the whole formula.
    std::string emit_root(const Formula& formula) { return emit(*formula.node_); }

    /// Emits rules for `node`; returns the aux predicate deriving its truth.
    std::string emit(const Formula::Node& node) {
        const std::string self = fresh();
        const Term t = Term::variable("T");
        const Term t2 = Term::variable("T2");
        const Atom self_t{self, {t}};
        const Atom self_t2{self, {t2}};
        const Literal time_t = Literal::positive(Atom{time_predicate_, {t}});
        const Literal step =
            Literal::comparison(t2, CompareOp::Eq, Term::compound("+", {t, Term::integer(1)}));

        switch (node.op) {
            case Formula::Op::Atom: {
                // self(T) :- p(args, T).
                Atom stamped = node.atom;
                stamped.args.push_back(t);
                add_rule(self_t, {Literal::positive(stamped)});
                break;
            }
            case Formula::Op::True:
                add_rule(self_t, {time_t});
                break;
            case Formula::Op::False:
                break;  // never derivable
            case Formula::Op::Not: {
                const std::string child = emit(*node.left);
                add_rule(self_t, {time_t, Literal::negative(Atom{child, {t}})});
                break;
            }
            case Formula::Op::And: {
                const std::string l = emit(*node.left);
                const std::string r = emit(*node.right);
                add_rule(self_t, {Literal::positive(Atom{l, {t}}),
                                  Literal::positive(Atom{r, {t}})});
                break;
            }
            case Formula::Op::Or: {
                const std::string l = emit(*node.left);
                const std::string r = emit(*node.right);
                add_rule(self_t, {Literal::positive(Atom{l, {t}})});
                add_rule(self_t, {Literal::positive(Atom{r, {t}})});
                break;
            }
            case Formula::Op::Implies: {
                const std::string l = emit(*node.left);
                const std::string r = emit(*node.right);
                add_rule(self_t, {time_t, Literal::negative(Atom{l, {t}})});
                add_rule(self_t, {Literal::positive(Atom{r, {t}})});
                break;
            }
            case Formula::Op::Next: {
                // self(T) :- __t(T), T2 = T+1, child(T2).   (false at horizon)
                const std::string child = emit(*node.left);
                add_rule(self_t, {time_t, step, Literal::positive(Atom{child, {t2}})});
                break;
            }
            case Formula::Op::WeakNext: {
                const std::string child = emit(*node.left);
                add_rule(self_t, {time_t, step, Literal::positive(Atom{child, {t2}})});
                add_rule(Atom{self, {Term::integer(horizon_)}}, {});  // vacuous at the end
                break;
            }
            case Formula::Op::Always: {
                // self(H) :- child(H).  self(T) :- child(T), self(T+1).
                const std::string child = emit(*node.left);
                add_rule(Atom{self, {Term::integer(horizon_)}},
                         {Literal::positive(Atom{child, {Term::integer(horizon_)}})});
                add_rule(self_t, {time_t, Literal::positive(Atom{child, {t}}), step,
                                  Literal::positive(self_t2)});
                break;
            }
            case Formula::Op::Eventually: {
                const std::string child = emit(*node.left);
                add_rule(self_t, {Literal::positive(Atom{child, {t}})});
                add_rule(self_t, {time_t, step, Literal::positive(self_t2)});
                break;
            }
            case Formula::Op::Until: {
                const std::string l = emit(*node.left);
                const std::string r = emit(*node.right);
                add_rule(self_t, {Literal::positive(Atom{r, {t}})});
                add_rule(self_t, {time_t, Literal::positive(Atom{l, {t}}), step,
                                  Literal::positive(self_t2)});
                break;
            }
            case Formula::Op::Release: {
                const std::string l = emit(*node.left);
                const std::string r = emit(*node.right);
                add_rule(Atom{self, {Term::integer(horizon_)}},
                         {Literal::positive(Atom{r, {Term::integer(horizon_)}})});
                add_rule(self_t, {Literal::positive(Atom{r, {t}}),
                                  Literal::positive(Atom{l, {t}})});
                add_rule(self_t, {time_t, Literal::positive(Atom{r, {t}}), step,
                                  Literal::positive(self_t2)});
                break;
            }
        }
        return self;
    }

    void add_rule(Atom head, std::vector<Literal> body) {
        Rule rule;
        rule.head = Head::make_atom(std::move(head));
        rule.body = std::move(body);
        program_.add_rule(std::move(rule));
    }

    std::string fresh() { return "__ltl_" + name_ + "_" + std::to_string(counter_++); }

private:
    Program& program_;
    std::string name_;
    int horizon_;
    std::string time_predicate_;
    int counter_ = 0;
};

void compile_requirement(Program& program, const std::string& name, const Formula& formula,
                         int horizon, const std::string& time_predicate,
                         const std::string& violated_predicate) {
    require(horizon >= 0, "compile_requirement: horizon must be non-negative");
    Compiler compiler(program, name, horizon, time_predicate);
    const std::string root = compiler.emit_root(formula);
    Rule violated;
    violated.head = Head::make_atom(Atom{violated_predicate, {Term::symbol(name)}});
    violated.body = {Literal::negative(Atom{root, {Term::integer(0)}})};
    program.add_rule(std::move(violated));
}

}  // namespace cprisk::asp::ltl
