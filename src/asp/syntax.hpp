// cprisk/asp/syntax.hpp
//
// Abstract syntax of the embedded ASP language. The language is a pragmatic
// clingo subset sufficient for the paper's models:
//
//   fact(a).                        % facts
//   head(X) :- body(X), not bad(X). % normal rules w/ negation as failure
//   :- violated(X).                 % integrity constraints
//   { pick(X) : item(X) }.          % choice rules
//   1 { pick(X) : item(X) } 2.      % cardinality-bounded choices
//   X = Y + 1, X != 3, X = 1..5     % comparisons / assignments / intervals
//   :~ cost(X,C). [C@1, X]          % weak constraints
//   #minimize { C@1,X : cost(X,C) }.
//   #show violated/1.
//   #const horizon = 5.
//   #program initial|dynamic|final|always|base.  % temporal sections
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "asp/term.hpp"
#include "common/source_loc.hpp"

namespace cprisk::asp {

/// Comparison / assignment operators usable in rule bodies.
enum class CompareOp { Eq, Ne, Lt, Le, Gt, Ge };

std::string to_string(CompareOp op);

/// Aggregate function kind for body aggregates.
enum class AggregateKind : std::uint8_t { Count, Sum };

std::string to_string(AggregateKind kind);

struct Literal;

/// One element of a body aggregate: `t1,...,tn : cond1, ..., condk`. The
/// tuple is the element identity (distinct tuples contribute once); for
/// `#sum` the first tuple term is the weight.
struct AggregateElement {
    std::vector<Term> tuple;
    std::vector<Literal> condition;

    std::string to_string() const;
};

/// A body element: an atom literal (possibly negated by `not`), a comparison
/// between two terms (`X = expr` with an unbound X acts as an assignment,
/// including interval expansion for `X = a..b`), or a body aggregate
/// `#sum { W,T : cond } <= B` / `#count { T : cond } >= N` (aggregates are
/// only admitted in integrity-constraint bodies; see grounder.hpp).
struct Literal {
    enum class Kind { Atom, Comparison, Aggregate };

    Kind kind = Kind::Atom;

    // Kind::Atom
    Atom atom;
    bool negated = false;  ///< negation as failure ("not p(X)")

    // Kind::Comparison — also reused by Kind::Aggregate: `op` and `rhs` hold
    // the guard (e.g. `<= budget`).
    CompareOp op = CompareOp::Eq;
    Term lhs = Term::integer(0);
    Term rhs = Term::integer(0);

    // Kind::Aggregate
    AggregateKind aggregate_kind = AggregateKind::Count;
    std::vector<AggregateElement> elements;

    /// Source position of the literal's first token (unknown for literals
    /// built programmatically).
    SourceLoc loc;

    static Literal positive(Atom a);
    static Literal negative(Atom a);
    static Literal comparison(Term lhs, CompareOp op, Term rhs);
    static Literal aggregate(AggregateKind kind, std::vector<AggregateElement> elements,
                             CompareOp op, Term bound);

    std::string to_string() const;
};

/// One element of a choice head: `atom : cond1, ..., condn` (the condition
/// may be empty).
struct ChoiceElement {
    Atom atom;
    std::vector<Literal> condition;

    std::string to_string() const;
};

/// Head of a rule.
struct Head {
    enum class Kind {
        Atom,        ///< normal rule
        Constraint,  ///< headless integrity constraint
        Choice,      ///< (bounded) choice rule
    };

    Kind kind = Kind::Constraint;
    Atom atom;                             // Kind::Atom
    std::vector<ChoiceElement> elements;   // Kind::Choice
    std::optional<long long> lower_bound;  // Kind::Choice
    std::optional<long long> upper_bound;  // Kind::Choice

    static Head make_atom(Atom a);
    static Head make_constraint();
    static Head make_choice(std::vector<ChoiceElement> elements,
                            std::optional<long long> lower = std::nullopt,
                            std::optional<long long> upper = std::nullopt);

    std::string to_string() const;
};

/// A rule `head :- body.`; facts have an empty body.
struct Rule {
    Head head;
    std::vector<Literal> body;
    /// Source position of the rule's first token (unknown for rules built
    /// programmatically).
    SourceLoc loc;

    std::string to_string() const;
};

/// A weak constraint `:~ body. [weight@priority, t1, ..., tn]`. Distinct
/// ground tuples (weight, priority, terms) each contribute `weight` to the
/// priority level's cost when the body holds.
struct WeakConstraint {
    std::vector<Literal> body;
    Term weight = Term::integer(1);
    long long priority = 0;
    std::vector<Term> tuple;
    /// Source position of the ':~' token (unknown when built
    /// programmatically).
    SourceLoc loc;

    std::string to_string() const;
};

/// Temporal section kind for Telingo-style programs (asp/temporal.hpp).
enum class SectionKind {
    Base,     ///< time-independent facts and rules (default)
    Initial,  ///< holds at t = 0
    Dynamic,  ///< holds at t > 0; `prev_p(X)` in bodies refers to p(X) at t-1
    Always,   ///< holds at every t
    Final,    ///< holds at t = horizon
};

std::string to_string(SectionKind kind);

/// A parsed program: rules, weak constraints and directives, each tagged
/// with the temporal section it appeared in (Base for plain programs).
class Program {
public:
    struct SectionedRule {
        Rule rule;
        SectionKind section = SectionKind::Base;
    };
    struct SectionedWeak {
        WeakConstraint weak;
        SectionKind section = SectionKind::Base;
    };

    void add_rule(Rule rule, SectionKind section = SectionKind::Base);
    void add_weak(WeakConstraint weak, SectionKind section = SectionKind::Base);
    void add_show(Signature sig);
    void set_const(const std::string& name, Term value);

    const std::vector<SectionedRule>& rules() const { return rules_; }
    const std::vector<SectionedWeak>& weaks() const { return weaks_; }
    const std::vector<Signature>& shows() const { return shows_; }
    const std::vector<std::pair<std::string, Term>>& consts() const { return consts_; }

    /// True if any statement is in a non-Base section.
    bool is_temporal() const;

    /// Appends all statements of `other` into this program.
    void append(const Program& other);

    std::string to_string() const;

private:
    std::vector<SectionedRule> rules_;
    std::vector<SectionedWeak> weaks_;
    std::vector<Signature> shows_;
    std::vector<std::pair<std::string, Term>> consts_;
};

std::ostream& operator<<(std::ostream& os, const Program& p);

/// Non-owning view of a program split into parts that the pipeline treats as
/// their concatenation. The point is to avoid copying: a large immutable base
/// program can be shared across thousands of scenario evaluations while each
/// evaluation contributes only a tiny delta part (see docs/performance.md).
/// Pointers must be non-null and outlive the call they are passed to.
using ProgramParts = std::vector<const Program*>;

}  // namespace cprisk::asp
