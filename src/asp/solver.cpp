#include "asp/solver.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "asp/cdcl.hpp"
#include "asp/incremental.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"

namespace cprisk::asp {

std::string SolveInterrupt::to_string() const {
    std::string out(cprisk::to_string(reason));
    switch (reason) {
        case BudgetReason::Deadline: out = "wall-clock deadline exceeded"; break;
        case BudgetReason::DecisionLimit: out = "decision budget exceeded"; break;
        case BudgetReason::StepLimit: out = "step budget exceeded"; break;
        case BudgetReason::Cancelled: out = "cancelled"; break;
    }
    out += " (decisions=" + std::to_string(stats.decisions) +
           ", conflicts=" + std::to_string(stats.conflicts) +
           ", propagations=" + std::to_string(stats.propagations) + ")";
    return out;
}

bool AnswerSet::contains(const Atom& atom) const {
    return std::binary_search(atoms.begin(), atoms.end(), atom);
}

bool AnswerSet::contains_predicate(const std::string& predicate) const {
    for (const Atom& a : atoms) {
        if (a.predicate == predicate) return true;
    }
    return false;
}

std::vector<Atom> AnswerSet::with_predicate(const std::string& predicate) const {
    std::vector<Atom> out;
    for (const Atom& a : atoms) {
        if (a.predicate == predicate) out.push_back(a);
    }
    return out;
}

std::string AnswerSet::to_string() const {
    std::string out;
    for (const Atom& a : atoms) {
        if (!out.empty()) out += " ";
        out += a.to_string();
    }
    for (const auto& [priority, value] : cost) {
        out += " [cost " + std::to_string(value) + "@" + std::to_string(priority) + "]";
    }
    return out;
}

namespace {

/// Literal encoding: variable v true -> 2v, false -> 2v+1.
int pos_lit(int var) { return 2 * var; }
int neg_lit(int var) { return 2 * var + 1; }
int lit_var(int lit) { return lit / 2; }
bool lit_sign(int lit) { return (lit & 1) == 0; }  // true literal?
int negate(int lit) { return lit ^ 1; }

class SolverImpl {
public:
    SolverImpl(const GroundProgram& program, const SolveOptions& options)
        : program_(program), options_(options) {
        build();
    }

    SolveResult run() {
        SolveResult result;
        if (!consistent_) {  // trivial top-level conflict while building
            result.satisfiable = false;
            result.stats = stats_;
            return result;
        }
        search();
        result.stats = stats_;
        result.satisfiable = !found_.empty();
        result.best_cost = best_cost_;
        if (interrupt_reason_) {
            result.interrupt = SolveInterrupt{*interrupt_reason_, stats_};
        }

        // Optimality filter + projection dedup.
        std::set<std::string> seen;
        for (auto& model : found_) {
            if (has_weaks_ && options_.optimize && model.cost != best_cost_) continue;
            std::string key;
            for (const Atom& a : model.atoms) key += a.to_string() + "|";
            if (!seen.insert(key).second) continue;
            result.models.push_back(std::move(model));
        }
        // Same canonical order as the CDCL engine, so `models.front()` is
        // engine-invariant for downstream consumers.
        sort_models_canonically(result.models);
        return result;
    }

private:
    // --- construction ---------------------------------------------------------

    void build() {
        const int n_atoms = static_cast<int>(program_.atom_count());
        const int n_rules = static_cast<int>(program_.rules().size());
        n_vars_ = n_atoms + n_rules;
        assign_.assign(static_cast<std::size_t>(n_vars_), 0);
        occurrences_.assign(static_cast<std::size_t>(2 * n_vars_), {});

        std::vector<std::vector<int>> supports(static_cast<std::size_t>(n_atoms));

        for (int r = 0; r < n_rules; ++r) {
            const GroundRule& rule = program_.rules()[static_cast<std::size_t>(r)];
            const int body_var = n_atoms + r;

            // body_var <-> conjunction of body literals
            std::vector<int> all_false = {pos_lit(body_var)};
            for (int p : rule.positive_body) {
                add_clause({neg_lit(body_var), pos_lit(p)});
                all_false.push_back(neg_lit(p));
            }
            for (int n : rule.negative_body) {
                add_clause({neg_lit(body_var), neg_lit(n)});
                all_false.push_back(pos_lit(n));
            }
            add_clause(std::move(all_false));

            switch (rule.kind) {
                case GroundRule::Kind::Normal:
                    add_clause({neg_lit(body_var), pos_lit(rule.head)});
                    supports[static_cast<std::size_t>(rule.head)].push_back(body_var);
                    break;
                case GroundRule::Kind::Constraint:
                    if (rule.aggregates.empty()) {
                        add_clause({neg_lit(body_var)});
                    } else {
                        // The constraint only fires when the aggregates also
                        // hold; checked on total assignments.
                        aggregate_constraints_.push_back(r);
                    }
                    break;
                case GroundRule::Kind::Choice:
                    for (int h : rule.choice_heads) {
                        supports[static_cast<std::size_t>(h)].push_back(body_var);
                    }
                    if (rule.lower_bound || rule.upper_bound) {
                        bounded_choices_.push_back(r);
                    }
                    break;
            }
        }

        // Completion/support clauses: atom -> disjunction of its bodies.
        for (int a = 0; a < n_atoms; ++a) {
            std::vector<int> clause = {neg_lit(a)};
            for (int body_var : supports[static_cast<std::size_t>(a)]) {
                clause.push_back(pos_lit(body_var));
            }
            add_clause(std::move(clause));
        }

        for (const GroundWeak& w : program_.weaks()) {
            if (w.weight < 0) negative_weights_ = true;
        }
        has_weaks_ = !program_.weaks().empty();

        // Static decision order: most-constrained variables first (highest
        // clause occurrence count), which lets unit propagation cut earlier.
        order_.reserve(static_cast<std::size_t>(n_vars_));
        for (int v = 0; v < n_vars_; ++v) order_.push_back(v);
        std::vector<std::size_t> occurrence_count(static_cast<std::size_t>(n_vars_), 0);
        for (int v = 0; v < n_vars_; ++v) {
            occurrence_count[static_cast<std::size_t>(v)] =
                occurrences_[static_cast<std::size_t>(pos_lit(v))].size() +
                occurrences_[static_cast<std::size_t>(neg_lit(v))].size();
        }
        std::stable_sort(order_.begin(), order_.end(), [&](int a, int b) {
            return occurrence_count[static_cast<std::size_t>(a)] >
                   occurrence_count[static_cast<std::size_t>(b)];
        });

        // Assumptions: permanent decision-level-0 assignments, applied before
        // the top-level propagation so their consequences prune the entire
        // search. They sit at the bottom of the trail, below every search
        // mark, so backtracking never undoes them.
        for (const auto& [atom, value] : options_.assumptions) {
            if (atom < 0 || atom >= n_atoms ||
                !assign_literal(value ? pos_lit(atom) : neg_lit(atom))) {
                consistent_ = false;
                return;
            }
        }

        // Top-level propagation of unit clauses.
        consistent_ = propagate();
    }

    void add_clause(std::vector<int> lits) {
        // Skip tautologies / duplicate literals.
        std::sort(lits.begin(), lits.end());
        lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
        for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
            if (lits[i + 1] == negate(lits[i])) return;  // tautology
        }
        const int id = static_cast<int>(clauses_.size());
        Clause clause;
        clause.lits = std::move(lits);
        // Counters under the current (possibly partial) assignment.
        for (int lit : clause.lits) {
            const int value = assign_[static_cast<std::size_t>(lit_var(lit))];
            if (value == 0) {
                ++clause.unassigned;
            } else if ((value > 0) == lit_sign(lit)) {
                ++clause.true_count;
            }
            occurrences_[static_cast<std::size_t>(lit)].push_back(id);
        }
        clauses_.push_back(std::move(clause));
        if (clauses_.back().true_count == 0 && clauses_.back().unassigned <= 1) {
            pending_clause_ = true;  // unit or conflicting under current assignment
        }
    }

    // --- assignment / propagation ----------------------------------------------

    bool value_true(int lit) const {
        const int v = assign_[static_cast<std::size_t>(lit_var(lit))];
        return v != 0 && (v > 0) == lit_sign(lit);
    }
    bool value_false(int lit) const {
        const int v = assign_[static_cast<std::size_t>(lit_var(lit))];
        return v != 0 && (v > 0) != lit_sign(lit);
    }
    bool unassigned(int var) const { return assign_[static_cast<std::size_t>(var)] == 0; }

    /// Assigns `lit` true; updates clause counters. Returns false on an
    /// immediate conflict (lit already false).
    bool assign_literal(int lit) {
        const int var = lit_var(lit);
        const int8_t desired = lit_sign(lit) ? 1 : -1;
        int8_t& slot = assign_[static_cast<std::size_t>(var)];
        if (slot != 0) return slot == desired;
        slot = desired;
        trail_.push_back(lit);
        ++stats_.propagations;
        for (int c : occurrences_[static_cast<std::size_t>(lit)]) {
            Clause& clause = clauses_[static_cast<std::size_t>(c)];
            ++clause.true_count;
            --clause.unassigned;
        }
        for (int c : occurrences_[static_cast<std::size_t>(negate(lit))]) {
            Clause& clause = clauses_[static_cast<std::size_t>(c)];
            --clause.unassigned;
            if (clause.true_count == 0 && clause.unassigned <= 1) {
                units_.push_back(c);
            }
        }
        return true;
    }

    void unassign_to(std::size_t mark) {
        while (trail_.size() > mark) {
            const int lit = trail_.back();
            trail_.pop_back();
            assign_[static_cast<std::size_t>(lit_var(lit))] = 0;
            for (int c : occurrences_[static_cast<std::size_t>(lit)]) {
                Clause& clause = clauses_[static_cast<std::size_t>(c)];
                --clause.true_count;
                ++clause.unassigned;
            }
            for (int c : occurrences_[static_cast<std::size_t>(negate(lit))]) {
                ++clauses_[static_cast<std::size_t>(c)].unassigned;
            }
        }
        units_.clear();
    }

    /// Exhaustive unit propagation; false on conflict.
    bool propagate() {
        if (pending_clause_) {
            // A clause added mid-flight may already be unit/conflicting.
            pending_clause_ = false;
            for (int c = 0; c < static_cast<int>(clauses_.size()); ++c) {
                const Clause& clause = clauses_[static_cast<std::size_t>(c)];
                if (clause.true_count == 0 && clause.unassigned <= 1) units_.push_back(c);
            }
        }
        while (!units_.empty()) {
            const int c = units_.back();
            units_.pop_back();
            const Clause& clause = clauses_[static_cast<std::size_t>(c)];
            if (clause.true_count > 0) continue;
            if (clause.unassigned == 0) {
                ++stats_.conflicts;
                units_.clear();
                return false;
            }
            int unit = -1;
            for (int lit : clause.lits) {
                if (unassigned(lit_var(lit))) {
                    unit = lit;
                    break;
                }
            }
            if (unit < 0) continue;  // stale entry
            if (!assign_literal(unit)) {
                ++stats_.conflicts;
                units_.clear();
                return false;
            }
        }
        return true;
    }

    // --- leaf validation ---------------------------------------------------------

    bool body_satisfied_in_model(const GroundRule& rule) const {
        for (int p : rule.positive_body) {
            if (assign_[static_cast<std::size_t>(p)] <= 0) return false;
        }
        for (int n : rule.negative_body) {
            if (assign_[static_cast<std::size_t>(n)] > 0) return false;
        }
        return true;
    }

    static bool compare_values(long long lhs, CompareOp op, long long rhs) {
        switch (op) {
            case CompareOp::Eq: return lhs == rhs;
            case CompareOp::Ne: return lhs != rhs;
            case CompareOp::Lt: return lhs < rhs;
            case CompareOp::Le: return lhs <= rhs;
            case CompareOp::Gt: return lhs > rhs;
            case CompareOp::Ge: return lhs >= rhs;
        }
        return false;
    }

    bool aggregate_holds(const GroundAggregate& aggregate) const {
        long long value = 0;
        std::set<std::string> counted;
        for (const GroundAggregateElement& element : aggregate.elements) {
            bool holds = true;
            for (int id : element.condition) {
                if (assign_[static_cast<std::size_t>(id)] <= 0) {
                    holds = false;
                    break;
                }
            }
            if (!holds) continue;
            if (!counted.insert(element.tuple).second) continue;
            value += element.weight;
        }
        return compare_values(value, aggregate.op, aggregate.bound);
    }

    /// Constraints with aggregate guards, checked on total assignments: the
    /// model is rejected when the literal body and every aggregate hold.
    bool aggregates_ok() const {
        for (int r : aggregate_constraints_) {
            const GroundRule& rule = program_.rules()[static_cast<std::size_t>(r)];
            if (!body_satisfied_in_model(rule)) continue;
            bool all_hold = true;
            for (const GroundAggregate& aggregate : rule.aggregates) {
                if (!aggregate_holds(aggregate)) {
                    all_hold = false;
                    break;
                }
            }
            if (all_hold) return false;
        }
        return true;
    }

    /// Propagation for bounded choice rules: once the bound is saturated the
    /// remaining heads are forced, and a bound that can no longer be met
    /// falsifies the rule body. Returns false on conflict; sets
    /// `progressed` when literals were assigned.
    bool propagate_bounds(bool& progressed) {
        const int n_atoms = static_cast<int>(program_.atom_count());
        for (int r : bounded_choices_) {
            const GroundRule& rule = program_.rules()[static_cast<std::size_t>(r)];
            const int body_var = n_atoms + r;
            const int8_t body_value = assign_[static_cast<std::size_t>(body_var)];
            if (body_value < 0) continue;  // body false: bounds do not apply

            long long chosen = 0;
            long long open = 0;
            for (int h : rule.choice_heads) {
                const int8_t v = assign_[static_cast<std::size_t>(h)];
                if (v > 0) {
                    ++chosen;
                } else if (v == 0) {
                    ++open;
                }
            }
            const bool upper_violated = rule.upper_bound && chosen > *rule.upper_bound;
            const bool lower_unreachable =
                rule.lower_bound && chosen + open < *rule.lower_bound;
            if (upper_violated || lower_unreachable) {
                // The bounds cannot hold: the body must be false.
                if (body_value > 0) return false;
                if (!assign_literal(neg_lit(body_var))) return false;
                progressed = true;
                continue;
            }
            if (body_value == 0) continue;  // body undecided: nothing to force

            if (rule.upper_bound && chosen == *rule.upper_bound && open > 0) {
                for (int h : rule.choice_heads) {
                    if (assign_[static_cast<std::size_t>(h)] == 0) {
                        if (!assign_literal(neg_lit(h))) return false;
                        progressed = true;
                    }
                }
            } else if (rule.lower_bound && chosen + open == *rule.lower_bound && open > 0) {
                for (int h : rule.choice_heads) {
                    if (assign_[static_cast<std::size_t>(h)] == 0) {
                        if (!assign_literal(pos_lit(h))) return false;
                        progressed = true;
                    }
                }
            }
        }
        return true;
    }

    /// Unit propagation interleaved with bound propagation to fixpoint.
    bool propagate_all() {
        while (true) {
            if (!propagate()) return false;
            if (!options_.propagate_bounds) return true;
            bool progressed = false;
            if (!propagate_bounds(progressed)) {
                ++stats_.conflicts;
                return false;
            }
            if (!progressed) return true;
        }
    }

    bool bounds_ok() const {
        for (int r : bounded_choices_) {
            const GroundRule& rule = program_.rules()[static_cast<std::size_t>(r)];
            if (!body_satisfied_in_model(rule)) continue;
            long long chosen = 0;
            for (int h : rule.choice_heads) {
                if (assign_[static_cast<std::size_t>(h)] > 0) ++chosen;
            }
            if (rule.lower_bound && chosen < *rule.lower_bound) return false;
            if (rule.upper_bound && chosen > *rule.upper_bound) return false;
        }
        return true;
    }

    /// Least model of the reduct; compares against the candidate. On failure
    /// records the unfounded set into `unfounded_out`.
    bool stable(std::vector<int>& unfounded_out) const {
        if (fault::should_fail("asp.solver.stability")) {
            throw Error("solver: injected fault in stability check (site asp.solver.stability)");
        }
        const int n_atoms = static_cast<int>(program_.atom_count());
        std::vector<char> derived(static_cast<std::size_t>(n_atoms), false);
        bool progressed = true;
        while (progressed) {
            progressed = false;
            // Account the round against the shared budget. A trip is sticky:
            // the check itself runs to completion (it is polynomial), and the
            // search stops at the next decision point.
            if (options_.budget != nullptr) {
                options_.budget->charge_steps(program_.rules().size());
            }
            for (const GroundRule& rule : program_.rules()) {
                if (rule.kind == GroundRule::Kind::Constraint) continue;
                // Reduct keeps the rule if no negative literal is in the model.
                bool neg_ok = true;
                for (int n : rule.negative_body) {
                    if (assign_[static_cast<std::size_t>(n)] > 0) {
                        neg_ok = false;
                        break;
                    }
                }
                if (!neg_ok) continue;
                bool pos_ok = true;
                for (int p : rule.positive_body) {
                    if (!derived[static_cast<std::size_t>(p)]) {
                        pos_ok = false;
                        break;
                    }
                }
                if (!pos_ok) continue;
                if (rule.kind == GroundRule::Kind::Normal) {
                    if (!derived[static_cast<std::size_t>(rule.head)]) {
                        derived[static_cast<std::size_t>(rule.head)] = true;
                        progressed = true;
                    }
                } else {  // Choice: chosen atoms are self-supported.
                    for (int h : rule.choice_heads) {
                        if (assign_[static_cast<std::size_t>(h)] > 0 &&
                            !derived[static_cast<std::size_t>(h)]) {
                            derived[static_cast<std::size_t>(h)] = true;
                            progressed = true;
                        }
                    }
                }
            }
        }
        unfounded_out.clear();
        for (int a = 0; a < n_atoms; ++a) {
            if (assign_[static_cast<std::size_t>(a)] > 0 && !derived[static_cast<std::size_t>(a)]) {
                unfounded_out.push_back(a);
            }
        }
        return unfounded_out.empty();
    }

    /// Loop-formula cut for an unfounded set U: some atom of U is false, or
    /// some external supporting body (head in U, positive body disjoint from
    /// U) is true. Valid in every answer set; falsified by the current model.
    void add_unfounded_cut(const std::vector<int>& unfounded) {
        const int n_atoms = static_cast<int>(program_.atom_count());
        std::set<int> u(unfounded.begin(), unfounded.end());
        std::vector<int> clause;
        clause.reserve(unfounded.size() + 4);
        for (int a : unfounded) clause.push_back(neg_lit(a));
        for (std::size_t r = 0; r < program_.rules().size(); ++r) {
            const GroundRule& rule = program_.rules()[r];
            bool head_in_u = false;
            if (rule.kind == GroundRule::Kind::Normal) {
                head_in_u = u.count(rule.head) > 0;
            } else if (rule.kind == GroundRule::Kind::Choice) {
                for (int h : rule.choice_heads) {
                    if (u.count(h) > 0) {
                        head_in_u = true;
                        break;
                    }
                }
            }
            if (!head_in_u) continue;
            bool external = true;
            for (int p : rule.positive_body) {
                if (u.count(p) > 0) {
                    external = false;
                    break;
                }
            }
            if (external) clause.push_back(pos_lit(n_atoms + static_cast<int>(r)));
        }
        add_clause(std::move(clause));
    }

    // --- costs ---------------------------------------------------------------

    std::map<long long, long long> model_cost() const {
        // Distinct (priority, tuple) pairs counted once.
        std::map<long long, long long> cost;
        std::set<std::pair<long long, std::string>> counted;
        for (const GroundWeak& w : program_.weaks()) {
            bool holds = true;
            for (int p : w.positive_body) {
                if (assign_[static_cast<std::size_t>(p)] <= 0) {
                    holds = false;
                    break;
                }
            }
            for (int n : w.negative_body) {
                if (assign_[static_cast<std::size_t>(n)] > 0) {
                    holds = false;
                    break;
                }
            }
            if (!holds) continue;
            if (!counted.insert({w.priority, w.tuple}).second) continue;
            cost[w.priority] += w.weight;
        }
        return cost;
    }

    /// Lower bound of the final cost from weak bodies already fully true.
    std::map<long long, long long> partial_cost_lower_bound() const {
        std::map<long long, long long> cost;
        std::set<std::pair<long long, std::string>> counted;
        for (const GroundWeak& w : program_.weaks()) {
            bool definitely = true;
            for (int p : w.positive_body) {
                if (assign_[static_cast<std::size_t>(p)] <= 0) {
                    definitely = false;
                    break;
                }
            }
            for (int n : w.negative_body) {
                if (assign_[static_cast<std::size_t>(n)] >= 0) {
                    definitely = false;
                    break;
                }
            }
            if (!definitely) continue;
            if (!counted.insert({w.priority, w.tuple}).second) continue;
            cost[w.priority] += w.weight;
        }
        return cost;
    }

    /// Lexicographic (descending priority) comparison: true if a < b.
    static bool cost_less(const std::map<long long, long long>& a,
                          const std::map<long long, long long>& b) {
        auto ia = a.rbegin();
        auto ib = b.rbegin();
        while (ia != a.rend() || ib != b.rend()) {
            const long long pa = ia != a.rend() ? ia->first : std::numeric_limits<long long>::min();
            const long long pb = ib != b.rend() ? ib->first : std::numeric_limits<long long>::min();
            long long va = 0;
            long long vb = 0;
            long long priority = 0;
            if (pa > pb) {
                priority = pa;
                va = ia->second;
                ++ia;
            } else if (pb > pa) {
                priority = pb;
                vb = ib->second;
                ++ib;
            } else {
                priority = pa;
                va = ia->second;
                vb = ib->second;
                ++ia;
                ++ib;
            }
            (void)priority;
            if (va != vb) return va < vb;
        }
        return false;
    }

    bool should_prune_by_cost() const {
        if (!has_weaks_ || !options_.optimize || negative_weights_) return false;
        if (!have_best_) return false;
        const auto bound = partial_cost_lower_bound();
        // Prune only if the lower bound already exceeds the best cost.
        return cost_less(best_cost_, bound);
    }

    // --- search ------------------------------------------------------------------

    void record_model() {
        ++stats_.models_enumerated;
        AnswerSet model;
        model.cost = model_cost();
        for (int a = 0; a < static_cast<int>(program_.atom_count()); ++a) {
            if (assign_[static_cast<std::size_t>(a)] > 0 && program_.is_shown(a)) {
                model.atoms.push_back(program_.atom(a));
            }
        }
        std::sort(model.atoms.begin(), model.atoms.end());
        if (has_weaks_ && options_.optimize) {
            if (!have_best_ || cost_less(model.cost, best_cost_)) {
                best_cost_ = model.cost;
                have_best_ = true;
            }
        }
        found_.push_back(std::move(model));
    }

    bool model_limit_reached() const {
        // With optimization we cannot stop early on a model budget, since a
        // later model may beat the current best.
        if (has_weaks_ && options_.optimize) return false;
        return options_.max_models != 0 && found_.size() >= options_.max_models;
    }

    int pick_unassigned() const {
        for (int v : order_) {
            if (unassigned(v)) return v;
        }
        return -1;
    }

    /// Depth-first enumeration; returns false to stop the search (model
    /// limit reached, or a resource budget tripped — see interrupt_reason_).
    bool search() {
        if (!propagate_all()) return true;
        if (should_prune_by_cost()) return true;

        const int var = pick_unassigned();
        if (var < 0) {  // total assignment
            if (!bounds_ok()) return true;
            if (!aggregates_ok()) return true;
            std::vector<int> unfounded;
            if (!stable(unfounded)) {
                ++stats_.stability_rejects;
                add_unfounded_cut(unfounded);
                return true;
            }
            record_model();
            return !model_limit_reached();
        }

        ++stats_.decisions;
        if (options_.max_decisions != 0 && stats_.decisions > options_.max_decisions) {
            interrupt_reason_ = BudgetReason::DecisionLimit;
            return false;
        }
        if (options_.budget != nullptr) {
            if (auto exceeded = options_.budget->charge_decisions()) {
                interrupt_reason_ = exceeded->reason;
                return false;
            }
        }

        for (const int lit : {neg_lit(var), pos_lit(var)}) {
            const std::size_t mark = trail_.size();
            if (assign_literal(lit)) {
                if (!search()) {
                    unassign_to(mark);
                    return false;
                }
            } else {
                ++stats_.conflicts;
            }
            unassign_to(mark);
        }
        return true;
    }

    struct Clause {
        std::vector<int> lits;
        int true_count = 0;
        int unassigned = 0;
    };

    const GroundProgram& program_;
    const SolveOptions& options_;

    int n_vars_ = 0;
    std::vector<Clause> clauses_;
    std::vector<std::vector<int>> occurrences_;  // literal -> clause ids
    std::vector<int> order_;
    std::vector<int8_t> assign_;
    std::vector<int> trail_;
    std::vector<int> units_;
    std::vector<int> bounded_choices_;
    std::vector<int> aggregate_constraints_;
    bool pending_clause_ = false;
    bool consistent_ = true;
    bool has_weaks_ = false;
    bool negative_weights_ = false;

    std::vector<AnswerSet> found_;
    std::map<long long, long long> best_cost_;
    bool have_best_ = false;
    SolveStats stats_;
    std::optional<BudgetReason> interrupt_reason_;
};

}  // namespace

Result<SolveResult> solve(const GroundProgram& program, const SolveOptions& options) {
    if (fault::should_fail("asp.solver.solve")) {
        return Result<SolveResult>::failure("solver: injected fault (site asp.solver.solve)");
    }
    obs::Span span(options.trace, "asp.solve", "solve");
    try {
        SolveResult solved;
        if (options.engine == SolverEngine::Cdcl) {
            if (options.incremental != nullptr &&
                options.incremental->program() == &program) {
                // Warm path: reuse the built completion and retained clauses.
                solved = options.incremental->solve(options);
            } else {
                CdclSolver solver(program);
                solved = solver.solve(options);
            }
        } else {
            SolverImpl solver(program, options);
            solved = solver.run();
        }
        const SolveStats& stats = solved.stats;
        span.arg("decisions", static_cast<long long>(stats.decisions));
        span.arg("conflicts", static_cast<long long>(stats.conflicts));
        span.arg("models", static_cast<long long>(solved.models.size()));
        obs::add_counter(options.metrics, "asp.solve.calls");
        obs::add_counter(options.metrics, "asp.solve.decisions", stats.decisions);
        obs::add_counter(options.metrics, "asp.solve.conflicts", stats.conflicts);
        obs::add_counter(options.metrics, "asp.solve.propagations", stats.propagations);
        obs::add_counter(options.metrics, "asp.solve.models", solved.models.size());
        obs::add_counter(options.metrics, "asp.solve.restarts", stats.restarts);
        obs::add_counter(options.metrics, "asp.solve.learned_clauses", stats.learned_clauses);
        obs::add_counter(options.metrics, "asp.solve.reused_propagations",
                         stats.reused_clause_propagations);
        if (solved.interrupt.has_value()) {
            obs::add_counter(options.metrics, "asp.solve.interrupts");
        }
        if (solved.assumption_core.has_value()) {
            obs::add_counter(options.metrics, "asp.solve.core_size",
                             solved.assumption_core->size());
        }
        return solved;
    } catch (const Error& e) {
        return Result<SolveResult>::failure(e.what());
    }
}

}  // namespace cprisk::asp
