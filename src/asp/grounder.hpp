// cprisk/asp/grounder.hpp
//
// Bottom-up grounder: instantiates the rules of a (Base-section) program
// over the herbrand domain derived from facts and rule heads, producing a
// GroundProgram for the solver. Negation-as-failure literals are treated as
// possibly-true during grounding, so the grounded atom domain safely
// over-approximates every answer set.
#pragma once

#include <cstddef>

#include "asp/ground_program.hpp"
#include "asp/syntax.hpp"
#include "common/budget.hpp"
#include "common/result.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cprisk::asp {

struct GrounderOptions {
    /// Safety valve against non-terminating programs (e.g. p(X+1) :- p(X)).
    std::size_t max_atoms = 2'000'000;
    std::size_t max_iterations = 10'000;
    /// Optional shared resource governor; grounding charges one step per
    /// grounded rule and per newly interned atom. A tripped budget fails the
    /// ground() call; the caller classifies via Budget::tripped(). Not owned.
    Budget* budget = nullptr;
    /// Ground rules grouped by predicate-dependency SCC in topological order
    /// (analysis/dependency_graph.hpp): each rule is revisited only while its
    /// own component is still growing, instead of on every global fixpoint
    /// round. Produces the same GroundProgram as the global fixpoint (same
    /// atoms, rules, and weak constraints; emission order may differ).
    bool scc_order = true;
    /// Observability (docs/observability.md): one "asp.ground" span per
    /// call plus asp.ground.* counters recorded after the fixpoint — the
    /// hot grounding loops themselves are never instrumented. Both borrowed;
    /// nullptr disables. Usually threaded from RunContext by the caller.
    obs::TraceSink* trace = nullptr;
    obs::MetricsRegistry* metrics = nullptr;
};

/// Grounds `program`. Temporal programs must be unrolled first (see
/// asp/temporal.hpp); passing a program with non-Base sections fails.
/// Fails on unsafe rules (variables not bound by a positive literal or
/// assignment) and on domain explosion past the configured limits.
Result<GroundProgram> ground(const Program& program, const GrounderOptions& options = {});

/// Grounds the concatenation of `parts` without materializing it — the
/// ground-once/solve-many entry point: a shared base part plus a small delta
/// part ground as one program while the base is never copied.
Result<GroundProgram> ground(const ProgramParts& parts, const GrounderOptions& options = {});

}  // namespace cprisk::asp
