// cprisk/asp/symbols.hpp
//
// Predicate-symbol interning for the grounder's hot lookup paths. Grounding
// repeatedly keys its domain index by "predicate/arity"; building that string
// per lookup (and using string-keyed maps) dominated profiles on bundle-sized
// programs. A SymbolTable maps (name, arity) to a dense non-negative id once,
// after which domain indexing is plain vector-by-id access.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cprisk::asp {

/// Interns (predicate name, arity) pairs into dense ids, 0-based in insertion
/// order. Lookups never allocate: probing uses a transparent hash over
/// (string_view, arity).
class SymbolTable {
public:
    /// Returns the id of (name, arity), interning it on first sight.
    int intern(std::string_view name, std::size_t arity) {
        const Key probe{name, arity};
        auto it = ids_.find(probe);
        if (it != ids_.end()) return it->second;
        const int id = static_cast<int>(symbols_.size());
        // deque: growth never moves existing strings, so the string_view
        // keys below stay valid for the table's lifetime (a vector would
        // relocate SSO buffers on reallocation).
        symbols_.emplace_back(name);
        arities_.push_back(arity);
        ids_.emplace(Key{symbols_.back(), arity}, id);
        return id;
    }

    /// Returns the id of (name, arity) or -1 when never interned.
    int find(std::string_view name, std::size_t arity) const {
        auto it = ids_.find(Key{name, arity});
        return it == ids_.end() ? -1 : it->second;
    }

    std::size_t size() const { return symbols_.size(); }
    const std::string& name(int id) const { return symbols_[static_cast<std::size_t>(id)]; }
    std::size_t arity(int id) const { return arities_[static_cast<std::size_t>(id)]; }

private:
    struct Key {
        std::string_view name;
        std::size_t arity = 0;
        bool operator==(const Key& other) const {
            return arity == other.arity && name == other.name;
        }
    };
    struct KeyHash {
        std::size_t operator()(const Key& key) const {
            return std::hash<std::string_view>{}(key.name) * 31 + key.arity;
        }
    };

    std::deque<std::string> symbols_;
    std::vector<std::size_t> arities_;
    std::unordered_map<Key, int, KeyHash> ids_;
};

}  // namespace cprisk::asp
