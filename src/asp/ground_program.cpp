#include "asp/ground_program.hpp"

#include "common/error.hpp"

namespace cprisk::asp {

int GroundProgram::intern(const Atom& atom) {
    auto it = ids_.find(atom);
    if (it != ids_.end()) return it->second;
    const int id = static_cast<int>(atoms_.size());
    atoms_.push_back(atom);
    ids_.emplace(atom, id);
    return id;
}

int GroundProgram::find(const Atom& atom) const {
    auto it = ids_.find(atom);
    return it == ids_.end() ? -1 : it->second;
}

const Atom& GroundProgram::atom(int id) const {
    require(id >= 0 && id < static_cast<int>(atoms_.size()),
            "GroundProgram: atom id out of range");
    return atoms_[static_cast<std::size_t>(id)];
}

bool GroundProgram::is_shown(int id) const {
    if (shows_.empty()) return true;
    const Atom& a = atom(id);
    for (const Signature& s : shows_) {
        if (s.predicate == a.predicate && s.arity == a.args.size()) return true;
    }
    return false;
}

std::string GroundProgram::to_string() const {
    std::string out;
    auto body_string = [&](const GroundRule& r) {
        std::string b;
        for (int id : r.positive_body) {
            if (!b.empty()) b += ", ";
            b += atom(id).to_string();
        }
        for (int id : r.negative_body) {
            if (!b.empty()) b += ", ";
            b += "not " + atom(id).to_string();
        }
        return b;
    };
    for (const GroundRule& r : rules_) {
        switch (r.kind) {
            case GroundRule::Kind::Normal: out += atom(r.head).to_string(); break;
            case GroundRule::Kind::Constraint: break;
            case GroundRule::Kind::Choice: {
                if (r.lower_bound) out += std::to_string(*r.lower_bound) + " ";
                out += "{ ";
                for (std::size_t i = 0; i < r.choice_heads.size(); ++i) {
                    if (i > 0) out += "; ";
                    out += atom(r.choice_heads[i]).to_string();
                }
                out += " }";
                if (r.upper_bound) out += " " + std::to_string(*r.upper_bound);
                break;
            }
        }
        const std::string body = body_string(r);
        if (!body.empty() || r.kind == GroundRule::Kind::Constraint) {
            out += (out.empty() || out.back() == '\n' ? ":- " : " :- ") + body;
        }
        out += ".\n";
    }
    for (const GroundWeak& w : weaks_) {
        std::string b;
        for (int id : w.positive_body) {
            if (!b.empty()) b += ", ";
            b += atom(id).to_string();
        }
        for (int id : w.negative_body) {
            if (!b.empty()) b += ", ";
            b += "not " + atom(id).to_string();
        }
        out += ":~ " + b + ". [" + std::to_string(w.weight) + "@" + std::to_string(w.priority) +
               (w.tuple.empty() ? "" : ", " + w.tuple) + "]\n";
    }
    return out;
}

}  // namespace cprisk::asp
