// cprisk/asp/ground_program.hpp
//
// Variable-free (ground) program representation produced by the grounder and
// consumed by the stable-model solver. Atoms are interned to dense integer
// ids; rules reference atoms by id.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "asp/syntax.hpp"
#include "asp/term.hpp"

namespace cprisk::asp {

/// One grounded aggregate element: contributes `weight` once per distinct
/// `tuple` when all `condition` atoms are true in the model.
struct GroundAggregateElement {
    long long weight = 1;
    std::string tuple;          ///< serialized identity
    std::vector<int> condition;  ///< positive condition atom ids
};

/// A grounded body aggregate guard (only admitted in constraints): the
/// aggregate value is compared against `bound` under the candidate model.
struct GroundAggregate {
    CompareOp op = CompareOp::Le;
    long long bound = 0;
    std::vector<GroundAggregateElement> elements;
};

/// A ground rule. For `Kind::Normal` the head is `head`; `Kind::Constraint`
/// has no head; `Kind::Choice` offers `choice_heads` with optional
/// cardinality bounds. `aggregates` (constraints only) must *all* hold, in
/// addition to the literal body, for the constraint to fire.
struct GroundRule {
    enum class Kind : std::uint8_t { Normal, Constraint, Choice };

    Kind kind = Kind::Normal;
    int head = -1;
    std::vector<int> choice_heads;
    std::optional<long long> lower_bound;
    std::optional<long long> upper_bound;
    std::vector<int> positive_body;
    std::vector<int> negative_body;
    std::vector<GroundAggregate> aggregates;
};

/// A ground weak constraint: when the body holds in an answer set, the tuple
/// contributes `weight` at `priority` (distinct tuples counted once).
struct GroundWeak {
    std::vector<int> positive_body;
    std::vector<int> negative_body;
    long long weight = 0;
    long long priority = 0;
    std::string tuple;  ///< serialized tuple identity
};

/// Interned ground program.
class GroundProgram {
public:
    /// Returns the id of `atom`, interning it on first sight.
    int intern(const Atom& atom);

    /// Id of `atom` if known, -1 otherwise.
    int find(const Atom& atom) const;

    const Atom& atom(int id) const;
    std::size_t atom_count() const { return atoms_.size(); }

    void add_rule(GroundRule rule) { rules_.push_back(std::move(rule)); }
    void add_weak(GroundWeak weak) { weaks_.push_back(std::move(weak)); }
    void add_show(Signature sig) { shows_.push_back(std::move(sig)); }

    const std::vector<GroundRule>& rules() const { return rules_; }
    const std::vector<GroundWeak>& weaks() const { return weaks_; }

    /// Mutable access for model-preserving rewrites (absint::simplify). The
    /// atom table is intentionally not exposed: interned ids must stay valid.
    std::vector<GroundRule>& mutable_rules() { return rules_; }
    std::vector<GroundWeak>& mutable_weaks() { return weaks_; }

    const std::vector<Signature>& shows() const { return shows_; }

    /// True if `id` should appear in projected answer sets (empty show list
    /// means "show everything").
    bool is_shown(int id) const;

    std::string to_string() const;

private:
    std::vector<Atom> atoms_;
    std::map<Atom, int> ids_;
    std::vector<GroundRule> rules_;
    std::vector<GroundWeak> weaks_;
    std::vector<Signature> shows_;
};

}  // namespace cprisk::asp
