// cprisk/asp/ltl.hpp
//
// Finite-trace linear temporal logic (LTLf) used to express system
// requirements over the qualitative behaviour ("QR extended with temporal
// logic", paper §II-B; requirements R1/R2 in §VII are safety formulas).
//
// Two evaluation paths are provided and cross-validated in the tests:
//
//  * `Formula::evaluate` — direct model checking over an explicit trace
//    (sequence of atom sets), with standard LTLf semantics (strong Next is
//    false at the last state; weak Next is true).
//  * `compile_requirement` — compilation into ASP rules over time-stamped
//    atoms (as produced by asp::unroll), deriving `violated(<name>)` iff the
//    formula does NOT hold at t = 0. This is how requirements participate in
//    the exhaustive hazard identification.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "asp/syntax.hpp"
#include "asp/term.hpp"

namespace cprisk::asp::ltl {

/// A trace: the set of true atoms at each time step 0..H.
using Trace = std::vector<std::set<Atom>>;

/// Immutable LTLf formula (shared subtrees are cheap to copy).
class Formula {
public:
    enum class Op {
        Atom,        ///< ground atom holds at the current step
        True,
        False,
        Not,
        And,
        Or,
        Implies,
        Next,        ///< strong next: requires a successor state
        WeakNext,    ///< weak next: true at the last state
        Always,      ///< G
        Eventually,  ///< F
        Until,       ///< left U right (strong until)
        Release,     ///< left R right
    };

    static Formula atom(Atom a);
    static Formula truth();
    static Formula falsity();
    static Formula negate(Formula f);
    static Formula conj(Formula l, Formula r);
    static Formula disj(Formula l, Formula r);
    static Formula implies(Formula l, Formula r);
    static Formula next(Formula f);
    static Formula weak_next(Formula f);
    static Formula always(Formula f);
    static Formula eventually(Formula f);
    static Formula until(Formula l, Formula r);
    static Formula release(Formula l, Formula r);

    Op op() const { return node_->op; }
    const Atom& atom_value() const { return node_->atom; }
    Formula left() const;
    Formula right() const;

    /// LTLf satisfaction at position `pos` of `trace`. An empty trace
    /// satisfies nothing except `truth()`.
    bool evaluate(const Trace& trace, std::size_t pos = 0) const;

    std::string to_string() const;

private:
    struct Node {
        Op op = Op::True;
        Atom atom;
        std::shared_ptr<const Node> left;
        std::shared_ptr<const Node> right;
    };
    explicit Formula(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
    static Formula make(Op op, Formula* l, Formula* r);

    static bool eval_node(const Node& node, const Trace& trace, std::size_t pos);

    std::shared_ptr<const Node> node_;

    friend class Compiler;
};

/// Compiles `formula` into ASP rules over time-stamped atoms: each atom
/// p(a1,...,an) in the formula is read as p(a1,...,an,T). Appends to
/// `program` rules deriving `violated(name)` iff the formula is false at
/// t = 0, using the time-domain predicate `time_predicate` with the final
/// time step `horizon` (matching asp::UnrollOptions). Auxiliary predicates
/// are prefixed with `__ltl_<name>_`.
void compile_requirement(Program& program, const std::string& name, const Formula& formula,
                         int horizon, const std::string& time_predicate = "__t",
                         const std::string& violated_predicate = "violated");

}  // namespace cprisk::asp::ltl
