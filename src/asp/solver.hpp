// cprisk/asp/solver.hpp
//
// Stable-model (answer set) solver over ground programs. The algorithm is
// classic completion-based search:
//
//  1. Clark completion: one auxiliary variable per ground rule body; clauses
//     tie bodies to their literals, heads to their bodies, and every atom to
//     the disjunction of its potentially supporting bodies.
//  2. DPLL search with counter-based unit propagation enumerates supported
//     models.
//  3. Each supported model passes a stability check (least model of the
//     reduct == true atoms). Unstable models are cut with a loop-formula
//     style clause over the unfounded set, which is valid for every answer
//     set, so no stable model is lost.
//  4. Choice-rule cardinality bounds are verified on total assignments.
//  5. Weak constraints are aggregated per priority (distinct tuples counted
//     once, clingo-style); branch & bound prunes when all weights are
//     non-negative.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "asp/ground_program.hpp"
#include "asp/term.hpp"
#include "common/budget.hpp"
#include "common/result.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cprisk::asp {

/// Search engine selection (docs/solver.md). Both engines enumerate the
/// same projected answer sets, costs, and optima — differential-tested —
/// and differ only in search strategy and SolveStats:
///
///  - Cdcl (default): two-watched-literal propagation, 1UIP conflict
///    analysis with clause learning, EVSIDS decision heuristic with phase
///    saving, Luby restarts, and LBD-based learned-clause reduction. Under
///    an IncrementalSolver (incremental.hpp), entailed learned clauses
///    persist across solves on the same ground program.
///  - Dpll: the original counter-based chronological search, retained as
///    the escape hatch (`cprisk assess --solver dpll`) and as the
///    differential-testing reference.
enum class SolverEngine { Cdcl, Dpll };

class IncrementalSolver;  // incremental.hpp

/// One answer set, projected onto the #show signatures.
struct AnswerSet {
    std::vector<Atom> atoms;               ///< shown atoms, sorted
    std::map<long long, long long> cost;   ///< priority -> accumulated cost

    bool contains(const Atom& atom) const;
    /// True if any shown atom has this predicate name (any arity/args).
    bool contains_predicate(const std::string& predicate) const;
    /// All shown atoms with the given predicate name.
    std::vector<Atom> with_predicate(const std::string& predicate) const;

    std::string to_string() const;
};

struct SolveOptions {
    /// Search engine (docs/solver.md). Cdcl is the default; Dpll is the
    /// differential reference and CLI escape hatch. Both produce identical
    /// projected answer sets, costs, and optima.
    SolverEngine engine = SolverEngine::Cdcl;
    /// Optional warm solver (Cdcl only; borrowed, caller synchronizes). When
    /// set and bound to the same ground program, the solve reuses the already
    /// built completion and every entailed clause learned by earlier solves
    /// instead of rebuilding from scratch. Ignored by the Dpll engine; a
    /// program mismatch falls back to a cold solve.
    IncrementalSolver* incremental = nullptr;
    /// Stop after this many (projected, distinct) models; 0 = no limit.
    std::size_t max_models = 0;
    /// When weak constraints are present, keep only optimal models.
    bool optimize = true;
    /// Per-solve decision quota; an exceeded search stops and reports a
    /// SolveInterrupt with the stats at the stopping point (0 = unlimited).
    std::size_t max_decisions = 50'000'000;
    /// Propagate cardinality bounds of choice rules during search (ablation
    /// knob; leaf-only checking remains correct but exponentially slower on
    /// tightly-bounded programs).
    bool propagate_bounds = true;
    /// Optional shared resource governor (wall-clock deadline, cross-solve
    /// decision quota, cancellation). Not owned; may be nullptr.
    Budget* budget = nullptr;
    /// Assumptions applied as permanent decision-level-0 assignments before
    /// search: (ground atom id, truth value) pairs. This is the
    /// ground-once/solve-many idiom (clingo's #external): ground one program
    /// whose delta domain is left open via singleton choice shells, then pin
    /// each shell true/false per solve. Pinned-false choice atoms are absent
    /// from every model, exactly as if their fact had never been grounded.
    /// Contradictory or out-of-range atom ids make the program trivially
    /// unsatisfiable.
    std::vector<std::pair<int, bool>> assumptions;
    /// Observability (docs/observability.md): one "asp.solve" span per call
    /// plus asp.solve.* counters recorded from the final SolveStats — the
    /// DPLL inner loop is never instrumented. Both borrowed; nullptr
    /// disables. Usually threaded from RunContext by the caller.
    obs::TraceSink* trace = nullptr;
    obs::MetricsRegistry* metrics = nullptr;
};

struct SolveStats {
    std::size_t decisions = 0;
    std::size_t propagations = 0;
    std::size_t conflicts = 0;
    std::size_t stability_rejects = 0;
    std::size_t models_enumerated = 0;  ///< pre-projection, pre-optimality filter
    // CDCL-only fields (always 0 under the Dpll engine). Deliberately NOT
    // serialized into journal verdicts, so journals written under either
    // engine stay byte-identical and resumable across engines.
    std::size_t restarts = 0;         ///< Luby restarts performed
    std::size_t learned_clauses = 0;  ///< clauses learned this solve
    std::size_t learned_literals = 0; ///< total literals across learned clauses
    std::size_t db_reductions = 0;    ///< learned-clause DB reduction passes
    /// Propagations whose reason was a clause learned by an *earlier* solve
    /// on the same IncrementalSolver — the cross-scenario reuse signal.
    std::size_t reused_clause_propagations = 0;
};

/// Structured record of a search stopped early by a resource budget. The
/// enumeration below the stopping point was not explored, so a result that
/// carries an interrupt is a sound *under*-approximation: the models listed
/// are answer sets, but absence of a model proves nothing.
struct SolveInterrupt {
    BudgetReason reason = BudgetReason::DecisionLimit;
    SolveStats stats;  ///< work done up to the stopping point

    /// e.g. "decision budget exceeded (decisions=50000001, conflicts=1327,
    /// propagations=...)" — stats ride along in every diagnostic.
    std::string to_string() const;
};

struct SolveResult {
    bool satisfiable = false;
    std::vector<AnswerSet> models;          ///< distinct projected answer sets
    std::map<long long, long long> best_cost;  ///< optimum, when optimizing
    SolveStats stats;
    /// Set when the search stopped early (budget/deadline/cancellation); the
    /// models above are then a partial enumeration.
    std::optional<SolveInterrupt> interrupt;
    /// CDCL only: when the program is UNSAT under `options.assumptions` and
    /// the search completed, the subset of assumptions that participated in
    /// the final conflict (MiniSat's analyzeFinal). Any assignment extending
    /// this core is also unsatisfiable, so over scenario-fault pins a core is
    /// a hazardous sub-scenario (frontier seeding, docs/exhaustive-search.md).
    /// Unset for SAT results, interrupted searches, and the Dpll engine.
    std::optional<std::vector<std::pair<int, bool>>> assumption_core;

    /// True when the search ran to completion (result is exhaustive).
    bool complete() const { return !interrupt.has_value(); }
};

/// Solves `program`. Budget exhaustion is not a failure: the result carries a
/// SolveInterrupt plus whatever models were found. Fails only on injected or
/// internal solver errors.
Result<SolveResult> solve(const GroundProgram& program, const SolveOptions& options = {});

}  // namespace cprisk::asp
