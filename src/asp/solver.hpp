// cprisk/asp/solver.hpp
//
// Stable-model (answer set) solver over ground programs. The algorithm is
// classic completion-based search:
//
//  1. Clark completion: one auxiliary variable per ground rule body; clauses
//     tie bodies to their literals, heads to their bodies, and every atom to
//     the disjunction of its potentially supporting bodies.
//  2. DPLL search with counter-based unit propagation enumerates supported
//     models.
//  3. Each supported model passes a stability check (least model of the
//     reduct == true atoms). Unstable models are cut with a loop-formula
//     style clause over the unfounded set, which is valid for every answer
//     set, so no stable model is lost.
//  4. Choice-rule cardinality bounds are verified on total assignments.
//  5. Weak constraints are aggregated per priority (distinct tuples counted
//     once, clingo-style); branch & bound prunes when all weights are
//     non-negative.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "asp/ground_program.hpp"
#include "asp/term.hpp"
#include "common/budget.hpp"
#include "common/result.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cprisk::asp {

/// One answer set, projected onto the #show signatures.
struct AnswerSet {
    std::vector<Atom> atoms;               ///< shown atoms, sorted
    std::map<long long, long long> cost;   ///< priority -> accumulated cost

    bool contains(const Atom& atom) const;
    /// True if any shown atom has this predicate name (any arity/args).
    bool contains_predicate(const std::string& predicate) const;
    /// All shown atoms with the given predicate name.
    std::vector<Atom> with_predicate(const std::string& predicate) const;

    std::string to_string() const;
};

struct SolveOptions {
    /// Stop after this many (projected, distinct) models; 0 = no limit.
    std::size_t max_models = 0;
    /// When weak constraints are present, keep only optimal models.
    bool optimize = true;
    /// Per-solve decision quota; an exceeded search stops and reports a
    /// SolveInterrupt with the stats at the stopping point (0 = unlimited).
    std::size_t max_decisions = 50'000'000;
    /// Propagate cardinality bounds of choice rules during search (ablation
    /// knob; leaf-only checking remains correct but exponentially slower on
    /// tightly-bounded programs).
    bool propagate_bounds = true;
    /// Optional shared resource governor (wall-clock deadline, cross-solve
    /// decision quota, cancellation). Not owned; may be nullptr.
    Budget* budget = nullptr;
    /// Assumptions applied as permanent decision-level-0 assignments before
    /// search: (ground atom id, truth value) pairs. This is the
    /// ground-once/solve-many idiom (clingo's #external): ground one program
    /// whose delta domain is left open via singleton choice shells, then pin
    /// each shell true/false per solve. Pinned-false choice atoms are absent
    /// from every model, exactly as if their fact had never been grounded.
    /// Contradictory or out-of-range atom ids make the program trivially
    /// unsatisfiable.
    std::vector<std::pair<int, bool>> assumptions;
    /// Observability (docs/observability.md): one "asp.solve" span per call
    /// plus asp.solve.* counters recorded from the final SolveStats — the
    /// DPLL inner loop is never instrumented. Both borrowed; nullptr
    /// disables. Usually threaded from RunContext by the caller.
    obs::TraceSink* trace = nullptr;
    obs::MetricsRegistry* metrics = nullptr;
};

struct SolveStats {
    std::size_t decisions = 0;
    std::size_t propagations = 0;
    std::size_t conflicts = 0;
    std::size_t stability_rejects = 0;
    std::size_t models_enumerated = 0;  ///< pre-projection, pre-optimality filter
};

/// Structured record of a search stopped early by a resource budget. The
/// enumeration below the stopping point was not explored, so a result that
/// carries an interrupt is a sound *under*-approximation: the models listed
/// are answer sets, but absence of a model proves nothing.
struct SolveInterrupt {
    BudgetReason reason = BudgetReason::DecisionLimit;
    SolveStats stats;  ///< work done up to the stopping point

    /// e.g. "decision budget exceeded (decisions=50000001, conflicts=1327,
    /// propagations=...)" — stats ride along in every diagnostic.
    std::string to_string() const;
};

struct SolveResult {
    bool satisfiable = false;
    std::vector<AnswerSet> models;          ///< distinct projected answer sets
    std::map<long long, long long> best_cost;  ///< optimum, when optimizing
    SolveStats stats;
    /// Set when the search stopped early (budget/deadline/cancellation); the
    /// models above are then a partial enumeration.
    std::optional<SolveInterrupt> interrupt;

    /// True when the search ran to completion (result is exhaustive).
    bool complete() const { return !interrupt.has_value(); }
};

/// Solves `program`. Budget exhaustion is not a failure: the result carries a
/// SolveInterrupt plus whatever models were found. Fails only on injected or
/// internal solver errors.
Result<SolveResult> solve(const GroundProgram& program, const SolveOptions& options = {});

}  // namespace cprisk::asp
