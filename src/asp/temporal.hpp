// cprisk/asp/temporal.hpp
//
// Telingo-style temporal programs ("telingo = ASP + time", paper ref [10]).
//
// A temporal program is an ordinary Program whose statements are tagged with
// sections:
//
//   #program base.     % time-independent facts/rules (component catalog...)
//   #program initial.  % holds at t = 0
//   #program dynamic.  % holds at every t >= 1; `prev_p(X)` reads p(X) at t-1
//   #program always.   % holds at every t
//   #program final.    % holds at t = horizon
//
// `unroll` compiles such a program into a plain (Base-only) program over a
// bounded horizon by appending a time argument to every *temporal* predicate
// and instantiating each section at its time points. This matches the
// paper's own encoding style (Listing 2 uses an explicit
// `prev_component_state` predicate).
//
// A predicate is temporal iff it appears in the head of any non-Base rule,
// or is referenced via a `prev_` prefix. All other predicates are static and
// keep their arity.
#pragma once

#include "asp/syntax.hpp"
#include "common/result.hpp"

namespace cprisk::asp {

struct UnrollOptions {
    int horizon = 1;  ///< last time point; states exist for t = 0..horizon
    /// Name of the generated time-domain predicate (facts 0..horizon).
    std::string time_predicate = "__t";
};

/// Compiles the temporal sections of `program` into a Base-only program over
/// `options.horizon` time steps. Fails on `prev_` references in the initial
/// section or on a predicate that is both static (defined in base) and
/// temporal (defined in a timed section).
Result<Program> unroll(const Program& program, const UnrollOptions& options);

/// Unrolls the concatenation of `parts` without first materializing it:
/// predicate classification sees every part, so a predicate used temporally
/// in one part stays temporal everywhere. Equivalent to appending the parts
/// into one program and unrolling that.
Result<Program> unroll(const ProgramParts& parts, const UnrollOptions& options);

}  // namespace cprisk::asp
