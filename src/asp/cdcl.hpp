// cprisk/asp/cdcl.hpp
//
// Conflict-driven clause learning (CDCL) engine for the stable-model solver
// (docs/solver.md). Same front door as the DPLL engine in solver.cpp — the
// Clark completion of a ground program, enumerated to (projected, distinct)
// answer sets with identical costs and optima — but searched with the modern
// toolbox:
//
//  1. Two-watched-literal unit propagation (no per-clause counters, no
//     touch-every-clause backtracking).
//  2. First-UIP conflict analysis producing learned clauses and backjumps.
//  3. EVSIDS variable activities with phase saving, reset to a canonical
//     state at the start of every solve so results are deterministic
//     functions of (program, retained clauses, options).
//  4. Luby-sequence restarts and LBD ("glue") based learned-clause database
//     reduction.
//  5. MiniSat-style assumption handling: `SolveOptions::assumptions` become
//     decision levels 1..k; an UNSAT outcome yields the final-conflict
//     assumption core on `SolveResult::assumption_core`.
//
// Answer-set specifics ride the same machinery as in the DPLL engine:
// stability rejection adds loop-formula cuts, bounded choice rules propagate
// through explained entailed clauses, and non-answer-set leaves (aggregates)
// are excluded with blocking clauses. Clauses carry a `transient` taint —
// model-blocking and cost-bound cuts depend on the enumeration context and
// are dropped at solve end, while loop cuts and bound explanations are
// entailed by the program and persist. A CdclSolver kept alive across solves
// (see incremental.hpp) therefore re-uses every entailed clause learned by
// earlier scenario solves on the same grounded base.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "asp/ground_program.hpp"
#include "asp/solver.hpp"

namespace cprisk::asp {

class CdclSolver {
public:
    /// Builds the Clark completion once. The program is borrowed and must
    /// outlive the solver; it must not change between solves.
    explicit CdclSolver(const GroundProgram& program);

    CdclSolver(const CdclSolver&) = delete;
    CdclSolver& operator=(const CdclSolver&) = delete;

    /// One full enumeration under `options.assumptions`. Heuristic state
    /// (activities, phases, restart schedule) is reset to a canonical
    /// starting point; entailed clauses retained from earlier solves on this
    /// instance are kept and re-used. Deterministic for a fixed sequence of
    /// solve calls on one instance.
    SolveResult solve(const SolveOptions& options);

    const GroundProgram* program() const { return &program_; }

    /// Entailed learned clauses currently retained (survives solve() calls;
    /// shrinks only via DB reduction).
    std::size_t retained_learned() const { return retained_learned_; }

    /// Number of solve() calls completed on this instance.
    std::size_t solve_generation() const { return generation_; }

private:
    struct Clause {
        std::vector<int> lits;
        double activity = 0.0;
        int lbd = 0;
        std::uint32_t birth = 0;    ///< solve generation that learned it
        bool learnt = false;        ///< conflict-analysis product (reducible)
        bool transient = false;     ///< depends on enumeration context; dropped at solve end
        bool deleted = false;       ///< tombstoned by DB reduction
        bool attached = false;      ///< has watch entries (markers/units do not)
    };

    struct Watcher {
        int clause = -1;
        int blocker = 0;  ///< literal whose truth satisfies the clause cheaply
    };

    // Construction.
    void build();
    int add_clause(std::vector<int> lits, bool learnt, bool transient);
    void attach_clause(int id);

    // Assignment and propagation.
    bool value_true(int lit) const;
    bool value_false(int lit) const;
    bool lit_unassigned(int lit) const;
    int current_level() const { return static_cast<int>(trail_lim_.size()); }
    void enqueue(int lit, int reason);
    int propagate();  ///< returns conflicting clause id, or -1
    bool propagate_bounds(bool& progressed);
    bool force_with_explanation(int lit, std::vector<int> explain);
    int add_unit_conflict_marker(std::vector<int> lits);
    int propagate_all();  ///< unit + bound propagation to fixpoint; conflict id or -1
    void cancel_until(int level);
    void new_decision_level() { trail_lim_.push_back(trail_.size()); }

    // Conflict analysis.
    int analyze(int conflict, std::vector<int>& learnt_out, bool& transient_out);
    void analyze_final(int conflict_clause, int seed_var);
    void bump_var(int var);
    void bump_clause(int clause);
    void decay_var_activity();
    int compute_lbd(const std::vector<int>& lits);

    // Decision heuristic (indexed max-heap over activities, deterministic
    // tie-break on the smaller variable index).
    void heap_insert(int var);
    void heap_update(int var);
    int heap_pop();
    bool heap_less(int a, int b) const;  ///< priority order: true when a ranks below b
    void heap_sift_up(std::size_t i);
    void heap_sift_down(std::size_t i);
    int pick_branch_var();

    // Answer-set leaf checks (semantics identical to the DPLL engine).
    bool body_satisfied_in_model(const GroundRule& rule) const;
    bool aggregate_holds(const GroundAggregate& aggregate) const;
    bool aggregates_ok() const;
    bool bounds_ok() const;
    bool stable(std::vector<int>& unfounded_out) const;
    std::vector<int> unfounded_cut(const std::vector<int>& unfounded) const;

    // Costs (identical to the DPLL engine).
    std::map<long long, long long> model_cost() const;
    std::map<long long, long long> partial_cost_lower_bound() const;
    bool should_prune_by_cost() const;
    std::vector<int> cost_cut_clause() const;

    // Search driver.
    bool push_assumptions();
    void search_loop();
    void finalize_solve();
    void record_model();
    bool model_limit_reached() const;
    std::vector<int> blocking_clause(int floor_level) const;
    std::vector<int> bounds_violation_cut() const;
    /// Installs an entailed or blocking clause that is falsified by the
    /// current assignment and resolves it like a conflict. Returns false when
    /// the clause closes the search at or below the assumption root.
    bool resolve_cut(std::vector<int> lits, bool transient);
    bool handle_conflict(int conflict);
    void reduce_db();
    void restart();
    void remove_transients();
    static std::size_t luby(std::size_t i);

    const GroundProgram& program_;
    const SolveOptions* options_ = nullptr;  ///< valid during solve()

    int n_vars_ = 0;
    int n_atoms_ = 0;
    std::vector<Clause> clauses_;
    std::vector<std::vector<Watcher>> watches_;  ///< indexed by literal
    std::vector<int8_t> assign_;                 ///< variable -> {-1,0,1}
    /// Level-0 assignments forced through a transient clause (model blocking,
    /// cost cuts) hold only for the rest of the current enumeration, not
    /// forever: they must not survive finalize_solve(), must not be silently
    /// dropped from permanent cuts, and taint any clause learned across them.
    std::vector<std::uint8_t> unit_taint_;
    std::vector<int> trail_;
    std::vector<std::size_t> trail_lim_;
    std::size_t qhead_ = 0;
    std::vector<int> reason_;         ///< variable -> clause id or -1
    std::vector<int> level_;          ///< variable -> decision level
    std::vector<std::uint8_t> phase_; ///< saved phase, 1 = true
    std::vector<double> activity_;
    std::vector<double> base_activity_;  ///< occurrence counts; canonical reset value
    double var_inc_ = 1.0;
    double clause_inc_ = 1.0;

    std::vector<int> heap_;      ///< heap of variables
    std::vector<int> heap_pos_;  ///< variable -> index in heap_, or -1

    std::vector<int> bounded_choices_;
    std::vector<int> aggregate_constraints_;
    /// Dedup for re-derivable entailed cuts (bound explanations, loop cuts):
    /// normalized literals -> installed clause id.
    std::map<std::vector<int>, int> derived_cut_cache_;
    std::vector<int> permanent_units_;  ///< size-1 entailed clauses, re-asserted each solve
    bool has_weaks_ = false;
    bool negative_weights_ = false;
    bool root_conflict_ = false;  ///< program UNSAT regardless of assumptions

    // Per-solve state.
    int root_level_ = 0;  ///< decision level holding the last assumption
    std::vector<AnswerSet> found_;
    std::map<long long, long long> best_cost_;
    bool have_best_ = false;
    SolveStats stats_;
    std::optional<BudgetReason> interrupt_reason_;
    std::vector<std::pair<int, bool>> core_;
    bool core_valid_ = false;
    std::size_t restart_seq_ = 0;
    std::size_t conflicts_since_restart_ = 0;
    std::size_t conflicts_until_restart_ = 0;
    std::size_t learnt_limit_ = 0;
    std::size_t cur_learnt_ = 0;  ///< live reducible learned clauses
    int pending_bound_conflict_ = -1;
    std::vector<std::pair<int, bool>> assump_by_level_;  ///< level-1 .. root assumptions
    bool learning_disabled_ = false;  ///< fault seam asp.cdcl.learn tripped

    std::vector<std::uint8_t> seen_;  ///< scratch for analyze/analyze_final

    std::uint32_t generation_ = 0;
    std::size_t retained_learned_ = 0;
};

/// Canonical order for the final model list: by projected atoms, then cost.
/// Both engines sort their results with this so downstream consumers that
/// take `models.front()` behave identically regardless of search order.
void sort_models_canonically(std::vector<AnswerSet>& models);

}  // namespace cprisk::asp
