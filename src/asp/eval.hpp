// cprisk/asp/eval.hpp
//
// Ground-term evaluation used by the grounder: variable substitution,
// arithmetic reduction, comparison evaluation, and interval (`a..b`)
// expansion.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "asp/syntax.hpp"
#include "asp/term.hpp"
#include "common/result.hpp"

namespace cprisk::asp {

/// Variable bindings accumulated while matching a rule body.
using Binding = std::map<std::string, Term>;

/// Replaces bound variables in `term`; unbound variables are left intact.
Term substitute(const Term& term, const Binding& binding);

/// Replaces bound variables in all arguments of `atom`.
Atom substitute(const Atom& atom, const Binding& binding);

/// Reduces arithmetic in a ground term: `+ - * /` and functors `mod`, `abs`
/// over integers. Intervals `a..b` are normalized to ranges of evaluated
/// endpoints but not expanded (see `expand_ranges`). Fails on unbound
/// variables, non-integer arithmetic or division by zero.
Result<Term> eval_term(const Term& term);

/// Evaluates a comparison between two *evaluated* ground terms using the ASP
/// total term order (integers numerically, then symbols lexicographically,
/// then compounds structurally).
bool compare_terms(const Term& lhs, CompareOp op, const Term& rhs);

/// Expands every interval inside an evaluated ground term into the list of
/// concrete instances (cartesian product over nested ranges). A term without
/// ranges expands to itself. An empty range (a..b with a > b) yields no
/// instances.
std::vector<Term> expand_ranges(const Term& term);

/// Expands ranges in every argument of a ground atom.
std::vector<Atom> expand_atom_ranges(const Atom& atom);

}  // namespace cprisk::asp
