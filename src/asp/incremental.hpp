// cprisk/asp/incremental.hpp
//
// Persistent incremental solving across scenario sweeps (docs/solver.md).
// The ground-once/solve-many pipeline grounds one base program per
// (model, horizon, stage) and pins each scenario's delta via
// `SolveOptions::assumptions`. An IncrementalSolver keeps a warm CdclSolver
// bound to that shared base: the Clark completion is built once, each solve
// pushes its assumptions as decision levels and retracts them on completion,
// and every *entailed* clause learned along the way (loop-formula cuts,
// bound explanations, assumption-free 1UIP clauses) persists — so the 48th
// scenario, or the 65,536th frontier candidate, benefits from conflicts
// discovered earlier.
//
// A SolverPool hands one IncrementalSolver per concurrent worker (leases are
// checked out under a mutex, solved on without locks, and returned), keeping
// the warm-solver idiom safe under `--jobs N` without serializing solves.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "asp/cdcl.hpp"
#include "asp/ground_program.hpp"
#include "asp/solver.hpp"

namespace cprisk::asp {

class IncrementalSolver {
public:
    explicit IncrementalSolver(const GroundProgram& program) : engine_(program) {}

    /// Warm solve: reuses the built completion and retained entailed clauses.
    /// Not thread-safe; callers synchronize (see SolverPool).
    SolveResult solve(const SolveOptions& options) { return engine_.solve(options); }

    const GroundProgram* program() const { return engine_.program(); }
    std::size_t retained_learned() const { return engine_.retained_learned(); }
    std::size_t solve_generation() const { return engine_.solve_generation(); }

private:
    CdclSolver engine_;
};

/// Lazily-grown pool of warm solvers over one shared ground program: one per
/// worker that ever solves concurrently. Scenario verdicts stay
/// jobs-invariant because each solve is a deterministic function of
/// (program, assumptions) plus retained entailed clauses — and entailed
/// clauses never change which answer sets exist.
class SolverPool {
public:
    explicit SolverPool(const GroundProgram& program) : program_(&program) {}

    class Lease {
    public:
        Lease(SolverPool* pool, IncrementalSolver* solver) : pool_(pool), solver_(solver) {}
        Lease(Lease&& other) noexcept : pool_(other.pool_), solver_(other.solver_) {
            other.pool_ = nullptr;
            other.solver_ = nullptr;
        }
        Lease& operator=(Lease&&) = delete;
        Lease(const Lease&) = delete;
        Lease& operator=(const Lease&) = delete;
        ~Lease() {
            if (pool_ != nullptr && solver_ != nullptr) pool_->release(solver_);
        }

        IncrementalSolver* solver() const { return solver_; }

    private:
        SolverPool* pool_;
        IncrementalSolver* solver_;
    };

    /// Checks out a warm solver, constructing one if all are busy.
    Lease acquire() {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!idle_.empty()) {
            IncrementalSolver* solver = idle_.back();
            idle_.pop_back();
            return Lease(this, solver);
        }
        owned_.push_back(std::make_unique<IncrementalSolver>(*program_));
        return Lease(this, owned_.back().get());
    }

    std::size_t size() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return owned_.size();
    }

private:
    friend class Lease;

    void release(IncrementalSolver* solver) {
        std::lock_guard<std::mutex> lock(mutex_);
        idle_.push_back(solver);
    }

    const GroundProgram* program_;
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<IncrementalSolver>> owned_;
    std::vector<IncrementalSolver*> idle_;
};

}  // namespace cprisk::asp
