#include "asp/eval.hpp"

#include <cstdlib>

namespace cprisk::asp {

Term substitute(const Term& term, const Binding& binding) {
    switch (term.kind()) {
        case Term::Kind::Integer:
        case Term::Kind::Symbol: return term;
        case Term::Kind::Variable: {
            auto it = binding.find(term.name());
            return it == binding.end() ? term : it->second;
        }
        case Term::Kind::Compound: {
            std::vector<Term> args;
            args.reserve(term.args().size());
            for (const Term& a : term.args()) args.push_back(substitute(a, binding));
            return Term::compound(term.name(), std::move(args));
        }
    }
    return term;
}

Atom substitute(const Atom& atom, const Binding& binding) {
    Atom out;
    out.predicate = atom.predicate;
    out.args.reserve(atom.args.size());
    for (const Term& a : atom.args) out.args.push_back(substitute(a, binding));
    return out;
}

namespace {

bool is_arith_functor(const std::string& name, std::size_t arity) {
    if (arity == 2) {
        return name == "+" || name == "-" || name == "*" || name == "/" || name == "mod";
    }
    if (arity == 1) return name == "abs";
    return false;
}

}  // namespace

Result<Term> eval_term(const Term& term) {
    switch (term.kind()) {
        case Term::Kind::Integer:
        case Term::Kind::Symbol: return term;
        case Term::Kind::Variable:
            return Result<Term>::failure("eval: unbound variable '" + term.name() + "'");
        case Term::Kind::Compound: {
            std::vector<Term> args;
            args.reserve(term.args().size());
            for (const Term& a : term.args()) {
                auto r = eval_term(a);
                if (!r.ok()) return r;
                args.push_back(std::move(r).value());
            }
            const std::string& f = term.name();
            if (f == "..") {
                if (!args[0].is_integer() || !args[1].is_integer()) {
                    return Result<Term>::failure("eval: interval endpoints must be integers in " +
                                                 term.to_string());
                }
                return Term::compound("..", std::move(args));
            }
            if (is_arith_functor(f, args.size())) {
                for (const Term& a : args) {
                    if (!a.is_integer()) {
                        return Result<Term>::failure("eval: arithmetic on non-integer term " +
                                                     a.to_string());
                    }
                }
                if (args.size() == 1) {  // abs
                    return Term::integer(std::llabs(args[0].as_int()));
                }
                const long long x = args[0].as_int();
                const long long y = args[1].as_int();
                if (f == "+") return Term::integer(x + y);
                if (f == "-") return Term::integer(x - y);
                if (f == "*") return Term::integer(x * y);
                if (f == "/" || f == "mod") {
                    if (y == 0) {
                        return Result<Term>::failure("eval: division by zero in " +
                                                     term.to_string());
                    }
                    return Term::integer(f == "/" ? x / y : x % y);
                }
            }
            return Term::compound(f, std::move(args));
        }
    }
    return Result<Term>::failure("eval: unreachable");
}

bool compare_terms(const Term& lhs, CompareOp op, const Term& rhs) {
    switch (op) {
        case CompareOp::Eq: return lhs == rhs;
        case CompareOp::Ne: return !(lhs == rhs);
        case CompareOp::Lt: return lhs < rhs;
        case CompareOp::Le: return lhs < rhs || lhs == rhs;
        case CompareOp::Gt: return rhs < lhs;
        case CompareOp::Ge: return rhs < lhs || lhs == rhs;
    }
    return false;
}

std::vector<Term> expand_ranges(const Term& term) {
    switch (term.kind()) {
        case Term::Kind::Integer:
        case Term::Kind::Symbol:
        case Term::Kind::Variable: return {term};
        case Term::Kind::Compound: {
            if (term.name() == ".." && term.args().size() == 2 && term.args()[0].is_integer() &&
                term.args()[1].is_integer()) {
                std::vector<Term> out;
                for (long long v = term.args()[0].as_int(); v <= term.args()[1].as_int(); ++v) {
                    out.push_back(Term::integer(v));
                }
                return out;
            }
            // Cartesian product over expanded arguments.
            std::vector<std::vector<Term>> expanded;
            expanded.reserve(term.args().size());
            for (const Term& a : term.args()) expanded.push_back(expand_ranges(a));
            std::vector<std::vector<Term>> tuples = {{}};
            for (const auto& choices : expanded) {
                std::vector<std::vector<Term>> next;
                for (const auto& prefix : tuples) {
                    for (const Term& choice : choices) {
                        auto tuple = prefix;
                        tuple.push_back(choice);
                        next.push_back(std::move(tuple));
                    }
                }
                tuples = std::move(next);
            }
            std::vector<Term> out;
            out.reserve(tuples.size());
            for (auto& tuple : tuples) out.push_back(Term::compound(term.name(), std::move(tuple)));
            return out;
        }
    }
    return {term};
}

std::vector<Atom> expand_atom_ranges(const Atom& atom) {
    std::vector<std::vector<Term>> expanded;
    expanded.reserve(atom.args.size());
    bool any_range = false;
    for (const Term& a : atom.args) {
        auto choices = expand_ranges(a);
        if (choices.size() != 1 || !(choices[0] == a)) any_range = true;
        expanded.push_back(std::move(choices));
    }
    if (!any_range) return {atom};

    std::vector<std::vector<Term>> tuples = {{}};
    for (const auto& choices : expanded) {
        std::vector<std::vector<Term>> next;
        for (const auto& prefix : tuples) {
            for (const Term& choice : choices) {
                auto tuple = prefix;
                tuple.push_back(choice);
                next.push_back(std::move(tuple));
            }
        }
        tuples = std::move(next);
    }
    std::vector<Atom> out;
    out.reserve(tuples.size());
    for (auto& tuple : tuples) {
        Atom a;
        a.predicate = atom.predicate;
        a.args = std::move(tuple);
        out.push_back(std::move(a));
    }
    return out;
}

}  // namespace cprisk::asp
