#include "asp/parser.hpp"

#include <optional>

#include "asp/lexer.hpp"
#include "common/error.hpp"

namespace cprisk::asp {

namespace {

/// Parse error carrying a message and a structured source location;
/// converted to Result failure (or a diagnostic) at the API boundary so
/// internal code can use exceptions for control flow.
class ParseError : public Error {
public:
    ParseError(SourceLoc loc, const std::string& message)
        : Error("parse error at line " + std::to_string(loc.line) + ", column " +
                std::to_string(loc.column) + ": " + message),
          loc_(loc),
          message_(message) {}

    SourceLoc loc() const { return loc_; }
    /// The location-free message (what() includes the location prefix).
    const std::string& message() const { return message_; }

private:
    SourceLoc loc_;
    std::string message_;
};

class Parser {
public:
    explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

    Program parse_program() {
        Program program;
        SectionKind section = SectionKind::Base;
        while (!at(TokenKind::End)) {
            if (at(TokenKind::Directive)) {
                parse_directive(program, section);
            } else if (at(TokenKind::WeakIf)) {
                program.add_weak(parse_weak(), section);
            } else {
                program.add_rule(parse_rule(), section);
            }
        }
        return program;
    }

    Term parse_single_term() {
        Term t = parse_term();
        expect(TokenKind::End, "end of term");
        return t;
    }

    Atom parse_single_atom() {
        Atom a = parse_atom();
        expect(TokenKind::End, "end of atom");
        return a;
    }

private:
    // --- token helpers -----------------------------------------------------

    const Token& peek(std::size_t ahead = 0) const {
        std::size_t i = pos_ + ahead;
        if (i >= tokens_.size()) i = tokens_.size() - 1;  // End token
        return tokens_[i];
    }
    bool at(TokenKind kind) const { return peek().kind == kind; }
    Token advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
    bool accept(TokenKind kind) {
        if (at(kind)) {
            advance();
            return true;
        }
        return false;
    }
    Token expect(TokenKind kind, const std::string& what) {
        if (!at(kind)) fail("expected " + what + ", found " + describe(peek()));
        return advance();
    }
    [[noreturn]] void fail(const std::string& message) const {
        throw ParseError(peek().loc(), message);
    }
    static std::string describe(const Token& t) {
        std::string out = to_string(t.kind);
        if (!t.text.empty()) out += " '" + t.text + "'";
        return out;
    }

    // --- terms -------------------------------------------------------------

    // term := additive ('..' additive)?
    Term parse_term() {
        Term lhs = parse_additive();
        if (accept(TokenKind::DotDot)) {
            Term rhs = parse_additive();
            return Term::compound("..", {std::move(lhs), std::move(rhs)});
        }
        return lhs;
    }

    Term parse_additive() {
        Term lhs = parse_multiplicative();
        while (at(TokenKind::Plus) || at(TokenKind::Minus)) {
            std::string op = advance().text;
            Term rhs = parse_multiplicative();
            lhs = Term::compound(op, {std::move(lhs), std::move(rhs)});
        }
        return lhs;
    }

    Term parse_multiplicative() {
        Term lhs = parse_unary();
        while (at(TokenKind::Star) || at(TokenKind::Slash)) {
            std::string op = advance().text;
            Term rhs = parse_unary();
            lhs = Term::compound(op, {std::move(lhs), std::move(rhs)});
        }
        return lhs;
    }

    Term parse_unary() {
        if (accept(TokenKind::Minus)) {
            Term operand = parse_unary();
            if (operand.is_integer()) return Term::integer(-operand.as_int());
            return Term::compound("-", {Term::integer(0), std::move(operand)});
        }
        return parse_primary();
    }

    Term parse_primary() {
        if (at(TokenKind::Integer)) return Term::integer(advance().int_value);
        if (at(TokenKind::Variable)) return Term::variable(advance().text);
        if (accept(TokenKind::LParen)) {
            Term inner = parse_term();
            expect(TokenKind::RParen, "')'");
            return inner;
        }
        if (at(TokenKind::Identifier)) {
            std::string name = advance().text;
            if (accept(TokenKind::LParen)) {
                std::vector<Term> args;
                if (!at(TokenKind::RParen)) {
                    args.push_back(parse_term());
                    while (accept(TokenKind::Comma)) args.push_back(parse_term());
                }
                expect(TokenKind::RParen, "')'");
                return Term::compound(std::move(name), std::move(args));
            }
            return Term::symbol(std::move(name));
        }
        fail("expected a term");
    }

    // --- atoms & literals ----------------------------------------------------

    Atom parse_atom() {
        Token name = expect(TokenKind::Identifier, "predicate name");
        Atom atom;
        atom.predicate = name.text;
        if (accept(TokenKind::LParen)) {
            if (!at(TokenKind::RParen)) {
                atom.args.push_back(parse_term());
                while (accept(TokenKind::Comma)) atom.args.push_back(parse_term());
            }
            expect(TokenKind::RParen, "')'");
        }
        return atom;
    }

    std::optional<CompareOp> peek_compare_op() const {
        switch (peek().kind) {
            case TokenKind::Eq: return CompareOp::Eq;
            case TokenKind::Ne: return CompareOp::Ne;
            case TokenKind::Lt: return CompareOp::Lt;
            case TokenKind::Le: return CompareOp::Le;
            case TokenKind::Gt: return CompareOp::Gt;
            case TokenKind::Ge: return CompareOp::Ge;
            default: return std::nullopt;
        }
    }

    // #sum { W,T : cond ; ... } <= B    /    #count { T : cond } >= N
    Literal parse_aggregate() {
        Token directive = expect(TokenKind::Directive, "aggregate");
        const AggregateKind kind =
            directive.text == "sum" ? AggregateKind::Sum : AggregateKind::Count;
        expect(TokenKind::LBrace, "'{'");
        std::vector<AggregateElement> elements;
        if (!at(TokenKind::RBrace)) {
            while (true) {
                AggregateElement element;
                element.tuple.push_back(parse_term());
                while (accept(TokenKind::Comma)) element.tuple.push_back(parse_term());
                if (accept(TokenKind::Colon)) {
                    element.condition.push_back(parse_literal());
                    while (accept(TokenKind::Comma)) element.condition.push_back(parse_literal());
                }
                elements.push_back(std::move(element));
                if (!accept(TokenKind::Semicolon)) break;
            }
        }
        expect(TokenKind::RBrace, "'}'");
        auto op = peek_compare_op();
        if (!op) fail("expected a comparison after the aggregate");
        advance();
        Term bound = parse_term();
        return Literal::aggregate(kind, std::move(elements), *op, std::move(bound));
    }

    Literal parse_literal() {
        const SourceLoc loc = peek().loc();
        Literal literal = parse_literal_unlocated();
        literal.loc = loc;
        return literal;
    }

    Literal parse_literal_unlocated() {
        if (accept(TokenKind::Not)) return Literal::negative(parse_atom());
        if (at(TokenKind::Directive) &&
            (peek().text == "sum" || peek().text == "count")) {
            return parse_aggregate();
        }
        // Could be an atom or a comparison; parse a term and look ahead.
        Term lhs = parse_term();
        if (auto op = peek_compare_op()) {
            advance();
            Term rhs = parse_term();
            return Literal::comparison(std::move(lhs), *op, std::move(rhs));
        }
        return Literal::positive(term_to_atom(std::move(lhs)));
    }

    Atom term_to_atom(Term t) {
        if (t.is_symbol()) {
            Atom a;
            a.predicate = t.name();
            return a;
        }
        if (t.is_compound()) {
            Atom a;
            a.predicate = t.name();
            a.args = t.args();
            return a;
        }
        fail("expected an atom, found term " + t.to_string());
    }

    std::vector<Literal> parse_body() {
        std::vector<Literal> body;
        body.push_back(parse_literal());
        while (accept(TokenKind::Comma)) body.push_back(parse_literal());
        return body;
    }

    // --- rules ---------------------------------------------------------------

    ChoiceElement parse_choice_element() {
        ChoiceElement element;
        element.atom = parse_atom();
        if (accept(TokenKind::Colon)) {
            element.condition.push_back(parse_literal());
            while (accept(TokenKind::Comma)) element.condition.push_back(parse_literal());
        }
        return element;
    }

    Head parse_choice_head() {
        std::optional<long long> lower;
        if (at(TokenKind::Integer)) lower = advance().int_value;
        expect(TokenKind::LBrace, "'{'");
        std::vector<ChoiceElement> elements;
        if (!at(TokenKind::RBrace)) {
            elements.push_back(parse_choice_element());
            while (accept(TokenKind::Semicolon)) elements.push_back(parse_choice_element());
        }
        expect(TokenKind::RBrace, "'}'");
        std::optional<long long> upper;
        if (at(TokenKind::Integer)) upper = advance().int_value;
        return Head::make_choice(std::move(elements), lower, upper);
    }

    Rule parse_rule() {
        Rule rule;
        rule.loc = peek().loc();
        if (at(TokenKind::If)) {  // constraint
            advance();
            rule.head = Head::make_constraint();
            rule.body = parse_body();
        } else {
            if (at(TokenKind::LBrace) ||
                (at(TokenKind::Integer) && peek(1).kind == TokenKind::LBrace)) {
                rule.head = parse_choice_head();
            } else {
                rule.head = Head::make_atom(parse_atom());
            }
            if (accept(TokenKind::If)) rule.body = parse_body();
        }
        expect(TokenKind::Dot, "'.' at end of rule");
        return rule;
    }

    WeakConstraint parse_weak() {
        const SourceLoc loc = peek().loc();
        expect(TokenKind::WeakIf, "':~'");
        WeakConstraint weak;
        weak.loc = loc;
        weak.body = parse_body();
        expect(TokenKind::Dot, "'.'");
        expect(TokenKind::LBracket, "'[' cost annotation");
        weak.weight = parse_term();
        if (accept(TokenKind::At)) {
            Term prio = parse_term();
            if (!prio.is_integer()) fail("weak-constraint priority must be an integer");
            weak.priority = prio.as_int();
        }
        while (accept(TokenKind::Comma)) weak.tuple.push_back(parse_term());
        expect(TokenKind::RBracket, "']'");
        return weak;
    }

    // --- directives ------------------------------------------------------------

    void parse_directive(Program& program, SectionKind& section) {
        Token directive = expect(TokenKind::Directive, "directive");
        if (directive.text == "show") {
            if (accept(TokenKind::Dot)) return;  // "#show." resets nothing here
            Token pred = expect(TokenKind::Identifier, "predicate name");
            expect(TokenKind::Slash, "'/' in #show");
            Token arity = expect(TokenKind::Integer, "arity");
            expect(TokenKind::Dot, "'.'");
            program.add_show(Signature{pred.text, static_cast<std::size_t>(arity.int_value)});
        } else if (directive.text == "const") {
            Token name = expect(TokenKind::Identifier, "constant name");
            expect(TokenKind::Eq, "'='");
            Term value = parse_term();
            expect(TokenKind::Dot, "'.'");
            program.set_const(name.text, std::move(value));
        } else if (directive.text == "program") {
            Token name = expect(TokenKind::Identifier, "section name");
            expect(TokenKind::Dot, "'.'");
            if (name.text == "base") {
                section = SectionKind::Base;
            } else if (name.text == "initial") {
                section = SectionKind::Initial;
            } else if (name.text == "dynamic") {
                section = SectionKind::Dynamic;
            } else if (name.text == "always") {
                section = SectionKind::Always;
            } else if (name.text == "final") {
                section = SectionKind::Final;
            } else {
                fail("unknown #program section '" + name.text + "'");
            }
        } else if (directive.text == "minimize" || directive.text == "maximize") {
            parse_minimize(program, section, directive.text == "maximize");
        } else {
            fail("unknown directive '#" + directive.text + "'");
        }
    }

    // #minimize { W@P,tuple : body ; ... }.  -> one weak constraint per element
    void parse_minimize(Program& program, SectionKind section, bool maximize) {
        expect(TokenKind::LBrace, "'{'");
        while (true) {
            WeakConstraint weak;
            weak.weight = parse_term();
            if (accept(TokenKind::At)) {
                Term prio = parse_term();
                if (!prio.is_integer()) fail("#minimize priority must be an integer");
                weak.priority = prio.as_int();
            }
            while (accept(TokenKind::Comma)) weak.tuple.push_back(parse_term());
            if (accept(TokenKind::Colon)) weak.body = parse_body();
            if (maximize) {
                weak.weight = Term::compound("-", {Term::integer(0), std::move(weak.weight)});
            }
            program.add_weak(std::move(weak), section);
            if (!accept(TokenKind::Semicolon)) break;
        }
        expect(TokenKind::RBrace, "'}'");
        expect(TokenKind::Dot, "'.'");
    }

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
};

template <typename T, typename Fn>
Result<T> run_parser(std::string_view source, Fn&& fn) {
    auto tokens = tokenize(source);
    if (!tokens.ok()) return Result<T>::failure(tokens.error());
    try {
        Parser parser(std::move(tokens).value());
        return fn(parser);
    } catch (const ParseError& e) {
        return Result<T>::failure(e.what());
    }
}

}  // namespace

Result<Program> parse_program(std::string_view source) {
    return run_parser<Program>(source, [](Parser& p) { return p.parse_program(); });
}

std::optional<Program> parse_program(std::string_view source, DiagnosticSink& sink) {
    SourceLoc lex_loc;
    auto tokens = tokenize(source, &lex_loc);
    if (!tokens.ok()) {
        sink.error("asp-syntax", tokens.error(), lex_loc);
        return std::nullopt;
    }
    try {
        Parser parser(std::move(tokens).value());
        return parser.parse_program();
    } catch (const ParseError& e) {
        sink.error("asp-syntax", e.message(), e.loc());
        return std::nullopt;
    }
}

Result<Term> parse_term(std::string_view source) {
    return run_parser<Term>(source, [](Parser& p) { return p.parse_single_term(); });
}

Result<Atom> parse_atom(std::string_view source) {
    return run_parser<Atom>(source, [](Parser& p) { return p.parse_single_atom(); });
}

}  // namespace cprisk::asp
