#include "asp/syntax.hpp"

#include <ostream>

namespace cprisk::asp {

std::string to_string(CompareOp op) {
    switch (op) {
        case CompareOp::Eq: return "=";
        case CompareOp::Ne: return "!=";
        case CompareOp::Lt: return "<";
        case CompareOp::Le: return "<=";
        case CompareOp::Gt: return ">";
        case CompareOp::Ge: return ">=";
    }
    return "?";
}

Literal Literal::positive(Atom a) {
    Literal l;
    l.kind = Kind::Atom;
    l.atom = std::move(a);
    l.negated = false;
    return l;
}

Literal Literal::negative(Atom a) {
    Literal l;
    l.kind = Kind::Atom;
    l.atom = std::move(a);
    l.negated = true;
    return l;
}

Literal Literal::comparison(Term lhs, CompareOp op, Term rhs) {
    Literal l;
    l.kind = Kind::Comparison;
    l.lhs = std::move(lhs);
    l.op = op;
    l.rhs = std::move(rhs);
    return l;
}

Literal Literal::aggregate(AggregateKind kind, std::vector<AggregateElement> elements,
                           CompareOp op, Term bound) {
    Literal l;
    l.kind = Kind::Aggregate;
    l.aggregate_kind = kind;
    l.elements = std::move(elements);
    l.op = op;
    l.rhs = std::move(bound);
    return l;
}

std::string to_string(AggregateKind kind) {
    return kind == AggregateKind::Count ? "#count" : "#sum";
}

std::string AggregateElement::to_string() const {
    std::string out;
    for (std::size_t i = 0; i < tuple.size(); ++i) {
        if (i > 0) out += ",";
        out += tuple[i].to_string();
    }
    if (!condition.empty()) {
        out += " : ";
        for (std::size_t i = 0; i < condition.size(); ++i) {
            if (i > 0) out += ", ";
            out += condition[i].to_string();
        }
    }
    return out;
}

std::string Literal::to_string() const {
    if (kind == Kind::Comparison) {
        return lhs.to_string() + " " + asp::to_string(op) + " " + rhs.to_string();
    }
    if (kind == Kind::Aggregate) {
        std::string out = asp::to_string(aggregate_kind) + " { ";
        for (std::size_t i = 0; i < elements.size(); ++i) {
            if (i > 0) out += " ; ";
            out += elements[i].to_string();
        }
        out += " } " + asp::to_string(op) + " " + rhs.to_string();
        return out;
    }
    return (negated ? "not " : "") + atom.to_string();
}

std::string ChoiceElement::to_string() const {
    std::string out = atom.to_string();
    if (!condition.empty()) {
        out += " : ";
        for (std::size_t i = 0; i < condition.size(); ++i) {
            if (i > 0) out += ", ";
            out += condition[i].to_string();
        }
    }
    return out;
}

Head Head::make_atom(Atom a) {
    Head h;
    h.kind = Kind::Atom;
    h.atom = std::move(a);
    return h;
}

Head Head::make_constraint() {
    Head h;
    h.kind = Kind::Constraint;
    return h;
}

Head Head::make_choice(std::vector<ChoiceElement> elements, std::optional<long long> lower,
                       std::optional<long long> upper) {
    Head h;
    h.kind = Kind::Choice;
    h.elements = std::move(elements);
    h.lower_bound = lower;
    h.upper_bound = upper;
    return h;
}

std::string Head::to_string() const {
    switch (kind) {
        case Kind::Atom: return atom.to_string();
        case Kind::Constraint: return "";
        case Kind::Choice: {
            std::string out;
            if (lower_bound) out += std::to_string(*lower_bound) + " ";
            out += "{ ";
            for (std::size_t i = 0; i < elements.size(); ++i) {
                if (i > 0) out += "; ";
                out += elements[i].to_string();
            }
            out += " }";
            if (upper_bound) out += " " + std::to_string(*upper_bound);
            return out;
        }
    }
    return "";
}

std::string Rule::to_string() const {
    std::string out = head.to_string();
    if (!body.empty()) {
        out += out.empty() ? ":- " : " :- ";
        for (std::size_t i = 0; i < body.size(); ++i) {
            if (i > 0) out += ", ";
            out += body[i].to_string();
        }
    } else if (out.empty()) {
        out = ":- ";  // degenerate empty constraint (always violated)
    }
    return out + ".";
}

std::string WeakConstraint::to_string() const {
    std::string out = ":~ ";
    for (std::size_t i = 0; i < body.size(); ++i) {
        if (i > 0) out += ", ";
        out += body[i].to_string();
    }
    out += ". [" + weight.to_string() + "@" + std::to_string(priority);
    for (const Term& t : tuple) out += ", " + t.to_string();
    return out + "]";
}

std::string to_string(SectionKind kind) {
    switch (kind) {
        case SectionKind::Base: return "base";
        case SectionKind::Initial: return "initial";
        case SectionKind::Dynamic: return "dynamic";
        case SectionKind::Always: return "always";
        case SectionKind::Final: return "final";
    }
    return "?";
}

void Program::add_rule(Rule rule, SectionKind section) {
    rules_.push_back(SectionedRule{std::move(rule), section});
}

void Program::add_weak(WeakConstraint weak, SectionKind section) {
    weaks_.push_back(SectionedWeak{std::move(weak), section});
}

void Program::add_show(Signature sig) { shows_.push_back(std::move(sig)); }

void Program::set_const(const std::string& name, Term value) {
    for (auto& [n, v] : consts_) {
        if (n == name) {
            v = std::move(value);
            return;
        }
    }
    consts_.emplace_back(name, std::move(value));
}

bool Program::is_temporal() const {
    for (const auto& r : rules_) {
        if (r.section != SectionKind::Base) return true;
    }
    for (const auto& w : weaks_) {
        if (w.section != SectionKind::Base) return true;
    }
    return false;
}

void Program::append(const Program& other) {
    for (const auto& r : other.rules_) rules_.push_back(r);
    for (const auto& w : other.weaks_) weaks_.push_back(w);
    for (const auto& s : other.shows_) shows_.push_back(s);
    for (const auto& [n, v] : other.consts_) set_const(n, v);
}

std::string Program::to_string() const {
    std::string out;
    for (const auto& [name, value] : consts_) {
        out += "#const " + name + " = " + value.to_string() + ".\n";
    }
    SectionKind current = SectionKind::Base;
    auto emit_section = [&](SectionKind s) {
        if (s != current) {
            out += "#program " + asp::to_string(s) + ".\n";
            current = s;
        }
    };
    for (const auto& r : rules_) {
        emit_section(r.section);
        out += r.rule.to_string() + "\n";
    }
    for (const auto& w : weaks_) {
        emit_section(w.section);
        out += w.weak.to_string() + "\n";
    }
    emit_section(SectionKind::Base);
    for (const auto& s : shows_) {
        out += "#show " + s.to_string() + ".\n";
    }
    return out;
}

std::ostream& operator<<(std::ostream& os, const Program& p) { return os << p.to_string(); }

}  // namespace cprisk::asp
