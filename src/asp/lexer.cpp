#include "asp/lexer.hpp"

#include <cctype>

namespace cprisk::asp {

std::string to_string(TokenKind kind) {
    switch (kind) {
        case TokenKind::Identifier: return "identifier";
        case TokenKind::Variable: return "variable";
        case TokenKind::Integer: return "integer";
        case TokenKind::Directive: return "directive";
        case TokenKind::Dot: return "'.'";
        case TokenKind::DotDot: return "'..'";
        case TokenKind::Comma: return "','";
        case TokenKind::Semicolon: return "';'";
        case TokenKind::Colon: return "':'";
        case TokenKind::If: return "':-'";
        case TokenKind::WeakIf: return "':~'";
        case TokenKind::LParen: return "'('";
        case TokenKind::RParen: return "')'";
        case TokenKind::LBrace: return "'{'";
        case TokenKind::RBrace: return "'}'";
        case TokenKind::LBracket: return "'['";
        case TokenKind::RBracket: return "']'";
        case TokenKind::At: return "'@'";
        case TokenKind::Plus: return "'+'";
        case TokenKind::Minus: return "'-'";
        case TokenKind::Star: return "'*'";
        case TokenKind::Slash: return "'/'";
        case TokenKind::Eq: return "'='";
        case TokenKind::Ne: return "'!='";
        case TokenKind::Lt: return "'<'";
        case TokenKind::Le: return "'<='";
        case TokenKind::Gt: return "'>'";
        case TokenKind::Ge: return "'>='";
        case TokenKind::Not: return "'not'";
        case TokenKind::End: return "end of input";
    }
    return "?";
}

namespace {

class Cursor {
public:
    explicit Cursor(std::string_view source) : source_(source) {}

    bool done() const { return pos_ >= source_.size(); }
    char peek(std::size_t ahead = 0) const {
        return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
    }
    char advance() {
        char c = source_[pos_++];
        if (c == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        return c;
    }
    int line() const { return line_; }
    int column() const { return column_; }

private:
    std::string_view source_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> tokenize(std::string_view source, SourceLoc* error_loc) {
    std::vector<Token> tokens;
    Cursor cur(source);

    auto fail_at = [&](int line, int column, std::string message) {
        if (error_loc != nullptr) *error_loc = SourceLoc{line, column};
        return Result<std::vector<Token>>::failure(std::move(message));
    };
    auto push = [&](TokenKind kind, std::string text, int line, int column,
                    long long value = 0) {
        Token t;
        t.kind = kind;
        t.text = std::move(text);
        t.int_value = value;
        t.line = line;
        t.column = column;
        tokens.push_back(std::move(t));
    };

    while (!cur.done()) {
        const int line = cur.line();
        const int column = cur.column();
        const char c = cur.peek();

        if (std::isspace(static_cast<unsigned char>(c))) {
            cur.advance();
            continue;
        }
        if (c == '%') {  // comment to end of line
            while (!cur.done() && cur.peek() != '\n') cur.advance();
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::string digits;
            while (!cur.done() && std::isdigit(static_cast<unsigned char>(cur.peek()))) {
                digits += cur.advance();
            }
            push(TokenKind::Integer, digits, line, column, std::stoll(digits));
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string word;
            while (!cur.done() && (std::isalnum(static_cast<unsigned char>(cur.peek())) ||
                                   cur.peek() == '_' || cur.peek() == '\'')) {
                word += cur.advance();
            }
            if (word == "not") {
                push(TokenKind::Not, word, line, column);
            } else if (std::isupper(static_cast<unsigned char>(word[0])) || word[0] == '_') {
                push(TokenKind::Variable, word, line, column);
            } else {
                push(TokenKind::Identifier, word, line, column);
            }
            continue;
        }
        if (c == '#') {
            cur.advance();
            std::string word;
            while (!cur.done() && std::isalpha(static_cast<unsigned char>(cur.peek()))) {
                word += cur.advance();
            }
            if (word.empty()) {
                return fail_at(line, column, "lexer: dangling '#' at line " + std::to_string(line));
            }
            push(TokenKind::Directive, word, line, column);
            continue;
        }

        cur.advance();
        switch (c) {
            case '.':
                if (cur.peek() == '.') {
                    cur.advance();
                    push(TokenKind::DotDot, "..", line, column);
                } else {
                    push(TokenKind::Dot, ".", line, column);
                }
                break;
            case ',': push(TokenKind::Comma, ",", line, column); break;
            case ';': push(TokenKind::Semicolon, ";", line, column); break;
            case ':':
                if (cur.peek() == '-') {
                    cur.advance();
                    push(TokenKind::If, ":-", line, column);
                } else if (cur.peek() == '~') {
                    cur.advance();
                    push(TokenKind::WeakIf, ":~", line, column);
                } else {
                    push(TokenKind::Colon, ":", line, column);
                }
                break;
            case '(': push(TokenKind::LParen, "(", line, column); break;
            case ')': push(TokenKind::RParen, ")", line, column); break;
            case '{': push(TokenKind::LBrace, "{", line, column); break;
            case '}': push(TokenKind::RBrace, "}", line, column); break;
            case '[': push(TokenKind::LBracket, "[", line, column); break;
            case ']': push(TokenKind::RBracket, "]", line, column); break;
            case '@': push(TokenKind::At, "@", line, column); break;
            case '+': push(TokenKind::Plus, "+", line, column); break;
            case '-': push(TokenKind::Minus, "-", line, column); break;
            case '*': push(TokenKind::Star, "*", line, column); break;
            case '/': push(TokenKind::Slash, "/", line, column); break;
            case '=':
                if (cur.peek() == '=') cur.advance();
                push(TokenKind::Eq, "=", line, column);
                break;
            case '!':
                if (cur.peek() == '=') {
                    cur.advance();
                    push(TokenKind::Ne, "!=", line, column);
                } else {
                    return fail_at(line, column,
                                   "lexer: unexpected '!' at line " + std::to_string(line));
                }
                break;
            case '<':
                if (cur.peek() == '=') {
                    cur.advance();
                    push(TokenKind::Le, "<=", line, column);
                } else if (cur.peek() == '>') {
                    cur.advance();
                    push(TokenKind::Ne, "<>", line, column);
                } else {
                    push(TokenKind::Lt, "<", line, column);
                }
                break;
            case '>':
                if (cur.peek() == '=') {
                    cur.advance();
                    push(TokenKind::Ge, ">=", line, column);
                } else {
                    push(TokenKind::Gt, ">", line, column);
                }
                break;
            default:
                return fail_at(line, column,
                               std::string("lexer: unexpected character '") + c + "' at line " +
                                   std::to_string(line) + ", column " + std::to_string(column));
        }
    }

    push(TokenKind::End, "", cur.line(), cur.column());
    return tokens;
}

}  // namespace cprisk::asp
