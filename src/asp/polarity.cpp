#include "asp/polarity.hpp"

#include <algorithm>
#include <deque>
#include <set>

namespace cprisk::asp::polarity {

std::string_view to_string(Sign sign) {
    switch (sign) {
        case Sign::None: return "none";
        case Sign::Positive: return "positive";
        case Sign::Negative: return "negative";
        case Sign::Mixed: return "mixed";
    }
    return "none";
}

Sign join(Sign a, Sign b) {
    if (a == b) return a;
    if (a == Sign::None) return b;
    if (b == Sign::None) return a;
    return Sign::Mixed;
}

std::string_view to_string(Offender::Kind kind) {
    switch (kind) {
        case Offender::Kind::OddNegation: return "odd-negation";
        case Offender::Kind::NegativeCycle: return "negative-cycle";
        case Offender::Kind::Constraint: return "constraint";
        case Offender::Kind::Aggregate: return "aggregate";
        case Offender::Kind::WeakConstraint: return "weak-constraint";
        case Offender::Kind::ChoiceBody: return "choice-body";
    }
    return "odd-negation";
}

namespace {

/// One ground dependency edge: body atom -> head atom, sign-flipping when
/// the body literal is negated.
struct Edge {
    int to = -1;
    bool negative = false;
};

/// A site that must not depend on the inputs at all for the certificate to
/// hold: integrity constraint, aggregate guard, weak constraint, or
/// choice-rule body (conditions the sign calculus cannot order).
struct SensitiveSite {
    Offender::Kind kind = Offender::Kind::Constraint;
    /// Undecided (atom, negated) literals of the site.
    std::vector<std::pair<int, bool>> literals;
};

}  // namespace

MonotonicityCertificate certify_monotone(const GroundProgram& program,
                                         const std::vector<int>& input_atoms,
                                         const std::vector<int>& hazard_atoms,
                                         const PolarityOptions& options) {
    const std::size_t n = program.atom_count();
    const absint::Analysis* analysis = options.analysis;
    const auto decided = [&](int atom) {
        return analysis != nullptr && static_cast<std::size_t>(atom) < analysis->values.size() &&
               analysis->value(atom) != absint::Ternary::Unknown;
    };
    // A decided literal that falsifies the body makes the whole rule dead
    // under every completion of the open domain.
    const auto body_alive = [&](const std::vector<int>& pos, const std::vector<int>& neg) {
        for (int b : pos) {
            if (decided(b) && !analysis->must(b)) return false;
        }
        for (int b : neg) {
            if (decided(b) && analysis->must(b)) return false;
        }
        return true;
    };
    const auto collect_undecided = [&](const std::vector<int>& pos, const std::vector<int>& neg,
                                       std::vector<std::pair<int, bool>>& out) {
        for (int b : pos) {
            if (!decided(b)) out.emplace_back(b, false);
        }
        for (int b : neg) {
            if (!decided(b)) out.emplace_back(b, true);
        }
    };

    // Ground dependency graph over undecided atoms; decided atoms are
    // constants and contribute no edges.
    std::vector<std::vector<Edge>> out(n);
    std::vector<SensitiveSite> sites;
    for (const GroundRule& rule : program.rules()) {
        if (!body_alive(rule.positive_body, rule.negative_body)) continue;
        switch (rule.kind) {
            case GroundRule::Kind::Normal: {
                if (decided(rule.head)) break;
                std::vector<std::pair<int, bool>> literals;
                collect_undecided(rule.positive_body, rule.negative_body, literals);
                for (const auto& [atom, negated] : literals) {
                    out[static_cast<std::size_t>(atom)].push_back(Edge{rule.head, negated});
                }
                break;
            }
            case GroundRule::Kind::Constraint: {
                SensitiveSite site{Offender::Kind::Constraint, {}};
                collect_undecided(rule.positive_body, rule.negative_body, site.literals);
                if (!site.literals.empty()) sites.push_back(std::move(site));
                for (const GroundAggregate& aggregate : rule.aggregates) {
                    SensitiveSite guard{Offender::Kind::Aggregate, {}};
                    for (const GroundAggregateElement& element : aggregate.elements) {
                        for (int condition : element.condition) {
                            if (!decided(condition)) guard.literals.emplace_back(condition, false);
                        }
                    }
                    if (!guard.literals.empty()) sites.push_back(std::move(guard));
                }
                break;
            }
            case GroundRule::Kind::Choice: {
                SensitiveSite site{Offender::Kind::ChoiceBody, {}};
                collect_undecided(rule.positive_body, rule.negative_body, site.literals);
                if (!site.literals.empty()) sites.push_back(std::move(site));
                break;
            }
        }
    }
    for (const GroundWeak& weak : program.weaks()) {
        if (!body_alive(weak.positive_body, weak.negative_body)) continue;
        SensitiveSite site{Offender::Kind::WeakConstraint, {}};
        collect_undecided(weak.positive_body, weak.negative_body, site.literals);
        if (!site.literals.empty()) sites.push_back(std::move(site));
    }

    // Multi-source parity BFS from the open inputs over (atom, parity)
    // nodes: parity flips across negative edges. The parities reachable at
    // an atom are exactly its sign-join fixpoint (even -> Positive, odd ->
    // Negative, both -> Mixed); parent pointers give witness paths.
    constexpr int kNone = -1;
    const auto node_of = [](int atom, int parity) { return atom * 2 + parity; };
    std::vector<char> visited(2 * n, 0);
    std::vector<int> parent(2 * n, kNone);
    std::vector<int> origin(2 * n, kNone);
    std::deque<int> queue;
    for (int input : input_atoms) {
        if (decided(input)) continue;  // pinned/derived constant, not an open input
        const int node = node_of(input, 0);
        if (visited[static_cast<std::size_t>(node)] != 0) continue;
        visited[static_cast<std::size_t>(node)] = 1;
        origin[static_cast<std::size_t>(node)] = input;
        queue.push_back(node);
    }
    while (!queue.empty()) {
        const int node = queue.front();
        queue.pop_front();
        const int atom = node / 2;
        const int parity = node % 2;
        for (const Edge& edge : out[static_cast<std::size_t>(atom)]) {
            const int next = node_of(edge.to, edge.negative ? 1 - parity : parity);
            if (visited[static_cast<std::size_t>(next)] != 0) continue;
            visited[static_cast<std::size_t>(next)] = 1;
            parent[static_cast<std::size_t>(next)] = node;
            origin[static_cast<std::size_t>(next)] = origin[static_cast<std::size_t>(node)];
            queue.push_back(next);
        }
    }
    const auto reached = [&](int atom) {
        return visited[static_cast<std::size_t>(node_of(atom, 0))] != 0 ||
               visited[static_cast<std::size_t>(node_of(atom, 1))] != 0;
    };
    const auto witness_input = [&](int atom) {
        const int even = node_of(atom, 0);
        return visited[static_cast<std::size_t>(even)] != 0
                   ? origin[static_cast<std::size_t>(even)]
                   : origin[static_cast<std::size_t>(node_of(atom, 1))];
    };

    MonotonicityCertificate cert;
    cert.input_count = input_atoms.size();
    cert.hazard_count = hazard_atoms.size();

    // (3) Hazard signs; odd-parity reachability is the headline offender.
    for (int hazard : hazard_atoms) {
        Sign sign = Sign::None;
        if (visited[static_cast<std::size_t>(node_of(hazard, 0))] != 0) {
            sign = join(sign, Sign::Positive);
        }
        if (visited[static_cast<std::size_t>(node_of(hazard, 1))] != 0) {
            sign = join(sign, Sign::Negative);
        }
        cert.hazard_sign[hazard] = sign;
        if (sign != Sign::Negative && sign != Sign::Mixed) continue;
        Offender offender;
        offender.kind = Offender::Kind::OddNegation;
        offender.hazard_atom = hazard;
        int node = node_of(hazard, 1);
        offender.input_atom = origin[static_cast<std::size_t>(node)];
        while (node != kNone) {
            const int prev = parent[static_cast<std::size_t>(node)];
            if (prev != kNone && prev % 2 != node % 2) {
                offender.negative_edges.emplace_back(prev / 2, node / 2);
            }
            node = prev;
        }
        std::reverse(offender.negative_edges.begin(), offender.negative_edges.end());
        offender.detail = "input '" + program.atom(offender.input_atom).to_string() +
                          "' reaches hazard '" + program.atom(hazard).to_string() +
                          "' through an odd number of negations (" +
                          std::to_string(offender.negative_edges.size()) + ")";
        cert.offenders.push_back(std::move(offender));
    }

    // (2) Recursion through negation among input-dependent atoms: SCCs of
    // the reachable subgraph (iterative Tarjan, the absint.cpp idiom); a
    // negative edge inside a component breaks stratification of the
    // input-dependent slice.
    {
        constexpr int kUnvisited = -1;
        std::vector<int> index(n, kUnvisited);
        std::vector<int> lowlink(n, 0);
        std::vector<int> comp_of(n, -1);
        std::vector<char> on_stack(n, 0);
        std::vector<int> stack;
        std::vector<std::vector<int>> components;
        int next_index = 0;

        struct Frame {
            int atom;
            std::size_t pos = 0;
        };
        std::vector<Frame> frames;
        for (std::size_t root = 0; root < n; ++root) {
            if (!reached(static_cast<int>(root)) || index[root] != kUnvisited) continue;
            frames.push_back(Frame{static_cast<int>(root)});
            index[root] = lowlink[root] = next_index++;
            stack.push_back(static_cast<int>(root));
            on_stack[root] = 1;
            while (!frames.empty()) {
                Frame& frame = frames.back();
                const std::size_t a = static_cast<std::size_t>(frame.atom);
                int successor = -1;
                while (frame.pos < out[a].size()) {
                    const int candidate = out[a][frame.pos++].to;
                    if (reached(candidate)) {
                        successor = candidate;
                        break;
                    }
                }
                if (successor >= 0) {
                    const std::size_t s = static_cast<std::size_t>(successor);
                    if (index[s] == kUnvisited) {
                        index[s] = lowlink[s] = next_index++;
                        stack.push_back(successor);
                        on_stack[s] = 1;
                        frames.push_back(Frame{successor});
                    } else if (on_stack[s] != 0) {
                        lowlink[a] = std::min(lowlink[a], index[s]);
                    }
                    continue;
                }
                const int atom = frame.atom;
                frames.pop_back();
                if (!frames.empty()) {
                    const std::size_t p = static_cast<std::size_t>(frames.back().atom);
                    lowlink[p] = std::min(lowlink[p], lowlink[atom]);
                }
                if (lowlink[atom] == index[atom]) {
                    std::vector<int> members;
                    while (true) {
                        const int member = stack.back();
                        stack.pop_back();
                        on_stack[static_cast<std::size_t>(member)] = 0;
                        comp_of[static_cast<std::size_t>(member)] =
                            static_cast<int>(components.size());
                        members.push_back(member);
                        if (member == atom) break;
                    }
                    components.push_back(std::move(members));
                }
            }
        }

        std::vector<std::vector<std::pair<int, int>>> internal(components.size());
        for (std::size_t a = 0; a < n; ++a) {
            if (!reached(static_cast<int>(a))) continue;
            for (const Edge& edge : out[a]) {
                if (!edge.negative || !reached(edge.to)) continue;
                if (comp_of[a] == comp_of[static_cast<std::size_t>(edge.to)]) {
                    internal[static_cast<std::size_t>(comp_of[a])].emplace_back(
                        static_cast<int>(a), edge.to);
                }
            }
        }
        for (std::size_t c = 0; c < components.size(); ++c) {
            if (internal[c].empty()) continue;
            Offender offender;
            offender.kind = Offender::Kind::NegativeCycle;
            offender.input_atom = witness_input(components[c].front());
            offender.negative_edges = internal[c];
            std::string members;
            for (int member : components[c]) {
                if (!members.empty()) members += ", ";
                members += program.atom(member).to_string();
            }
            offender.detail = "recursion through negation among input-dependent atoms: " + members;
            cert.offenders.push_back(std::move(offender));
        }
    }

    // (1) Input-reachable conditions outside the sign calculus, one
    // offender per (kind, atom) cause.
    std::set<std::pair<int, int>> seen_sites;
    for (const SensitiveSite& site : sites) {
        for (const auto& [atom, negated] : site.literals) {
            (void)negated;
            if (!reached(atom)) continue;
            if (!seen_sites.emplace(static_cast<int>(site.kind), atom).second) continue;
            Offender offender;
            offender.kind = site.kind;
            offender.input_atom = witness_input(atom);
            offender.detail = std::string(to_string(site.kind)) + " over '" +
                              program.atom(atom).to_string() + "' depends on input '" +
                              program.atom(offender.input_atom).to_string() + "'";
            cert.offenders.push_back(std::move(offender));
        }
    }

    cert.monotone = cert.offenders.empty();
    return cert;
}

}  // namespace cprisk::asp::polarity
