// cprisk/asp/parser.hpp
//
// Recursive-descent parser for the embedded ASP language (see syntax.hpp for
// the grammar summary). `#minimize`/`#maximize` directives desugar into weak
// constraints; `#program` directives switch the temporal section.
#pragma once

#include <optional>
#include <string_view>

#include "asp/syntax.hpp"
#include "common/diagnostics.hpp"
#include "common/result.hpp"

namespace cprisk::asp {

/// Parses a full program; returns a failure with source location info on the
/// first syntax error.
Result<Program> parse_program(std::string_view source);

/// Parses a full program, reporting syntax errors to `sink` as "asp-syntax"
/// diagnostics with structured source locations. Returns nullopt when the
/// source does not parse.
std::optional<Program> parse_program(std::string_view source, DiagnosticSink& sink);

/// Parses a single ground or non-ground term (for tests and tooling).
Result<Term> parse_term(std::string_view source);

/// Parses a single atom such as "component_state(tank, overflow)".
Result<Atom> parse_atom(std::string_view source);

}  // namespace cprisk::asp
