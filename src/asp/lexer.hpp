// cprisk/asp/lexer.hpp
//
// Tokenizer for the embedded ASP language. `%` starts a line comment.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "common/source_loc.hpp"

namespace cprisk::asp {

enum class TokenKind : std::uint8_t {
    Identifier,  // lowercase-leading: predicate / constant / functor
    Variable,    // uppercase- or '_'-leading
    Integer,
    Directive,   // #show, #minimize, #const, #program
    Dot,         // .
    DotDot,      // ..
    Comma,       // ,
    Semicolon,   // ;
    Colon,       // :
    If,          // :-
    WeakIf,      // :~
    LParen,      // (
    RParen,      // )
    LBrace,      // {
    RBrace,      // }
    LBracket,    // [
    RBracket,    // ]
    At,          // @
    Plus,        // +
    Minus,       // -
    Star,        // *
    Slash,       // /
    Eq,          // = or ==
    Ne,          // != or <>
    Lt,          // <
    Le,          // <=
    Gt,          // >
    Ge,          // >=
    Not,         // keyword "not"
    End,         // end of input
};

std::string to_string(TokenKind kind);

struct Token {
    TokenKind kind = TokenKind::End;
    std::string text;       ///< identifier/variable/directive text, or digits
    long long int_value = 0;
    int line = 1;           ///< 1-based source line, for error messages
    int column = 1;

    SourceLoc loc() const { return SourceLoc{line, column}; }
};

/// Tokenizes `source`; returns a failure with line/column info on an
/// unexpected character (the structured location is additionally stored in
/// `*error_loc` when non-null). The result always ends with an `End` token.
Result<std::vector<Token>> tokenize(std::string_view source, SourceLoc* error_loc = nullptr);

}  // namespace cprisk::asp
