// cprisk/asp/absint/absint.hpp
//
// Ternary abstract interpretation over ground programs: a well-founded
// (alternating must/possible) fixpoint evaluated bottom-up in the SCC
// order of the ground atom dependency graph — the ground-level analogue of
// the predicate-level SCC order that drives the grounder
// (analysis/dependency_graph.hpp). For every answer set M of the program
// (restricted to the given pins), the result brackets M:
//
//     { a : value(a) = True }  ⊆  M  ⊆  { a : value(a) != False }
//
// Choice-rule heads are never forced True (unless pinned), so the bracket
// holds for *every* pin configuration when evaluated pin-free — the property
// the EPA ground-once cache relies on to simplify its shared base program
// once and still answer every pinned solve exactly (epa/epa.cpp).
//
// When the fixpoint decides every atom and the certification checks pass
// (no constraint fires, choice bounds hold, pinned-true atoms are founded by
// a choice rule), the must set is the program's *unique* answer set and the
// caller may skip the solver entirely — the static Safe/Hazard prefilter.
// See docs/static-analysis.md for semantics and the soundness argument.
#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "asp/absint/ternary.hpp"
#include "asp/ground_program.hpp"
#include "common/budget.hpp"

namespace cprisk::asp::absint {

struct AbsintOptions {
    /// Assumption pins (ground atom id, truth), the same shape the solver
    /// takes: pinned atoms are fixed before the fixpoint runs. Borrowed; may
    /// be null for the open (pin-free) evaluation.
    const std::vector<std::pair<int, bool>>* pins = nullptr;
    /// Optional resource governor: one step is charged per rule visited per
    /// fixpoint sweep. A tripped budget aborts the evaluation with
    /// `interrupted` set and every atom Unknown. Not owned; may be null.
    Budget* budget = nullptr;
};

/// Result of one ternary evaluation.
struct Analysis {
    /// Per-atom verdict, indexed by ground atom id.
    std::vector<Ternary> values;
    /// A must-firing rule derives a pinned-false atom, or the pins
    /// contradict each other (the solver would report unsatisfiable).
    bool conflict = false;
    /// The budget tripped mid-run; `values` is all-Unknown and nothing below
    /// may be trusted.
    bool interrupted = false;
    /// Every atom is decided (True or False) and there is no conflict.
    bool total = false;
    /// `total`, plus: no constraint fires under the must set, every
    /// bounded choice rule's cardinality holds, and every pinned-true atom
    /// is offered by a choice rule whose body holds. The must set is then
    /// the unique answer set under the pins.
    bool certified = false;
    /// Number of decided (non-Unknown) atoms.
    std::size_t decided = 0;

    Ternary value(int atom) const { return values[static_cast<std::size_t>(atom)]; }
    bool must(int atom) const { return value(atom) == Ternary::True; }
    bool possible(int atom) const { return value(atom) != Ternary::False; }
};

/// Runs the well-founded fixpoint over `program` under `options`.
Analysis evaluate(const GroundProgram& program, const AbsintOptions& options = {});

/// The projected (shown, sorted) must-true atoms of a certified analysis —
/// exactly the answer set the solver would report (solver.cpp projection).
std::vector<Atom> certified_model(const GroundProgram& program, const Analysis& analysis);

/// Weak-constraint cost of the certified model: distinct (priority, tuple)
/// pairs whose body holds counted once — mirrors the solver's model_cost.
std::map<long long, long long> certified_cost(const GroundProgram& program,
                                              const Analysis& analysis);

struct SimplifyStats {
    std::size_t rules_deleted = 0;
    std::size_t literals_dropped = 0;
    std::size_t facts_added = 0;
    std::size_t atoms_decided = 0;

    bool changed() const { return rules_deleted != 0 || literals_dropped != 0; }
};

/// Shrinks `program` in place using a *pin-free* analysis of the same
/// program: must-true heads collapse to facts, rules with impossible bodies
/// disappear, decided body literals drop out. Answer sets (and their
/// weak-constraint costs) are preserved exactly, for every later pin
/// configuration. The atom table is never renumbered, so interned atom ids
/// held by callers (e.g. the EPA cache's assumption domain) stay valid.
/// `analysis` must not carry a conflict or interrupt.
SimplifyStats simplify(GroundProgram& program, const Analysis& analysis);

}  // namespace cprisk::asp::absint
