#include "asp/absint/absint.hpp"

#include <algorithm>
#include <set>
#include <string>

namespace cprisk::asp::absint {

namespace {

/// Mirrors SolverImpl::compare_values (asp/solver.cpp) so the certifier's
/// exact aggregate evaluation matches the solver's bit for bit.
bool compare_values(long long lhs, CompareOp op, long long rhs) {
    switch (op) {
        case CompareOp::Eq: return lhs == rhs;
        case CompareOp::Ne: return lhs != rhs;
        case CompareOp::Lt: return lhs < rhs;
        case CompareOp::Le: return lhs <= rhs;
        case CompareOp::Gt: return lhs > rhs;
        case CompareOp::Ge: return lhs >= rhs;
    }
    return false;
}

/// The well-founded alternating fixpoint, evaluated per SCC of the ground
/// atom dependency graph in topological order.
class Evaluator {
public:
    Evaluator(const GroundProgram& program, const AbsintOptions& options)
        : program_(program), options_(options), n_(program.atom_count()) {}

    Analysis run() {
        Analysis out;
        out.values.assign(n_, Ternary::Unknown);
        if (!apply_pins(out)) return out;  // contradictory or out-of-range pins
        if (options_.budget != nullptr && options_.budget->check()) {
            out.interrupted = true;
            return out;
        }

        build_graph();
        // An atom no rule can derive is false unless pinned.
        for (std::size_t a = 0; a < n_; ++a) {
            if (derivable_[a] == 0 && pin_[a] == 0) poss_[a] = 0;
        }
        compute_components();
        // Reverse emission order = topological order of the condensation
        // (sources first), so every body atom is final when its rule runs.
        for (std::size_t c = components_.size(); c-- > 0;) {
            solve_component(static_cast<int>(c));
            if (tripped_) break;
        }
        flush_charges();  // account the tail below one kChargeBatch stride
        if (tripped_) {
            out.interrupted = true;
            out.values.assign(n_, Ternary::Unknown);
            return out;
        }

        out.decided = 0;
        for (std::size_t a = 0; a < n_; ++a) {
            out.values[a] = must_[a] != 0 ? Ternary::True
                            : poss_[a] == 0 ? Ternary::False
                                            : Ternary::Unknown;
            if (out.values[a] != Ternary::Unknown) ++out.decided;
        }

        // A must-firing rule whose head stayed out of the must set can only
        // mean a pinned-false head: the pins contradict the program.
        for (const GroundRule& rule : program_.rules()) {
            if (rule.kind != GroundRule::Kind::Normal) continue;
            if (body_must(rule) && must_[static_cast<std::size_t>(rule.head)] == 0) {
                out.conflict = true;
                break;
            }
        }
        out.total = !out.conflict && out.decided == n_;
        out.certified = out.total && certify();
        return out;
    }

private:
    /// Fixes pinned atoms; false (with conflict set) on contradictory or
    /// out-of-range pins — the solver treats both as trivially unsat.
    bool apply_pins(Analysis& out) {
        pin_.assign(n_, 0);
        must_.assign(n_, 0);
        poss_.assign(n_, 1);
        if (options_.pins == nullptr) return true;
        for (const auto& [atom, truth] : *options_.pins) {
            if (atom < 0 || static_cast<std::size_t>(atom) >= n_) {
                out.conflict = true;
                return false;
            }
            const std::size_t a = static_cast<std::size_t>(atom);
            const std::int8_t wanted = truth ? 1 : -1;
            if (pin_[a] != 0 && pin_[a] != wanted) {
                out.conflict = true;
                return false;
            }
            pin_[a] = wanted;
            must_[a] = truth ? 1 : 0;
            poss_[a] = truth ? 1 : 0;
        }
        return true;
    }

    void build_graph() {
        const auto& rules = program_.rules();
        heads_.assign(rules.size(), {});
        feeds_.assign(n_, {});
        derivable_.assign(n_, 0);
        for (std::size_t r = 0; r < rules.size(); ++r) {
            const GroundRule& rule = rules[r];
            if (rule.kind == GroundRule::Kind::Normal) {
                heads_[r].push_back(rule.head);
            } else if (rule.kind == GroundRule::Kind::Choice) {
                heads_[r] = rule.choice_heads;
            }
            if (heads_[r].empty()) continue;  // constraints derive nothing
            for (int h : heads_[r]) derivable_[static_cast<std::size_t>(h)] = 1;
            for (int b : rule.positive_body) feeds_[static_cast<std::size_t>(b)].push_back(r);
            for (int b : rule.negative_body) feeds_[static_cast<std::size_t>(b)].push_back(r);
        }
    }

    /// Iterative Tarjan over atoms; successors of `a` are the heads of every
    /// rule `a` feeds. Components land in `components_` in reverse
    /// topological order (sinks first), exactly as the recursive version
    /// emits them.
    void compute_components() {
        constexpr int kUnvisited = -1;
        std::vector<int> index(n_, kUnvisited);
        std::vector<int> lowlink(n_, 0);
        std::vector<char> on_stack(n_, 0);
        std::vector<int> stack;
        comp_of_.assign(n_, -1);
        components_.clear();
        int next_index = 0;

        struct Frame {
            int atom;
            std::size_t rule_pos = 0;  // position in feeds_[atom]
            std::size_t head_pos = 0;  // position in heads_ of that rule
        };
        std::vector<Frame> frames;

        for (std::size_t root = 0; root < n_; ++root) {
            if (index[root] != kUnvisited) continue;
            frames.push_back(Frame{static_cast<int>(root)});
            index[root] = lowlink[root] = next_index++;
            stack.push_back(static_cast<int>(root));
            on_stack[root] = 1;

            while (!frames.empty()) {
                Frame& frame = frames.back();
                const std::size_t a = static_cast<std::size_t>(frame.atom);
                int successor = -1;
                while (frame.rule_pos < feeds_[a].size()) {
                    const auto& rule_heads = heads_[feeds_[a][frame.rule_pos]];
                    if (frame.head_pos < rule_heads.size()) {
                        successor = rule_heads[frame.head_pos++];
                        break;
                    }
                    ++frame.rule_pos;
                    frame.head_pos = 0;
                }
                if (successor >= 0) {
                    const std::size_t s = static_cast<std::size_t>(successor);
                    if (index[s] == kUnvisited) {
                        index[s] = lowlink[s] = next_index++;
                        stack.push_back(successor);
                        on_stack[s] = 1;
                        frames.push_back(Frame{successor});
                    } else if (on_stack[s] != 0) {
                        lowlink[a] = std::min(lowlink[a], index[s]);
                    }
                    continue;
                }
                // Atom exhausted: close the frame.
                const int atom = frame.atom;
                frames.pop_back();
                if (!frames.empty()) {
                    const std::size_t parent =
                        static_cast<std::size_t>(frames.back().atom);
                    lowlink[parent] = std::min(lowlink[parent], lowlink[atom]);
                }
                if (lowlink[atom] == index[atom]) {
                    std::vector<int> members;
                    while (true) {
                        const int member = stack.back();
                        stack.pop_back();
                        on_stack[static_cast<std::size_t>(member)] = 0;
                        comp_of_[static_cast<std::size_t>(member)] =
                            static_cast<int>(components_.size());
                        members.push_back(member);
                        if (member == atom) break;
                    }
                    components_.push_back(std::move(members));
                }
            }
        }

        // Rules grouped by the components their heads live in (a choice rule
        // can span several).
        comp_rules_.assign(components_.size(), {});
        for (std::size_t r = 0; r < heads_.size(); ++r) {
            int last = -1;
            for (int h : heads_[r]) {
                const int c = comp_of_[static_cast<std::size_t>(h)];
                if (c != last) comp_rules_[static_cast<std::size_t>(c)].push_back(r);
                last = c;
            }
        }
        for (auto& list : comp_rules_) {
            std::sort(list.begin(), list.end());
            list.erase(std::unique(list.begin(), list.end()), list.end());
        }
    }

    /// Work units accumulate locally and reach the shared budget in
    /// kChargeBatch strides (plus one final flush in run()): the prefilter
    /// charges a few units per fixpoint pass across hundreds of tiny SCCs
    /// per scenario, and a per-pass atomic RMW on the run-wide budget is
    /// exactly the kind of cost the <2% null-observability bar measures
    /// (bench_perf_epa).
    static constexpr std::size_t kChargeBatch = 4096;

    bool charge(std::size_t units) {
        if (options_.budget == nullptr) return true;
        pending_ += units;
        if (pending_ < kChargeBatch) return true;
        return flush_charges();
    }

    bool flush_charges() {
        if (options_.budget == nullptr || pending_ == 0) return !tripped_;
        if (options_.budget->charge_steps(pending_)) tripped_ = true;
        pending_ = 0;
        return !tripped_;
    }

    bool body_must(const GroundRule& rule) const {
        for (int b : rule.positive_body) {
            if (must_[static_cast<std::size_t>(b)] == 0) return false;
        }
        for (int b : rule.negative_body) {
            if (poss_[static_cast<std::size_t>(b)] != 0) return false;
        }
        return true;
    }

    bool body_possible(const GroundRule& rule) const {
        for (int b : rule.positive_body) {
            // State 2 (reset, not yet re-derived) counts as not-possible —
            // that is exactly what prunes unfounded positive loops.
            if (poss_[static_cast<std::size_t>(b)] != 1) return false;
        }
        for (int b : rule.negative_body) {
            if (must_[static_cast<std::size_t>(b)] != 0) return false;
        }
        return true;
    }

    /// Alternates the must (lfp, grows) and possible (gfp via recomputed
    /// lfp, shrinks) sets of one component until neither moves. Atoms of
    /// earlier (upstream) components are final; spanning choice rules may
    /// list heads in other components — those are never touched here.
    void solve_component(int comp) {
        const std::vector<int>& rules = comp_rules_[static_cast<std::size_t>(comp)];
        if (rules.empty()) return;
        const auto mine = [&](int atom) {
            return comp_of_[static_cast<std::size_t>(atom)] == comp;
        };
        bool moved = true;
        while (moved) {
            moved = false;
            // Must pass: saturate Normal-rule derivation. Choice heads are
            // never forced (unless pinned): the solver may leave them false.
            bool any = true;
            while (any) {
                any = false;
                if (!charge(rules.size())) return;
                for (int r : rules) {
                    const GroundRule& rule = program_.rules()[static_cast<std::size_t>(r)];
                    if (rule.kind != GroundRule::Kind::Normal) continue;
                    const std::size_t h = static_cast<std::size_t>(rule.head);
                    if (must_[h] != 0 || pin_[h] != 0) continue;
                    if (!body_must(rule)) continue;
                    must_[h] = 1;
                    poss_[h] = 1;
                    any = true;
                    moved = true;
                }
            }
            // Possible pass: recompute from scratch against the grown must
            // set; an atom that loses every potential derivation becomes
            // must-false.
            for (int r : rules) {
                for (int h : heads_[static_cast<std::size_t>(r)]) {
                    const std::size_t ha = static_cast<std::size_t>(h);
                    if (mine(h) && pin_[ha] == 0 && must_[ha] == 0 && poss_[ha] != 0) {
                        poss_[ha] = 2;
                    }
                }
            }
            any = true;
            while (any) {
                any = false;
                if (!charge(rules.size())) return;
                for (int r : rules) {
                    const GroundRule& rule = program_.rules()[static_cast<std::size_t>(r)];
                    if (!body_possible(rule)) continue;
                    for (int h : heads_[static_cast<std::size_t>(r)]) {
                        const std::size_t ha = static_cast<std::size_t>(h);
                        if (poss_[ha] == 2) {
                            poss_[ha] = 1;
                            any = true;
                        }
                    }
                }
            }
            for (int r : rules) {
                for (int h : heads_[static_cast<std::size_t>(r)]) {
                    const std::size_t ha = static_cast<std::size_t>(h);
                    if (poss_[ha] == 2) {
                        poss_[ha] = 0;
                        moved = true;
                    }
                }
            }
        }
    }

    /// Mirrors SolverImpl::aggregate_holds under the must-set model.
    bool aggregate_holds(const GroundAggregate& aggregate) const {
        long long value = 0;
        std::set<std::string> counted;
        for (const GroundAggregateElement& element : aggregate.elements) {
            bool holds = true;
            for (int id : element.condition) {
                if (must_[static_cast<std::size_t>(id)] == 0) {
                    holds = false;
                    break;
                }
            }
            if (!holds) continue;
            if (!counted.insert(element.tuple).second) continue;
            value += element.weight;
        }
        return compare_values(value, aggregate.op, aggregate.bound);
    }

    /// True when the total must set is the program's unique answer set under
    /// the pins: no constraint fires, bounded choices hold, and the model is
    /// founded (the reduct's least model reproduces it — the same check as
    /// SolverImpl::stable, including choice self-support).
    bool certify() const {
        for (const GroundRule& rule : program_.rules()) {
            if (rule.kind == GroundRule::Kind::Constraint) {
                if (!body_must(rule)) continue;  // total: must == holds
                bool fires = true;
                for (const GroundAggregate& aggregate : rule.aggregates) {
                    if (!aggregate_holds(aggregate)) {
                        fires = false;
                        break;
                    }
                }
                if (fires) return false;  // no answer set; let the solver say so
            } else if (rule.kind == GroundRule::Kind::Choice &&
                       (rule.lower_bound || rule.upper_bound)) {
                if (!body_must(rule)) continue;
                long long chosen = 0;
                for (int h : rule.choice_heads) {
                    if (must_[static_cast<std::size_t>(h)] != 0) ++chosen;
                }
                if (rule.lower_bound && chosen < *rule.lower_bound) return false;
                if (rule.upper_bound && chosen > *rule.upper_bound) return false;
            }
        }

        // Foundedness: least model of the reduct (pinned-true atoms included
        // only when a rule — notably their choice shell — justifies them).
        std::vector<char> derived(n_, 0);
        bool progressed = true;
        while (progressed) {
            progressed = false;
            for (const GroundRule& rule : program_.rules()) {
                if (rule.kind == GroundRule::Kind::Constraint) continue;
                bool neg_ok = true;
                for (int b : rule.negative_body) {
                    if (must_[static_cast<std::size_t>(b)] != 0) {
                        neg_ok = false;
                        break;
                    }
                }
                if (!neg_ok) continue;
                bool pos_ok = true;
                for (int b : rule.positive_body) {
                    if (derived[static_cast<std::size_t>(b)] == 0) {
                        pos_ok = false;
                        break;
                    }
                }
                if (!pos_ok) continue;
                if (rule.kind == GroundRule::Kind::Normal) {
                    if (derived[static_cast<std::size_t>(rule.head)] == 0) {
                        derived[static_cast<std::size_t>(rule.head)] = 1;
                        progressed = true;
                    }
                } else {
                    for (int h : rule.choice_heads) {
                        const std::size_t ha = static_cast<std::size_t>(h);
                        if (must_[ha] != 0 && derived[ha] == 0) {
                            derived[ha] = 1;
                            progressed = true;
                        }
                    }
                }
            }
        }
        for (std::size_t a = 0; a < n_; ++a) {
            if (must_[a] != 0 && derived[a] == 0) return false;
        }
        return true;
    }

    const GroundProgram& program_;
    const AbsintOptions& options_;
    std::size_t n_;

    std::vector<std::int8_t> pin_;
    std::vector<char> must_;
    /// 0 = must-false, 1 = possible, 2 = transiently reset during the
    /// possible pass of the component currently being solved.
    std::vector<char> poss_;
    bool tripped_ = false;
    std::size_t pending_ = 0;  ///< work units not yet flushed to the budget

    std::vector<char> derivable_;          ///< atom has at least one deriving rule
    std::vector<std::vector<int>> heads_;  ///< rule -> derivable head atoms
    std::vector<std::vector<int>> feeds_;  ///< atom -> rules it occurs in the body of
    std::vector<int> comp_of_;
    std::vector<std::vector<int>> components_;  ///< reverse topological order
    std::vector<std::vector<int>> comp_rules_;
};

}  // namespace

Analysis evaluate(const GroundProgram& program, const AbsintOptions& options) {
    return Evaluator(program, options).run();
}

std::vector<Atom> certified_model(const GroundProgram& program, const Analysis& analysis) {
    std::vector<Atom> atoms;
    for (int a = 0; a < static_cast<int>(program.atom_count()); ++a) {
        if (analysis.must(a) && program.is_shown(a)) atoms.push_back(program.atom(a));
    }
    std::sort(atoms.begin(), atoms.end());
    return atoms;
}

std::map<long long, long long> certified_cost(const GroundProgram& program,
                                              const Analysis& analysis) {
    std::map<long long, long long> cost;
    std::set<std::pair<long long, std::string>> counted;
    for (const GroundWeak& weak : program.weaks()) {
        bool holds = true;
        for (int b : weak.positive_body) {
            if (!analysis.must(b)) {
                holds = false;
                break;
            }
        }
        for (int b : weak.negative_body) {
            if (holds && analysis.must(b)) holds = false;
        }
        if (!holds) continue;
        if (!counted.insert({weak.priority, weak.tuple}).second) continue;
        cost[weak.priority] += weak.weight;
    }
    return cost;
}

SimplifyStats simplify(GroundProgram& program, const Analysis& analysis) {
    SimplifyStats stats;
    if (analysis.conflict || analysis.interrupted ||
        analysis.values.size() != program.atom_count()) {
        return stats;
    }
    stats.atoms_decided = analysis.decided;

    const auto body_impossible = [&](const std::vector<int>& pos, const std::vector<int>& neg) {
        for (int b : pos) {
            if (!analysis.possible(b)) return true;
        }
        for (int b : neg) {
            if (analysis.must(b)) return true;
        }
        return false;
    };
    // Drops decided literals in place: positive literals true everywhere and
    // negative literals on never-possible atoms contribute nothing.
    const auto shrink = [&](std::vector<int>& pos, std::vector<int>& neg) {
        const auto drop_pos = [&](int b) { return analysis.must(b); };
        const auto drop_neg = [&](int b) { return !analysis.possible(b); };
        const std::size_t before = pos.size() + neg.size();
        pos.erase(std::remove_if(pos.begin(), pos.end(), drop_pos), pos.end());
        neg.erase(std::remove_if(neg.begin(), neg.end(), drop_neg), neg.end());
        stats.literals_dropped += before - pos.size() - neg.size();
    };

    std::vector<char> fact_emitted(program.atom_count(), 0);
    std::vector<GroundRule>& rules = program.mutable_rules();
    std::vector<GroundRule> kept;
    kept.reserve(rules.size());
    for (GroundRule& rule : rules) {
        switch (rule.kind) {
            case GroundRule::Kind::Normal:
                if (analysis.must(rule.head)) {
                    // Every answer set contains the head: one fact replaces
                    // the whole support set (foundedness is preserved — the
                    // fact supplies it).
                    const std::size_t h = static_cast<std::size_t>(rule.head);
                    if (fact_emitted[h] == 0) {
                        fact_emitted[h] = 1;
                        GroundRule fact;
                        fact.head = rule.head;
                        kept.push_back(std::move(fact));
                        ++stats.facts_added;
                    }
                    ++stats.rules_deleted;
                    continue;
                }
                if (body_impossible(rule.positive_body, rule.negative_body)) {
                    ++stats.rules_deleted;
                    continue;
                }
                shrink(rule.positive_body, rule.negative_body);
                break;
            case GroundRule::Kind::Constraint:
                if (body_impossible(rule.positive_body, rule.negative_body)) {
                    ++stats.rules_deleted;  // can never fire
                    continue;
                }
                // Aggregates stay untouched; an emptied literal body keeps
                // the constraint (it may still fire — deleting it would
                // *add* answer sets).
                shrink(rule.positive_body, rule.negative_body);
                break;
            case GroundRule::Kind::Choice:
                if (body_impossible(rule.positive_body, rule.negative_body)) {
                    ++stats.rules_deleted;
                    continue;
                }
                // Heads and cardinality bounds stay exactly as grounded (the
                // EPA cache pins these atoms by id).
                shrink(rule.positive_body, rule.negative_body);
                break;
        }
        kept.push_back(std::move(rule));
    }
    rules = std::move(kept);

    std::vector<GroundWeak>& weaks = program.mutable_weaks();
    std::vector<GroundWeak> kept_weaks;
    kept_weaks.reserve(weaks.size());
    for (GroundWeak& weak : weaks) {
        if (body_impossible(weak.positive_body, weak.negative_body)) {
            ++stats.rules_deleted;
            continue;
        }
        shrink(weak.positive_body, weak.negative_body);
        kept_weaks.push_back(std::move(weak));
    }
    weaks = std::move(kept_weaks);
    return stats;
}

}  // namespace cprisk::asp::absint
