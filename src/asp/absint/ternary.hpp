// cprisk/asp/absint/ternary.hpp
//
// Three-valued (Kleene) truth domain for the abstract interpreter over
// ground programs (absint.hpp). `True` and `False` are *must* values — they
// hold in every answer set of the program — while `Unknown` brackets atoms
// whose truth differs between answer sets (or could not be decided at this
// precision). See docs/static-analysis.md for the soundness argument.
#pragma once

#include <cstdint>
#include <string_view>

namespace cprisk::asp::absint {

enum class Ternary : std::uint8_t { False, Unknown, True };

/// Kleene negation: swaps the decided values, keeps Unknown.
constexpr Ternary negate(Ternary value) {
    switch (value) {
        case Ternary::False: return Ternary::True;
        case Ternary::True: return Ternary::False;
        case Ternary::Unknown: return Ternary::Unknown;
    }
    return Ternary::Unknown;
}

constexpr bool decided(Ternary value) { return value != Ternary::Unknown; }

constexpr std::string_view to_string(Ternary value) {
    switch (value) {
        case Ternary::False: return "false";
        case Ternary::Unknown: return "unknown";
        case Ternary::True: return "true";
    }
    return "unknown";
}

}  // namespace cprisk::asp::absint
