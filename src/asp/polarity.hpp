// cprisk/asp/polarity.hpp
//
// Polarity (sign) propagation over ground programs: classifies every atom
// as positive / negative / mixed with respect to a set of *open inputs*
// (choice-shell atoms such as the EPA's scenario_fault domain), by walking
// the ground dependency graph and flipping the sign across default
// negation. The product is a MonotonicityCertificate: either a proof that
// every hazard indicator is monotone non-decreasing in the input domain —
// so a superset of a hazardous input set is again hazardous, and an
// exhaustive lattice sweep may prune supersets (epa/frontier.hpp) — or the
// offending paths/rules that break the proof.
//
// Soundness argument (docs/exhaustive-search.md). Fix any valuation of the
// open atoms that are *not* inputs (free choices). If
//  (1) no integrity constraint, aggregate guard, weak constraint, or
//      choice-rule body is reachable from an input,
//  (2) no strongly connected component reachable from an input contains a
//      negative edge (no recursion through negation on input-dependent
//      atoms), and
//  (3) every hazard atom's propagated sign is None or Positive,
// then the input-dependent slice of the program is stratified and
// deterministic, each atom's truth value is a monotone boolean function of
// the inputs (an even number of antitone steps composes to monotone), and
// answer-set existence does not depend on the inputs. The existential
// hazard check — "some answer set violates a requirement" — is then a
// supremum of monotone functions over the free choices, hence monotone.
// Everything outside these conditions conservatively fails certification.
//
// Atoms decided by a ternary pre-analysis (asp/absint) are constants under
// every completion of the open domain and contribute no edges; passing the
// pinned analysis in PolarityOptions is what removes e.g. the EPA's
// built-in `injected_fault :- scenario_fault, not suppressed` odd path
// once the active-mitigation set is fixed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "asp/absint/absint.hpp"
#include "asp/ground_program.hpp"

namespace cprisk::asp::polarity {

/// Sign of an atom's dependence on the open inputs. Join lattice:
/// None < Positive/Negative < Mixed.
enum class Sign : std::uint8_t { None, Positive, Negative, Mixed };

std::string_view to_string(Sign sign);

/// Join (least upper bound) of two signs.
Sign join(Sign a, Sign b);

struct PolarityOptions {
    /// Ternary pre-analysis of the same program (typically pinned to the
    /// run's non-input choice atoms). Decided atoms are constants: dead
    /// rules are skipped and decided literals contribute no edges.
    /// Borrowed; may be null (every atom treated as undecided).
    const absint::Analysis* analysis = nullptr;
};

/// One reason the certificate failed.
struct Offender {
    enum class Kind : std::uint8_t {
        OddNegation,     ///< an input reaches a hazard with odd negation parity
        NegativeCycle,   ///< negation inside an input-reachable SCC
        Constraint,      ///< input-reachable integrity constraint
        Aggregate,       ///< input-reachable aggregate guard
        WeakConstraint,  ///< input-reachable weak constraint (optimization)
        ChoiceBody,      ///< input-reachable non-shell choice-rule body
    };

    Kind kind = Kind::OddNegation;
    int input_atom = -1;   ///< witnessing open input, -1 when unattributed
    int hazard_atom = -1;  ///< affected hazard indicator, -1 for structural kinds
    /// Negative ground dependency edges (body atom, head atom) on the
    /// witnessing path / cycle — enough to map the failure back to the
    /// `not p(...)` literals of the source rules.
    std::vector<std::pair<int, int>> negative_edges;
    std::string detail;  ///< human-readable one-liner
};

std::string_view to_string(Offender::Kind kind);

/// The outcome of certify_monotone.
struct MonotonicityCertificate {
    /// True: every hazard atom is monotone non-decreasing in the inputs
    /// (conditions (1)-(3) above all hold).
    bool monotone = false;
    std::size_t input_count = 0;
    std::size_t hazard_count = 0;
    /// Propagated sign of each hazard atom (keyed by ground atom id).
    std::map<int, Sign> hazard_sign;
    /// Empty iff monotone. One offender per odd-parity hazard path,
    /// negation-carrying component, or sensitive site; deterministic order
    /// (odd-negation first, then cycles, then sites in program order).
    std::vector<Offender> offenders;
};

/// Runs sign propagation over `program` treating `input_atoms` as the open
/// positive inputs and reports whether every atom in `hazard_atoms` is
/// certifiably monotone in them. Inputs decided by options.analysis are
/// constants and drop out of the certificate (input_count still counts
/// them). Ids must be valid for `program`.
MonotonicityCertificate certify_monotone(const GroundProgram& program,
                                         const std::vector<int>& input_atoms,
                                         const std::vector<int>& hazard_atoms,
                                         const PolarityOptions& options = {});

}  // namespace cprisk::asp::polarity
