// cprisk/asp/safety.hpp
//
// Static variable-safety analysis for ASP rules, shared by the grounder
// (which aborts on the first violation) and the lint rule pack in src/lint
// (which reports every violation with a source location). A variable used in
// a head, in a negative literal, or in a filtering comparison is *safe* when
// a positive body atom or an `=` assignment can bind it.
#pragma once

#include <string>
#include <vector>

#include "asp/syntax.hpp"

namespace cprisk::asp {

/// One unsafe variable occurrence.
struct SafetyViolation {
    std::string variable;  ///< the unbound variable name
    std::string context;   ///< e.g. "rule p(X) :- q." — matches grounder wording
};

/// Checks one body against the variables of `head_terms`. `what` labels the
/// construct in SafetyViolation::context ("rule ...", "weak constraint ...").
/// Each unsafe variable is reported once, in order of first occurrence.
std::vector<SafetyViolation> unsafe_variables(const std::vector<Literal>& body,
                                              const std::vector<Term>& head_terms,
                                              const std::string& what);

/// Full safety check of a rule: head variables, negative-literal and
/// comparison variables; choice elements are checked against body plus their
/// own condition.
std::vector<SafetyViolation> unsafe_rule_variables(const Rule& rule);

/// Safety check of a weak constraint: tuple and weight variables must be
/// bound by the body.
std::vector<SafetyViolation> unsafe_weak_variables(const WeakConstraint& weak);

}  // namespace cprisk::asp
