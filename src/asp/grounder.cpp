#include "asp/grounder.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/dependency_graph.hpp"
#include "asp/eval.hpp"
#include "asp/safety.hpp"
#include "asp/symbols.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"

namespace cprisk::asp {

namespace {

/// Internal control-flow exception converted to Result at the API boundary.
class GroundError : public Error {
public:
    using Error::Error;
};

/// Replaces symbolic constants defined via #const throughout a term.
Term substitute_consts(const Term& term, const std::map<std::string, Term>& consts) {
    switch (term.kind()) {
        case Term::Kind::Integer:
        case Term::Kind::Variable: return term;
        case Term::Kind::Symbol: {
            auto it = consts.find(term.name());
            return it == consts.end() ? term : it->second;
        }
        case Term::Kind::Compound: {
            std::vector<Term> args;
            args.reserve(term.args().size());
            for (const Term& a : term.args()) args.push_back(substitute_consts(a, consts));
            return Term::compound(term.name(), std::move(args));
        }
    }
    return term;
}

Atom substitute_consts(const Atom& atom, const std::map<std::string, Term>& consts) {
    Atom out;
    out.predicate = atom.predicate;
    out.args.reserve(atom.args.size());
    for (const Term& a : atom.args) out.args.push_back(substitute_consts(a, consts));
    return out;
}

Literal substitute_consts(const Literal& lit, const std::map<std::string, Term>& consts) {
    Literal out = lit;
    switch (lit.kind) {
        case Literal::Kind::Atom: out.atom = substitute_consts(lit.atom, consts); break;
        case Literal::Kind::Comparison:
            out.lhs = substitute_consts(lit.lhs, consts);
            out.rhs = substitute_consts(lit.rhs, consts);
            break;
        case Literal::Kind::Aggregate:
            out.rhs = substitute_consts(lit.rhs, consts);
            for (auto& element : out.elements) {
                for (auto& term : element.tuple) term = substitute_consts(term, consts);
                for (auto& condition : element.condition) {
                    condition = substitute_consts(condition, consts);
                }
            }
            break;
    }
    return out;
}

class Grounder {
public:
    Grounder(const ProgramParts& parts, const GrounderOptions& options)
        : parts_(parts), options_(options) {
        for (const Program* part : parts_) {
            for (const auto& [name, value] : part->consts()) {
                auto evaluated = eval_term(substitute_consts(value, consts_));
                if (!evaluated.ok()) {
                    throw GroundError("#const " + name + ": " + evaluated.error());
                }
                consts_.emplace(name, std::move(evaluated).value());
            }
        }
    }

    /// Aborts grounding on the first safety violation; the full analysis
    /// (shared with the linter) lives in asp/safety.hpp.
    static void require_safe(const std::vector<SafetyViolation>& violations) {
        if (!violations.empty()) {
            throw GroundError("grounder: unsafe variable '" + violations.front().variable +
                              "' in " + violations.front().context);
        }
    }

    GroundProgram run() {
        for (const Program* part : parts_) {
            for (const auto& r : part->rules()) {
                if (r.section != SectionKind::Base) {
                    throw GroundError(
                        "grounder: temporal sections must be unrolled before grounding (found "
                        "#program " +
                        asp::to_string(r.section) + ")");
                }
                Rule rule = r.rule;
                rule.head = substitute_head_consts(rule.head);
                for (auto& lit : rule.body) lit = substitute_consts(lit, consts_);
                require_safe(unsafe_rule_variables(rule));
                rules_.push_back(std::move(rule));
            }
            for (const auto& w : part->weaks()) {
                if (w.section != SectionKind::Base) {
                    throw GroundError(
                        "grounder: temporal weak constraints must be unrolled first");
                }
                WeakConstraint weak = w.weak;
                for (const Literal& lit : weak.body) {
                    if (lit.kind == Literal::Kind::Aggregate) {
                        throw GroundError(
                            "grounder: aggregates are not supported in weak-constraint bodies");
                    }
                }
                for (auto& lit : weak.body) lit = substitute_consts(lit, consts_);
                weak.weight = substitute_consts(weak.weight, consts_);
                for (auto& t : weak.tuple) t = substitute_consts(t, consts_);
                require_safe(unsafe_weak_variables(weak));
                weaks_.push_back(std::move(weak));
            }
        }

        if (options_.scc_order) {
            ground_scc_ordered();
        } else {
            ground_global_fixpoint();
        }

        materialize_choices();
        materialize_aggregate_constraints();
        for (const Program* part : parts_) {
            for (const Signature& s : part->shows()) out_.add_show(s);
        }
        return std::move(out_);
    }

private:
    // --- grounding strategies ----------------------------------------------

    /// Reference strategy: every rule and weak constraint is re-grounded on
    /// every fixpoint round until nothing changes.
    void ground_global_fixpoint() {
        std::size_t iterations = 0;
        do {
            changed_ = false;
            if (++iterations > options_.max_iterations) {
                throw GroundError("grounder: iteration limit exceeded (non-terminating program?)");
            }
            for (const Rule& rule : rules_) ground_rule(rule);
            for (const WeakConstraint& weak : weaks_) ground_weak(weak);
            recompute_certain();
        } while (changed_);
    }

    /// Fast strategy: rules are bucketed by the predicate-dependency SCC of
    /// their head (for choice rules, the earliest component among the
    /// elements) and grounded component by component in topological order.
    /// Every dependency edge runs from an earlier-or-equal component to the
    /// head's, so when a bucket's local fixpoint converges, the domains its
    /// later consumers join against are complete; only intra-component
    /// recursion needs re-grounding. Constraints and weak constraints derive
    /// no atoms and get a single pass over the converged domain.
    void ground_scc_ordered() {
        const analysis::DependencyGraph graph = analysis::DependencyGraph::from_rules(rules_);
        std::vector<std::vector<std::size_t>> buckets(graph.component_count());
        std::vector<std::size_t> constraints;
        for (std::size_t i = 0; i < rules_.size(); ++i) {
            const Head& head = rules_[i].head;
            if (head.kind == Head::Kind::Constraint) {
                constraints.push_back(i);
                continue;
            }
            std::size_t component = graph.component_count();
            auto consider = [&](const Atom& atom) {
                const auto node = graph.node_of(Signature{atom.predicate, atom.arity()});
                component = std::min(component, graph.component_of(*node));
            };
            if (head.kind == Head::Kind::Atom) {
                consider(head.atom);
            } else {
                for (const ChoiceElement& element : head.elements) consider(element.atom);
            }
            buckets[component].push_back(i);
        }

        // Only components with an internal dependency edge can feed atoms
        // back into their own bucket; recursion into a component always comes
        // from rules bucketed at that component, so every other bucket
        // converges in a single pass (no verification round needed).
        std::vector<bool> recursive(graph.component_count(), false);
        for (std::size_t component : graph.unstratified_components()) recursive[component] = true;
        for (std::size_t component : graph.positive_loop_components()) recursive[component] = true;

        std::size_t iterations = 0;
        for (std::size_t component = 0; component < buckets.size(); ++component) {
            const std::vector<std::size_t>& bucket = buckets[component];
            if (bucket.empty()) continue;
            do {
                changed_ = false;
                if (++iterations > options_.max_iterations) {
                    throw GroundError(
                        "grounder: iteration limit exceeded (non-terminating program?)");
                }
                for (std::size_t index : bucket) ground_rule(rules_[index]);
                recompute_certain();
            } while (changed_ && recursive[component]);
        }
        for (std::size_t index : constraints) ground_rule(rules_[index]);
        for (const WeakConstraint& weak : weaks_) ground_weak(weak);
        changed_ = false;
    }

    // --- domain ------------------------------------------------------------

    /// Dense predicate-symbol id; interned on first sight. Domain indexing
    /// by id replaces the old "pred/arity" string keys on the match hot path.
    int pred_id(const Atom& a) { return symbols_.intern(a.predicate, a.args.size()); }

    /// Interns `atom` into the solver program and (optionally) the grounding
    /// domain. Returns the atom id.
    int add_to_domain(const Atom& atom) {
        const int before = static_cast<int>(out_.atom_count());
        const int id = out_.intern(atom);
        if (id >= before) {
            charge_budget();
            if (out_.atom_count() > options_.max_atoms) {
                throw GroundError("grounder: atom limit exceeded (" +
                                  std::to_string(options_.max_atoms) + ")");
            }
            changed_ = true;
            in_domain_.resize(out_.atom_count(), false);
            certain_.resize(out_.atom_count(), false);
        }
        if (!in_domain_[static_cast<std::size_t>(id)]) {
            in_domain_[static_cast<std::size_t>(id)] = true;
            const auto pid = static_cast<std::size_t>(pred_id(atom));
            if (by_predicate_.size() <= pid) by_predicate_.resize(pid + 1);
            by_predicate_[pid].push_back(id);
            changed_ = true;
        }
        return id;
    }

    /// Interns without adding to the match domain (negative-body atoms that
    /// are never derivable stay out of joins).
    int intern_only(const Atom& atom) {
        const int id = out_.intern(atom);
        in_domain_.resize(std::max(in_domain_.size(), out_.atom_count()), false);
        certain_.resize(std::max(certain_.size(), out_.atom_count()), false);
        return id;
    }

    // --- matching ------------------------------------------------------------

    bool unify(const Term& pattern, const Term& value, Binding& binding) {
        switch (pattern.kind()) {
            case Term::Kind::Integer:
                return value.is_integer() && value.as_int() == pattern.as_int();
            case Term::Kind::Symbol: return value.is_symbol() && value.name() == pattern.name();
            case Term::Kind::Variable: {
                if (pattern.name() == "_") return true;  // anonymous
                auto it = binding.find(pattern.name());
                if (it != binding.end()) return it->second == value;
                binding.emplace(pattern.name(), value);
                return true;
            }
            case Term::Kind::Compound: {
                // Evaluate arithmetic sub-terms that became ground.
                Term substituted = substitute(pattern, binding);
                if (substituted.is_ground()) {
                    auto evaluated = eval_term(substituted);
                    if (!evaluated.ok()) return false;
                    return evaluated.value() == value;
                }
                if (!value.is_compound()) return false;
                if (value.name() != pattern.name() ||
                    value.args().size() != pattern.args().size()) {
                    return false;
                }
                for (std::size_t i = 0; i < pattern.args().size(); ++i) {
                    if (!unify(pattern.args()[i], value.args()[i], binding)) return false;
                }
                return true;
            }
        }
        return false;
    }

    bool unify_atom(const Atom& pattern, const Atom& value, Binding& binding) {
        if (pattern.predicate != value.predicate || pattern.args.size() != value.args.size()) {
            return false;
        }
        for (std::size_t i = 0; i < pattern.args.size(); ++i) {
            if (!unify(pattern.args[i], value.args[i], binding)) return false;
        }
        return true;
    }

    enum class Readiness { Ready, NotReady };

    Readiness literal_readiness(const Literal& lit, const Binding& binding) const {
        if (lit.kind == Literal::Kind::Atom) {
            if (!lit.negated) return Readiness::Ready;
            return substitute(lit.atom, binding).is_ground() ? Readiness::Ready
                                                             : Readiness::NotReady;
        }
        const Term lhs = substitute(lit.lhs, binding);
        const Term rhs = substitute(lit.rhs, binding);
        if (lhs.is_ground() && rhs.is_ground()) return Readiness::Ready;
        if (lit.op == CompareOp::Eq) {
            if (lhs.is_variable() && rhs.is_ground()) return Readiness::Ready;
            if (rhs.is_variable() && lhs.is_ground()) return Readiness::Ready;
        }
        return Readiness::NotReady;
    }

    /// Enumerates all bindings satisfying `literals` over the current domain
    /// (negation treated as possibly-true, recorded via `neg_out`), invoking
    /// `on_match` with the complete binding and the positive/negative ground
    /// body atom ids.
    void match(const std::vector<Literal>& literals, Binding binding, std::vector<int> pos,
               std::vector<int> neg, const std::function<void(const Binding&, std::vector<int>,
                                                              std::vector<int>)>& on_match) {
        if (literals.empty()) {
            on_match(binding, std::move(pos), std::move(neg));
            return;
        }
        // Pick the first ready literal to keep joins bound.
        std::size_t pick = literals.size();
        for (std::size_t i = 0; i < literals.size(); ++i) {
            if (literal_readiness(literals[i], binding) == Readiness::Ready) {
                pick = i;
                break;
            }
        }
        if (pick == literals.size()) {
            std::string names;
            for (const auto& l : literals) {
                if (!names.empty()) names += ", ";
                names += l.to_string();
            }
            throw GroundError("grounder: unsafe rule body; cannot bind literals: " + names);
        }
        Literal lit = literals[pick];
        std::vector<Literal> rest;
        rest.reserve(literals.size() - 1);
        for (std::size_t i = 0; i < literals.size(); ++i) {
            if (i != pick) rest.push_back(literals[i]);
        }

        if (lit.kind == Literal::Kind::Atom && !lit.negated) {
            const Atom pattern = substitute(lit.atom, binding);
            const int pid = symbols_.find(pattern.predicate, pattern.args.size());
            if (pid < 0 || static_cast<std::size_t>(pid) >= by_predicate_.size()) return;
            // Index snapshot: the domain may grow while we iterate; new atoms
            // are picked up in the next fixpoint iteration.
            const std::vector<int> candidates = by_predicate_[static_cast<std::size_t>(pid)];
            for (int id : candidates) {
                Binding extended = binding;
                if (!unify_atom(pattern, out_.atom(id), extended)) continue;
                auto pos2 = pos;
                pos2.push_back(id);
                match(rest, std::move(extended), std::move(pos2), neg, on_match);
            }
            return;
        }
        if (lit.kind == Literal::Kind::Atom) {  // negated, ground
            Atom ground_atom = substitute(lit.atom, binding);
            auto evaluated = eval_atom(ground_atom);
            auto neg2 = neg;
            neg2.push_back(intern_only(evaluated));
            match(rest, std::move(binding), std::move(pos), std::move(neg2), on_match);
            return;
        }
        // Comparison / assignment.
        const Term lhs = substitute(lit.lhs, binding);
        const Term rhs = substitute(lit.rhs, binding);
        if (lhs.is_ground() && rhs.is_ground()) {
            auto le = eval_term(lhs);
            auto re = eval_term(rhs);
            if (!le.ok()) throw GroundError(le.error());
            if (!re.ok()) throw GroundError(re.error());
            // `X = a..b` style membership for ground sides: expand ranges.
            if (lit.op == CompareOp::Eq &&
                (le.value().is_compound() || re.value().is_compound())) {
                const auto lvals = expand_ranges(le.value());
                const auto rvals = expand_ranges(re.value());
                bool any = false;
                for (const Term& lv : lvals) {
                    for (const Term& rv : rvals) {
                        if (lv == rv) any = true;
                    }
                }
                if (any) match(rest, std::move(binding), std::move(pos), std::move(neg), on_match);
                return;
            }
            if (compare_terms(le.value(), lit.op, re.value())) {
                match(rest, std::move(binding), std::move(pos), std::move(neg), on_match);
            }
            return;
        }
        // Assignment: exactly one side is an unbound variable, other ground.
        const bool lhs_var = lhs.is_variable();
        const Term& var = lhs_var ? lhs : rhs;
        const Term& expr = lhs_var ? rhs : lhs;
        auto evaluated = eval_term(expr);
        if (!evaluated.ok()) throw GroundError(evaluated.error());
        for (const Term& value : expand_ranges(evaluated.value())) {
            Binding extended = binding;
            if (var.name() != "_") extended.emplace(var.name(), value);
            match(rest, std::move(extended), pos, neg, on_match);
        }
    }

    /// Evaluates all arguments of a ground atom (reducing arithmetic).
    Atom eval_atom(const Atom& atom) {
        Atom out;
        out.predicate = atom.predicate;
        out.args.reserve(atom.args.size());
        for (const Term& a : atom.args) {
            auto r = eval_term(a);
            if (!r.ok()) throw GroundError("in atom " + atom.to_string() + ": " + r.error());
            out.args.push_back(std::move(r).value());
        }
        return out;
    }

    // --- rule instantiation ---------------------------------------------------

    Head substitute_head_consts(const Head& head) {
        Head out = head;
        switch (head.kind) {
            case Head::Kind::Atom: out.atom = substitute_consts(head.atom, consts_); break;
            case Head::Kind::Constraint: break;
            case Head::Kind::Choice:
                for (auto& element : out.elements) {
                    element.atom = substitute_consts(element.atom, consts_);
                    for (auto& lit : element.condition) lit = substitute_consts(lit, consts_);
                }
                break;
        }
        return out;
    }

    /// Body atom order is semantically irrelevant; normalize for dedup.
    static void normalize(std::vector<int>& ids) {
        std::sort(ids.begin(), ids.end());
        ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    }

    static std::string serialize_body(const std::vector<int>& pos, const std::vector<int>& neg) {
        std::string key;
        for (int id : pos) key += "p" + std::to_string(id);
        for (int id : neg) key += "n" + std::to_string(id);
        return key;
    }

    void emit_normal(int head, std::vector<int> pos, std::vector<int> neg) {
        normalize(pos);
        normalize(neg);
        std::string key = "r" + std::to_string(head) + "|" + serialize_body(pos, neg);
        if (!seen_rules_.insert(std::move(key)).second) return;
        GroundRule rule;
        rule.kind = GroundRule::Kind::Normal;
        rule.head = head;
        rule.positive_body = std::move(pos);
        rule.negative_body = std::move(neg);
        out_.add_rule(std::move(rule));
        changed_ = true;
    }

    void emit_constraint(std::vector<int> pos, std::vector<int> neg) {
        normalize(pos);
        normalize(neg);
        std::string key = "c|" + serialize_body(pos, neg);
        if (!seen_rules_.insert(std::move(key)).second) return;
        GroundRule rule;
        rule.kind = GroundRule::Kind::Constraint;
        rule.positive_body = std::move(pos);
        rule.negative_body = std::move(neg);
        out_.add_rule(std::move(rule));
        changed_ = true;
    }

    void ground_rule(const Rule& rule) {
        charge_budget();
        // Aggregates never bind variables; split them off and handle them
        // after the literal body matched.
        std::vector<Literal> normals;
        std::vector<Literal> aggregates;
        for (const Literal& lit : rule.body) {
            (lit.kind == Literal::Kind::Aggregate ? aggregates : normals).push_back(lit);
        }
        if (!aggregates.empty() && rule.head.kind != Head::Kind::Constraint) {
            throw GroundError(
                "grounder: body aggregates are only supported in integrity constraints: " +
                rule.to_string());
        }
        match(normals, {}, {}, {},
              [&](const Binding& binding, std::vector<int> pos, std::vector<int> neg) {
                  if (!aggregates.empty()) {
                      defer_aggregate_constraint(rule, aggregates, binding, std::move(pos),
                                                 std::move(neg));
                      return;
                  }
                  instantiate_head(rule, binding, std::move(pos), std::move(neg));
              });
    }

    struct AggregateInstance {
        const Rule* rule = nullptr;
        std::vector<Literal> aggregates;
        Binding binding;
        std::vector<int> pos;
        std::vector<int> neg;
    };

    void defer_aggregate_constraint(const Rule& rule, const std::vector<Literal>& aggregates,
                                    const Binding& binding, std::vector<int> pos,
                                    std::vector<int> neg) {
        normalize(pos);
        normalize(neg);
        std::string key = "agg" + std::to_string(rule_id(rule)) + "|" +
                          serialize_body(pos, neg) + "|" + binding_key(binding);
        if (aggregate_instances_.count(key) > 0) return;
        AggregateInstance instance;
        instance.rule = &rule;
        instance.aggregates = aggregates;
        instance.binding = binding;
        instance.pos = std::move(pos);
        instance.neg = std::move(neg);
        aggregate_instances_.emplace(std::move(key), std::move(instance));
        changed_ = true;
    }

    /// Grounds one aggregate literal under `binding` against the (final)
    /// domain.
    GroundAggregate expand_aggregate(const Literal& lit, const Binding& binding) {
        GroundAggregate aggregate;
        aggregate.op = lit.op;
        auto bound = eval_term(substitute(lit.rhs, binding));
        if (!bound.ok() || !bound.value().is_integer()) {
            throw GroundError("grounder: aggregate bound must evaluate to an integer in " +
                              lit.to_string());
        }
        aggregate.bound = bound.value().as_int();

        for (const AggregateElement& element : lit.elements) {
            for (const Literal& condition : element.condition) {
                if (condition.kind == Literal::Kind::Atom && condition.negated) {
                    throw GroundError(
                        "grounder: negation inside aggregate conditions is not supported: " +
                        lit.to_string());
                }
                if (condition.kind == Literal::Kind::Aggregate) {
                    throw GroundError("grounder: nested aggregates are not supported");
                }
            }
            match(element.condition, binding, {}, {},
                  [&](const Binding& extended, std::vector<int> cond_pos,
                      std::vector<int> cond_neg) {
                      require(cond_neg.empty(), "aggregate conditions cannot be negative");
                      GroundAggregateElement ground_element;
                      std::vector<Term> tuple_values;
                      for (const Term& term : element.tuple) {
                          auto value = eval_term(substitute(term, extended));
                          if (!value.ok()) throw GroundError(value.error());
                          tuple_values.push_back(std::move(value).value());
                      }
                      for (const Term& value : tuple_values) {
                          ground_element.tuple +=
                              (ground_element.tuple.empty() ? "" : ",") + value.to_string();
                      }
                      if (lit.aggregate_kind == AggregateKind::Sum) {
                          if (tuple_values.empty() || !tuple_values[0].is_integer()) {
                              throw GroundError(
                                  "grounder: #sum needs an integer weight as the first tuple "
                                  "term: " + lit.to_string());
                          }
                          ground_element.weight = tuple_values[0].as_int();
                      } else {
                          ground_element.weight = 1;
                      }
                      normalize(cond_pos);
                      ground_element.condition = std::move(cond_pos);
                      aggregate.elements.push_back(std::move(ground_element));
                  });
        }
        return aggregate;
    }

    void materialize_aggregate_constraints() {
        for (auto& [key, instance] : aggregate_instances_) {
            (void)key;
            GroundRule rule;
            rule.kind = GroundRule::Kind::Constraint;
            rule.positive_body = instance.pos;
            rule.negative_body = instance.neg;
            for (const Literal& lit : instance.aggregates) {
                rule.aggregates.push_back(expand_aggregate(lit, instance.binding));
            }
            out_.add_rule(std::move(rule));
        }
    }

    void instantiate_head(const Rule& rule, const Binding& binding, std::vector<int> pos,
                          std::vector<int> neg) {
        switch (rule.head.kind) {
            case Head::Kind::Constraint: emit_constraint(std::move(pos), std::move(neg)); return;
            case Head::Kind::Atom: {
                Atom head = eval_atom(substitute(rule.head.atom, binding));
                if (!head.is_ground()) {
                    throw GroundError("grounder: unsafe head " + head.to_string() +
                                      " (unbound variables after body match)");
                }
                for (const Atom& instance : expand_atom_ranges(head)) {
                    emit_normal(add_to_domain(instance), pos, neg);
                }
                return;
            }
            case Head::Kind::Choice: {
                instantiate_choice(rule, binding, std::move(pos), std::move(neg));
                return;
            }
        }
    }

    struct ChoiceInstance {
        std::vector<int> pos;
        std::vector<int> neg;
        std::optional<long long> lower;
        std::optional<long long> upper;
        const Rule* rule = nullptr;
        Binding binding;
    };

    void instantiate_choice(const Rule& rule, const Binding& binding, std::vector<int> pos,
                            std::vector<int> neg) {
        normalize(pos);
        normalize(neg);
        // Expand elements now so head atoms enter the domain; the final
        // element set is recomputed in materialize_choices() against the
        // converged domain.
        expand_choice_elements(rule, binding, /*collect=*/nullptr);

        std::string key = "ch" + std::to_string(rule_id(rule)) + "|" +
                          serialize_body(pos, neg) + "|" + binding_key(binding);
        if (choice_instances_.find(key) != choice_instances_.end()) return;
        ChoiceInstance instance;
        instance.pos = std::move(pos);
        instance.neg = std::move(neg);
        instance.lower = rule.head.lower_bound;
        instance.upper = rule.head.upper_bound;
        instance.rule = &rule;
        instance.binding = binding;
        choice_instances_.emplace(std::move(key), std::move(instance));
        changed_ = true;
    }

    static std::string binding_key(const Binding& binding) {
        std::string key;
        for (const auto& [name, value] : binding) key += name + "=" + value.to_string() + ";";
        return key;
    }

    std::size_t rule_id(const Rule& rule) const {
        return static_cast<std::size_t>(&rule - rules_.data());
    }

    /// Joins each element's condition against the current domain; element
    /// atoms are added to the domain. If `collect` is non-null, elements
    /// whose conditions hold *certainly* go to `collect->first` and elements
    /// with possibly-true conditions to `collect->second` (atom id +
    /// condition body ids).
    struct CollectedElements {
        std::vector<int> certain;  // unconditional heads
        std::vector<std::tuple<int, std::vector<int>, std::vector<int>>> conditional;
    };

    void expand_choice_elements(const Rule& rule, const Binding& binding,
                                CollectedElements* collect) {
        for (const ChoiceElement& element : rule.head.elements) {
            match(element.condition, binding, {}, {},
                  [&](const Binding& extended, std::vector<int> cond_pos,
                      std::vector<int> cond_neg) {
                      Atom head = eval_atom(substitute(element.atom, extended));
                      if (!head.is_ground()) {
                          throw GroundError("grounder: unsafe choice element " + head.to_string());
                      }
                      for (const Atom& instance : expand_atom_ranges(head)) {
                          const int id = add_to_domain(instance);
                          if (collect == nullptr) continue;
                          const bool certain_cond =
                              cond_neg.empty() &&
                              std::all_of(cond_pos.begin(), cond_pos.end(), [&](int c) {
                                  return certain_[static_cast<std::size_t>(c)];
                              });
                          if (certain_cond) {
                              collect->certain.push_back(id);
                          } else {
                              collect->conditional.emplace_back(id, cond_pos, cond_neg);
                          }
                      }
                  });
        }
    }

    void materialize_choices() {
        for (auto& [key, instance] : choice_instances_) {
            CollectedElements elements;
            expand_choice_elements(*instance.rule, instance.binding, &elements);

            const bool bounded = instance.lower.has_value() || instance.upper.has_value();
            if (bounded && !elements.conditional.empty()) {
                throw GroundError(
                    "grounder: bounded choice rules require conditions over certain facts");
            }
            // Unconditional part (possibly bounded).
            std::sort(elements.certain.begin(), elements.certain.end());
            elements.certain.erase(
                std::unique(elements.certain.begin(), elements.certain.end()),
                elements.certain.end());
            if (!elements.certain.empty() || bounded) {
                GroundRule rule;
                rule.kind = GroundRule::Kind::Choice;
                rule.choice_heads = elements.certain;
                rule.lower_bound = instance.lower;
                rule.upper_bound = instance.upper;
                rule.positive_body = instance.pos;
                rule.negative_body = instance.neg;
                out_.add_rule(std::move(rule));
            }
            // Conditional elements become singleton unbounded choices with
            // the condition folded into the body.
            for (auto& [id, cond_pos, cond_neg] : elements.conditional) {
                GroundRule rule;
                rule.kind = GroundRule::Kind::Choice;
                rule.choice_heads = {id};
                rule.positive_body = instance.pos;
                rule.negative_body = instance.neg;
                rule.positive_body.insert(rule.positive_body.end(), cond_pos.begin(),
                                          cond_pos.end());
                rule.negative_body.insert(rule.negative_body.end(), cond_neg.begin(),
                                          cond_neg.end());
                out_.add_rule(std::move(rule));
            }
        }
    }

    // --- weak constraints ----------------------------------------------------

    void ground_weak(const WeakConstraint& weak) {
        charge_budget();
        match(weak.body, {}, {}, {},
              [&](const Binding& binding, std::vector<int> pos, std::vector<int> neg) {
                  normalize(pos);
                  normalize(neg);
                  auto weight = eval_term(substitute(weak.weight, binding));
                  if (!weight.ok()) throw GroundError(weight.error());
                  if (!weight.value().is_integer()) {
                      throw GroundError("weak constraint weight must evaluate to an integer: " +
                                        weight.value().to_string());
                  }
                  std::string tuple;
                  for (const Term& t : weak.tuple) {
                      auto v = eval_term(substitute(t, binding));
                      if (!v.ok()) throw GroundError(v.error());
                      tuple += (tuple.empty() ? "" : ",") + v.value().to_string();
                  }
                  std::string key = "w" + std::to_string(weight.value().as_int()) + "@" +
                                    std::to_string(weak.priority) + "[" + tuple + "]|" +
                                    serialize_body(pos, neg);
                  if (!seen_rules_.insert(std::move(key)).second) return;
                  GroundWeak ground;
                  ground.positive_body = std::move(pos);
                  ground.negative_body = std::move(neg);
                  ground.weight = weight.value().as_int();
                  ground.priority = weak.priority;
                  ground.tuple = std::move(tuple);
                  out_.add_weak(std::move(ground));
                  changed_ = true;
              });
    }

    // --- certainty -----------------------------------------------------------

    void recompute_certain() {
        bool progressed = true;
        while (progressed) {
            progressed = false;
            for (const GroundRule& rule : out_.rules()) {
                if (rule.kind != GroundRule::Kind::Normal) continue;
                if (!rule.negative_body.empty()) continue;
                if (certain_[static_cast<std::size_t>(rule.head)]) continue;
                const bool all_certain =
                    std::all_of(rule.positive_body.begin(), rule.positive_body.end(),
                                [&](int id) { return certain_[static_cast<std::size_t>(id)]; });
                if (all_certain) {
                    certain_[static_cast<std::size_t>(rule.head)] = true;
                    progressed = true;
                }
            }
        }
    }

    /// One budget step per grounded rule / newly interned atom; a trip
    /// unwinds the fixpoint promptly via GroundError, and the caller reads
    /// the structured reason from Budget::tripped().
    void charge_budget() {
        if (options_.budget == nullptr) return;
        if (auto exceeded = options_.budget->charge_steps()) {
            throw GroundError("grounder: " + exceeded->to_string());
        }
    }

    const ProgramParts& parts_;
    const GrounderOptions& options_;
    std::map<std::string, Term> consts_;
    std::vector<Rule> rules_;
    std::vector<WeakConstraint> weaks_;

    GroundProgram out_;
    std::vector<char> in_domain_;
    std::vector<char> certain_;
    SymbolTable symbols_;
    std::vector<std::vector<int>> by_predicate_;  ///< domain atom ids per symbol id
    std::unordered_set<std::string> seen_rules_;
    // Instance maps stay ordered: materialize_choices()/aggregates iterate
    // them, and their emission order must not depend on hash seeds.
    std::map<std::string, ChoiceInstance> choice_instances_;
    std::map<std::string, AggregateInstance> aggregate_instances_;
    bool changed_ = false;
};

}  // namespace

Result<GroundProgram> ground(const ProgramParts& parts, const GrounderOptions& options) {
    if (fault::should_fail("asp.grounder.ground")) {
        return Result<GroundProgram>::failure(
            "grounder: injected fault (site asp.grounder.ground)");
    }
    obs::Span span(options.trace, "asp.ground", "ground");
    try {
        Grounder grounder(parts, options);
        GroundProgram program = grounder.run();
        span.arg("rules", static_cast<long long>(program.rules().size()));
        span.arg("atoms", static_cast<long long>(program.atom_count()));
        obs::add_counter(options.metrics, "asp.ground.calls");
        obs::add_counter(options.metrics, "asp.ground.rules", program.rules().size());
        obs::add_counter(options.metrics, "asp.ground.atoms", program.atom_count());
        return program;
    } catch (const GroundError& e) {
        return Result<GroundProgram>::failure(e.what());
    }
}

Result<GroundProgram> ground(const Program& program, const GrounderOptions& options) {
    return ground(ProgramParts{&program}, options);
}

}  // namespace cprisk::asp
