#include "asp/cdcl.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/fault_injection.hpp"

namespace cprisk::asp {

namespace {

/// Literal encoding shared with the DPLL engine: variable v true -> 2v,
/// false -> 2v+1.
int pos_lit(int var) { return 2 * var; }
int neg_lit(int var) { return 2 * var + 1; }
int lit_var(int lit) { return lit / 2; }
bool lit_sign(int lit) { return (lit & 1) == 0; }  // true literal?
int negate(int lit) { return lit ^ 1; }

constexpr std::size_t kRestartBase = 64;  ///< conflicts per Luby unit

}  // namespace

void sort_models_canonically(std::vector<AnswerSet>& models) {
    std::sort(models.begin(), models.end(), [](const AnswerSet& a, const AnswerSet& b) {
        if (a.atoms < b.atoms) return true;
        if (b.atoms < a.atoms) return false;
        return a.cost < b.cost;
    });
}

CdclSolver::CdclSolver(const GroundProgram& program) : program_(program) { build(); }

// --- construction -----------------------------------------------------------

void CdclSolver::build() {
    n_atoms_ = static_cast<int>(program_.atom_count());
    const int n_rules = static_cast<int>(program_.rules().size());
    n_vars_ = n_atoms_ + n_rules;
    assign_.assign(static_cast<std::size_t>(n_vars_), 0);
    unit_taint_.assign(static_cast<std::size_t>(n_vars_), 0);
    watches_.assign(static_cast<std::size_t>(2 * n_vars_), {});
    reason_.assign(static_cast<std::size_t>(n_vars_), -1);
    level_.assign(static_cast<std::size_t>(n_vars_), 0);
    phase_.assign(static_cast<std::size_t>(n_vars_), 0);
    activity_.assign(static_cast<std::size_t>(n_vars_), 0.0);
    base_activity_.assign(static_cast<std::size_t>(n_vars_), 0.0);
    heap_pos_.assign(static_cast<std::size_t>(n_vars_), -1);
    seen_.assign(static_cast<std::size_t>(n_vars_), 0);

    std::vector<std::vector<int>> supports(static_cast<std::size_t>(n_atoms_));

    // Normalizes (sort, dedup, tautology check) and installs one base clause.
    auto add_base = [&](std::vector<int> lits) {
        std::sort(lits.begin(), lits.end());
        lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
        for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
            if (lits[i + 1] == negate(lits[i])) return;  // tautology
        }
        for (int lit : lits) {
            base_activity_[static_cast<std::size_t>(lit_var(lit))] += 1.0;
        }
        if (lits.empty()) {
            root_conflict_ = true;
            return;
        }
        if (lits.size() == 1) {
            if (value_false(lits[0])) {
                root_conflict_ = true;
            } else if (lit_unassigned(lits[0])) {
                enqueue(lits[0], -1);
            }
            return;
        }
        add_clause(std::move(lits), /*learnt=*/false, /*transient=*/false);
    };

    for (int r = 0; r < n_rules; ++r) {
        const GroundRule& rule = program_.rules()[static_cast<std::size_t>(r)];
        const int body_var = n_atoms_ + r;

        // body_var <-> conjunction of body literals
        std::vector<int> all_false = {pos_lit(body_var)};
        for (int p : rule.positive_body) {
            add_base({neg_lit(body_var), pos_lit(p)});
            all_false.push_back(neg_lit(p));
        }
        for (int n : rule.negative_body) {
            add_base({neg_lit(body_var), neg_lit(n)});
            all_false.push_back(pos_lit(n));
        }
        add_base(std::move(all_false));

        switch (rule.kind) {
            case GroundRule::Kind::Normal:
                add_base({neg_lit(body_var), pos_lit(rule.head)});
                supports[static_cast<std::size_t>(rule.head)].push_back(body_var);
                break;
            case GroundRule::Kind::Constraint:
                if (rule.aggregates.empty()) {
                    add_base({neg_lit(body_var)});
                } else {
                    aggregate_constraints_.push_back(r);
                }
                break;
            case GroundRule::Kind::Choice:
                for (int h : rule.choice_heads) {
                    supports[static_cast<std::size_t>(h)].push_back(body_var);
                }
                if (rule.lower_bound || rule.upper_bound) {
                    bounded_choices_.push_back(r);
                }
                break;
        }
    }

    // Completion/support clauses: atom -> disjunction of its bodies.
    for (int a = 0; a < n_atoms_; ++a) {
        std::vector<int> clause = {neg_lit(a)};
        for (int body_var : supports[static_cast<std::size_t>(a)]) {
            clause.push_back(pos_lit(body_var));
        }
        add_base(std::move(clause));
    }

    for (const GroundWeak& w : program_.weaks()) {
        if (w.weight < 0) negative_weights_ = true;
    }
    has_weaks_ = !program_.weaks().empty();

    // Top-level propagation. qhead_ is still 0, so every unit enqueued above
    // is replayed against the full watch lists built since.
    if (!root_conflict_ && propagate() >= 0) root_conflict_ = true;
}

int CdclSolver::add_clause(std::vector<int> lits, bool learnt, bool transient) {
    const int id = static_cast<int>(clauses_.size());
    Clause clause;
    clause.lits = std::move(lits);
    clause.learnt = learnt;
    clause.transient = transient;
    clause.birth = generation_;
    clauses_.push_back(std::move(clause));
    attach_clause(id);
    return id;
}

void CdclSolver::attach_clause(int id) {
    Clause& c = clauses_[static_cast<std::size_t>(id)];
    watches_[static_cast<std::size_t>(c.lits[0])].push_back({id, c.lits[1]});
    watches_[static_cast<std::size_t>(c.lits[1])].push_back({id, c.lits[0]});
    c.attached = true;
}

// --- assignment / propagation -----------------------------------------------

bool CdclSolver::value_true(int lit) const {
    const int v = assign_[static_cast<std::size_t>(lit_var(lit))];
    return v != 0 && (v > 0) == lit_sign(lit);
}

bool CdclSolver::value_false(int lit) const {
    const int v = assign_[static_cast<std::size_t>(lit_var(lit))];
    return v != 0 && (v > 0) != lit_sign(lit);
}

bool CdclSolver::lit_unassigned(int lit) const {
    return assign_[static_cast<std::size_t>(lit_var(lit))] == 0;
}

void CdclSolver::enqueue(int lit, int reason) {
    const int var = lit_var(lit);
    assign_[static_cast<std::size_t>(var)] = lit_sign(lit) ? 1 : -1;
    reason_[static_cast<std::size_t>(var)] = reason;
    level_[static_cast<std::size_t>(var)] = current_level();
    unit_taint_[static_cast<std::size_t>(var)] = 0;
    if (current_level() == 0 && reason >= 0) {
        const Clause& c = clauses_[static_cast<std::size_t>(reason)];
        bool tainted = c.transient;
        for (std::size_t i = 0; !tainted && i < c.lits.size(); ++i) {
            const int v = lit_var(c.lits[i]);
            tainted = v != var && unit_taint_[static_cast<std::size_t>(v)] != 0;
        }
        unit_taint_[static_cast<std::size_t>(var)] = tainted ? 1 : 0;
    }
    trail_.push_back(lit);
    ++stats_.propagations;
    if (reason >= 0) {
        const Clause& c = clauses_[static_cast<std::size_t>(reason)];
        if (c.learnt && c.birth < generation_) ++stats_.reused_clause_propagations;
    }
}

int CdclSolver::propagate() {
    while (qhead_ < trail_.size()) {
        const int lit = trail_[qhead_++];
        const int flit = negate(lit);  // literal that just became false
        auto& ws = watches_[static_cast<std::size_t>(flit)];
        std::size_t i = 0;
        std::size_t j = 0;
        while (i < ws.size()) {
            const Watcher w = ws[i];
            if (value_true(w.blocker)) {
                ws[j++] = ws[i++];
                continue;
            }
            Clause& c = clauses_[static_cast<std::size_t>(w.clause)];
            if (c.deleted) {  // stale watcher left by DB reduction
                ++i;
                continue;
            }
            if (c.lits[0] == flit) std::swap(c.lits[0], c.lits[1]);
            const Watcher keep{w.clause, c.lits[0]};
            if (value_true(c.lits[0])) {
                ws[j++] = keep;
                ++i;
                continue;
            }
            bool moved = false;
            for (std::size_t k = 2; k < c.lits.size(); ++k) {
                if (!value_false(c.lits[k])) {
                    std::swap(c.lits[1], c.lits[k]);
                    watches_[static_cast<std::size_t>(c.lits[1])].push_back(
                        {w.clause, c.lits[0]});
                    moved = true;
                    break;
                }
            }
            if (moved) {
                ++i;
                continue;
            }
            ws[j++] = keep;
            ++i;
            if (value_false(c.lits[0])) {  // conflict
                while (i < ws.size()) ws[j++] = ws[i++];
                ws.resize(j);
                qhead_ = trail_.size();
                return w.clause;
            }
            enqueue(c.lits[0], w.clause);
        }
        ws.resize(j);
    }
    return -1;
}

void CdclSolver::cancel_until(int target) {
    if (current_level() <= target) return;
    const std::size_t mark = trail_lim_[static_cast<std::size_t>(target)];
    for (std::size_t i = trail_.size(); i > mark; --i) {
        const int lit = trail_[i - 1];
        const int var = lit_var(lit);
        phase_[static_cast<std::size_t>(var)] =
            assign_[static_cast<std::size_t>(var)] > 0 ? 1 : 0;
        assign_[static_cast<std::size_t>(var)] = 0;
        reason_[static_cast<std::size_t>(var)] = -1;
        if (heap_pos_[static_cast<std::size_t>(var)] < 0) heap_insert(var);
    }
    trail_.resize(mark);
    trail_lim_.resize(static_cast<std::size_t>(target));
    qhead_ = trail_.size();
}

bool CdclSolver::propagate_bounds(bool& progressed) {
    // Bounded choice rules propagate through *explained* forcings: each forced
    // literal gets an entailed clause that is unit under the current
    // assignment, so conflict analysis can resolve across bound reasoning.
    // Returns false and leaves the falsified explanation installed via
    // pending_bound_conflict_ when the bound itself is violated.
    for (int r : bounded_choices_) {
        const GroundRule& rule = program_.rules()[static_cast<std::size_t>(r)];
        const int body_var = n_atoms_ + r;
        const int8_t body_value = assign_[static_cast<std::size_t>(body_var)];
        if (body_value < 0) continue;  // body false: bounds do not apply

        long long chosen = 0;
        long long open = 0;
        for (int h : rule.choice_heads) {
            const int8_t v = assign_[static_cast<std::size_t>(h)];
            if (v > 0) {
                ++chosen;
            } else if (v == 0) {
                ++open;
            }
        }
        const bool upper_violated = rule.upper_bound && chosen > *rule.upper_bound;
        const bool lower_unreachable =
            rule.lower_bound && chosen + open < *rule.lower_bound;
        if (upper_violated || lower_unreachable) {
            // Entailed: body and this witness set cannot hold together.
            std::vector<int> explain = {neg_lit(body_var)};
            if (upper_violated) {
                long long take = *rule.upper_bound + 1;
                for (int h : rule.choice_heads) {
                    if (take == 0) break;
                    if (assign_[static_cast<std::size_t>(h)] > 0) {
                        explain.push_back(neg_lit(h));
                        --take;
                    }
                }
            } else {
                for (int h : rule.choice_heads) {
                    if (assign_[static_cast<std::size_t>(h)] < 0) {
                        explain.push_back(pos_lit(h));
                    }
                }
            }
            if (!force_with_explanation(neg_lit(body_var), std::move(explain))) {
                return false;
            }
            progressed = true;
            continue;
        }
        if (body_value == 0) continue;  // body undecided: nothing to force

        if (rule.upper_bound && chosen == *rule.upper_bound && open > 0) {
            for (int h : rule.choice_heads) {
                if (assign_[static_cast<std::size_t>(h)] != 0) continue;
                std::vector<int> explain = {neg_lit(body_var), neg_lit(h)};
                for (int g : rule.choice_heads) {
                    if (assign_[static_cast<std::size_t>(g)] > 0) {
                        explain.push_back(neg_lit(g));
                    }
                }
                if (!force_with_explanation(neg_lit(h), std::move(explain))) {
                    return false;
                }
                progressed = true;
            }
        } else if (rule.lower_bound && chosen + open == *rule.lower_bound && open > 0) {
            for (int h : rule.choice_heads) {
                if (assign_[static_cast<std::size_t>(h)] != 0) continue;
                std::vector<int> explain = {neg_lit(body_var), pos_lit(h)};
                for (int g : rule.choice_heads) {
                    if (assign_[static_cast<std::size_t>(g)] < 0) {
                        explain.push_back(pos_lit(g));
                    }
                }
                if (!force_with_explanation(pos_lit(h), std::move(explain))) {
                    return false;
                }
                progressed = true;
            }
        }
    }
    return true;
}

bool CdclSolver::force_with_explanation(int lit, std::vector<int> explain) {
    // `explain` is an entailed clause containing `lit`, with every other
    // literal currently false. Install (deduped) and either enqueue the unit
    // or report the conflict through pending_bound_conflict_.
    std::sort(explain.begin(), explain.end());
    explain.erase(std::unique(explain.begin(), explain.end()), explain.end());
    if (explain.size() == 1) {
        // Statically violated bound: the body is entailed false outright. An
        // unattached marker clause serves as the reason so conflict analysis
        // never mistakes the forcing for a decision.
        if (value_false(lit)) {
            pending_bound_conflict_ = add_unit_conflict_marker({lit});
            return false;
        }
        if (lit_unassigned(lit)) enqueue(lit, add_unit_conflict_marker({lit}));
        return true;
    }
    int id = -1;
    const auto it = derived_cut_cache_.find(explain);
    if (it != derived_cut_cache_.end()) {
        id = it->second;
    } else {
        // Order: lit first, then remaining by descending level so the watch
        // pair stays valid after backtracking.
        std::vector<int> ordered;
        ordered.reserve(explain.size());
        ordered.push_back(lit);
        for (int l : explain) {
            if (l != lit) ordered.push_back(l);
        }
        std::sort(ordered.begin() + 1, ordered.end(), [&](int a, int b) {
            const int la = level_[static_cast<std::size_t>(lit_var(a))];
            const int lb = level_[static_cast<std::size_t>(lit_var(b))];
            if (la != lb) return la > lb;
            return a < b;
        });
        id = add_clause(std::move(ordered), /*learnt=*/false, /*transient=*/false);
        derived_cut_cache_.emplace(std::move(explain), id);
    }
    if (value_false(lit)) {
        pending_bound_conflict_ = id;
        return false;
    }
    if (lit_unassigned(lit)) enqueue(lit, id);
    return true;
}

int CdclSolver::add_unit_conflict_marker(std::vector<int> lits) {
    // An unattached clause used as a propagation reason or conflict seed.
    // Transient by default (dropped at solve end); callers that want a
    // persistent unit override the flag and register in permanent_units_.
    const int id = static_cast<int>(clauses_.size());
    Clause clause;
    clause.lits = std::move(lits);
    clause.birth = generation_;
    clause.transient = true;
    clauses_.push_back(std::move(clause));
    return id;
}

int CdclSolver::propagate_all() {
    while (true) {
        const int conflict = propagate();
        if (conflict >= 0) return conflict;
        if (options_ == nullptr || !options_->propagate_bounds) return -1;
        bool progressed = false;
        pending_bound_conflict_ = -1;
        if (!propagate_bounds(progressed)) return pending_bound_conflict_;
        if (!progressed) return -1;
    }
}

// --- conflict analysis ------------------------------------------------------

int CdclSolver::analyze(int conflict, std::vector<int>& learnt_out, bool& transient_out) {
    learnt_out.clear();
    learnt_out.push_back(0);  // slot for the asserting literal
    transient_out = false;
    int pathc = 0;
    int p = -1;
    std::size_t index = trail_.size();
    int confl = conflict;
    std::vector<int> to_clear;
    do {
        Clause& c = clauses_[static_cast<std::size_t>(confl)];
        transient_out = transient_out || c.transient;
        if (c.learnt) bump_clause(confl);
        for (int q : c.lits) {
            const int v = lit_var(q);
            if (p >= 0 && v == lit_var(p)) continue;
            if (seen_[static_cast<std::size_t>(v)] != 0) continue;
            if (level_[static_cast<std::size_t>(v)] == 0) {
                // Dropping a literal pinned only for this enumeration makes
                // the learned clause context-dependent.
                transient_out = transient_out || unit_taint_[static_cast<std::size_t>(v)] != 0;
                continue;
            }
            seen_[static_cast<std::size_t>(v)] = 1;
            to_clear.push_back(v);
            bump_var(v);
            if (level_[static_cast<std::size_t>(v)] >= current_level()) {
                ++pathc;
            } else {
                learnt_out.push_back(q);
            }
        }
        while (seen_[static_cast<std::size_t>(lit_var(trail_[index - 1]))] == 0) --index;
        --index;
        p = trail_[index];
        confl = reason_[static_cast<std::size_t>(lit_var(p))];
        seen_[static_cast<std::size_t>(lit_var(p))] = 0;
        --pathc;
    } while (pathc > 0);
    learnt_out[0] = negate(p);

    int bt = root_level_;
    if (learnt_out.size() > 1) {
        std::size_t max_i = 1;
        for (std::size_t i = 2; i < learnt_out.size(); ++i) {
            if (level_[static_cast<std::size_t>(lit_var(learnt_out[i]))] >
                level_[static_cast<std::size_t>(lit_var(learnt_out[max_i]))]) {
                max_i = i;
            }
        }
        std::swap(learnt_out[1], learnt_out[max_i]);
        bt = std::max(root_level_,
                      level_[static_cast<std::size_t>(lit_var(learnt_out[1]))]);
    }
    for (int v : to_clear) seen_[static_cast<std::size_t>(v)] = 0;
    return bt;
}

void CdclSolver::analyze_final(int conflict_clause, int seed_var) {
    core_.clear();
    core_valid_ = true;  // callers only invoke in UNSAT-under-assumptions contexts
    std::vector<int> to_clear;
    auto mark = [&](int v) {
        if (level_[static_cast<std::size_t>(v)] == 0) {
            // A conflict resting on an enumeration-transient pin says nothing
            // about the assumptions alone.
            if (unit_taint_[static_cast<std::size_t>(v)] != 0) core_valid_ = false;
            return;
        }
        if (seen_[static_cast<std::size_t>(v)] == 0) {
            seen_[static_cast<std::size_t>(v)] = 1;
            to_clear.push_back(v);
        }
    };
    if (conflict_clause >= 0) {
        for (int q : clauses_[static_cast<std::size_t>(conflict_clause)].lits) mark(lit_var(q));
    }
    if (seed_var >= 0) mark(seed_var);
    if (!trail_lim_.empty()) {
        for (std::size_t i = trail_.size(); i > trail_lim_[0]; --i) {
            const int v = lit_var(trail_[i - 1]);
            if (seen_[static_cast<std::size_t>(v)] == 0) continue;
            const int r = reason_[static_cast<std::size_t>(v)];
            if (r < 0) {
                // A decision at level <= root is an assumption.
                core_.push_back(
                    assump_by_level_[static_cast<std::size_t>(level_[static_cast<std::size_t>(v)]) - 1]);
            } else {
                for (int q : clauses_[static_cast<std::size_t>(r)].lits) {
                    if (lit_var(q) != v) mark(lit_var(q));
                }
            }
            seen_[static_cast<std::size_t>(v)] = 0;
        }
    }
    for (int v : to_clear) seen_[static_cast<std::size_t>(v)] = 0;
    std::sort(core_.begin(), core_.end());
    core_.erase(std::unique(core_.begin(), core_.end()), core_.end());
}

void CdclSolver::bump_var(int var) {
    activity_[static_cast<std::size_t>(var)] += var_inc_;
    if (activity_[static_cast<std::size_t>(var)] > 1e100) {
        for (double& a : activity_) a *= 1e-100;
        var_inc_ *= 1e-100;
    }
    heap_update(var);
}

void CdclSolver::bump_clause(int clause) {
    Clause& c = clauses_[static_cast<std::size_t>(clause)];
    c.activity += clause_inc_;
    if (c.activity > 1e20) {
        for (Clause& other : clauses_) {
            if (other.learnt) other.activity *= 1e-20;
        }
        clause_inc_ *= 1e-20;
    }
}

void CdclSolver::decay_var_activity() { var_inc_ *= (1.0 / 0.95); }

int CdclSolver::compute_lbd(const std::vector<int>& lits) {
    std::vector<int> levels;
    levels.reserve(lits.size());
    for (int l : lits) {
        const int lv = level_[static_cast<std::size_t>(lit_var(l))];
        if (lv > 0) levels.push_back(lv);
    }
    std::sort(levels.begin(), levels.end());
    levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
    return static_cast<int>(levels.size());
}

// --- decision heuristic -----------------------------------------------------

bool CdclSolver::heap_less(int a, int b) const {
    if (activity_[static_cast<std::size_t>(a)] != activity_[static_cast<std::size_t>(b)]) {
        return activity_[static_cast<std::size_t>(a)] < activity_[static_cast<std::size_t>(b)];
    }
    return a > b;  // deterministic tie-break: smaller variable index ranks higher
}

void CdclSolver::heap_insert(int var) {
    if (heap_pos_[static_cast<std::size_t>(var)] >= 0) return;
    heap_pos_[static_cast<std::size_t>(var)] = static_cast<int>(heap_.size());
    heap_.push_back(var);
    heap_sift_up(heap_.size() - 1);
}

void CdclSolver::heap_update(int var) {
    const int pos = heap_pos_[static_cast<std::size_t>(var)];
    if (pos >= 0) heap_sift_up(static_cast<std::size_t>(pos));  // activity only grows
}

int CdclSolver::heap_pop() {
    const int top = heap_[0];
    heap_pos_[static_cast<std::size_t>(top)] = -1;
    const int last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_[0] = last;
        heap_pos_[static_cast<std::size_t>(last)] = 0;
        heap_sift_down(0);
    }
    return top;
}

void CdclSolver::heap_sift_up(std::size_t i) {
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!heap_less(heap_[parent], heap_[i])) break;
        std::swap(heap_[parent], heap_[i]);
        heap_pos_[static_cast<std::size_t>(heap_[parent])] = static_cast<int>(parent);
        heap_pos_[static_cast<std::size_t>(heap_[i])] = static_cast<int>(i);
        i = parent;
    }
}

void CdclSolver::heap_sift_down(std::size_t i) {
    while (true) {
        const std::size_t left = 2 * i + 1;
        const std::size_t right = 2 * i + 2;
        std::size_t best = i;
        if (left < heap_.size() && heap_less(heap_[best], heap_[left])) best = left;
        if (right < heap_.size() && heap_less(heap_[best], heap_[right])) best = right;
        if (best == i) break;
        std::swap(heap_[best], heap_[i]);
        heap_pos_[static_cast<std::size_t>(heap_[best])] = static_cast<int>(best);
        heap_pos_[static_cast<std::size_t>(heap_[i])] = static_cast<int>(i);
        i = best;
    }
}

int CdclSolver::pick_branch_var() {
    while (!heap_.empty()) {
        const int v = heap_pop();
        if (assign_[static_cast<std::size_t>(v)] == 0) return v;
    }
    return -1;
}

// --- answer-set leaf checks (semantics identical to the DPLL engine) --------

namespace {

bool compare_values(long long lhs, CompareOp op, long long rhs) {
    switch (op) {
        case CompareOp::Eq: return lhs == rhs;
        case CompareOp::Ne: return lhs != rhs;
        case CompareOp::Lt: return lhs < rhs;
        case CompareOp::Le: return lhs <= rhs;
        case CompareOp::Gt: return lhs > rhs;
        case CompareOp::Ge: return lhs >= rhs;
    }
    return false;
}

/// Lexicographic (descending priority) comparison: true if a < b.
bool cost_less(const std::map<long long, long long>& a,
               const std::map<long long, long long>& b) {
    auto ia = a.rbegin();
    auto ib = b.rbegin();
    while (ia != a.rend() || ib != b.rend()) {
        const long long pa = ia != a.rend() ? ia->first : std::numeric_limits<long long>::min();
        const long long pb = ib != b.rend() ? ib->first : std::numeric_limits<long long>::min();
        long long va = 0;
        long long vb = 0;
        if (pa > pb) {
            va = ia->second;
            ++ia;
        } else if (pb > pa) {
            vb = ib->second;
            ++ib;
        } else {
            va = ia->second;
            vb = ib->second;
            ++ia;
            ++ib;
        }
        if (va != vb) return va < vb;
    }
    return false;
}

}  // namespace

bool CdclSolver::body_satisfied_in_model(const GroundRule& rule) const {
    for (int p : rule.positive_body) {
        if (assign_[static_cast<std::size_t>(p)] <= 0) return false;
    }
    for (int n : rule.negative_body) {
        if (assign_[static_cast<std::size_t>(n)] > 0) return false;
    }
    return true;
}

bool CdclSolver::aggregate_holds(const GroundAggregate& aggregate) const {
    long long value = 0;
    std::set<std::string> counted;
    for (const GroundAggregateElement& element : aggregate.elements) {
        bool holds = true;
        for (int id : element.condition) {
            if (assign_[static_cast<std::size_t>(id)] <= 0) {
                holds = false;
                break;
            }
        }
        if (!holds) continue;
        if (!counted.insert(element.tuple).second) continue;
        value += element.weight;
    }
    return compare_values(value, aggregate.op, aggregate.bound);
}

bool CdclSolver::aggregates_ok() const {
    for (int r : aggregate_constraints_) {
        const GroundRule& rule = program_.rules()[static_cast<std::size_t>(r)];
        if (!body_satisfied_in_model(rule)) continue;
        bool all_hold = true;
        for (const GroundAggregate& aggregate : rule.aggregates) {
            if (!aggregate_holds(aggregate)) {
                all_hold = false;
                break;
            }
        }
        if (all_hold) return false;
    }
    return true;
}

bool CdclSolver::bounds_ok() const {
    for (int r : bounded_choices_) {
        const GroundRule& rule = program_.rules()[static_cast<std::size_t>(r)];
        if (!body_satisfied_in_model(rule)) continue;
        long long chosen = 0;
        for (int h : rule.choice_heads) {
            if (assign_[static_cast<std::size_t>(h)] > 0) ++chosen;
        }
        if (rule.lower_bound && chosen < *rule.lower_bound) return false;
        if (rule.upper_bound && chosen > *rule.upper_bound) return false;
    }
    return true;
}

std::vector<int> CdclSolver::bounds_violation_cut() const {
    for (int r : bounded_choices_) {
        const GroundRule& rule = program_.rules()[static_cast<std::size_t>(r)];
        if (!body_satisfied_in_model(rule)) continue;
        const int body_var = n_atoms_ + r;
        long long chosen = 0;
        for (int h : rule.choice_heads) {
            if (assign_[static_cast<std::size_t>(h)] > 0) ++chosen;
        }
        if (rule.upper_bound && chosen > *rule.upper_bound) {
            std::vector<int> lits = {neg_lit(body_var)};
            long long take = *rule.upper_bound + 1;
            for (int h : rule.choice_heads) {
                if (take == 0) break;
                if (assign_[static_cast<std::size_t>(h)] > 0) {
                    lits.push_back(neg_lit(h));
                    --take;
                }
            }
            return lits;
        }
        if (rule.lower_bound && chosen < *rule.lower_bound) {
            std::vector<int> lits = {neg_lit(body_var)};
            for (int h : rule.choice_heads) {
                if (assign_[static_cast<std::size_t>(h)] <= 0) lits.push_back(pos_lit(h));
            }
            return lits;
        }
    }
    return {};
}

bool CdclSolver::stable(std::vector<int>& unfounded_out) const {
    if (fault::should_fail("asp.solver.stability")) {
        throw Error("solver: injected fault in stability check (site asp.solver.stability)");
    }
    std::vector<char> derived(static_cast<std::size_t>(n_atoms_), false);
    bool progressed = true;
    while (progressed) {
        progressed = false;
        if (options_ != nullptr && options_->budget != nullptr) {
            options_->budget->charge_steps(program_.rules().size());
        }
        for (const GroundRule& rule : program_.rules()) {
            if (rule.kind == GroundRule::Kind::Constraint) continue;
            bool neg_ok = true;
            for (int n : rule.negative_body) {
                if (assign_[static_cast<std::size_t>(n)] > 0) {
                    neg_ok = false;
                    break;
                }
            }
            if (!neg_ok) continue;
            bool pos_ok = true;
            for (int p : rule.positive_body) {
                if (!derived[static_cast<std::size_t>(p)]) {
                    pos_ok = false;
                    break;
                }
            }
            if (!pos_ok) continue;
            if (rule.kind == GroundRule::Kind::Normal) {
                if (!derived[static_cast<std::size_t>(rule.head)]) {
                    derived[static_cast<std::size_t>(rule.head)] = true;
                    progressed = true;
                }
            } else {  // Choice: chosen atoms are self-supported.
                for (int h : rule.choice_heads) {
                    if (assign_[static_cast<std::size_t>(h)] > 0 &&
                        !derived[static_cast<std::size_t>(h)]) {
                        derived[static_cast<std::size_t>(h)] = true;
                        progressed = true;
                    }
                }
            }
        }
    }
    unfounded_out.clear();
    for (int a = 0; a < n_atoms_; ++a) {
        if (assign_[static_cast<std::size_t>(a)] > 0 && !derived[static_cast<std::size_t>(a)]) {
            unfounded_out.push_back(a);
        }
    }
    return unfounded_out.empty();
}

std::vector<int> CdclSolver::unfounded_cut(const std::vector<int>& unfounded) const {
    std::set<int> u(unfounded.begin(), unfounded.end());
    std::vector<int> clause;
    clause.reserve(unfounded.size() + 4);
    for (int a : unfounded) clause.push_back(neg_lit(a));
    for (std::size_t r = 0; r < program_.rules().size(); ++r) {
        const GroundRule& rule = program_.rules()[r];
        bool head_in_u = false;
        if (rule.kind == GroundRule::Kind::Normal) {
            head_in_u = u.count(rule.head) > 0;
        } else if (rule.kind == GroundRule::Kind::Choice) {
            for (int h : rule.choice_heads) {
                if (u.count(h) > 0) {
                    head_in_u = true;
                    break;
                }
            }
        }
        if (!head_in_u) continue;
        bool external = true;
        for (int p : rule.positive_body) {
            if (u.count(p) > 0) {
                external = false;
                break;
            }
        }
        if (external) clause.push_back(pos_lit(n_atoms_ + static_cast<int>(r)));
    }
    return clause;
}

// --- costs ------------------------------------------------------------------

std::map<long long, long long> CdclSolver::model_cost() const {
    std::map<long long, long long> cost;
    std::set<std::pair<long long, std::string>> counted;
    for (const GroundWeak& w : program_.weaks()) {
        bool holds = true;
        for (int p : w.positive_body) {
            if (assign_[static_cast<std::size_t>(p)] <= 0) {
                holds = false;
                break;
            }
        }
        for (int n : w.negative_body) {
            if (assign_[static_cast<std::size_t>(n)] > 0) {
                holds = false;
                break;
            }
        }
        if (!holds) continue;
        if (!counted.insert({w.priority, w.tuple}).second) continue;
        cost[w.priority] += w.weight;
    }
    return cost;
}

std::map<long long, long long> CdclSolver::partial_cost_lower_bound() const {
    std::map<long long, long long> cost;
    std::set<std::pair<long long, std::string>> counted;
    for (const GroundWeak& w : program_.weaks()) {
        bool definitely = true;
        for (int p : w.positive_body) {
            if (assign_[static_cast<std::size_t>(p)] <= 0) {
                definitely = false;
                break;
            }
        }
        for (int n : w.negative_body) {
            if (assign_[static_cast<std::size_t>(n)] >= 0) {
                definitely = false;
                break;
            }
        }
        if (!definitely) continue;
        if (!counted.insert({w.priority, w.tuple}).second) continue;
        cost[w.priority] += w.weight;
    }
    return cost;
}

bool CdclSolver::should_prune_by_cost() const {
    if (!has_weaks_ || !options_->optimize || negative_weights_) return false;
    if (!have_best_) return false;
    const auto bound = partial_cost_lower_bound();
    // Prune only if the lower bound already exceeds the best cost — the same
    // strict rule as the DPLL engine, so the optimal-model set matches.
    return cost_less(best_cost_, bound);
}

std::vector<int> CdclSolver::cost_cut_clause() const {
    // "Not all current cost contributors can hold together": a transient cut
    // falsified by the assignment that triggered the prune.
    std::vector<int> lits;
    for (const GroundWeak& w : program_.weaks()) {
        bool definitely = true;
        for (int p : w.positive_body) {
            if (assign_[static_cast<std::size_t>(p)] <= 0) {
                definitely = false;
                break;
            }
        }
        for (int n : w.negative_body) {
            if (assign_[static_cast<std::size_t>(n)] >= 0) {
                definitely = false;
                break;
            }
        }
        if (!definitely) continue;
        for (int p : w.positive_body) lits.push_back(neg_lit(p));
        for (int n : w.negative_body) lits.push_back(pos_lit(n));
    }
    return lits;
}

// --- search driver ----------------------------------------------------------

void CdclSolver::record_model() {
    ++stats_.models_enumerated;
    AnswerSet model;
    model.cost = model_cost();
    for (int a = 0; a < n_atoms_; ++a) {
        if (assign_[static_cast<std::size_t>(a)] > 0 && program_.is_shown(a)) {
            model.atoms.push_back(program_.atom(a));
        }
    }
    std::sort(model.atoms.begin(), model.atoms.end());
    if (has_weaks_ && options_->optimize) {
        if (!have_best_ || cost_less(model.cost, best_cost_)) {
            best_cost_ = model.cost;
            have_best_ = true;
        }
    }
    found_.push_back(std::move(model));
}

bool CdclSolver::model_limit_reached() const {
    if (has_weaks_ && options_->optimize) return false;
    return options_->max_models != 0 && found_.size() >= options_->max_models;
}

std::vector<int> CdclSolver::blocking_clause(int floor_level) const {
    // Negation of the current total atom assignment, minus literals pinned at
    // or below `floor_level` (level 0, plus the assumption levels for
    // transient use — those stay false for the rest of the solve).
    std::vector<int> lits;
    for (int a = 0; a < n_atoms_; ++a) {
        const int lit = assign_[static_cast<std::size_t>(a)] > 0 ? neg_lit(a) : pos_lit(a);
        if (level_[static_cast<std::size_t>(a)] <= floor_level) continue;
        lits.push_back(lit);
    }
    return lits;
}

bool CdclSolver::resolve_cut(std::vector<int> lits, bool transient) {
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    // Permanent cuts must stay base-entailed, so they may only shed literals
    // falsified by untainted top-level propagation; transient cuts may also
    // shed assumption-level and tainted literals.
    const int floor_level = transient ? root_level_ : 0;
    std::vector<int> filtered;
    filtered.reserve(lits.size());
    for (int l : lits) {
        const int v = lit_var(l);
        if (value_false(l) && level_[static_cast<std::size_t>(v)] <= floor_level &&
            (transient || unit_taint_[static_cast<std::size_t>(v)] == 0)) {
            continue;
        }
        filtered.push_back(l);
    }
    if (filtered.empty()) {
        if (!transient && found_.empty()) root_conflict_ = true;
        return false;  // nothing left to flip: enumeration under this context is done
    }
    std::sort(filtered.begin(), filtered.end(), [&](int a, int b) {
        const int la = level_[static_cast<std::size_t>(lit_var(a))];
        const int lb = level_[static_cast<std::size_t>(lit_var(b))];
        if (la != lb) return la > lb;
        return a < b;
    });
    const int max_level = level_[static_cast<std::size_t>(lit_var(filtered[0]))];
    if (max_level <= root_level_) {
        if (found_.empty() && !assump_by_level_.empty()) {
            const int marker = add_unit_conflict_marker(filtered);
            clauses_[static_cast<std::size_t>(marker)].transient = true;
            analyze_final(marker, -1);
        }
        return false;
    }
    cancel_until(max_level);
    if (filtered.size() == 1) {
        cancel_until(root_level_);
        const int id = add_unit_conflict_marker(filtered);
        clauses_[static_cast<std::size_t>(id)].transient = transient;
        if (!transient) permanent_units_.push_back(id);
        enqueue(filtered[0], id);
        return true;
    }
    int id = -1;
    if (!transient) {
        const auto it = derived_cut_cache_.find(lits);
        if (it != derived_cut_cache_.end()) {
            id = it->second;
        } else {
            id = add_clause(filtered, /*learnt=*/false, /*transient=*/false);
            derived_cut_cache_.emplace(std::move(lits), id);
        }
    } else {
        id = add_clause(std::move(filtered), /*learnt=*/false, /*transient=*/true);
    }
    return handle_conflict(id);
}

bool CdclSolver::handle_conflict(int conflict) {
    ++stats_.conflicts;
    ++conflicts_since_restart_;
    // Normalize: conflict analysis needs at least one literal of the
    // conflicting clause at the current decision level.
    int max_lv = 0;
    for (int q : clauses_[static_cast<std::size_t>(conflict)].lits) {
        max_lv = std::max(max_lv, level_[static_cast<std::size_t>(lit_var(q))]);
    }
    if (max_lv < current_level()) cancel_until(std::max(max_lv, root_level_));
    if (current_level() <= root_level_) {
        if (found_.empty() && !assump_by_level_.empty()) analyze_final(conflict, -1);
        return false;
    }
    if (!learning_disabled_ && fault::should_fail("asp.cdcl.learn")) {
        // Degraded mode: keep searching without 1UIP learning (chronological
        // backtracking through transient decision-negation clauses).
        learning_disabled_ = true;
    }
    if (learning_disabled_) {
        std::vector<int> lits;
        for (int lv = current_level(); lv > root_level_; --lv) {
            lits.push_back(negate(trail_[trail_lim_[static_cast<std::size_t>(lv) - 1]]));
        }
        cancel_until(current_level() - 1);
        if (lits.size() == 1) {
            const int id = add_unit_conflict_marker(std::move(lits));
            Clause& c = clauses_[static_cast<std::size_t>(id)];
            c.transient = true;
            enqueue(c.lits[0], id);
        } else {
            const int id = add_clause(std::move(lits), /*learnt=*/false, /*transient=*/true);
            enqueue(clauses_[static_cast<std::size_t>(id)].lits[0], id);
        }
        return true;
    }
    std::vector<int> learnt;
    bool transient = false;
    const int bt = analyze(conflict, learnt, transient);
    decay_var_activity();
    clause_inc_ *= (1.0 / 0.999);
    ++stats_.learned_clauses;
    stats_.learned_literals += learnt.size();
    cancel_until(bt);
    if (learnt.size() == 1) {
        const int lit = learnt[0];
        const int id = add_unit_conflict_marker(std::move(learnt));
        Clause& c = clauses_[static_cast<std::size_t>(id)];
        c.learnt = true;
        c.transient = transient;
        if (!transient) permanent_units_.push_back(id);
        enqueue(lit, id);
    } else {
        const int id = add_clause(std::move(learnt), /*learnt=*/true, transient);
        Clause& c = clauses_[static_cast<std::size_t>(id)];
        c.lbd = compute_lbd(c.lits);
        c.activity = clause_inc_;
        ++cur_learnt_;
        enqueue(c.lits[0], id);
    }
    return true;
}

std::size_t CdclSolver::luby(std::size_t i) {
    // Luby sequence, 1-indexed: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
    std::size_t x = i - 1;
    std::size_t size = 1;
    std::size_t seq = 0;
    while (size < x + 1) {
        ++seq;
        size = 2 * size + 1;
    }
    while (size - 1 != x) {
        size = (size - 1) >> 1;
        --seq;
        x = x % size;
    }
    return static_cast<std::size_t>(1) << seq;
}

void CdclSolver::restart() {
    ++stats_.restarts;
    cancel_until(root_level_);
    conflicts_since_restart_ = 0;
    ++restart_seq_;
    conflicts_until_restart_ = kRestartBase * luby(restart_seq_);
}

void CdclSolver::reduce_db() {
    ++stats_.db_reductions;
    std::vector<int> cands;
    for (int id = 0; id < static_cast<int>(clauses_.size()); ++id) {
        const Clause& c = clauses_[static_cast<std::size_t>(id)];
        if (!c.learnt || c.deleted || !c.attached || c.lbd <= 2) continue;
        // Locked: currently the reason of an assigned variable.
        const int v = lit_var(c.lits[0]);
        if (reason_[static_cast<std::size_t>(v)] == id && value_true(c.lits[0])) continue;
        cands.push_back(id);
    }
    std::sort(cands.begin(), cands.end(), [&](int a, int b) {
        const Clause& ca = clauses_[static_cast<std::size_t>(a)];
        const Clause& cb = clauses_[static_cast<std::size_t>(b)];
        if (ca.lbd != cb.lbd) return ca.lbd > cb.lbd;           // glue: worst first
        if (ca.activity != cb.activity) return ca.activity < cb.activity;
        return a < b;
    });
    const std::size_t drop = cands.size() / 2;
    for (std::size_t i = 0; i < drop; ++i) {
        Clause& c = clauses_[static_cast<std::size_t>(cands[i])];
        c.deleted = true;
        c.attached = false;
        --cur_learnt_;
    }
    // Rebuild watch lists (propagate also skips deleted lazily, but stale
    // watchers would accumulate across a long solve).
    for (auto& ws : watches_) ws.clear();
    for (int id = 0; id < static_cast<int>(clauses_.size()); ++id) {
        Clause& c = clauses_[static_cast<std::size_t>(id)];
        if (c.deleted || !c.attached) continue;
        c.attached = false;  // attach_clause sets it back
        attach_clause(id);
    }
    learnt_limit_ += learnt_limit_ / 2;
}

void CdclSolver::finalize_solve() {
    cancel_until(0);
    for (int v = 0; v < n_vars_; ++v) reason_[static_cast<std::size_t>(v)] = -1;
    // Retract top-level assignments that were forced only for this
    // enumeration (reached through a transient clause); entailed units stay.
    std::vector<int> kept_trail;
    kept_trail.reserve(trail_.size());
    for (int lit : trail_) {
        const std::size_t v = static_cast<std::size_t>(lit_var(lit));
        if (unit_taint_[v] != 0) {
            assign_[v] = 0;
            unit_taint_[v] = 0;
        } else {
            kept_trail.push_back(lit);
        }
    }
    trail_ = std::move(kept_trail);
    // Compact: drop transient and tombstoned clauses, remap ids.
    std::vector<int> remap(clauses_.size(), -1);
    std::vector<Clause> kept;
    kept.reserve(clauses_.size());
    for (std::size_t id = 0; id < clauses_.size(); ++id) {
        Clause& c = clauses_[id];
        if (c.deleted || c.transient) continue;
        remap[id] = static_cast<int>(kept.size());
        kept.push_back(std::move(c));
    }
    clauses_ = std::move(kept);
    std::vector<int> units;
    units.reserve(permanent_units_.size());
    for (int id : permanent_units_) {
        if (remap[static_cast<std::size_t>(id)] >= 0) {
            units.push_back(remap[static_cast<std::size_t>(id)]);
        }
    }
    permanent_units_ = std::move(units);
    for (auto& [key, id] : derived_cut_cache_) id = remap[static_cast<std::size_t>(id)];
    for (auto& ws : watches_) ws.clear();
    retained_learned_ = 0;
    for (int id = 0; id < static_cast<int>(clauses_.size()); ++id) {
        Clause& c = clauses_[static_cast<std::size_t>(id)];
        if (c.learnt) ++retained_learned_;
        if (!c.attached) continue;
        c.attached = false;
        attach_clause(id);
    }
    // Replay the kept top-level trail against the rebuilt watch lists:
    // retracting mid-trail assignments broke the two-watched-literal
    // invariant, and clauses satisfied only by a retracted literal may now be
    // unit. Everything here is entailed, so a conflict means the program
    // itself is unsatisfiable.
    qhead_ = 0;
    if (propagate() >= 0) root_conflict_ = true;
    ++generation_;
}

bool CdclSolver::push_assumptions() {
    for (const auto& [atom, value] : options_->assumptions) {
        if (atom < 0 || atom >= n_atoms_) {
            // Out-of-range pin: trivially unsatisfiable (DPLL parity).
            core_ = {{atom, value}};
            core_valid_ = true;
            return false;
        }
        const int lit = value ? pos_lit(atom) : neg_lit(atom);
        if (value_true(lit)) continue;  // already entailed; never part of a core
        if (value_false(lit)) {
            analyze_final(-1, atom);
            core_.push_back({atom, value});
            std::sort(core_.begin(), core_.end());
            core_.erase(std::unique(core_.begin(), core_.end()), core_.end());
            return false;
        }
        new_decision_level();
        assump_by_level_.push_back({atom, value});
        enqueue(lit, -1);
        const int conflict = propagate_all();
        if (conflict >= 0) {
            ++stats_.conflicts;
            analyze_final(conflict, -1);
            return false;
        }
    }
    root_level_ = current_level();
    return true;
}

void CdclSolver::search_loop() {
    while (true) {
        const int conflict = propagate_all();
        if (conflict >= 0) {
            if (!handle_conflict(conflict)) return;
            continue;
        }
        if (should_prune_by_cost()) {
            if (!resolve_cut(cost_cut_clause(), /*transient=*/true)) return;
            continue;
        }
        if (cur_learnt_ >= learnt_limit_) reduce_db();
        if (conflicts_since_restart_ >= conflicts_until_restart_ &&
            current_level() > root_level_) {
            restart();
            continue;
        }
        const int var = pick_branch_var();
        if (var < 0) {  // total assignment
            if (!bounds_ok()) {
                if (!resolve_cut(bounds_violation_cut(), /*transient=*/false)) return;
                continue;
            }
            if (!aggregates_ok()) {
                // Entailed: this total atom assignment is not an answer set of
                // the base program under any assumptions. Floor -1 keeps even
                // top-level literals; resolve_cut sheds the untainted ones.
                if (!resolve_cut(blocking_clause(/*floor_level=*/-1),
                                 /*transient=*/false)) {
                    return;
                }
                continue;
            }
            std::vector<int> unfounded;
            if (!stable(unfounded)) {
                ++stats_.stability_rejects;
                if (!resolve_cut(unfounded_cut(unfounded), /*transient=*/false)) return;
                continue;
            }
            record_model();
            if (model_limit_reached()) return;
            if (!resolve_cut(blocking_clause(root_level_), /*transient=*/true)) return;
            continue;
        }
        ++stats_.decisions;
        if (options_->max_decisions != 0 && stats_.decisions > options_->max_decisions) {
            interrupt_reason_ = BudgetReason::DecisionLimit;
            return;
        }
        if (options_->budget != nullptr) {
            if (auto exceeded = options_->budget->charge_decisions()) {
                interrupt_reason_ = exceeded->reason;
                return;
            }
        }
        new_decision_level();
        enqueue(phase_[static_cast<std::size_t>(var)] != 0 ? pos_lit(var) : neg_lit(var),
                -1);
    }
}

SolveResult CdclSolver::solve(const SolveOptions& options) {
    options_ = &options;
    found_.clear();
    best_cost_.clear();
    have_best_ = false;
    stats_ = SolveStats{};
    interrupt_reason_.reset();
    core_.clear();
    core_valid_ = false;
    assump_by_level_.clear();
    root_level_ = 0;
    learning_disabled_ = false;
    restart_seq_ = 1;
    conflicts_since_restart_ = 0;
    conflicts_until_restart_ = kRestartBase * luby(restart_seq_);
    learnt_limit_ = std::max<std::size_t>(2000, clauses_.size() / 3);
    cur_learnt_ = 0;  // retained reducible clauses count against the limit
    for (const Clause& c : clauses_) {
        if (c.learnt && c.attached && !c.deleted) ++cur_learnt_;
    }
    activity_ = base_activity_;
    var_inc_ = 1.0;
    clause_inc_ = 1.0;
    std::fill(phase_.begin(), phase_.end(), 0);
    heap_.clear();
    std::fill(heap_pos_.begin(), heap_pos_.end(), -1);
    for (int v = 0; v < n_vars_; ++v) heap_insert(v);

    auto unsat_result = [&]() {
        SolveResult result;
        result.satisfiable = false;
        result.stats = stats_;
        if (!options.assumptions.empty()) {
            result.assumption_core = std::vector<std::pair<int, bool>>{};
        }
        options_ = nullptr;
        return result;
    };
    if (root_conflict_) return unsat_result();

    // Re-assert entailed unit clauses learned by earlier solves.
    for (int id : permanent_units_) {
        const int lit = clauses_[static_cast<std::size_t>(id)].lits[0];
        if (value_false(lit)) {  // cannot happen for entailed units; defensive
            root_conflict_ = true;
            break;
        }
        if (lit_unassigned(lit)) enqueue(lit, id);
    }
    if (!root_conflict_ && propagate() >= 0) root_conflict_ = true;
    if (root_conflict_) {
        finalize_solve();
        return unsat_result();
    }

    try {
        if (push_assumptions()) search_loop();
    } catch (...) {
        finalize_solve();
        options_ = nullptr;
        throw;  // injected stability fault; the solve() wrapper reports it
    }

    SolveResult result;
    result.satisfiable = !found_.empty();
    result.best_cost = best_cost_;
    result.stats = stats_;
    if (interrupt_reason_) result.interrupt = SolveInterrupt{*interrupt_reason_, stats_};
    if (!result.satisfiable && !interrupt_reason_ && core_valid_) {
        result.assumption_core = core_;
    }
    // Optimality filter + projection dedup + canonical order.
    std::set<std::string> seen;
    for (auto& model : found_) {
        if (has_weaks_ && options.optimize && model.cost != best_cost_) continue;
        std::string key;
        for (const Atom& a : model.atoms) key += a.to_string() + "|";
        if (!seen.insert(key).second) continue;
        result.models.push_back(std::move(model));
    }
    sort_models_canonically(result.models);
    finalize_solve();
    options_ = nullptr;
    return result;
}

}  // namespace cprisk::asp
