#include "asp/safety.hpp"

#include <set>

namespace cprisk::asp {

std::vector<SafetyViolation> unsafe_variables(const std::vector<Literal>& body,
                                              const std::vector<Term>& head_terms,
                                              const std::string& what) {
    std::set<std::string> bindable;
    std::vector<std::string> scratch;
    for (const Literal& lit : body) {
        scratch.clear();
        if (lit.kind == Literal::Kind::Atom && !lit.negated) {
            for (const Term& a : lit.atom.args) a.collect_variables(scratch);
        } else if (lit.kind == Literal::Kind::Comparison && lit.op == CompareOp::Eq) {
            lit.lhs.collect_variables(scratch);
            lit.rhs.collect_variables(scratch);
        }
        bindable.insert(scratch.begin(), scratch.end());
    }
    std::vector<std::string> required;
    for (const Term& t : head_terms) t.collect_variables(required);
    for (const Literal& lit : body) {
        if (lit.kind == Literal::Kind::Atom && lit.negated) {
            for (const Term& a : lit.atom.args) a.collect_variables(required);
        } else if (lit.kind == Literal::Kind::Comparison && lit.op != CompareOp::Eq) {
            lit.lhs.collect_variables(required);
            lit.rhs.collect_variables(required);
        }
    }
    std::vector<SafetyViolation> violations;
    std::set<std::string> reported;
    for (const std::string& var : required) {
        if (var == "_" || bindable.count(var) > 0) continue;
        if (!reported.insert(var).second) continue;
        violations.push_back(SafetyViolation{var, what});
    }
    return violations;
}

std::vector<SafetyViolation> unsafe_rule_variables(const Rule& rule) {
    std::vector<SafetyViolation> violations;
    auto append = [&](std::vector<SafetyViolation> more) {
        violations.insert(violations.end(), std::make_move_iterator(more.begin()),
                          std::make_move_iterator(more.end()));
    };
    std::vector<Term> head_terms;
    switch (rule.head.kind) {
        case Head::Kind::Atom:
            head_terms.insert(head_terms.end(), rule.head.atom.args.begin(),
                              rule.head.atom.args.end());
            break;
        case Head::Kind::Constraint: break;
        case Head::Kind::Choice:
            // Choice element variables may be bound by the element's own
            // condition; check each element against body + condition.
            for (const auto& element : rule.head.elements) {
                std::vector<Literal> extended = rule.body;
                extended.insert(extended.end(), element.condition.begin(),
                                element.condition.end());
                std::vector<Term> element_terms(element.atom.args.begin(),
                                                element.atom.args.end());
                append(unsafe_variables(extended, element_terms, "rule " + rule.to_string()));
            }
            break;
    }
    append(unsafe_variables(rule.body, head_terms, "rule " + rule.to_string()));
    return violations;
}

std::vector<SafetyViolation> unsafe_weak_variables(const WeakConstraint& weak) {
    std::vector<Term> weak_terms = weak.tuple;
    weak_terms.push_back(weak.weight);
    return unsafe_variables(weak.body, weak_terms, "weak constraint " + weak.to_string());
}

}  // namespace cprisk::asp
