#include "asp/term.hpp"

#include <ostream>

#include "common/error.hpp"

namespace cprisk::asp {

Term Term::integer(long long value) {
    Term t;
    t.kind_ = Kind::Integer;
    t.int_ = value;
    return t;
}

Term Term::symbol(std::string name) {
    Term t;
    t.kind_ = Kind::Symbol;
    t.name_ = std::move(name);
    return t;
}

Term Term::variable(std::string name) {
    Term t;
    t.kind_ = Kind::Variable;
    t.name_ = std::move(name);
    return t;
}

Term Term::compound(std::string functor, std::vector<Term> args) {
    Term t;
    t.kind_ = Kind::Compound;
    t.name_ = std::move(functor);
    t.args_ = std::move(args);
    return t;
}

long long Term::as_int() const {
    require(is_integer(), "Term::as_int on non-integer term " + to_string());
    return int_;
}

const std::string& Term::name() const {
    require(!is_integer(), "Term::name on integer term");
    return name_;
}

const std::vector<Term>& Term::args() const {
    require(is_compound(), "Term::args on non-compound term " + to_string());
    return args_;
}

bool Term::is_ground() const {
    switch (kind_) {
        case Kind::Integer:
        case Kind::Symbol: return true;
        case Kind::Variable: return false;
        case Kind::Compound:
            for (const Term& a : args_) {
                if (!a.is_ground()) return false;
            }
            return true;
    }
    return false;
}

void Term::collect_variables(std::vector<std::string>& out) const {
    switch (kind_) {
        case Kind::Variable: out.push_back(name_); break;
        case Kind::Compound:
            for (const Term& a : args_) a.collect_variables(out);
            break;
        default: break;
    }
}

bool Term::operator==(const Term& other) const {
    if (kind_ != other.kind_) return false;
    switch (kind_) {
        case Kind::Integer: return int_ == other.int_;
        case Kind::Symbol:
        case Kind::Variable: return name_ == other.name_;
        case Kind::Compound: return name_ == other.name_ && args_ == other.args_;
    }
    return false;
}

bool Term::operator<(const Term& other) const {
    if (kind_ != other.kind_) return static_cast<int>(kind_) < static_cast<int>(other.kind_);
    switch (kind_) {
        case Kind::Integer: return int_ < other.int_;
        case Kind::Symbol:
        case Kind::Variable: return name_ < other.name_;
        case Kind::Compound:
            if (name_ != other.name_) return name_ < other.name_;
            return args_ < other.args_;
    }
    return false;
}

std::string Term::to_string() const {
    switch (kind_) {
        case Kind::Integer: return std::to_string(int_);
        case Kind::Symbol:
        case Kind::Variable: return name_;
        case Kind::Compound: {
            // Render binary operators infix for readability.
            if (args_.size() == 2 &&
                (name_ == "+" || name_ == "-" || name_ == "*" || name_ == "/" ||
                 name_ == "mod" || name_ == "..")) {
                return "(" + args_[0].to_string() + name_ + args_[1].to_string() + ")";
            }
            std::string out = name_ + "(";
            for (std::size_t i = 0; i < args_.size(); ++i) {
                if (i > 0) out += ",";
                out += args_[i].to_string();
            }
            return out + ")";
        }
    }
    return "?";
}

std::ostream& operator<<(std::ostream& os, const Term& t) { return os << t.to_string(); }

bool Atom::is_ground() const {
    for (const Term& a : args) {
        if (!a.is_ground()) return false;
    }
    return true;
}

bool Atom::operator==(const Atom& other) const {
    return predicate == other.predicate && args == other.args;
}

bool Atom::operator<(const Atom& other) const {
    if (predicate != other.predicate) return predicate < other.predicate;
    return args < other.args;
}

std::string Atom::to_string() const {
    if (args.empty()) return predicate;
    std::string out = predicate + "(";
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ",";
        out += args[i].to_string();
    }
    return out + ")";
}

std::ostream& operator<<(std::ostream& os, const Atom& a) { return os << a.to_string(); }

}  // namespace cprisk::asp
